//! `aleadvect`: advect the independent variables through the swept
//! volumes.
//!
//! Mass and internal energy are advected element-to-element with a
//! second-order donor-cell scheme: the face value is the donor's value
//! plus a van Leer-limited correction towards the downwind neighbour
//! (Van Leer 1977), which keeps the update monotone — no new extrema.
//! Momentum is advected as an element-centred field (the mass-weighted
//! corner-velocity average); the remap step then distributes each
//! element's momentum *change* back to its corner nodes by corner-mass
//! weight, which conserves total momentum and leaves nodal velocities
//! untouched in the zero-motion limit.
//!
//! Swept volumes are **bitwise antisymmetric** across faces (the
//! canonical side computes, the other mirrors — see [`crate::fluxvol`]),
//! so the two elements sharing a face derive bitwise-identical fluxes
//! with exactly opposite signs and conservation of mass, energy and
//! momentum is exact by construction. That also makes the accumulation
//! element-local, which is what lets [`compute_fluxes`] run
//! element-parallel under `Threading::Rayon`.

use bookleaf_hydro::Threading;
use bookleaf_mesh::{Mesh, Neighbor};
use bookleaf_util::Vec2;
use rayon::prelude::*;

/// Van Leer flux limiter: `φ(r) = (r + |r|) / (1 + |r|)`.
///
/// Smooth (`r ≈ 1`) ⇒ φ ≈ 1 (second order); extremum (`r ≤ 0`) ⇒ φ = 0
/// (first order, monotone).
#[inline]
#[must_use]
pub fn van_leer(r: f64) -> f64 {
    if r.is_finite() {
        (r + r.abs()) / (1.0 + r.abs())
    } else {
        // r = ±inf arises when the local jump vanishes: fully smooth.
        if r > 0.0 {
            2.0
        } else {
            0.0
        }
    }
}

/// Element-field fluxes for one remap: the net amounts *leaving* each
/// element. Momentum is advected as an element-centred field (the
/// mass-weighted corner average); `remap` distributes each element's
/// momentum change back to its corners, which is conservative and exact
/// in the zero-motion limit.
#[derive(Debug, Clone)]
pub struct AdvectFluxes {
    /// Net mass leaving each element.
    pub d_mass: Vec<f64>,
    /// Net internal energy (extensive, mass-weighted) leaving each element.
    pub d_energy: Vec<f64>,
    /// Net momentum leaving each element.
    pub d_mom: Vec<Vec2>,
}

/// The face value of a quantity, second-order limited.
///
/// `donor`/`down` are the donor and downwind element values; `upstream`
/// is the value behind the donor (its opposite-face neighbour), used for
/// the smoothness ratio `r = (donor − upstream)/(down − donor)`.
#[inline]
fn limited_face_value(donor: f64, down: f64, upstream: Option<f64>) -> f64 {
    match upstream {
        None => donor, // first order where no upstream stencil exists
        Some(up) => {
            let d = down - donor;
            if d == 0.0 {
                return donor;
            }
            let r = (donor - up) / d;
            donor + 0.5 * van_leer(r) * d
        }
    }
}

/// Upstream of the donor: its neighbour across the face opposite the
/// one joining it to `towards`.
#[inline]
fn upstream_of(mesh: &Mesh, donor: usize, towards: usize) -> Option<usize> {
    let fd = mesh.face_towards(donor, towards)?;
    match mesh.elel[donor][(fd + 2) % 4] {
        Neighbor::Element(u) => Some(u as usize),
        Neighbor::Boundary => None,
    }
}

/// Compute all advective fluxes given face swept volumes `fvol`
/// (positive = leaving the element, **bitwise** antisymmetric across
/// faces — what [`crate::fluxvol::face_flux_volumes`] now guarantees).
///
/// `cell_u[e]` is the donor-cell velocity used for momentum advection.
///
/// The accumulation is *element-order*: every element walks its own
/// four faces and sums the signed flux each contributes. Because the
/// `(donor, receiver, vol)` triple derived from `fvol[e][f]` is bitwise
/// identical from either side of a face, both sides compute bitwise-
/// identical `dm`/`de`/`dmom` with exactly opposite signs — so
/// conservation stays exact by construction *and* every element's
/// output is independent of every other's, which is what lets the
/// `Threading::Rayon` path fan elements out across the pool (and makes
/// serial and threaded results bitwise identical).
#[must_use]
pub fn compute_fluxes(
    mesh: &Mesh,
    rho: &[f64],
    ein: &[f64],
    cell_u: &[Vec2],
    fvol: &[[f64; 4]],
    threading: Threading,
) -> AdvectFluxes {
    let ne = mesh.n_elements();
    let mut out = AdvectFluxes {
        d_mass: vec![0.0; ne],
        d_energy: vec![0.0; ne],
        d_mom: vec![Vec2::ZERO; ne],
    };

    let eval = |e: usize, d_mass: &mut f64, d_energy: &mut f64, d_mom: &mut Vec2| {
        for f in 0..4 {
            let nb = match mesh.elel[e][f] {
                Neighbor::Element(n) => n as usize,
                Neighbor::Boundary => continue, // walls are impermeable
            };
            let v = fvol[e][f];
            if v == 0.0 {
                continue;
            }
            // Donor = the element losing volume through this face. The
            // triple is a pure function of the face, not of which side
            // evaluates it.
            let (donor, receiver, vol) = if v > 0.0 { (e, nb, v) } else { (nb, e, -v) };
            let up = upstream_of(mesh, donor, receiver);

            let rho_face = limited_face_value(rho[donor], rho[receiver], up.map(|u| rho[u]));
            let ein_face = limited_face_value(ein[donor], ein[receiver], up.map(|u| ein[u]));
            let dm = vol * rho_face;
            let de = dm * ein_face;
            // Momentum: the flux mass carries the limited face velocity
            // (component-wise limiting of the element-centred velocity).
            let ux_face =
                limited_face_value(cell_u[donor].x, cell_u[receiver].x, up.map(|u| cell_u[u].x));
            let uy_face =
                limited_face_value(cell_u[donor].y, cell_u[receiver].y, up.map(|u| cell_u[u].y));
            let dmom = Vec2::new(ux_face, uy_face) * dm;

            let sign = if donor == e { 1.0 } else { -1.0 };
            *d_mass += sign * dm;
            *d_energy += sign * de;
            *d_mom += dmom * sign;
        }
    };

    match threading {
        Threading::Serial => {
            for e in 0..ne {
                let (mut dm, mut de, mut dp) = (0.0, 0.0, Vec2::ZERO);
                eval(e, &mut dm, &mut de, &mut dp);
                out.d_mass[e] = dm;
                out.d_energy[e] = de;
                out.d_mom[e] = dp;
            }
        }
        Threading::Rayon => {
            out.d_mass
                .par_iter_mut()
                .zip(out.d_energy.par_iter_mut())
                .zip(out.d_mom.par_iter_mut())
                .enumerate()
                .for_each(|(e, ((dm, de), dp))| eval(e, dm, de, dp));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::approx_eq;

    #[test]
    fn van_leer_properties() {
        assert_eq!(van_leer(1.0), 1.0);
        assert_eq!(van_leer(0.0), 0.0);
        assert_eq!(van_leer(-2.0), 0.0);
        assert!((van_leer(3.0) - 1.5).abs() < 1e-15);
        // Bounded by 2 and symmetric property φ(r)/r = φ(1/r).
        for i in 1..50 {
            let r = 0.1 * i as f64;
            let lhs = van_leer(r) / r;
            let rhs = van_leer(1.0 / r);
            assert!(approx_eq(lhs, rhs, 1e-12), "symmetry broken at r = {r}");
            assert!(van_leer(r) <= 2.0);
        }
    }

    #[test]
    fn limited_face_value_monotone() {
        // Face value must lie between donor and downwind.
        for (donor, down, up) in [
            (1.0, 2.0, Some(0.5)),
            (2.0, 1.0, Some(3.0)),
            (1.0, 2.0, Some(1.5)),
            (1.0, 1.0, Some(0.0)),
        ] {
            let v = limited_face_value(donor, down, up);
            let (lo, hi) = (donor.min(down), donor.max(down));
            assert!(
                (lo..=hi).contains(&v),
                "face value {v} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn first_order_at_missing_stencil() {
        assert_eq!(limited_face_value(3.0, 9.0, None), 3.0);
    }

    #[test]
    fn zero_flux_zero_change() {
        let mesh = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        let rho = vec![1.0; 9];
        let ein = vec![2.0; 9];
        let u = vec![Vec2::ZERO; 9];
        let fvol = vec![[0.0; 4]; 9];
        let fx = compute_fluxes(&mesh, &rho, &ein, &u, &fvol, Threading::Serial);
        assert!(fx.d_mass.iter().all(|&m| m == 0.0));
        assert!(fx.d_energy.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn conservation_by_antisymmetry() {
        let mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        let rho: Vec<f64> = (0..16).map(|e| 1.0 + 0.1 * e as f64).collect();
        let ein: Vec<f64> = (0..16).map(|e| 2.0 - 0.05 * e as f64).collect();
        let u: Vec<Vec2> = (0..16).map(|e| Vec2::new(e as f64, -1.0)).collect();
        // Arbitrary antisymmetric fvol: build from a node displacement.
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let d = Vec2::new(
                    if bc.fix_x {
                        0.0
                    } else {
                        0.01 * (n as f64).sin()
                    },
                    if bc.fix_y {
                        0.0
                    } else {
                        0.01 * (n as f64).cos()
                    },
                );
                p + d
            })
            .collect();
        let fvol = crate::fluxvol::face_flux_volumes(&mesh, &target, Threading::Serial);
        let fx = compute_fluxes(&mesh, &rho, &ein, &u, &fvol, Threading::Serial);
        let total_dm: f64 = fx.d_mass.iter().sum();
        let total_de: f64 = fx.d_energy.iter().sum();
        let total_dp: Vec2 = fx.d_mom.iter().copied().sum();
        assert!(total_dm.abs() < 1e-13, "mass created: {total_dm}");
        assert!(total_de.abs() < 1e-13, "energy created: {total_de}");
        assert!(total_dp.norm() < 1e-12, "momentum created: {total_dp:?}");
    }

    #[test]
    fn uniform_field_advects_exactly() {
        // With uniform rho, the mass leaving = rho * net volume leaving.
        let mesh = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        let rho = vec![2.0; 9];
        let ein = vec![1.0; 9];
        let u = vec![Vec2::ZERO; 9];
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let d = Vec2::new(
                    if bc.fix_x { 0.0 } else { 0.02 },
                    if bc.fix_y { 0.0 } else { -0.015 },
                );
                p + d
            })
            .collect();
        let fvol = crate::fluxvol::face_flux_volumes(&mesh, &target, Threading::Serial);
        let fx = compute_fluxes(&mesh, &rho, &ein, &u, &fvol, Threading::Serial);
        for e in 0..9 {
            let net_v: f64 = fvol[e].iter().sum();
            assert!(approx_eq(fx.d_mass[e], 2.0 * net_v, 1e-12));
        }
    }
}
