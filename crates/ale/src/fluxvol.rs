//! `alegetfvol`: swept volume of every face.
//!
//! When the mesh moves from the Lagrangian (donor) positions to the
//! target positions, each face sweeps out a quadrilateral. Its signed
//! area is the volume exchanged between the face's two elements: positive
//! means volume leaves the element whose face it is (flow *out* across
//! the face, in the face's outward orientation).
//!
//! For face `f` of element `e` joining corners `a → b`, the swept quad is
//! `(a_old, b_old, b_new, a_new)`; its shoelace area is positive when the
//! face moves outward (the element grows), so the *flux out of `e`* is
//! the negative... — sign conventions are easy to get wrong, so this
//! module pins them with tests: `fvol[e][f] > 0` ⇔ element `e` *loses*
//! volume through face `f` (the face moved inward).

use bookleaf_hydro::Threading;
use bookleaf_mesh::geometry::quad_area;
use bookleaf_mesh::{Mesh, Neighbor};
use bookleaf_util::Vec2;
use rayon::prelude::*;

/// Swept volumes per element face. `fvol[e][f]` is the volume leaving
/// element `e` through face `f` (negative = volume entering).
/// **Bitwise** antisymmetric across interior faces: every interior face
/// is evaluated once, from its lower-id element, and mirrored with an
/// exact sign flip to the other side. (Evaluating the shoelace formula
/// from each side independently agrees only to round-off; the advection
/// step's exact conservation relies on the bitwise guarantee.)
#[must_use]
pub fn face_flux_volumes(mesh: &Mesh, target: &[Vec2], threading: Threading) -> Vec<[f64; 4]> {
    let ne = mesh.n_elements();
    // Pass 1: canonical faces only (boundary faces, and interior faces
    // seen from the lower element id).
    let canonical = |e: usize| -> [f64; 4] {
        let mut row = [0.0; 4];
        for f in 0..4 {
            let is_canonical = match mesh.elel[e][f] {
                Neighbor::Boundary => true,
                Neighbor::Element(nb) => e < nb as usize,
            };
            if !is_canonical {
                continue;
            }
            let a = mesh.elnd[e][f] as usize;
            let b = mesh.elnd[e][(f + 1) % 4] as usize;
            // Swept quad (a_old, b_old, b_new, a_new): for a CCW element
            // this winds CCW (positive area) exactly when the face moves
            // *inward* — the element shrinks and volume leaves through
            // the face — which is the positive-out convention we want.
            row[f] = quad_area(&[mesh.nodes[a], mesh.nodes[b], target[b], target[a]]);
        }
        row
    };
    let canon: Vec<[f64; 4]> = match threading {
        Threading::Serial => (0..ne).map(canonical).collect(),
        Threading::Rayon => (0..ne).into_par_iter().map(canonical).collect(),
    };
    // Pass 2: mirror the canonical value onto the higher-id side. Reads
    // only pass-1 (canonical) entries, writes only non-canonical ones,
    // so the element-parallel version is race-free.
    let mirror = |e: usize| -> [f64; 4] {
        let mut row = canon[e];
        for f in 0..4 {
            if let Neighbor::Element(nb) = mesh.elel[e][f] {
                let nb = nb as usize;
                if nb < e {
                    let back = mesh
                        .face_towards(nb, e)
                        .expect("elel adjacency must be symmetric");
                    row[f] = -canon[nb][back];
                }
            }
        }
        row
    };
    match threading {
        Threading::Serial => (0..ne).map(mirror).collect(),
        Threading::Rayon => (0..ne).into_par_iter().map(mirror).collect(),
    }
}

/// Sum of the four face fluxes of an element = exact volume it loses,
/// i.e. `V_old − V_new`. Used as the aleupdate volume bookkeeping and by
/// tests as an identity check.
#[must_use]
pub fn net_volume_loss(fvol: &[[f64; 4]], e: usize) -> f64 {
    fvol[e].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_mesh::{generate_rect, Neighbor, RectSpec};
    use bookleaf_util::approx_eq;

    #[test]
    fn stationary_mesh_zero_flux() {
        let mesh = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        let fvol = face_flux_volumes(&mesh, &mesh.nodes, Threading::Serial);
        assert!(fvol.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn antisymmetric_across_interior_faces() {
        let mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        // Random-ish interior displacement.
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let d = Vec2::new(
                    if bc.fix_x {
                        0.0
                    } else {
                        0.02 * (n as f64).sin()
                    },
                    if bc.fix_y {
                        0.0
                    } else {
                        0.02 * (n as f64 * 1.7).cos()
                    },
                );
                p + d
            })
            .collect();
        let fvol = face_flux_volumes(&mesh, &target, Threading::Serial);
        for e in 0..mesh.n_elements() {
            for f in 0..4 {
                if let Neighbor::Element(e2) = mesh.elel[e][f] {
                    // Find the matching face on the neighbour.
                    let f2 = (0..4)
                        .find(|&g| mesh.elel[e2 as usize][g] == Neighbor::Element(e as u32))
                        .unwrap();
                    assert!(
                        approx_eq(fvol[e][f], -fvol[e2 as usize][f2], 1e-13),
                        "faces not antisymmetric: {} vs {}",
                        fvol[e][f],
                        fvol[e2 as usize][f2]
                    );
                }
            }
        }
    }

    #[test]
    fn net_flux_equals_volume_change() {
        let mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let d = Vec2::new(
                    if bc.fix_x {
                        0.0
                    } else {
                        0.03 * ((n * 3) as f64).sin()
                    },
                    if bc.fix_y {
                        0.0
                    } else {
                        0.03 * ((n * 5) as f64).cos()
                    },
                );
                p + d
            })
            .collect();
        let fvol = face_flux_volumes(&mesh, &target, Threading::Serial);
        for e in 0..mesh.n_elements() {
            let v_old = quad_area(&mesh.corners(e));
            let c = mesh.elnd[e];
            let v_new = quad_area(&[
                target[c[0] as usize],
                target[c[1] as usize],
                target[c[2] as usize],
                target[c[3] as usize],
            ]);
            assert!(
                approx_eq(net_volume_loss(&fvol, e), v_old - v_new, 1e-12),
                "element {e}: net {} vs dV {}",
                net_volume_loss(&fvol, e),
                v_old - v_new
            );
        }
    }

    #[test]
    fn sign_convention_inward_motion_is_outflux() {
        // Single element; move the whole right edge inward (left).
        let mesh = generate_rect(&RectSpec::unit_square(1), |_| 0).unwrap();
        let mut target = mesh.nodes.clone();
        // Nodes 1 (1,0) and 3 (1,1) move to x = 0.8.
        target[1].x = 0.8;
        target[3].x = 0.8;
        let fvol = face_flux_volumes(&mesh, &target, Threading::Serial);
        // Face 1 is the right edge: element shrinks, volume leaves => +0.2.
        assert!(approx_eq(fvol[0][1], 0.2, 1e-13), "fvol = {}", fvol[0][1]);
        // Other faces: nodes a/b displaced only along the face or not at
        // all; bottom and top faces sweep small triangles.
        assert!(approx_eq(fvol[0][3], 0.0, 1e-13));
    }

    #[test]
    fn wall_constrained_motion_has_zero_boundary_flux() {
        // Nodes sliding *along* walls sweep zero volume through them.
        let mesh = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let mut t = p + Vec2::new(0.01, 0.013);
                if bc.fix_x {
                    t.x = p.x;
                }
                if bc.fix_y {
                    t.y = p.y;
                }
                t
            })
            .collect();
        let fvol = face_flux_volumes(&mesh, &target, Threading::Serial);
        for e in 0..mesh.n_elements() {
            for f in 0..4 {
                if mesh.elel[e][f] == Neighbor::Boundary {
                    assert!(
                        fvol[e][f].abs() < 1e-13,
                        "boundary face leaked volume: {}",
                        fvol[e][f]
                    );
                }
            }
        }
    }

    #[test]
    fn antisymmetry_is_bitwise_and_threading_agnostic() {
        let mesh = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let d = Vec2::new(
                    if bc.fix_x {
                        0.0
                    } else {
                        0.015 * ((n * 7) as f64).sin()
                    },
                    if bc.fix_y {
                        0.0
                    } else {
                        0.015 * ((n * 5) as f64).cos()
                    },
                );
                p + d
            })
            .collect();
        let serial = face_flux_volumes(&mesh, &target, Threading::Serial);
        let rayon = face_flux_volumes(&mesh, &target, Threading::Rayon);
        assert_eq!(serial, rayon, "threading changed swept volumes");
        for e in 0..mesh.n_elements() {
            for f in 0..4 {
                if let Neighbor::Element(e2) = mesh.elel[e][f] {
                    let f2 = (0..4)
                        .find(|&g| mesh.elel[e2 as usize][g] == Neighbor::Element(e as u32))
                        .unwrap();
                    // Exact, not approximate: the mirror guarantees it.
                    assert_eq!(serial[e][f], -serial[e2 as usize][f2]);
                }
            }
        }
    }
}
