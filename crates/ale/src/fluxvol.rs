//! `alegetfvol`: swept volume of every face.
//!
//! When the mesh moves from the Lagrangian (donor) positions to the
//! target positions, each face sweeps out a quadrilateral. Its signed
//! area is the volume exchanged between the face's two elements: positive
//! means volume leaves the element whose face it is (flow *out* across
//! the face, in the face's outward orientation).
//!
//! For face `f` of element `e` joining corners `a → b`, the swept quad is
//! `(a_old, b_old, b_new, a_new)`; its shoelace area is positive when the
//! face moves outward (the element grows), so the *flux out of `e`* is
//! the negative... — sign conventions are easy to get wrong, so this
//! module pins them with tests: `fvol[e][f] > 0` ⇔ element `e` *loses*
//! volume through face `f` (the face moved inward).

use bookleaf_mesh::geometry::quad_area;
use bookleaf_mesh::Mesh;
use bookleaf_util::Vec2;

/// Swept volumes per element face. `fvol[e][f]` is the volume leaving
/// element `e` through face `f` (negative = volume entering).
/// Antisymmetric across interior faces.
#[must_use]
pub fn face_flux_volumes(mesh: &Mesh, target: &[Vec2]) -> Vec<[f64; 4]> {
    let mut fvol = vec![[0.0; 4]; mesh.n_elements()];
    for e in 0..mesh.n_elements() {
        for f in 0..4 {
            let a = mesh.elnd[e][f] as usize;
            let b = mesh.elnd[e][(f + 1) % 4] as usize;
            // Swept quad (a_old, b_old, b_new, a_new): for a CCW element
            // this winds CCW (positive area) exactly when the face moves
            // *inward* — the element shrinks and volume leaves through
            // the face — which is the positive-out convention we want.
            let swept = quad_area(&[mesh.nodes[a], mesh.nodes[b], target[b], target[a]]);
            fvol[e][f] = swept;
        }
    }
    fvol
}

/// Sum of the four face fluxes of an element = exact volume it loses,
/// i.e. `V_old − V_new`. Used as the aleupdate volume bookkeeping and by
/// tests as an identity check.
#[must_use]
pub fn net_volume_loss(fvol: &[[f64; 4]], e: usize) -> f64 {
    fvol[e].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_mesh::{generate_rect, Neighbor, RectSpec};
    use bookleaf_util::approx_eq;

    #[test]
    fn stationary_mesh_zero_flux() {
        let mesh = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        let fvol = face_flux_volumes(&mesh, &mesh.nodes);
        assert!(fvol.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn antisymmetric_across_interior_faces() {
        let mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        // Random-ish interior displacement.
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let d = Vec2::new(
                    if bc.fix_x {
                        0.0
                    } else {
                        0.02 * (n as f64).sin()
                    },
                    if bc.fix_y {
                        0.0
                    } else {
                        0.02 * (n as f64 * 1.7).cos()
                    },
                );
                p + d
            })
            .collect();
        let fvol = face_flux_volumes(&mesh, &target);
        for e in 0..mesh.n_elements() {
            for f in 0..4 {
                if let Neighbor::Element(e2) = mesh.elel[e][f] {
                    // Find the matching face on the neighbour.
                    let f2 = (0..4)
                        .find(|&g| mesh.elel[e2 as usize][g] == Neighbor::Element(e as u32))
                        .unwrap();
                    assert!(
                        approx_eq(fvol[e][f], -fvol[e2 as usize][f2], 1e-13),
                        "faces not antisymmetric: {} vs {}",
                        fvol[e][f],
                        fvol[e2 as usize][f2]
                    );
                }
            }
        }
    }

    #[test]
    fn net_flux_equals_volume_change() {
        let mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let d = Vec2::new(
                    if bc.fix_x {
                        0.0
                    } else {
                        0.03 * ((n * 3) as f64).sin()
                    },
                    if bc.fix_y {
                        0.0
                    } else {
                        0.03 * ((n * 5) as f64).cos()
                    },
                );
                p + d
            })
            .collect();
        let fvol = face_flux_volumes(&mesh, &target);
        for e in 0..mesh.n_elements() {
            let v_old = quad_area(&mesh.corners(e));
            let c = mesh.elnd[e];
            let v_new = quad_area(&[
                target[c[0] as usize],
                target[c[1] as usize],
                target[c[2] as usize],
                target[c[3] as usize],
            ]);
            assert!(
                approx_eq(net_volume_loss(&fvol, e), v_old - v_new, 1e-12),
                "element {e}: net {} vs dV {}",
                net_volume_loss(&fvol, e),
                v_old - v_new
            );
        }
    }

    #[test]
    fn sign_convention_inward_motion_is_outflux() {
        // Single element; move the whole right edge inward (left).
        let mesh = generate_rect(&RectSpec::unit_square(1), |_| 0).unwrap();
        let mut target = mesh.nodes.clone();
        // Nodes 1 (1,0) and 3 (1,1) move to x = 0.8.
        target[1].x = 0.8;
        target[3].x = 0.8;
        let fvol = face_flux_volumes(&mesh, &target);
        // Face 1 is the right edge: element shrinks, volume leaves => +0.2.
        assert!(approx_eq(fvol[0][1], 0.2, 1e-13), "fvol = {}", fvol[0][1]);
        // Other faces: nodes a/b displaced only along the face or not at
        // all; bottom and top faces sweep small triangles.
        assert!(approx_eq(fvol[0][3], 0.0, 1e-13));
    }

    #[test]
    fn wall_constrained_motion_has_zero_boundary_flux() {
        // Nodes sliding *along* walls sweep zero volume through them.
        let mesh = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        let target: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let bc = mesh.node_bc[n];
                let mut t = p + Vec2::new(0.01, 0.013);
                if bc.fix_x {
                    t.x = p.x;
                }
                if bc.fix_y {
                    t.y = p.y;
                }
                t
            })
            .collect();
        let fvol = face_flux_volumes(&mesh, &target);
        for e in 0..mesh.n_elements() {
            for f in 0..4 {
                if mesh.elel[e][f] == Neighbor::Boundary {
                    assert!(
                        fvol[e][f].abs() < 1e-13,
                        "boundary face leaked volume: {}",
                        fvol[e][f]
                    );
                }
            }
        }
    }
}
