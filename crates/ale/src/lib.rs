//! # bookleaf-ale
//!
//! The ALE remap phase of BookLeaf-rs.
//!
//! An Arbitrary Lagrangian–Eulerian method lets the mesh follow the flow
//! (Lagrangian) until mesh quality demands relaxation, then *remaps* the
//! solution onto a better mesh. As bounding cases BookLeaf can run pure
//! Lagrangian (never remap) or Eulerian (remap to the original mesh every
//! step). The remap follows Benson's swept-volume flux approach
//! (second order) with van Leer limiters to enforce monotonicity.
//!
//! The four sub-steps of the paper's `ALESTEP` (Algorithm 1) map to:
//!
//! | paper        | module | role |
//! |--------------|--------|------|
//! | `ALEGETMESH` | [`mesh_motion`] | select the target (relaxed) mesh |
//! | `ALEGETFVOL` | [`fluxvol`]     | swept volume of every face |
//! | `ALEADVECT`  | [`advect`]      | advect independent variables (mass, energy) |
//! | `ALEUPDATE`  | [`remap`]       | rebuild dependent variables (ρ, ε, nodal u) |
//!
//! [`Remapper`] owns the reference mesh and orchestrates one full remap.

// Index-based loops over element/corner arrays are the house style of
// these kernels (they mirror the reference Fortran and keep index math
// visible); the clippy style lint fires on every one.
#![allow(clippy::needless_range_loop)]

pub mod advect;
pub mod fluxvol;
pub mod mesh_motion;
pub mod remap;

pub use mesh_motion::AleMode;
pub use remap::{AleOptions, RemapOverlap, Remapper};
