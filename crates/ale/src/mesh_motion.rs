//! `alegetmesh`: choose the target mesh for the remap.
//!
//! Two strategies, matching BookLeaf's bounding cases plus its relaxation
//! option:
//!
//! * **Eulerian** — the target is the original (reference) mesh: node
//!   positions snap back every remap, making the overall scheme Eulerian.
//! * **Smooth** — weighted Laplacian (Winslow-flavoured) relaxation: each
//!   interior node moves a fraction `alpha` of the way towards the
//!   average of its topological neighbours. Wall nodes slide along their
//!   wall (the fixed coordinate is preserved), corners stay put.
//!
//! The displacement per remap is what `alegetfvol` turns into face fluxes,
//! so the target must stay close enough to the donor mesh for the swept
//! volumes to remain small; `Smooth`'s `alpha` and the Eulerian step-wise
//! application both guarantee that in practice.

use bookleaf_mesh::Mesh;
use bookleaf_util::Vec2;

/// Remap target-mesh strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AleMode {
    /// Snap back to the reference mesh (Eulerian frame).
    Eulerian,
    /// Laplacian relaxation by factor `alpha` in (0, 1].
    Smooth {
        /// Fraction of the way towards the neighbour average.
        alpha: f64,
    },
}

/// Compute target node positions for the whole local mesh.
///
/// `x_ref` is the reference (initial) mesh for [`AleMode::Eulerian`];
/// boundary constraints come from `mesh.node_bc` (fixed coordinates do
/// not move).
#[must_use]
pub fn target_positions(mesh: &Mesh, x_ref: &[Vec2], mode: AleMode) -> Vec<Vec2> {
    match mode {
        AleMode::Eulerian => {
            // Walls are identical in the reference mesh, so constraints
            // hold by construction.
            x_ref.to_vec()
        }
        AleMode::Smooth { alpha } => {
            let mut target = mesh.nodes.clone();
            // Neighbour average via the elements around each node: use
            // all corner nodes of adjacent elements except the node
            // itself (the "star" of the node).
            for n in 0..mesh.n_nodes() {
                let bc = mesh.node_bc[n];
                if bc.fix_x && bc.fix_y {
                    continue;
                }
                let mut sum = Vec2::ZERO;
                let mut count = 0.0;
                for &(e, _) in mesh.elements_of_node(n) {
                    for &m in &mesh.elnd[e as usize] {
                        if m as usize != n {
                            sum += mesh.nodes[m as usize];
                            count += 1.0;
                        }
                    }
                }
                if count == 0.0 {
                    continue;
                }
                let avg = sum / count;
                let x0 = mesh.nodes[n];
                let mut t = x0 + (avg - x0) * alpha;
                if bc.fix_x {
                    t.x = x0.x;
                }
                if bc.fix_y {
                    t.y = x0.y;
                }
                target[n] = t;
            }
            target
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_mesh::{generate_rect, saltzmann_distort, RectSpec};
    use bookleaf_util::approx_eq;

    #[test]
    fn eulerian_returns_reference() {
        let mut mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        let x_ref = mesh.nodes.clone();
        // Perturb interior.
        mesh.nodes[6] += Vec2::new(0.01, -0.01);
        let t = target_positions(&mesh, &x_ref, AleMode::Eulerian);
        assert_eq!(t, x_ref);
    }

    #[test]
    fn smooth_pulls_displaced_node_back() {
        let mut mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        let x0 = mesh.nodes.clone();
        let n = 6; // interior node
        mesh.nodes[n] += Vec2::new(0.05, 0.05);
        let t = target_positions(&mesh, &x0, AleMode::Smooth { alpha: 0.5 });
        // Must move back towards the regular position.
        let before = mesh.nodes[n].distance(x0[n]);
        let after = t[n].distance(x0[n]);
        assert!(
            after < before,
            "smoothing must reduce displacement: {after} vs {before}"
        );
    }

    #[test]
    fn smooth_keeps_walls_on_walls() {
        let origin = Vec2::ZERO;
        let extent = Vec2::new(1.0, 0.1);
        let mut mesh = generate_rect(
            &RectSpec {
                nx: 20,
                ny: 4,
                origin,
                extent,
            },
            |_| 0,
        )
        .unwrap();
        saltzmann_distort(&mut mesh, origin, extent);
        let t = target_positions(&mesh, &mesh.nodes.clone(), AleMode::Smooth { alpha: 1.0 });
        for n in 0..mesh.n_nodes() {
            let bc = mesh.node_bc[n];
            if bc.fix_x {
                assert!(approx_eq(t[n].x, mesh.nodes[n].x, 1e-14), "x wall slid");
            }
            if bc.fix_y {
                assert!(approx_eq(t[n].y, mesh.nodes[n].y, 1e-14), "y wall slid");
            }
        }
    }

    #[test]
    fn smooth_on_uniform_mesh_is_fixed_point() {
        let mesh = generate_rect(&RectSpec::unit_square(5), |_| 0).unwrap();
        let t = target_positions(&mesh, &mesh.nodes.clone(), AleMode::Smooth { alpha: 1.0 });
        for n in 0..mesh.n_nodes() {
            // Interior nodes of a uniform grid sit exactly at their
            // star average (the 8-node stencil is symmetric).
            if mesh.node_bc[n] == bookleaf_mesh::NodeBc::FREE {
                assert!(approx_eq(t[n].x, mesh.nodes[n].x, 1e-13));
                assert!(approx_eq(t[n].y, mesh.nodes[n].y, 1e-13));
            }
        }
    }
}
