//! `aleupdate`: apply the fluxes and rebuild the dependent variables.
//!
//! [`Remapper::step`] performs one full ALE remap:
//!
//! 1. `alegetmesh` — target positions ([`crate::mesh_motion`]);
//! 2. `alegetfvol` — face swept volumes ([`crate::fluxvol`]);
//! 3. `aleadvect` — mass / energy / momentum fluxes ([`crate::advect`]);
//! 4. `aleupdate` — this module: move the nodes, update element mass and
//!    extensive energy, recompute geometry, densities and specific
//!    energies, refresh corner masses (uniform sub-zonal density on the
//!    new mesh) and distribute momentum changes to nodal velocities.
//!
//! Conservation: mass, total internal energy and total momentum are
//! conserved to round-off by flux antisymmetry; tests pin this.

use bookleaf_mesh::geometry::{char_length, corner_volumes, quad_area};
use bookleaf_mesh::Mesh;
use bookleaf_util::{BookLeafError, Result, Vec2};
use rayon::prelude::*;

use bookleaf_hydro::state::{HydroState, LocalRange};
use bookleaf_hydro::subset::Subset;
use bookleaf_hydro::{HaloOps, Threading};

use crate::advect::compute_fluxes;
use crate::fluxvol::face_flux_volumes;
use crate::mesh_motion::{target_positions, AleMode};

/// Masks steering the overlapped remap ([`Remapper::step_overlapped`]):
/// which entities must be updated **before** the post-remap exchange can
/// pack its send buffers. Views into `bookleaf_mesh::OverlapSets`, whose
/// construction guarantees the invariant the deferred sweeps rely on: no
/// element outside `pre_el` is adjacent to a node in `pre_nd`.
#[derive(Debug, Clone, Copy)]
pub struct RemapOverlap<'a> {
    /// Per local element (owned *and* ghost): `true` ⇒ feeds the
    /// exchange's send buffers (send-list elements plus the adjacency of
    /// every send-list node) and is remapped in the early sweep.
    pub pre_el: &'a [bool],
    /// Per active node: `true` ⇒ packed by the exchange (send-list
    /// nodes), velocity-updated in the early sweep.
    pub pre_nd: &'a [bool],
}

/// Remap configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AleOptions {
    /// Target-mesh strategy.
    pub mode: AleMode,
    /// Remap every `frequency` steps (1 = every step ⇒ Eulerian-like).
    pub frequency: usize,
}

impl Default for AleOptions {
    fn default() -> Self {
        AleOptions {
            mode: AleMode::Eulerian,
            frequency: 1,
        }
    }
}

/// Owns the reference mesh and performs remaps.
#[derive(Debug, Clone)]
pub struct Remapper {
    /// Reference (initial) node positions, the Eulerian target.
    x_ref: Vec<Vec2>,
    /// Options.
    pub opts: AleOptions,
}

impl Remapper {
    /// Capture the reference mesh at setup time.
    #[must_use]
    pub fn new(mesh: &Mesh, opts: AleOptions) -> Self {
        Remapper {
            x_ref: mesh.nodes.clone(),
            opts,
        }
    }

    /// Should a remap run after `step_index` (0-based)?
    #[must_use]
    pub fn due(&self, step_index: usize) -> bool {
        self.opts.frequency > 0 && (step_index + 1).is_multiple_of(self.opts.frequency)
    }

    /// Perform one remap over the owned range, serial (see
    /// [`Remapper::step_threaded`]).
    pub fn step(&self, mesh: &mut Mesh, state: &mut HydroState, range: LocalRange) -> Result<()> {
        self.step_threaded(mesh, state, range, Threading::Serial)
    }

    /// Perform one remap over the owned range. Under
    /// [`Threading::Rayon`] every phase (swept volumes, advective
    /// fluxes, the element update and the nodal velocity distribution)
    /// runs element- or node-parallel across the current rayon pool;
    /// the per-index arithmetic is identical to the serial path, so
    /// both produce bitwise-identical results.
    pub fn step_threaded(
        &self,
        mesh: &mut Mesh,
        state: &mut HydroState,
        range: LocalRange,
        threading: Threading,
    ) -> Result<()> {
        self.step_overlapped(
            mesh,
            state,
            range,
            threading,
            None,
            &mut bookleaf_hydro::NoComm,
        )
    }

    /// Perform one remap, overlapping the post-remap halo exchange with
    /// the update itself (boundary-first): the entities feeding the
    /// exchange's send buffers (`overlap.pre_*`) are updated first, the
    /// exchange is **posted**, the rest of the mesh is updated while the
    /// messages are in flight, and the exchange **completes** last. The
    /// two split sweeps run the same loops with a membership skip, so
    /// the result is bitwise identical to [`Remapper::step_threaded`]
    /// followed by a blocking `post_remap`.
    ///
    /// With `overlap == None` the whole mesh is one sweep and the halo
    /// hooks still run (post, then complete) after it — the blocking
    /// schedule.
    pub fn step_overlapped<H: HaloOps>(
        &self,
        mesh: &mut Mesh,
        state: &mut HydroState,
        range: LocalRange,
        threading: Threading,
        overlap: Option<RemapOverlap<'_>>,
        halo: &mut H,
    ) -> Result<()> {
        let target = target_positions(mesh, &self.x_ref, self.opts.mode);
        let fvol = face_flux_volumes(mesh, &target, threading);

        // Element-centred (mass-weighted corner) velocities for momentum.
        let u = &state.u;
        let cnmass = &state.cnmass;
        let element_velocity = |e: usize| {
            let mut p = Vec2::ZERO;
            let mut m = 0.0;
            for c in 0..4 {
                let nd = mesh.elnd[e][c] as usize;
                p += u[nd] * cnmass[e][c];
                m += cnmass[e][c];
            }
            if m > 0.0 {
                p / m
            } else {
                Vec2::ZERO
            }
        };
        let ne = mesh.n_elements();
        let cell_u: Vec<Vec2> = match threading {
            Threading::Serial => (0..ne).map(element_velocity).collect(),
            Threading::Rayon => (0..ne).into_par_iter().map(element_velocity).collect(),
        };

        let fx = compute_fluxes(mesh, &state.rho, &state.ein, &cell_u, &fvol, threading);

        // --- Move the mesh and update element extensive quantities. ---
        mesh.nodes[..range.n_active_nd].copy_from_slice(&target[..range.n_active_nd]);
        // Ghost nodes also move (their owners move them identically from
        // the same deterministic inputs).
        let nn = mesh.n_nodes();
        mesh.nodes[range.n_active_nd..nn].copy_from_slice(&target[range.n_active_nd..nn]);

        let mut mom_change = vec![Vec2::ZERO; ne];
        // Pre-update nodal velocities: both the element updates (carried
        // momentum) and the node updates read these, never the velocities
        // the early node sweep writes — see the `RemapOverlap` invariant.
        let u_old: Vec<Vec2> = state.u[..range.n_active_nd].to_vec();

        let (failure, post_result) = match overlap {
            None => {
                let failure = remap_elements(
                    mesh,
                    state,
                    &cell_u,
                    &fx,
                    &mut mom_change,
                    threading,
                    Subset::All,
                );
                if failure.is_none() {
                    remap_nodes(
                        mesh,
                        state,
                        &u_old,
                        &mom_change,
                        range,
                        threading,
                        Subset::All,
                    );
                }
                (failure, halo.post_remap_post(mesh, state))
            }
            Some(o) => {
                // Early sweep: exactly what the exchange packs (and the
                // adjacency those packed nodes gather over).
                let pre_el = Subset::Mask {
                    mask: o.pre_el,
                    keep: true,
                };
                let pre_nd = Subset::Mask {
                    mask: o.pre_nd,
                    keep: true,
                };
                let f0 = remap_elements(
                    mesh,
                    state,
                    &cell_u,
                    &fx,
                    &mut mom_change,
                    threading,
                    pre_el,
                );
                if f0.is_none() {
                    remap_nodes(mesh, state, &u_old, &mom_change, range, threading, pre_nd);
                }
                let post_result = halo.post_remap_post(mesh, state);
                // Deferred sweep while the messages are in flight.
                let rest_el = Subset::Mask {
                    mask: o.pre_el,
                    keep: false,
                };
                let rest_nd = Subset::Mask {
                    mask: o.pre_nd,
                    keep: false,
                };
                let f1 = remap_elements(
                    mesh,
                    state,
                    &cell_u,
                    &fx,
                    &mut mom_change,
                    threading,
                    rest_el,
                );
                if f0.is_none() && f1.is_none() {
                    remap_nodes(mesh, state, &u_old, &mom_change, range, threading, rest_nd);
                }
                (first_fail(f0, f1), post_result)
            }
        };
        if let Some((e, kind)) = failure {
            // The failing element was left untouched, so its original
            // quantities reproduce the offending values exactly. If the
            // exchange was posted successfully it is still completed,
            // keeping the team's message sequence aligned while the
            // (more causal) remap error propagates; a comm failure on
            // this path is swallowed — the run is aborting either way.
            if post_result.is_ok() {
                let _ = halo.post_remap_complete(mesh, state);
            }
            return Err(match kind {
                Fail::Mass => BookLeafError::InvalidState {
                    element: e,
                    what: format!(
                        "remap drove mass non-positive: {}",
                        state.mass[e] - fx.d_mass[e]
                    ),
                },
                Fail::Volume => BookLeafError::NegativeVolume {
                    element: e,
                    volume: quad_area(&mesh.corners(e)),
                },
            });
        }
        post_result?;
        halo.post_remap_complete(mesh, state)?;
        Ok(())
    }
}

/// What went wrong in one element's update, if anything.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fail {
    Mass,
    Volume,
}

/// Keep the lowest-element failure (deterministic, and the same element
/// an early-returning serial loop would have named).
fn first_fail(a: Option<(usize, Fail)>, b: Option<(usize, Fail)>) -> Option<(usize, Fail)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.0 <= y.0 { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Apply the advective fluxes to every element in `subset` (owned and
/// ghost alike): masses, energy, geometry, corner masses, and the
/// momentum deficit each element owes its corners. Reads the *frozen*
/// pre-update nodal velocities; writes only element-local state.
/// Failures (non-positive mass or volume) are returned, not raised, so
/// the parallel path needs no early return; failed elements are left
/// untouched.
fn remap_elements(
    mesh: &Mesh,
    state: &mut HydroState,
    cell_u: &[Vec2],
    fx: &crate::advect::AdvectFluxes,
    mom_change: &mut [Vec2],
    threading: Threading,
    subset: Subset<'_>,
) -> Option<(usize, Fail)> {
    let ne = mesh.n_elements();
    let u = &state.u;
    #[allow(clippy::too_many_arguments)]
    let update = |e: usize,
                  mass: &mut f64,
                  volume: &mut f64,
                  length: &mut f64,
                  rho: &mut f64,
                  ein: &mut f64,
                  cnvol: &mut [f64; 4],
                  cnmass: &mut [f64; 4],
                  mom: &mut Vec2|
     -> Option<(usize, Fail)> {
        let mass_old = *mass;
        let energy_old = mass_old * *ein;
        let mom_old = cell_u[e] * mass_old;

        let mass_new = mass_old - fx.d_mass[e];
        let energy_new = energy_old - fx.d_energy[e];
        let mom_new = mom_old - fx.d_mom[e];
        if mass_new <= 0.0 {
            return Some((e, Fail::Mass));
        }

        let corners = mesh.corners(e);
        let vol = quad_area(&corners);
        if vol <= 0.0 {
            return Some((e, Fail::Volume));
        }
        *mass = mass_new;
        *volume = vol;
        *length = char_length(&corners);
        *rho = mass_new / vol;
        *ein = energy_new / mass_new;
        let cv = corner_volumes(&corners);
        *cnvol = cv;
        // Uniform sub-zonal density on the fresh mesh: the remap
        // resets sub-zonal pressure deviations (standard for
        // single-material swept remaps; see DESIGN.md).
        for c in 0..4 {
            cnmass[c] = *rho * cv[c];
        }
        // Momentum deficit: what the element's corners must gain so
        // that the new-mass-weighted nodal momentum matches the
        // advected element momentum exactly.
        let nd = mesh.elnd[e];
        let mut carried = Vec2::ZERO;
        for c in 0..4 {
            carried += u[nd[c] as usize] * cnmass[c];
        }
        *mom = mom_new - carried;
        None
    };

    match threading {
        Threading::Serial => {
            let mut failure = None;
            for e in 0..ne {
                if !subset.contains(e) {
                    continue;
                }
                let f = update(
                    e,
                    &mut state.mass[e],
                    &mut state.volume[e],
                    &mut state.length[e],
                    &mut state.rho[e],
                    &mut state.ein[e],
                    &mut state.cnvol[e],
                    &mut state.cnmass[e],
                    &mut mom_change[e],
                );
                failure = first_fail(failure, f);
            }
            failure
        }
        Threading::Rayon => state.mass[..ne]
            .par_iter_mut()
            .zip(state.volume[..ne].par_iter_mut())
            .zip(state.length[..ne].par_iter_mut())
            .zip(state.rho[..ne].par_iter_mut())
            .zip(state.ein[..ne].par_iter_mut())
            .zip(state.cnvol[..ne].par_iter_mut())
            .zip(state.cnmass[..ne].par_iter_mut())
            .zip(mom_change.par_iter_mut())
            .enumerate()
            .map(
                |(e, (((((((mass, volume), length), rho), ein), cnvol), cnmass), mom))| {
                    if subset.contains(e) {
                        update(e, mass, volume, length, rho, ein, cnvol, cnmass, mom)
                    } else {
                        None
                    }
                },
            )
            .reduce(|| None, first_fail),
    }
}

/// Distribute momentum deficits to the velocities of every node in
/// `subset`. Each element hands its corners a share of its deficit
/// weighted by new corner mass; a node converts received momentum to a
/// velocity change with its new mass. By construction
/// Σ_n m_n^new u_n^new = Σ_e mom_new[e], so total momentum is conserved
/// to round-off. Boundary conditions are *not* applied here — the next
/// `getacc` projects wall-normal components, as in the reference code.
/// Node-order gather (like `getacc`'s rewrite): each node owns its own
/// velocity slot, so this fans out too. Every adjacent element of every
/// node in `subset` must already be remapped.
fn remap_nodes(
    mesh: &Mesh,
    state: &mut HydroState,
    u_old: &[Vec2],
    mom_change: &[Vec2],
    range: LocalRange,
    threading: Threading,
    subset: Subset<'_>,
) {
    let cnmass = &state.cnmass;
    let mass = &state.mass;
    let node_update = |n: usize, un: &mut Vec2| {
        let mut dp = Vec2::ZERO;
        let mut m_new = 0.0;
        for &(e, c) in mesh.elements_of_node(n) {
            let (e, c) = (e as usize, c as usize);
            let w = cnmass[e][c] / mass[e].max(1e-300);
            dp += mom_change[e] * w;
            m_new += cnmass[e][c];
        }
        if m_new > 0.0 {
            *un = u_old[n] + dp / m_new;
        }
    };
    match threading {
        Threading::Serial => {
            for (n, un) in state.u[..range.n_active_nd].iter_mut().enumerate() {
                if subset.contains(n) {
                    node_update(n, un);
                }
            }
        }
        Threading::Rayon => {
            state.u[..range.n_active_nd]
                .par_iter_mut()
                .enumerate()
                .for_each(|(n, un)| {
                    if subset.contains(n) {
                        node_update(n, un);
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::approx_eq;

    fn setup(
        n: usize,
        rho_of: impl Fn(usize) -> f64,
        u_of: impl Fn(usize) -> Vec2,
    ) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, rho_of, |_| 1.0, u_of).unwrap();
        (mesh, st)
    }

    #[test]
    fn identity_remap_is_noop() {
        // Mesh already at reference: Eulerian remap changes nothing.
        let (mut mesh, mut st) = setup(
            4,
            |e| 1.0 + 0.1 * e as f64,
            |n| Vec2::new((n as f64).sin(), (n as f64).cos()),
        );
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions::default());
        let before = st.clone();
        remapper.step(&mut mesh, &mut st, range).unwrap();
        for e in 0..st.n_elements() {
            assert!(approx_eq(st.rho[e], before.rho[e], 1e-13));
            assert!(approx_eq(st.ein[e], before.ein[e], 1e-13));
            assert!(approx_eq(st.mass[e], before.mass[e], 1e-13));
        }
        for n in 0..st.n_nodes() {
            assert!((st.u[n] - before.u[n]).norm() < 1e-13);
        }
    }

    #[test]
    fn eulerian_remap_restores_reference_mesh() {
        let (mut mesh, mut st) = setup(4, |_| 1.0, |_| Vec2::ZERO);
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions::default());
        let x_ref = mesh.nodes.clone();
        // Push an interior node.
        mesh.nodes[6] += Vec2::new(0.02, -0.01);
        // Keep the state consistent with the moved mesh before the remap.
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
        }
        remapper.step(&mut mesh, &mut st, range).unwrap();
        for n in 0..mesh.n_nodes() {
            assert!(mesh.nodes[n].distance(x_ref[n]) < 1e-14);
        }
    }

    #[test]
    fn remap_conserves_mass_energy_momentum() {
        let (mut mesh, mut st) = setup(
            6,
            |e| if e % 2 == 0 { 1.0 } else { 3.0 },
            |n| Vec2::new(0.1 * (n % 4) as f64, -0.05 * (n % 3) as f64),
        );
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions::default());
        // Distort the interior, consistently updating volumes.
        for n in 0..mesh.n_nodes() {
            let bc = mesh.node_bc[n];
            if !bc.fix_x {
                mesh.nodes[n].x += 0.01 * ((n * 7) as f64).sin();
            }
            if !bc.fix_y {
                mesh.nodes[n].y += 0.01 * ((n * 11) as f64).cos();
            }
        }
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
            let cv = corner_volumes(&c);
            st.cnvol[e] = cv;
            for k in 0..4 {
                st.cnmass[e][k] = st.rho[e] * cv[k];
            }
        }
        let mass0 = st.total_mass(range);
        let ie0 = st.internal_energy(range);
        let mut mom0 = Vec2::ZERO;
        for n in 0..mesh.n_nodes() {
            let m: f64 = mesh
                .elements_of_node(n)
                .iter()
                .map(|&(e, c)| st.cnmass[e as usize][c as usize])
                .sum();
            mom0 += st.u[n] * m;
        }

        remapper.step(&mut mesh, &mut st, range).unwrap();

        assert!(approx_eq(st.total_mass(range), mass0, 1e-12), "mass drift");
        assert!(
            approx_eq(st.internal_energy(range), ie0, 1e-12),
            "energy drift"
        );
        let mut mom1 = Vec2::ZERO;
        for n in 0..mesh.n_nodes() {
            let m: f64 = mesh
                .elements_of_node(n)
                .iter()
                .map(|&(e, c)| st.cnmass[e as usize][c as usize])
                .sum();
            mom1 += st.u[n] * m;
        }
        // Momentum conservation is modulo wall projections (BCs can
        // absorb normal momentum, as in the physical problem).
        assert!(
            (mom1 - mom0).norm() < 1e-10,
            "momentum drift: {mom0:?} -> {mom1:?}"
        );
    }

    #[test]
    fn remap_keeps_density_bounds() {
        // Monotone limiter: remapping a step profile must not create new
        // extrema.
        let (mut mesh, mut st) = setup(8, |e| if e % 8 < 4 { 1.0 } else { 0.125 }, |_| Vec2::ZERO);
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions::default());
        for n in 0..mesh.n_nodes() {
            let bc = mesh.node_bc[n];
            if !bc.fix_x {
                mesh.nodes[n].x += 0.004 * ((n * 3) as f64).sin();
            }
            if !bc.fix_y {
                mesh.nodes[n].y += 0.004 * ((n * 5) as f64).cos();
            }
        }
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
        }
        remapper.step(&mut mesh, &mut st, range).unwrap();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &r in &st.rho {
            lo = lo.min(r);
            hi = hi.max(r);
        }
        assert!(lo >= 0.1, "undershoot: {lo}");
        assert!(hi <= 1.3, "overshoot: {hi}");
    }

    #[test]
    fn due_respects_frequency() {
        let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        let r = Remapper::new(
            &mesh,
            AleOptions {
                mode: AleMode::Eulerian,
                frequency: 3,
            },
        );
        assert!(!r.due(0));
        assert!(!r.due(1));
        assert!(r.due(2));
        assert!(r.due(5));
        let never = Remapper::new(
            &mesh,
            AleOptions {
                mode: AleMode::Eulerian,
                frequency: 0,
            },
        );
        assert!(!never.due(0));
        assert!(!never.due(99));
    }

    #[test]
    fn smooth_mode_improves_quality() {
        use bookleaf_mesh::quality::assess;
        let (mut mesh, mut st) = setup(6, |_| 1.0, |_| Vec2::ZERO);
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(
            &mesh,
            AleOptions {
                mode: AleMode::Smooth { alpha: 0.8 },
                frequency: 1,
            },
        );
        for n in 0..mesh.n_nodes() {
            let bc = mesh.node_bc[n];
            if !bc.fix_x {
                mesh.nodes[n].x += 0.02 * ((n * 13) as f64).sin();
            }
            if !bc.fix_y {
                mesh.nodes[n].y += 0.02 * ((n * 17) as f64).cos();
            }
        }
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
        }
        let before = assess(&mesh);
        remapper.step(&mut mesh, &mut st, range).unwrap();
        let after = assess(&mesh);
        assert!(after.max_skew <= before.max_skew + 1e-12);
    }

    /// The overlapped (boundary-first, split-sweep) remap must be
    /// bitwise identical to the plain remap for any mask pair upholding
    /// the `RemapOverlap` invariant (no element outside `pre_el`
    /// adjacent to a node in `pre_nd`).
    #[test]
    fn overlapped_remap_is_bitwise_identical_to_plain() {
        use bookleaf_hydro::NoComm;
        let make = || {
            let (mut mesh, mut st) = setup(
                8,
                |e| if e % 3 == 0 { 1.0 } else { 2.5 },
                |n| Vec2::new(0.07 * (n % 5) as f64, -0.03 * (n % 7) as f64),
            );
            for n in 0..mesh.n_nodes() {
                let bc = mesh.node_bc[n];
                if !bc.fix_x {
                    mesh.nodes[n].x += 0.006 * ((n * 7) as f64).sin();
                }
                if !bc.fix_y {
                    mesh.nodes[n].y += 0.006 * ((n * 11) as f64).cos();
                }
            }
            for e in 0..mesh.n_elements() {
                let c = mesh.corners(e);
                st.volume[e] = quad_area(&c);
                st.rho[e] = st.mass[e] / st.volume[e];
                let cv = corner_volumes(&c);
                st.cnvol[e] = cv;
                for k in 0..4 {
                    st.cnmass[e][k] = st.rho[e] * cv[k];
                }
            }
            (mesh, st)
        };
        // An invariant-respecting split: pre nodes = left third of the
        // grid, pre elements = their full adjacency plus a few extras.
        let (mesh0, _) = make();
        let mut pre_nd = vec![false; mesh0.n_nodes()];
        for (n, p) in mesh0.nodes.iter().enumerate() {
            pre_nd[n] = p.x < 0.34;
        }
        let mut pre_el = vec![false; mesh0.n_elements()];
        for (n, &is_pre) in pre_nd.iter().enumerate() {
            if is_pre {
                for &(e, _) in mesh0.elements_of_node(n) {
                    pre_el[e as usize] = true;
                }
            }
        }
        pre_el[40] = true; // an extra early element is always legal

        for th in [Threading::Serial, Threading::Rayon] {
            let (mut mesh_a, mut st_a) = make();
            let range = LocalRange::whole(&mesh_a);
            let remapper = Remapper::new(&mesh_a, AleOptions::default());
            remapper
                .step_threaded(&mut mesh_a, &mut st_a, range, th)
                .unwrap();
            let (mut mesh_b, mut st_b) = make();
            remapper
                .step_overlapped(
                    &mut mesh_b,
                    &mut st_b,
                    range,
                    th,
                    Some(RemapOverlap {
                        pre_el: &pre_el,
                        pre_nd: &pre_nd,
                    }),
                    &mut NoComm,
                )
                .unwrap();
            assert_eq!(st_a.rho, st_b.rho, "{th:?}");
            assert_eq!(st_a.ein, st_b.ein, "{th:?}");
            assert_eq!(st_a.mass, st_b.mass, "{th:?}");
            assert_eq!(st_a.cnmass, st_b.cnmass, "{th:?}");
            assert!(st_a.u.iter().zip(&st_b.u).all(|(a, b)| a == b), "{th:?}");
        }
    }

    #[test]
    fn threaded_remap_is_bitwise_identical_to_serial() {
        let make = || {
            let (mut mesh, mut st) = setup(
                8,
                |e| if e % 3 == 0 { 1.0 } else { 2.5 },
                |n| Vec2::new(0.07 * (n % 5) as f64, -0.03 * (n % 7) as f64),
            );
            for n in 0..mesh.n_nodes() {
                let bc = mesh.node_bc[n];
                if !bc.fix_x {
                    mesh.nodes[n].x += 0.006 * ((n * 7) as f64).sin();
                }
                if !bc.fix_y {
                    mesh.nodes[n].y += 0.006 * ((n * 11) as f64).cos();
                }
            }
            for e in 0..mesh.n_elements() {
                let c = mesh.corners(e);
                st.volume[e] = quad_area(&c);
                st.rho[e] = st.mass[e] / st.volume[e];
                let cv = corner_volumes(&c);
                st.cnvol[e] = cv;
                for k in 0..4 {
                    st.cnmass[e][k] = st.rho[e] * cv[k];
                }
            }
            (mesh, st)
        };
        use bookleaf_hydro::Threading;
        let (mut mesh_s, mut st_s) = make();
        let range = LocalRange::whole(&mesh_s);
        let remapper = Remapper::new(&mesh_s, AleOptions::default());
        remapper
            .step_threaded(&mut mesh_s, &mut st_s, range, Threading::Serial)
            .unwrap();
        let (mut mesh_p, mut st_p) = make();
        remapper
            .step_threaded(&mut mesh_p, &mut st_p, range, Threading::Rayon)
            .unwrap();
        assert_eq!(st_s.rho, st_p.rho);
        assert_eq!(st_s.ein, st_p.ein);
        assert_eq!(st_s.mass, st_p.mass);
        assert_eq!(st_s.cnmass, st_p.cnmass);
        assert!(st_s.u.iter().zip(&st_p.u).all(|(a, b)| a == b));
        assert!(mesh_s.nodes.iter().zip(&mesh_p.nodes).all(|(a, b)| a == b));
    }
}
