//! `aleupdate`: apply the fluxes and rebuild the dependent variables.
//!
//! [`Remapper::step`] performs one full ALE remap:
//!
//! 1. `alegetmesh` — target positions ([`crate::mesh_motion`]);
//! 2. `alegetfvol` — face swept volumes ([`crate::fluxvol`]);
//! 3. `aleadvect` — mass / energy / momentum fluxes ([`crate::advect`]);
//! 4. `aleupdate` — this module: move the nodes, update element mass and
//!    extensive energy, recompute geometry, densities and specific
//!    energies, refresh corner masses (uniform sub-zonal density on the
//!    new mesh) and distribute momentum changes to nodal velocities.
//!
//! Conservation: mass, total internal energy and total momentum are
//! conserved to round-off by flux antisymmetry; tests pin this.

use bookleaf_mesh::geometry::{char_length, corner_volumes, quad_area};
use bookleaf_mesh::Mesh;
use bookleaf_util::{BookLeafError, Result, Vec2};

use bookleaf_hydro::state::{HydroState, LocalRange};

use crate::advect::compute_fluxes;
use crate::fluxvol::face_flux_volumes;
use crate::mesh_motion::{target_positions, AleMode};

/// Remap configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AleOptions {
    /// Target-mesh strategy.
    pub mode: AleMode,
    /// Remap every `frequency` steps (1 = every step ⇒ Eulerian-like).
    pub frequency: usize,
}

impl Default for AleOptions {
    fn default() -> Self {
        AleOptions {
            mode: AleMode::Eulerian,
            frequency: 1,
        }
    }
}

/// Owns the reference mesh and performs remaps.
#[derive(Debug, Clone)]
pub struct Remapper {
    /// Reference (initial) node positions, the Eulerian target.
    x_ref: Vec<Vec2>,
    /// Options.
    pub opts: AleOptions,
}

impl Remapper {
    /// Capture the reference mesh at setup time.
    #[must_use]
    pub fn new(mesh: &Mesh, opts: AleOptions) -> Self {
        Remapper {
            x_ref: mesh.nodes.clone(),
            opts,
        }
    }

    /// Should a remap run after `step_index` (0-based)?
    #[must_use]
    pub fn due(&self, step_index: usize) -> bool {
        self.opts.frequency > 0 && (step_index + 1).is_multiple_of(self.opts.frequency)
    }

    /// Perform one remap over the owned range.
    pub fn step(&self, mesh: &mut Mesh, state: &mut HydroState, range: LocalRange) -> Result<()> {
        let target = target_positions(mesh, &self.x_ref, self.opts.mode);
        let fvol = face_flux_volumes(mesh, &target);

        // Element-centred (mass-weighted corner) velocities for momentum.
        let cell_u: Vec<Vec2> = (0..mesh.n_elements())
            .map(|e| {
                let mut p = Vec2::ZERO;
                let mut m = 0.0;
                for c in 0..4 {
                    let nd = mesh.elnd[e][c] as usize;
                    p += state.u[nd] * state.cnmass[e][c];
                    m += state.cnmass[e][c];
                }
                if m > 0.0 {
                    p / m
                } else {
                    Vec2::ZERO
                }
            })
            .collect();

        let fx = compute_fluxes(mesh, &state.rho, &state.ein, &cell_u, &fvol);

        // Old nodal masses (for the velocity update).
        let nd_mass_old: Vec<f64> = (0..range.n_active_nd)
            .map(|n| {
                mesh.elements_of_node(n)
                    .iter()
                    .map(|&(e, c)| state.cnmass[e as usize][c as usize])
                    .sum()
            })
            .collect();

        // --- Move the mesh and update element extensive quantities. ---
        mesh.nodes[..range.n_active_nd].copy_from_slice(&target[..range.n_active_nd]);
        // Ghost nodes also move (their owners move them identically from
        // the same deterministic inputs).
        let nn = mesh.n_nodes();
        mesh.nodes[range.n_active_nd..nn].copy_from_slice(&target[range.n_active_nd..nn]);

        let ne = mesh.n_elements();
        let mut mom_change = vec![Vec2::ZERO; ne];
        for e in 0..ne {
            let mass_old = state.mass[e];
            let energy_old = mass_old * state.ein[e];
            let mom_old = cell_u[e] * mass_old;

            let mass_new = mass_old - fx.d_mass[e];
            let energy_new = energy_old - fx.d_energy[e];
            let mom_new = mom_old - fx.d_mom[e];
            if mass_new <= 0.0 {
                return Err(BookLeafError::InvalidState {
                    element: e,
                    what: format!("remap drove mass non-positive: {mass_new}"),
                });
            }

            let corners = mesh.corners(e);
            let vol = quad_area(&corners);
            if vol <= 0.0 {
                return Err(BookLeafError::NegativeVolume {
                    element: e,
                    volume: vol,
                });
            }
            state.mass[e] = mass_new;
            state.volume[e] = vol;
            state.length[e] = char_length(&corners);
            state.rho[e] = mass_new / vol;
            state.ein[e] = energy_new / mass_new;
            let cv = corner_volumes(&corners);
            state.cnvol[e] = cv;
            // Uniform sub-zonal density on the fresh mesh: the remap
            // resets sub-zonal pressure deviations (standard for
            // single-material swept remaps; see DESIGN.md).
            for c in 0..4 {
                state.cnmass[e][c] = state.rho[e] * cv[c];
            }
            // Momentum deficit: what the element's corners must gain so
            // that the new-mass-weighted nodal momentum matches the
            // advected element momentum exactly.
            let nd = mesh.elnd[e];
            let mut carried = Vec2::ZERO;
            for c in 0..4 {
                carried += state.u[nd[c] as usize] * state.cnmass[e][c];
            }
            mom_change[e] = mom_new - carried;
        }

        // --- Distribute momentum deficits to nodal velocities. ---
        // Each element hands its corners a share of its deficit weighted
        // by new corner mass; a node converts received momentum to a
        // velocity change with its new mass. By construction
        // Σ_n m_n^new u_n^new = Σ_e mom_new[e], so total momentum is
        // conserved to round-off. Boundary conditions are *not* applied
        // here — the next `getacc` projects wall-normal components, as in
        // the reference code.
        let u_old: Vec<Vec2> = state.u[..range.n_active_nd].to_vec();
        for n in 0..range.n_active_nd {
            let mut dp = Vec2::ZERO;
            let mut m_new = 0.0;
            for &(e, c) in mesh.elements_of_node(n) {
                let (e, c) = (e as usize, c as usize);
                let w = state.cnmass[e][c] / state.mass[e].max(1e-300);
                dp += mom_change[e] * w;
                m_new += state.cnmass[e][c];
            }
            if m_new > 0.0 {
                state.u[n] = u_old[n] + dp / m_new;
            }
            let _ = nd_mass_old; // old masses retained for diagnostics
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::approx_eq;

    fn setup(
        n: usize,
        rho_of: impl Fn(usize) -> f64,
        u_of: impl Fn(usize) -> Vec2,
    ) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, rho_of, |_| 1.0, u_of).unwrap();
        (mesh, st)
    }

    #[test]
    fn identity_remap_is_noop() {
        // Mesh already at reference: Eulerian remap changes nothing.
        let (mut mesh, mut st) = setup(
            4,
            |e| 1.0 + 0.1 * e as f64,
            |n| Vec2::new((n as f64).sin(), (n as f64).cos()),
        );
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions::default());
        let before = st.clone();
        remapper.step(&mut mesh, &mut st, range).unwrap();
        for e in 0..st.n_elements() {
            assert!(approx_eq(st.rho[e], before.rho[e], 1e-13));
            assert!(approx_eq(st.ein[e], before.ein[e], 1e-13));
            assert!(approx_eq(st.mass[e], before.mass[e], 1e-13));
        }
        for n in 0..st.n_nodes() {
            assert!((st.u[n] - before.u[n]).norm() < 1e-13);
        }
    }

    #[test]
    fn eulerian_remap_restores_reference_mesh() {
        let (mut mesh, mut st) = setup(4, |_| 1.0, |_| Vec2::ZERO);
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions::default());
        let x_ref = mesh.nodes.clone();
        // Push an interior node.
        mesh.nodes[6] += Vec2::new(0.02, -0.01);
        // Keep the state consistent with the moved mesh before the remap.
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
        }
        remapper.step(&mut mesh, &mut st, range).unwrap();
        for n in 0..mesh.n_nodes() {
            assert!(mesh.nodes[n].distance(x_ref[n]) < 1e-14);
        }
    }

    #[test]
    fn remap_conserves_mass_energy_momentum() {
        let (mut mesh, mut st) = setup(
            6,
            |e| if e % 2 == 0 { 1.0 } else { 3.0 },
            |n| Vec2::new(0.1 * (n % 4) as f64, -0.05 * (n % 3) as f64),
        );
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions::default());
        // Distort the interior, consistently updating volumes.
        for n in 0..mesh.n_nodes() {
            let bc = mesh.node_bc[n];
            if !bc.fix_x {
                mesh.nodes[n].x += 0.01 * ((n * 7) as f64).sin();
            }
            if !bc.fix_y {
                mesh.nodes[n].y += 0.01 * ((n * 11) as f64).cos();
            }
        }
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
            let cv = corner_volumes(&c);
            st.cnvol[e] = cv;
            for k in 0..4 {
                st.cnmass[e][k] = st.rho[e] * cv[k];
            }
        }
        let mass0 = st.total_mass(range);
        let ie0 = st.internal_energy(range);
        let mut mom0 = Vec2::ZERO;
        for n in 0..mesh.n_nodes() {
            let m: f64 = mesh
                .elements_of_node(n)
                .iter()
                .map(|&(e, c)| st.cnmass[e as usize][c as usize])
                .sum();
            mom0 += st.u[n] * m;
        }

        remapper.step(&mut mesh, &mut st, range).unwrap();

        assert!(approx_eq(st.total_mass(range), mass0, 1e-12), "mass drift");
        assert!(
            approx_eq(st.internal_energy(range), ie0, 1e-12),
            "energy drift"
        );
        let mut mom1 = Vec2::ZERO;
        for n in 0..mesh.n_nodes() {
            let m: f64 = mesh
                .elements_of_node(n)
                .iter()
                .map(|&(e, c)| st.cnmass[e as usize][c as usize])
                .sum();
            mom1 += st.u[n] * m;
        }
        // Momentum conservation is modulo wall projections (BCs can
        // absorb normal momentum, as in the physical problem).
        assert!(
            (mom1 - mom0).norm() < 1e-10,
            "momentum drift: {mom0:?} -> {mom1:?}"
        );
    }

    #[test]
    fn remap_keeps_density_bounds() {
        // Monotone limiter: remapping a step profile must not create new
        // extrema.
        let (mut mesh, mut st) = setup(8, |e| if e % 8 < 4 { 1.0 } else { 0.125 }, |_| Vec2::ZERO);
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions::default());
        for n in 0..mesh.n_nodes() {
            let bc = mesh.node_bc[n];
            if !bc.fix_x {
                mesh.nodes[n].x += 0.004 * ((n * 3) as f64).sin();
            }
            if !bc.fix_y {
                mesh.nodes[n].y += 0.004 * ((n * 5) as f64).cos();
            }
        }
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
        }
        remapper.step(&mut mesh, &mut st, range).unwrap();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &r in &st.rho {
            lo = lo.min(r);
            hi = hi.max(r);
        }
        assert!(lo >= 0.1, "undershoot: {lo}");
        assert!(hi <= 1.3, "overshoot: {hi}");
    }

    #[test]
    fn due_respects_frequency() {
        let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        let r = Remapper::new(
            &mesh,
            AleOptions {
                mode: AleMode::Eulerian,
                frequency: 3,
            },
        );
        assert!(!r.due(0));
        assert!(!r.due(1));
        assert!(r.due(2));
        assert!(r.due(5));
        let never = Remapper::new(
            &mesh,
            AleOptions {
                mode: AleMode::Eulerian,
                frequency: 0,
            },
        );
        assert!(!never.due(0));
        assert!(!never.due(99));
    }

    #[test]
    fn smooth_mode_improves_quality() {
        use bookleaf_mesh::quality::assess;
        let (mut mesh, mut st) = setup(6, |_| 1.0, |_| Vec2::ZERO);
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(
            &mesh,
            AleOptions {
                mode: AleMode::Smooth { alpha: 0.8 },
                frequency: 1,
            },
        );
        for n in 0..mesh.n_nodes() {
            let bc = mesh.node_bc[n];
            if !bc.fix_x {
                mesh.nodes[n].x += 0.02 * ((n * 13) as f64).sin();
            }
            if !bc.fix_y {
                mesh.nodes[n].y += 0.02 * ((n * 17) as f64).cos();
            }
        }
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
        }
        let before = assess(&mesh);
        remapper.step(&mut mesh, &mut st, range).unwrap();
        let after = assess(&mesh);
        assert!(after.max_skew <= before.max_skew + 1e-12);
    }
}
