//! Criterion micro-benchmarks for every Lagrangian kernel, serial vs
//! rayon, on a mid-shock Noh snapshot (the paper's profiling workload).
//!
//! Run with `cargo bench -p bookleaf-bench --bench kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bookleaf_core::{decks, Simulation};
use bookleaf_eos::MaterialTable;
use bookleaf_hydro::getacc::{getacc, AccMode};
use bookleaf_hydro::getdt::{getdt, DtControls};
use bookleaf_hydro::getein::{getein, WorkVelocity};
use bookleaf_hydro::getforce::{getforce, HourglassControl};
use bookleaf_hydro::getgeom::getgeom;
use bookleaf_hydro::getpc::getpc;
use bookleaf_hydro::getq::{getq, QCoeffs};
use bookleaf_hydro::getrho::getrho;
use bookleaf_hydro::reference::{getforce_reference, getq_reference};
use bookleaf_hydro::{eos_fused, EosStages, FusedEos, HydroState, LocalRange, Threading};
use bookleaf_mesh::Mesh;

const N: usize = 128;

/// A Noh state evolved to mid-shock, so the kernels see realistic data
/// (viscosity active, shocked plateau, moving mesh).
fn snapshot() -> (Mesh, MaterialTable, HydroState) {
    let mut driver = Simulation::builder()
        .deck(decks::noh(N))
        .final_time(0.1)
        .build()
        .expect("valid deck");
    driver.run().expect("noh warmup");
    let materials = driver.deck().materials.clone();
    (driver.mesh().clone(), materials, driver.state().clone())
}

fn bench_kernels(c: &mut Criterion) {
    let (mesh, materials, state) = snapshot();
    let range = LocalRange::whole(&mesh);
    let mut group = c.benchmark_group("kernels_128x128");

    for threading in [Threading::Serial, Threading::Rayon] {
        let tag = match threading {
            Threading::Serial => "serial",
            Threading::Rayon => "rayon",
        };
        group.bench_function(BenchmarkId::new("getq", tag), |b| {
            let mut st = state.clone();
            b.iter(|| getq(&mesh, &mut st, range, QCoeffs::default(), threading));
        });
        group.bench_function(BenchmarkId::new("getforce", tag), |b| {
            let mut st = state.clone();
            b.iter(|| {
                getforce(
                    &mesh,
                    &mut st,
                    range,
                    HourglassControl::default(),
                    1e-4,
                    threading,
                )
            });
        });
        group.bench_function(BenchmarkId::new("getgeom", tag), |b| {
            let mut st = state.clone();
            b.iter(|| getgeom(&mesh, &mut st, range, threading).unwrap());
        });
        group.bench_function(BenchmarkId::new("getrho", tag), |b| {
            let mut st = state.clone();
            b.iter(|| getrho(&mut st, range, threading).unwrap());
        });
        group.bench_function(BenchmarkId::new("getein", tag), |b| {
            let mut st = state.clone();
            b.iter(|| {
                getein(
                    &mesh,
                    &mut st,
                    range,
                    1e-6,
                    WorkVelocity::Current,
                    threading,
                );
            });
        });
        group.bench_function(BenchmarkId::new("getpc", tag), |b| {
            let mut st = state.clone();
            b.iter(|| getpc(&mesh, &materials, &mut st, range, threading));
        });
        // The fused EOS chain against its four-kernel baseline (the
        // getgeom/getrho/getein/getpc entries above time the parts).
        group.bench_function(BenchmarkId::new("eos_fused", tag), |b| {
            let mut st = state.clone();
            b.iter(|| {
                eos_fused(
                    &mesh,
                    &materials,
                    &mut st,
                    range,
                    FusedEos {
                        dt: 1e-6,
                        which: WorkVelocity::Current,
                        ein_from: None,
                        stages: EosStages::all(),
                    },
                    threading,
                )
                .unwrap();
            });
        });
        // The kept pre-optimisation shapes, for before/after ratios.
        group.bench_function(BenchmarkId::new("getq_reference", tag), |b| {
            let mut st = state.clone();
            b.iter(|| getq_reference(&mesh, &mut st, range, QCoeffs::default(), threading));
        });
        group.bench_function(BenchmarkId::new("getforce_reference", tag), |b| {
            let st = state.clone();
            let mut aos = Vec::new();
            b.iter(|| {
                getforce_reference(
                    &mesh,
                    &st,
                    range,
                    HourglassControl::default(),
                    1e-4,
                    threading,
                    &mut aos,
                );
            });
        });
        group.bench_function(BenchmarkId::new("getdt", tag), |b| {
            let mut st = state.clone();
            b.iter(|| {
                getdt(
                    &mesh,
                    &mut st,
                    range,
                    &DtControls::default(),
                    Some(1e-4),
                    threading,
                )
                .unwrap()
            });
        });
    }

    // The acceleration kernel's three formulations (§IV-B).
    for (tag, mode) in [
        ("scatter_serial", AccMode::ScatterSerial),
        ("gather_serial", AccMode::GatherSerial),
        ("gather_parallel", AccMode::GatherParallel),
    ] {
        group.bench_function(BenchmarkId::new("getacc", tag), |b| {
            let mut st = state.clone();
            b.iter(|| getacc(&mesh, &mut st, range, 1e-6, mode));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
