//! Criterion benchmark for the mesh decomposition strategies — the
//! serial partitioner whose cost §V-C identifies as the flat-MPI scaling
//! bottleneck.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bookleaf_mesh::{generate_rect, RectSpec, SubMeshPlan};
use bookleaf_partition::{partition, Strategy};

fn bench_partition(c: &mut Criterion) {
    let mesh = generate_rect(&RectSpec::unit_square(256), |_| 0).expect("mesh");
    let mut group = c.benchmark_group("partition_256x256");
    for parts in [4usize, 16, 64] {
        group.bench_function(BenchmarkId::new("rcb", parts), |b| {
            b.iter(|| partition(&mesh, parts, Strategy::Rcb).unwrap());
        });
        group.bench_function(BenchmarkId::new("graph", parts), |b| {
            b.iter(|| partition(&mesh, parts, Strategy::Graph).unwrap());
        });
    }
    // The full serial setup path (partition + submesh/ghost/schedule
    // construction) that the paper says dominates at high rank counts.
    group.bench_function("rcb_plus_submesh_16", |b| {
        b.iter(|| {
            let owner = partition(&mesh, 16, Strategy::Rcb).unwrap();
            SubMeshPlan::build(&mesh, &owner, 16).unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partition
}
criterion_main!(benches);
