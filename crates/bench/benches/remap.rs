//! Criterion benchmark for the ALE remap phase (the paper's `ALESTEP`),
//! Eulerian and smoothing targets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bookleaf_ale::{AleMode, AleOptions, Remapper};
use bookleaf_core::{decks, Simulation};
use bookleaf_hydro::LocalRange;

fn bench_remap(c: &mut Criterion) {
    // A Lagrangian Sod state mid-run: the mesh has genuinely moved, so
    // the remap computes non-trivial fluxes.
    let mut driver = Simulation::builder()
        .deck(decks::sod(128, 16))
        .final_time(0.1)
        .build()
        .expect("valid deck");
    driver.run().expect("sod warmup");
    let mesh0 = driver.mesh().clone();
    let state0 = driver.state().clone();
    let range = LocalRange::whole(&mesh0);

    let mut group = c.benchmark_group("alestep_128x16");
    for (tag, mode) in [
        ("eulerian", AleMode::Eulerian),
        ("smooth", AleMode::Smooth { alpha: 0.5 }),
    ] {
        group.bench_function(BenchmarkId::new("remap", tag), |b| {
            // The remapper's reference mesh is the *initial* deck mesh.
            let reference = decks::sod(128, 16).mesh;
            let remapper = Remapper::new(&reference, AleOptions { mode, frequency: 1 });
            b.iter(|| {
                let mut mesh = mesh0.clone();
                let mut st = state0.clone();
                remapper.step(&mut mesh, &mut st, range).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_remap
}
criterion_main!(benches);
