//! Regenerate the **§IV-D dope-vector ablation**.
//!
//! CUDA Fortran transfers a descriptor ("dope vector", 72–96 bytes) for
//! every assumed-size array argument on every kernel launch. The paper:
//! *"When this optimisation is applied, performance of the kernels
//! improves dramatically; for example, the viscosity kernel runtime is
//! improved from 4.23 seconds to 2.2 seconds for one problem set."*
//!
//! We reproduce the effect with the GPU model's `dope_fix` toggle on a
//! problem sized like the paper's "one problem set" (descriptor-latency
//! dominated), and sweep problem size to show where the overhead stops
//! mattering.

use bookleaf_device::{GpuExecution, GpuModel, WorkloadCount};
use bookleaf_util::KernelId;

fn main() {
    println!("Ablation: CUDA Fortran dope-vector transfers (paper SIV-D)");
    println!("{}", "=".repeat(78));
    let m = GpuModel::p100();

    // The paper's small problem set: descriptor costs comparable to the
    // kernel compute.
    let w = WorkloadCount {
        elements: 45_000,
        steps: 1_870,
    };
    let before = m.kernel_seconds(KernelId::GetQ, w, GpuExecution::Cuda { dope_fix: false });
    let after = m.kernel_seconds(KernelId::GetQ, w, GpuExecution::Cuda { dope_fix: true });
    println!(
        "viscosity kernel, small problem ({} elements, {} steps):",
        w.elements, w.steps
    );
    println!("  with dope-vector transfers:    {before:>6.2} s   (paper: 4.23 s)");
    println!("  fixed-size arrays (optimised): {after:>6.2} s   (paper: 2.2 s)");
    println!(
        "  speedup: x{:.2} (paper: x{:.2})",
        before / after,
        4.23 / 2.2
    );

    println!();
    println!("size sweep (viscosity kernel, 1870 steps):");
    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "elements", "dope (s)", "fixed (s)", "overhead"
    );
    for elements in [10_000usize, 45_000, 200_000, 1_000_000, 4_000_000] {
        let w = WorkloadCount {
            elements,
            steps: 1_870,
        };
        let b = m.kernel_seconds(KernelId::GetQ, w, GpuExecution::Cuda { dope_fix: false });
        let a = m.kernel_seconds(KernelId::GetQ, w, GpuExecution::Cuda { dope_fix: true });
        println!(
            "{elements:<12} {b:>10.2} {a:>10.2} {:>8.1}%",
            100.0 * (b - a) / a
        );
    }
    println!();
    println!("The overhead is per-launch (latency bound), so it dominates small");
    println!("problems and washes out at scale — exactly the paper's observation.");
}
