//! Ablation: hourglass-control mechanisms on the Saltzmann piston.
//!
//! §III-A: "Two of the most common methods for suppressing hourglass
//! modes are filters and sub-zonal pressures. BookLeaf possesses an
//! implementation of a filter following Hancock and sub-zonal pressures
//! following Caramana et al." — and §III-B chooses Saltzmann's piston
//! precisely "to exacerbate hourglass modes".
//!
//! This ablation runs the piston with each mechanism on/off and reports
//! mesh quality and the transverse-velocity noise (the hourglass
//! signature on a 1-D problem), plus the runtime cost of the controls.

use bookleaf_core::{decks, RunConfig, Simulation};
use bookleaf_hydro::getforce::HourglassControl;
use bookleaf_mesh::quality::assess;

fn run(hg: HourglassControl) -> std::result::Result<(f64, f64, f64, usize), String> {
    let deck = decks::saltzmann(100, 10);
    let config = RunConfig {
        final_time: 0.45,
        lag: bookleaf_hydro::LagOptions {
            hourglass: hg,
            ..Default::default()
        },
        ..RunConfig::default()
    };
    let mut sim = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .map_err(|e| e.to_string())?;
    let s = sim.run().map_err(|e| e.to_string())?;
    let q = assess(sim.mesh());
    let noise = sim
        .state()
        .u
        .iter()
        .map(|u| u.y.abs())
        .fold(0.0f64, f64::max);
    Ok((q.max_skew, noise, s.wall_seconds, s.steps))
}

fn main() {
    println!("Ablation: hourglass control on the Saltzmann piston (t = 0.45)");
    println!("{}", "=".repeat(78));
    println!(
        "{:<28} {:>10} {:>12} {:>10} {:>8}",
        "configuration", "max skew", "max |u_y|", "wall (s)", "steps"
    );
    for (label, hg) in [
        ("filter + sub-zonal (default)", HourglassControl::default()),
        (
            "filter only",
            HourglassControl {
                kappa_filter: 0.7,
                zeta_subzonal: 0.0,
            },
        ),
        (
            "sub-zonal only",
            HourglassControl {
                kappa_filter: 0.0,
                zeta_subzonal: 0.3,
            },
        ),
        ("no control", HourglassControl::none()),
    ] {
        match run(hg) {
            Ok((skew, noise, wall, steps)) => {
                println!("{label:<28} {skew:>10.4} {noise:>12.4} {wall:>10.3} {steps:>8}")
            }
            Err(e) => println!("{label:<28} FAILED: {e}"),
        }
    }
    println!();
    println!("max |u_y| is the hourglass signature: the exact solution is 1-D, so");
    println!("every transverse velocity is spurious mode energy the controls damp.");
}
