//! Regenerate the **§IV-B acceleration data-dependency ablation**.
//!
//! The paper: *"the acceleration calculation kernel currently contains a
//! data dependency that prevents parallelisation. While this potentially
//! could be fixed by rewriting the kernel it has currently been left
//! unchanged, adversely affecting OpenMP performance."*
//!
//! We have both kernels: the reference element-order scatter (serial,
//! write conflicts at shared nodes) and the conflict-free node-order
//! gather (thread-safe). Part 1 times the kernel directly across mesh
//! sizes; part 2 embeds both in full hybrid runs. The honest finding on
//! a single host: the linear-streaming scatter is very fast, and the
//! parallel gather only overtakes it once the per-rank mesh is large
//! enough to amortise thread dispatch and the CSR indirection — which is
//! exactly the production-scale regime the paper's hybrid model targets.

use std::time::Instant;

use bookleaf_core::{decks, ExecutorKind, RunConfig, Simulation};
use bookleaf_hydro::getacc::getacc;
use bookleaf_hydro::{AccMode, HydroState, LocalRange};
use bookleaf_util::KernelId;

/// Direct kernel timing: seconds per call at mesh size `n × n`.
fn kernel_seconds(n: usize, mode: AccMode, calls: usize) -> f64 {
    let deck = decks::noh(n);
    let mesh = deck.mesh.clone();
    let mut st = HydroState::new(
        &mesh,
        &deck.materials,
        |e| deck.rho[e],
        |e| deck.ein[e],
        |nd| deck.u[nd],
    )
    .expect("state");
    // Synthetic corner forces so the kernel has real work.
    for e in 0..st.n_elements() {
        for c in 0..4 {
            st.set_cnforce(e, c, bookleaf_util::Vec2::new(0.01 * (e % 7) as f64, -0.02));
        }
    }
    let range = LocalRange::whole(&mesh);
    // Warm up.
    getacc(&mesh, &mut st, range, 1e-6, mode);
    let start = Instant::now();
    for _ in 0..calls {
        getacc(&mesh, &mut st, range, 1e-6, mode);
    }
    start.elapsed().as_secs_f64() / calls as f64
}

fn full_run(acc_mode: AccMode, threads: usize) -> (f64, f64) {
    let deck = decks::noh(200);
    let mut config = RunConfig {
        final_time: 0.04,
        executor: ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: threads,
        },
        ..RunConfig::default()
    };
    config.lag.acc_mode = acc_mode;
    let out = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .expect("valid deck")
        .run()
        .expect("noh run");
    (out.timers.seconds(KernelId::GetAcc), out.wall_seconds)
}

fn main() {
    println!("Ablation: acceleration kernel scatter vs gather rewrite (paper SIV-B)");
    println!("{}", "=".repeat(78));

    println!("--- part 1: the kernel alone (ms per call) ---");
    println!(
        "{:<12} {:>16} {:>15} {:>17} {:>9}",
        "mesh", "scatter-serial", "gather-serial", "gather-parallel", "speedup"
    );
    for n in [100usize, 300, 700] {
        let calls = if n >= 700 { 10 } else { 30 };
        let scatter = kernel_seconds(n, AccMode::ScatterSerial, calls);
        let gser = kernel_seconds(n, AccMode::GatherSerial, calls);
        let gpar = kernel_seconds(n, AccMode::GatherParallel, calls);
        println!(
            "{:<12} {:>14.3}ms {:>13.3}ms {:>15.3}ms {:>8.2}x",
            format!("{n}x{n}"),
            1e3 * scatter,
            1e3 * gser,
            1e3 * gpar,
            scatter / gpar
        );
    }

    println!();
    println!("--- part 2: embedded in full hybrid runs (Noh 200x200, t = 0.04) ---");
    println!(
        "{:<34} {:>12} {:>12}",
        "configuration", "getacc (s)", "overall (s)"
    );
    for (label, mode, threads) in [
        (
            "scatter-serial (reference), 2 thr",
            AccMode::ScatterSerial,
            2,
        ),
        (
            "gather-parallel (rewrite),  2 thr",
            AccMode::GatherParallel,
            2,
        ),
        (
            "scatter-serial (reference), 8 thr",
            AccMode::ScatterSerial,
            8,
        ),
        (
            "gather-parallel (rewrite),  8 thr",
            AccMode::GatherParallel,
            8,
        ),
    ] {
        let mut best = (f64::INFINITY, f64::INFINITY);
        for _ in 0..2 {
            let (acc, wall) = full_run(mode, threads);
            if wall < best.1 {
                best = (acc, wall);
            }
        }
        println!("{label:<34} {:>12.4} {:>12.3}", best.0, best.1);
    }
    println!();
    println!("Reading: the scatter's serial time scales with per-rank mesh size and");
    println!("cannot use threads (the paper's complaint); the gather rewrite gains");
    println!("with size and thread count, overtaking at production-scale meshes.");
}
