//! Regenerate **Figure 1** — overall performance for the Noh problem on
//! a single node, as a text bar chart over the seven configurations.

use bookleaf_bench::{NOH_MODEL_WORKLOAD, PAPER_TABLE2};
use bookleaf_device::{CpuExecution, CpuModel, CpuPlatform, GpuExecution, GpuModel};

fn main() {
    let w = NOH_MODEL_WORKLOAD;
    let skl = CpuModel::new(CpuPlatform::skylake());
    let bdw = CpuModel::new(CpuPlatform::broadwell());
    let cuda = GpuExecution::Cuda { dope_fix: false };
    let bars: Vec<(&str, f64)> = vec![
        (
            "Skylake MPI",
            skl.report(w, CpuExecution::FlatMpi).total_seconds(),
        ),
        (
            "Skylake Hybrid",
            skl.report(w, CpuExecution::Hybrid).total_seconds(),
        ),
        (
            "Broadwell MPI",
            bdw.report(w, CpuExecution::FlatMpi).total_seconds(),
        ),
        (
            "Broadwell Hybrid",
            bdw.report(w, CpuExecution::Hybrid).total_seconds(),
        ),
        (
            "P100 CUDA",
            GpuModel::p100().report(w, cuda).total_seconds(),
        ),
        (
            "V100 CUDA",
            GpuModel::v100().report(w, cuda).total_seconds(),
        ),
        (
            "P100 OpenMP",
            GpuModel::p100()
                .report(w, GpuExecution::Offload)
                .total_seconds(),
        ),
    ];
    let paper: Vec<f64> = [
        "Skylake MPI",
        "Skylake Hybrid",
        "Broadwell MPI",
        "Broadwell Hybrid",
        "P100 CUDA",
        "V100 CUDA",
        "P100 OpenMP",
    ]
    .iter()
    .map(|name| {
        PAPER_TABLE2
            .iter()
            .find(|(l, _)| l == name)
            .map(|(_, row)| row[0])
            .unwrap()
    })
    .collect();

    println!("Figure 1: overall execution time, Noh problem, single node");
    println!("{}", "=".repeat(78));
    let max = bars.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
    for ((label, t), p) in bars.iter().zip(paper) {
        let width = (t / max * 50.0).round() as usize;
        println!(
            "{label:<18} {:>8.1}s |{}  (paper: {p:.1}s)",
            t,
            "#".repeat(width)
        );
    }
    println!();
    println!("Expected shape: both flat-MPI CPU bars lowest; hybrids above them;");
    println!("P100 CUDA the tallest bar; V100 CUDA and P100 OpenMP in between.");
}
