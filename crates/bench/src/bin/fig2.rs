//! Regenerate **Figure 2** — per-kernel execution times for the Noh
//! problem on a single node: (a) the viscosity kernel, (b) the
//! acceleration kernel.
//!
//! These two kernels carry the paper's §V-B argument: viscosity (the
//! most expensive kernel) stays within a few percent between flat MPI
//! and hybrid, while the acceleration kernel — serialised by its data
//! dependency under OpenMP — blows up ~2.4x.

use bookleaf_bench::{NOH_MODEL_WORKLOAD, PAPER_TABLE2};
use bookleaf_device::{CpuExecution, CpuModel, CpuPlatform, GpuExecution, GpuModel};
use bookleaf_util::{KernelId, TimerReport};

fn reports() -> Vec<(&'static str, TimerReport)> {
    let w = NOH_MODEL_WORKLOAD;
    let skl = CpuModel::new(CpuPlatform::skylake());
    let bdw = CpuModel::new(CpuPlatform::broadwell());
    let cuda = GpuExecution::Cuda { dope_fix: false };
    vec![
        ("Skylake MPI", skl.report(w, CpuExecution::FlatMpi)),
        ("Skylake Hybrid", skl.report(w, CpuExecution::Hybrid)),
        ("Broadwell MPI", bdw.report(w, CpuExecution::FlatMpi)),
        ("Broadwell Hybrid", bdw.report(w, CpuExecution::Hybrid)),
        ("P100 CUDA", GpuModel::p100().report(w, cuda)),
        ("V100 CUDA", GpuModel::v100().report(w, cuda)),
        (
            "P100 OpenMP",
            GpuModel::p100().report(w, GpuExecution::Offload),
        ),
    ]
}

fn panel(title: &str, kernel: KernelId, paper_col: usize) {
    println!("{title}");
    println!("{}", "-".repeat(78));
    let data = reports();
    let max = data
        .iter()
        .map(|(_, r)| r.seconds(kernel))
        .fold(0.0f64, f64::max);
    for (label, rep) in &data {
        let t = rep.seconds(kernel);
        let paper = PAPER_TABLE2
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, row)| row[paper_col])
            .unwrap();
        let width = (t / max * 50.0).round() as usize;
        println!(
            "{label:<18} {t:>8.1}s |{}  (paper: {paper:.1}s)",
            "#".repeat(width)
        );
    }
    println!();
}

fn main() {
    println!("Figure 2: per-kernel execution times, Noh problem, single node");
    println!("{}", "=".repeat(78));
    panel("(a) Viscosity calculation kernel", KernelId::GetQ, 1);
    panel("(b) Acceleration calculation kernel", KernelId::GetAcc, 2);
    // The §V-B shape statements, checked numerically.
    let data = reports();
    let get =
        |label: &str, k: KernelId| data.iter().find(|(l, _)| *l == label).unwrap().1.seconds(k);
    let q_gap = get("Skylake Hybrid", KernelId::GetQ) / get("Skylake MPI", KernelId::GetQ);
    let acc_gap = get("Skylake Hybrid", KernelId::GetAcc) / get("Skylake MPI", KernelId::GetAcc);
    println!("Skylake hybrid/flat: viscosity x{q_gap:.2} (paper x1.14), acceleration x{acc_gap:.2} (paper x2.39)");
}
