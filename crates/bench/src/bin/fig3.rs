//! Regenerate **Figure 3** — overall execution time for the Sod problem
//! when strong scaling over 8–64 nodes (hybrid MPI+OpenMP), Skylake and
//! Broadwell.
//!
//! Part 1: the cluster model (compute roofline + cache-residency boost +
//! Aries comms + serial partitioner term). The paper's headline: super-
//! linear scaling from 8 to 16 nodes (cache effect), near-linear beyond,
//! Skylake below Broadwell with the same curve shape.
//!
//! Part 2: a *measured* strong-scaling sweep on this host over rank
//! counts (the same code path, real halo exchanges) — bounded by the
//! host's core count, it demonstrates the mechanics rather than the
//! 64-node regime.

use bookleaf_bench::{measured_sod, SOD_SCALING_WORKLOAD};
use bookleaf_core::ExecutorKind;
use bookleaf_device::{ClusterModel, CpuExecution, CpuPlatform};

fn main() {
    println!("Figure 3: Sod strong scaling, overall time (hybrid MPI+OpenMP)");
    println!("{}", "=".repeat(78));
    println!("--- modeled Cray XC50 ---");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "nodes", "Skylake (s)", "Broadwell (s)", "S speedup"
    );
    let skl = ClusterModel::xc50(CpuPlatform::skylake());
    let bdw = ClusterModel::xc50(CpuPlatform::broadwell());
    let mut prev: Option<f64> = None;
    for nodes in [8usize, 16, 32, 64] {
        let ts = skl.overall(SOD_SCALING_WORKLOAD, nodes, CpuExecution::Hybrid);
        let tb = bdw.overall(SOD_SCALING_WORKLOAD, nodes, CpuExecution::Hybrid);
        let speedup = prev.map(|p| p / ts).unwrap_or(1.0);
        println!("{nodes:<8} {ts:>14.1} {tb:>14.1} {speedup:>9.2}x");
        prev = Some(ts);
    }
    println!("(speedup column: vs previous node count; > 2x = super-linear)");

    println!();
    println!("--- measured on this host (Sod 400x50 to t = 0.08, flat ranks) ---");
    println!("{:<8} {:>12} {:>10}", "ranks", "wall (s)", "speedup");
    let mut base: Option<f64> = None;
    for ranks in [1usize, 2, 4] {
        let exec = if ranks == 1 {
            ExecutorKind::Serial
        } else {
            ExecutorKind::FlatMpi { ranks }
        };
        let (_, wall) = measured_sod(400, 0.08, exec);
        let speedup = base.get_or_insert(wall).to_owned() / wall;
        println!("{ranks:<8} {wall:>12.3} {speedup:>9.2}x");
    }
}
