//! Regenerate **Figure 4** — per-kernel execution times for the Sod
//! problem when strong scaling: (a) viscosity, (b) acceleration.
//!
//! §V-C: "the kernels scale superlinearly up to 16 nodes and then
//! continue to scale almost linearly beyond that ... both kernels are
//! well parallelised and dominate application performance at scale",
//! and the communications they contain stay out of the way.

use bookleaf_bench::SOD_SCALING_WORKLOAD;
use bookleaf_device::{ClusterModel, CpuExecution, CpuPlatform};
use bookleaf_util::KernelId;

fn panel(title: &str, kernel: KernelId) {
    println!("{title}");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "nodes", "Skylake (s)", "Broadwell (s)", "S speedup"
    );
    let skl = ClusterModel::xc50(CpuPlatform::skylake());
    let bdw = ClusterModel::xc50(CpuPlatform::broadwell());
    let mut prev: Option<f64> = None;
    for nodes in [8usize, 16, 32, 64] {
        let ts = skl
            .report(SOD_SCALING_WORKLOAD, nodes, CpuExecution::Hybrid)
            .seconds(kernel);
        let tb = bdw
            .report(SOD_SCALING_WORKLOAD, nodes, CpuExecution::Hybrid)
            .seconds(kernel);
        let speedup = prev.map(|p| p / ts).unwrap_or(1.0);
        println!("{nodes:<8} {ts:>14.2} {tb:>14.2} {speedup:>9.2}x");
        prev = Some(ts);
    }
    println!();
}

fn main() {
    println!("Figure 4: per-kernel strong scaling, Sod problem (hybrid)");
    println!("{}", "=".repeat(78));
    panel("(a) Viscosity calculation kernel", KernelId::GetQ);
    panel("(b) Acceleration calculation kernel", KernelId::GetAcc);
    let skl = ClusterModel::xc50(CpuPlatform::skylake());
    for nodes in [8usize, 64] {
        let rep = skl.report(SOD_SCALING_WORKLOAD, nodes, CpuExecution::Hybrid);
        let frac = rep.seconds(KernelId::Comms) / rep.total_seconds();
        println!("comm fraction at {nodes:>2} nodes: {:.1}%", 100.0 * frac);
    }
    println!("(\"the communication overhead ... does not cause a significant issue\")");
}
