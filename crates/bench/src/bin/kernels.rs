//! Per-kernel **roofline audit** on this host: times every Lagrangian
//! kernel over swept mesh sizes and reports achieved GFLOP/s and GB/s
//! next to the roofline bound implied by the `bookleaf-device` cost
//! tables and two measured host peaks (an FMA chain for compute, a
//! STREAM-style triad for bandwidth).
//!
//! Kernels with a raw audit in `bookleaf_device::RawCost` (the EOS
//! chain and its fused sweep) use those exact per-element counts; the
//! rest use the *effective* `KernelCost` counts the paper-platform
//! models are calibrated with — each entry records which table fed it
//! (`"counts": "raw"` / `"effective"`). All timings are serial: the
//! peaks are single-thread peaks, so achieved/bound ratios compare
//! like with like.
//!
//! The artifact also records the three optimisation speedups this
//! codebase carries against its kept reference implementations, on the
//! largest swept mesh:
//!
//! * `eos_fused_vs_chain` — the fused `getgeom→getrho→getein→getpc`
//!   sweep against the four separate kernels;
//! * `getforce_soa_vs_reference` — the stride-1 SoA force assembly
//!   against the interleaved-layout reference;
//! * `getq_hoisted_vs_reference` — the viscosity kernel with the
//!   neighbour-stencil gathers hoisted out of the face loop against the
//!   in-loop-gather reference.
//!
//! All three pairs are bitwise-identical in output (the equivalence
//! suite pins that), so the ratios are pure layout/fusion wins.
//!
//! ```text
//! kernels [--meshes 64,128,256,512] [--repeats 5] [--out BENCH_kernels.json]
//! kernels --validate BENCH_kernels.json
//! kernels --check-speedups   # fail unless every speedup > 1.0
//! ```
//!
//! `--validate` checks an existing artifact against schema
//! `bookleaf-kernels-v1` and exits non-zero on the first violation. The
//! writer self-validates before touching the output file.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use bookleaf_bench::schema::{validate_kernels_json, KERNELS_SCHEMA};
use bookleaf_core::decks;
use bookleaf_device::{KernelCost, RawCost};
use bookleaf_eos::MaterialTable;
use bookleaf_hydro::getacc::getacc;
use bookleaf_hydro::getdt::{getdt, DtControls};
use bookleaf_hydro::getein::{getein, WorkVelocity};
use bookleaf_hydro::getforce::{getforce, HourglassControl};
use bookleaf_hydro::getgeom::getgeom;
use bookleaf_hydro::getpc::getpc;
use bookleaf_hydro::getq::{getq, QCoeffs};
use bookleaf_hydro::getrho::getrho;
use bookleaf_hydro::reference::{getforce_reference, getq_reference};
use bookleaf_hydro::{eos_fused, AccMode, EosStages, FusedEos, HydroState, LocalRange, Threading};
use bookleaf_mesh::Mesh;
use bookleaf_util::KernelId;

const DT: f64 = 1e-6;

struct Args {
    meshes: Vec<usize>,
    repeats: usize,
    out_path: String,
    check_speedups: bool,
}

/// One mesh point of one kernel's sweep.
struct RunPoint {
    mesh: usize,
    elements: usize,
    seconds_per_call: f64,
    gflops: f64,
    gbs: f64,
    roofline_fraction: f64,
}

/// One kernel's roofline entry.
struct KernelEntry {
    kernel: KernelId,
    counts: &'static str,
    flops_per_element: f64,
    bytes_per_element: f64,
    roofline_gflops: f64,
    runs: Vec<RunPoint>,
}

struct Speedup {
    name: &'static str,
    mesh: usize,
    baseline_s: f64,
    optimised_s: f64,
}

impl Speedup {
    fn ratio(&self) -> f64 {
        if self.optimised_s > 0.0 {
            self.baseline_s / self.optimised_s
        } else {
            0.0
        }
    }
}

/// Per-element (flops, bytes, table name): the raw audit when one
/// exists, the calibrated effective counts otherwise.
fn counts_for(kernel: KernelId) -> (f64, f64, &'static str) {
    match RawCost::of(kernel) {
        Some(raw) => (raw.flops, raw.bytes, "raw"),
        None => {
            let c = KernelCost::of(kernel);
            (c.flops, c.bytes, "effective")
        }
    }
}

// ------------------------------------------------------- host peaks

/// Single-thread scalar flop peak in GFLOP/s: eight independent
/// multiply–add chains (enough ILP to fill the FP pipes), counted as 2
/// flops per `x*a + b`. Written as separate mul and add — `f64::mul_add`
/// lowers to a libm call when the target lacks guaranteed FMA, which is
/// ~50x slower than the hardware it is meant to measure.
fn probe_peak_gflops() -> f64 {
    const CHAINS: usize = 8;
    const ITERS: u64 = 4_000_000;
    let mut acc = [1.0f64; CHAINS];
    let a = black_box(1.000_000_1f64);
    let b = black_box(1e-9f64);
    // Warm up the clock governor.
    for _ in 0..ITERS / 4 {
        for x in &mut acc {
            *x = *x * a + b;
        }
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        for x in &mut acc {
            *x = *x * a + b;
        }
    }
    let dt = start.elapsed().as_secs_f64();
    black_box(acc);
    (ITERS * CHAINS as u64 * 2) as f64 / dt / 1e9
}

/// Single-thread STREAM-triad bandwidth in GB/s: `a[i] = b[i] + s*c[i]`
/// over arrays far beyond cache, 24 bytes per element (STREAM's
/// convention — one store, two loads, no write-allocate term).
fn probe_peak_gbs() -> f64 {
    const N: usize = 4 << 20; // 32 MiB per array
    const REPS: usize = 8;
    let mut a = vec![0.0f64; N];
    let b: Vec<f64> = (0..N).map(|i| i as f64 * 1e-6).collect();
    let c: Vec<f64> = (0..N).map(|i| (i % 17) as f64).collect();
    let s = black_box(3.0f64);
    let triad = |a: &mut [f64]| {
        for i in 0..N {
            a[i] = b[i] + s * c[i];
        }
    };
    triad(&mut a); // warm up page faults
    let start = Instant::now();
    for _ in 0..REPS {
        triad(&mut a);
    }
    let dt = start.elapsed().as_secs_f64();
    black_box(&a);
    (REPS * N * 24) as f64 / dt / 1e9
}

// -------------------------------------------------- kernel harness

/// A consistent mid-flow state on the Noh deck at mesh `n`: geometry,
/// density, pressure, viscosity and forces all populated so every
/// kernel sees realistic inputs.
fn prepared_state(n: usize) -> (Mesh, MaterialTable, HydroState) {
    let deck = decks::noh(n);
    let mesh = deck.mesh.clone();
    let mut st = HydroState::new(
        &mesh,
        &deck.materials,
        |e| deck.rho[e],
        |e| deck.ein[e],
        |nd| deck.u[nd],
    )
    .expect("state");
    let range = LocalRange::whole(&mesh);
    getgeom(&mesh, &mut st, range, Threading::Serial).expect("geom");
    getrho(&mut st, range, Threading::Serial).expect("rho");
    getpc(&mesh, &deck.materials, &mut st, range, Threading::Serial);
    getq(&mesh, &mut st, range, QCoeffs::default(), Threading::Serial);
    getforce(
        &mesh,
        &mut st,
        range,
        HourglassControl::default(),
        DT,
        Threading::Serial,
    );
    for i in 0..st.n_nodes() {
        st.ubar[i] = st.u[i];
    }
    (mesh, deck.materials, st)
}

/// Best-of-`repeats` seconds per call of `f`, with one warm-up call and
/// enough calls per sample to dodge timer granularity on small meshes.
fn time_best(elements: usize, repeats: usize, mut f: impl FnMut()) -> f64 {
    let calls = (200_000 / elements).clamp(1, 40);
    f(); // warm up
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / calls as f64);
    }
    best
}

/// Seconds per call for one kernel at one mesh size (serial).
#[allow(clippy::too_many_lines)]
fn kernel_seconds(
    kernel: KernelId,
    mesh: &Mesh,
    materials: &MaterialTable,
    st: &mut HydroState,
    repeats: usize,
) -> f64 {
    let range = LocalRange::whole(mesh);
    let n = mesh.n_elements();
    let th = Threading::Serial;
    match kernel {
        KernelId::GetGeom => time_best(n, repeats, || {
            getgeom(mesh, st, range, th).expect("geom");
        }),
        KernelId::GetRho => time_best(n, repeats, || {
            getrho(st, range, th).expect("rho");
        }),
        KernelId::GetEin => time_best(n, repeats, || {
            getein(mesh, st, range, DT, WorkVelocity::Current, th);
        }),
        KernelId::GetPc => time_best(n, repeats, || {
            getpc(mesh, materials, st, range, th);
        }),
        KernelId::EosFused => time_best(n, repeats, || {
            eos_fused(
                mesh,
                materials,
                st,
                range,
                FusedEos {
                    dt: DT,
                    which: WorkVelocity::Current,
                    ein_from: None,
                    stages: EosStages::all(),
                },
                th,
            )
            .expect("fused");
        }),
        KernelId::GetQ => time_best(n, repeats, || {
            getq(mesh, st, range, QCoeffs::default(), th);
        }),
        KernelId::GetForce => time_best(n, repeats, || {
            getforce(mesh, st, range, HourglassControl::default(), DT, th);
        }),
        KernelId::GetAcc => time_best(n, repeats, || {
            getacc(mesh, st, range, DT, AccMode::GatherSerial);
        }),
        KernelId::GetDt => time_best(n, repeats, || {
            getdt(mesh, st, range, &DtControls::default(), Some(1e-4), th).expect("dt");
        }),
        KernelId::Ale | KernelId::Comms | KernelId::Other => unreachable!("not swept"),
    }
}

/// The kernels the sweep times, EOS chain first (raw counts), then the
/// effective-count kernels.
const SWEPT: [KernelId; 9] = [
    KernelId::GetGeom,
    KernelId::GetRho,
    KernelId::GetEin,
    KernelId::GetPc,
    KernelId::EosFused,
    KernelId::GetQ,
    KernelId::GetForce,
    KernelId::GetAcc,
    KernelId::GetDt,
];

fn sweep(meshes: &[usize], repeats: usize, peak_gflops: f64, peak_gbs: f64) -> Vec<KernelEntry> {
    let mut entries: Vec<KernelEntry> = SWEPT
        .iter()
        .map(|&kernel| {
            let (flops_per_element, bytes_per_element, counts) = counts_for(kernel);
            let ai = flops_per_element / bytes_per_element;
            KernelEntry {
                kernel,
                counts,
                flops_per_element,
                bytes_per_element,
                roofline_gflops: peak_gflops.min(ai * peak_gbs),
                runs: Vec::new(),
            }
        })
        .collect();
    for &m in meshes {
        let (mesh, materials, mut st) = prepared_state(m);
        let elements = mesh.n_elements();
        for entry in &mut entries {
            let s = kernel_seconds(entry.kernel, &mesh, &materials, &mut st, repeats);
            let gflops = entry.flops_per_element * elements as f64 / s / 1e9;
            let gbs = entry.bytes_per_element * elements as f64 / s / 1e9;
            entry.runs.push(RunPoint {
                mesh: m,
                elements,
                seconds_per_call: s,
                gflops,
                gbs,
                roofline_fraction: gflops / entry.roofline_gflops,
            });
        }
    }
    entries
}

/// Best-of-`repeats` seconds per call for a baseline/optimised pair, with
/// the samples interleaved (A, B, A, B, ...) so that slow clock drift —
/// turbo decay, a neighbour stealing the socket — biases both sides
/// equally instead of penalising whichever ran second.
fn time_pair_best(
    elements: usize,
    repeats: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let calls = (200_000 / elements).clamp(1, 40);
    a(); // warm up both paths (page in code + scratch)
    b();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        for _ in 0..calls {
            a();
        }
        best_a = best_a.min(start.elapsed().as_secs_f64() / calls as f64);
        let start = Instant::now();
        for _ in 0..calls {
            b();
        }
        best_b = best_b.min(start.elapsed().as_secs_f64() / calls as f64);
    }
    (best_a, best_b)
}

/// The optimised-vs-reference ratios on the largest mesh of the sweep.
fn measure_speedups(mesh_n: usize, repeats: usize) -> Vec<Speedup> {
    let (mesh, materials, st) = prepared_state(mesh_n);
    // Both sides of each pair need the state; the closures are only ever
    // called one at a time, so a RefCell resolves the double borrow.
    let st = std::cell::RefCell::new(st);
    let range = LocalRange::whole(&mesh);
    let n = mesh.n_elements();
    let th = Threading::Serial;
    // The ratios are the acceptance gate of this artifact, so spend more
    // samples on them than on the per-kernel sweep points.
    let repeats = 2 * repeats;

    // Fused EOS sweep vs the four-kernel chain (same state, same bits).
    let (chain_s, fused_s) = time_pair_best(
        n,
        repeats,
        || {
            let st = &mut *st.borrow_mut();
            getgeom(&mesh, st, range, th).expect("geom");
            getrho(st, range, th).expect("rho");
            getein(&mesh, st, range, DT, WorkVelocity::Current, th);
            getpc(&mesh, &materials, st, range, th);
        },
        || {
            eos_fused(
                &mesh,
                &materials,
                &mut st.borrow_mut(),
                range,
                FusedEos {
                    dt: DT,
                    which: WorkVelocity::Current,
                    ein_from: None,
                    stages: EosStages::all(),
                },
                th,
            )
            .expect("fused");
        },
    );

    // SoA force assembly vs the interleaved-row reference.
    let mut aos = Vec::new();
    let (force_ref_s, force_s) = time_pair_best(
        n,
        repeats,
        || {
            getforce_reference(
                &mesh,
                &st.borrow(),
                range,
                HourglassControl::default(),
                DT,
                th,
                &mut aos,
            );
        },
        || {
            getforce(
                &mesh,
                &mut st.borrow_mut(),
                range,
                HourglassControl::default(),
                DT,
                th,
            );
        },
    );

    // Hoisted viscosity stencil vs the in-loop-gather reference.
    let (q_ref_s, q_s) = time_pair_best(
        n,
        repeats,
        || {
            getq_reference(&mesh, &mut st.borrow_mut(), range, QCoeffs::default(), th);
        },
        || {
            getq(&mesh, &mut st.borrow_mut(), range, QCoeffs::default(), th);
        },
    );

    vec![
        Speedup {
            name: "eos_fused_vs_chain",
            mesh: mesh_n,
            baseline_s: chain_s,
            optimised_s: fused_s,
        },
        Speedup {
            name: "getforce_soa_vs_reference",
            mesh: mesh_n,
            baseline_s: force_ref_s,
            optimised_s: force_s,
        },
        Speedup {
            name: "getq_hoisted_vs_reference",
            mesh: mesh_n,
            baseline_s: q_ref_s,
            optimised_s: q_s,
        },
    ]
}

// ------------------------------------------------------------ output

fn kernel_name(k: KernelId) -> String {
    format!("{k:?}").to_lowercase()
}

fn emit_json(
    out_path: &str,
    host_cores: usize,
    repeats: usize,
    peak_gflops: f64,
    peak_gbs: f64,
    entries: &[KernelEntry],
    speedups: &[Speedup],
) -> std::io::Result<()> {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"{KERNELS_SCHEMA}\",");
    let _ = writeln!(j, "  \"host_cores\": {host_cores},");
    let _ = writeln!(j, "  \"threading\": \"serial\",");
    let _ = writeln!(j, "  \"peak_gflops\": {peak_gflops:.3},");
    let _ = writeln!(j, "  \"peak_gbs\": {peak_gbs:.3},");
    let _ = writeln!(j, "  \"repeats\": {repeats},");
    let _ = writeln!(j, "  \"kernels\": [");
    for (ei, e) in entries.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"kernel\": \"{}\",", kernel_name(e.kernel));
        let _ = writeln!(j, "      \"counts\": \"{}\",", e.counts);
        let _ = writeln!(j, "      \"flops_per_element\": {},", e.flops_per_element);
        let _ = writeln!(j, "      \"bytes_per_element\": {},", e.bytes_per_element);
        let _ = writeln!(
            j,
            "      \"arithmetic_intensity\": {:.4},",
            e.flops_per_element / e.bytes_per_element
        );
        let _ = writeln!(j, "      \"roofline_gflops\": {:.3},", e.roofline_gflops);
        let _ = writeln!(j, "      \"runs\": [");
        for (ri, r) in e.runs.iter().enumerate() {
            let comma = if ri + 1 < e.runs.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "        {{ \"mesh\": {}, \"elements\": {}, \"seconds_per_call\": {:.9}, \
                 \"gflops\": {:.3}, \"gbs\": {:.3}, \"roofline_fraction\": {:.4} }}{comma}",
                r.mesh, r.elements, r.seconds_per_call, r.gflops, r.gbs, r.roofline_fraction
            );
        }
        let _ = writeln!(j, "      ]");
        let comma = if ei + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"speedups\": [");
    for (si, s) in speedups.iter().enumerate() {
        let comma = if si + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"name\": \"{}\", \"mesh\": {}, \"baseline_s\": {:.9}, \
             \"optimised_s\": {:.9}, \"speedup\": {:.3} }}{comma}",
            s.name,
            s.mesh,
            s.baseline_s,
            s.optimised_s,
            s.ratio()
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    if let Err(message) = validate_kernels_json(&j) {
        panic!("emitted JSON violates {KERNELS_SCHEMA}: {message}");
    }
    std::fs::write(out_path, j)
}

fn parse_args() -> Args {
    let mut args = Args {
        meshes: vec![64, 128, 256, 512],
        repeats: 5,
        out_path: "BENCH_kernels.json".to_string(),
        check_speedups: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--check-speedups" {
            args.check_speedups = true;
            i += 1;
            continue;
        }
        let val = argv.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {key}");
            std::process::exit(2);
        });
        match key {
            "--meshes" => {
                args.meshes = val
                    .split(',')
                    .map(|m| m.trim().parse().expect("--meshes csv of ints"))
                    .collect();
                assert!(!args.meshes.is_empty(), "--meshes must name a mesh");
            }
            "--repeats" => args.repeats = val.parse().expect("--repeats N"),
            "--out" => args.out_path = val.clone(),
            "--validate" => {
                let text = std::fs::read_to_string(val).unwrap_or_else(|e| {
                    eprintln!("cannot read {val}: {e}");
                    std::process::exit(2);
                });
                match validate_kernels_json(&text) {
                    Ok(()) => {
                        println!("{val}: valid {KERNELS_SCHEMA}");
                        std::process::exit(0);
                    }
                    Err(message) => {
                        eprintln!("{val}: schema violation: {message}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    args
}

fn main() {
    let args = parse_args();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("Per-kernel roofline audit (serial sweeps, Noh deck)");
    let peak_gflops = probe_peak_gflops();
    let peak_gbs = probe_peak_gbs();
    println!(
        "host cores: {host_cores} | single-thread peaks: {peak_gflops:.1} GFLOP/s (mul+add), \
         {peak_gbs:.1} GB/s (triad) | best of {}",
        args.repeats
    );
    println!("{}", "=".repeat(76));

    let entries = sweep(&args.meshes, args.repeats, peak_gflops, peak_gbs);
    println!(
        "{:<10} {:>6} {:>8} {:>12} {:>9} {:>9} {:>10} {:>8}",
        "kernel", "counts", "AI", "bound GF/s", "mesh", "GFLOP/s", "GB/s", "of peak"
    );
    for e in &entries {
        for r in &e.runs {
            println!(
                "{:<10} {:>6} {:>8.3} {:>12.2} {:>6}^2 {:>9.3} {:>10.3} {:>7.1}%",
                kernel_name(e.kernel),
                e.counts,
                e.flops_per_element / e.bytes_per_element,
                e.roofline_gflops,
                r.mesh,
                r.gflops,
                r.gbs,
                100.0 * r.roofline_fraction
            );
        }
    }

    let largest = args.meshes.iter().copied().max().expect("non-empty sweep");
    let speedups = measure_speedups(largest, args.repeats);
    println!();
    println!("optimised vs reference (mesh {largest}^2, bitwise-identical outputs):");
    for s in &speedups {
        println!(
            "  {:<28} {:>9.4}ms -> {:>9.4}ms  {:>6.2}x",
            s.name,
            1e3 * s.baseline_s,
            1e3 * s.optimised_s,
            s.ratio()
        );
    }

    emit_json(
        &args.out_path,
        host_cores,
        args.repeats,
        peak_gflops,
        peak_gbs,
        &entries,
        &speedups,
    )
    .expect("write BENCH json");
    println!("{}", "=".repeat(76));
    println!("wrote {}", args.out_path);

    if args.check_speedups {
        let slow: Vec<&Speedup> = speedups.iter().filter(|s| s.ratio() <= 1.0).collect();
        if !slow.is_empty() {
            eprintln!("speedup check FAILED:");
            for s in &slow {
                eprintln!("  - {} = {:.3}x", s.name, s.ratio());
            }
            std::process::exit(1);
        }
        println!("speedup check passed (all ratios > 1)");
    }
}
