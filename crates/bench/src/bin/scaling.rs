//! Measured **hybrid-vs-flat intra-rank strong scaling** on this host:
//! the first real (non-modeled) BENCH baseline of the repository.
//!
//! Runs Noh and Sod under the hybrid executor at a fixed rank count
//! while sweeping `threads_per_rank` (default 1/2/4 — the paper's §V
//! hybrid axis, with `threads_per_rank = 1` degenerating to flat-MPI
//! kernels), plus a flat-MPI reference at the matching total core
//! count. Reports wall-clock and the **parallelized kernel section**
//! (the sum of the eight hydro kernel timers — the code region the
//! rayon pool actually fans out), and emits everything as
//! `BENCH_scaling.json` for trend tracking and the CI artifact.
//!
//! The speedup that matters (the acceptance bar for the pool rewrite)
//! is `kernel_section(threads=1) / kernel_section(threads=4)` at equal
//! rank count: on a multi-core host it should approach the thread
//! count; on a single-core host (some CI sandboxes) it stays ≈ 1 and
//! the JSON records `host_cores` so readers can tell the difference.
//!
//! Each run also records the team-wide communication counters with the
//! per-phase breakdown of the aggregated halo exchange (`comm.per_phase`
//! — messages, doubles, **recv-wait seconds** and **overlap-window
//! seconds** for `pre_viscosity` / `pre_acceleration` / `post_remap`),
//! the message, byte and latency terms of the cluster cost model.
//!
//! The whole sweep runs once with the overlapped halo exchange and once
//! with the blocking one (`--overlap both`, the default), so the JSON
//! carries an on/off comparison: identical message counts (the overlap
//! changes *when* messages are drained, never how many flow) with the
//! recv-wait attribution showing how much blocking the overlap removed.
//! `--check-overlap on` turns the invariants into hard failures: per
//! configuration, message counts must match between modes and the
//! per-link-per-step count must sit exactly on the PR 3 baseline
//! (3 Lagrangian; a dedicated small ALE pair pins 4).
//!
//! ```text
//! scaling [--problems noh,sod] [--mesh 96] [--final-time 0.02]
//!         [--ranks 1] [--threads 1,2,4] [--repeats 3]
//!         [--overlap on|off|both] [--check-overlap on|off]
//!         [--out BENCH_scaling.json]
//! scaling --validate BENCH_scaling.json
//! ```
//!
//! `--validate` runs no benchmarks: it checks an existing artifact
//! against schema `bookleaf-scaling-v3` (required header keys, the
//! eight per-kernel columns, comm totals and the per-phase breakdown)
//! and exits non-zero on the first violation, naming its JSON path. CI
//! applies it to both the freshly measured file and the committed
//! baseline. The writer also self-validates before touching the output
//! file, so an emitted artifact can never violate its own schema.

use std::fmt::Write as _;

use bookleaf_ale::{AleMode, AleOptions};
use bookleaf_bench::schema::SCALING_SCHEMA;
use bookleaf_core::{decks, Deck, ExecutorKind, RunConfig, Simulation};
use bookleaf_hydro::AccMode;
use bookleaf_mesh::SubMeshPlan;
use bookleaf_partition::{partition, Strategy};
use bookleaf_typhon::CommStats;
use bookleaf_util::{KernelId, TimerReport};

/// The kernels the pool parallelizes — the "kernel section" of the
/// acceptance criterion. (Comms, ALE setup and I/O are excluded; ALE is
/// also parallel now but the default decks run pure Lagrangian.) With
/// the fused EOS sweep on by default, the chain's time lands in the
/// `EosFused` timer instead of its four constituents, so the section
/// must sum all nine buckets to stay comparable with older baselines.
const PARALLEL_KERNELS: [KernelId; 9] = [
    KernelId::GetDt,
    KernelId::GetQ,
    KernelId::GetForce,
    KernelId::GetAcc,
    KernelId::GetGeom,
    KernelId::GetRho,
    KernelId::GetEin,
    KernelId::GetPc,
    KernelId::EosFused,
];

fn kernel_section_seconds(rep: &TimerReport) -> f64 {
    PARALLEL_KERNELS.iter().map(|&k| rep.seconds(k)).sum()
}

#[derive(Clone, Copy)]
struct Args {
    mesh: usize,
    final_time: f64,
    ranks: usize,
    repeats: usize,
    run_noh: bool,
    run_sod: bool,
    overlap_on: bool,
    overlap_off: bool,
    check_overlap: bool,
}

struct RunResult {
    label: String,
    executor: &'static str,
    threads_per_rank: usize,
    total_threads: usize,
    /// Was the halo exchange overlapped (split post/complete)?
    overlap: bool,
    wall_s: f64,
    kernel_s: f64,
    per_kernel: Vec<(KernelId, f64)>,
    steps: usize,
    /// Directed neighbour links of this run's partition (Σ over ranks).
    links: usize,
    /// Team-wide communication totals, with the per-phase breakdown of
    /// the aggregated halo exchange (messages, doubles, recv-wait and
    /// overlap-window seconds per phase).
    comm: CommStats,
}

impl RunResult {
    /// Point-to-point messages per directed neighbour link per step —
    /// the PR 3 contract (3 Lagrangian / 4 with an every-step remap).
    fn msgs_per_link_per_step(&self) -> f64 {
        let denom = (self.links * self.steps) as f64;
        if denom > 0.0 {
            self.comm.messages_sent as f64 / denom
        } else {
            0.0
        }
    }
}

/// Total directed neighbour links of a deck's partition at `ranks`,
/// reproduced with the same deterministic RCB decomposition the
/// executor uses.
fn directed_links(deck: &Deck, ranks: usize) -> usize {
    let owner = partition(&deck.mesh, ranks, Strategy::Rcb).expect("partition");
    let subs = SubMeshPlan::build(&deck.mesh, &owner, ranks).expect("submesh");
    subs.iter().map(|s| s.neighbour_ranks().len()).sum()
}

fn deck_for(problem: &str, mesh: usize) -> Deck {
    match problem {
        "noh" => decks::noh(mesh),
        "sod" => decks::sod(mesh, (mesh / 8).max(2)),
        other => panic!("unknown problem {other:?} (expected noh or sod)"),
    }
}

/// Run one configuration `repeats` times; keep the fastest run (the
/// usual strong-scaling convention — least perturbed by the OS).
fn measure(
    problem: &str,
    args: Args,
    executor: ExecutorKind,
    label: String,
    exec_name: &'static str,
    overlap: bool,
) -> RunResult {
    let deck = deck_for(problem, args.mesh);
    let mut config = RunConfig {
        final_time: args.final_time,
        executor,
        overlap,
        ..RunConfig::default()
    };
    let (threads_per_rank, total_threads) = match executor {
        ExecutorKind::Hybrid {
            ranks,
            threads_per_rank,
        } => (threads_per_rank, ranks * threads_per_rank),
        ExecutorKind::FlatMpi { ranks } => (1, ranks),
        ExecutorKind::Serial => (1, 1),
    };
    // The conflict-free gather rewrite is what makes the acceleration
    // kernel threadable (§IV-B); enable it whenever a pool exists. The
    // arithmetic is identical to the serial gather, so baselines stay
    // comparable.
    config.lag.acc_mode = if threads_per_rank > 1 {
        AccMode::GatherParallel
    } else {
        AccMode::GatherSerial
    };

    let ranks = match executor {
        ExecutorKind::Hybrid { ranks, .. } | ExecutorKind::FlatMpi { ranks } => ranks,
        ExecutorKind::Serial => 1,
    };
    let links = directed_links(&deck, ranks);

    let mut best: Option<RunResult> = None;
    for _ in 0..args.repeats.max(1) {
        let out = Simulation::builder()
            .deck(deck.clone())
            .config(config)
            .build()
            .expect("valid deck")
            .run()
            .expect("scaling run failed");
        let kernel_s = kernel_section_seconds(&out.timers);
        let candidate = RunResult {
            label: label.clone(),
            executor: exec_name,
            threads_per_rank,
            total_threads,
            overlap,
            wall_s: out.wall_seconds,
            kernel_s,
            per_kernel: PARALLEL_KERNELS
                .iter()
                .map(|&k| (k, out.timers.seconds(k)))
                .collect(),
            steps: out.steps,
            links,
            comm: out.comm,
        };
        let better = best
            .as_ref()
            .is_none_or(|b| candidate.kernel_s < b.kernel_s);
        if better {
            best = Some(candidate);
        }
    }
    best.expect("at least one repeat")
}

fn json_escape_kernel(k: KernelId) -> String {
    format!("{k:?}").to_lowercase()
}

/// The speedup reference: the *narrowest* hybrid run measured (the
/// overlapped one when both modes ran), so a sweep that omits
/// `--threads 1` still gets meaningful ratios instead of zeros.
fn baseline(runs: &[RunResult]) -> Option<&RunResult> {
    runs.iter()
        .filter(|r| r.executor == "hybrid")
        .min_by_key(|r| (r.threads_per_rank, !r.overlap))
}

fn speedup_vs(base: Option<&RunResult>, r: &RunResult) -> f64 {
    match base {
        Some(b) if r.kernel_s > 0.0 => b.kernel_s / r.kernel_s,
        _ => 0.0,
    }
}

fn emit_json(
    out_path: &str,
    args: Args,
    host_cores: usize,
    problems: &[(String, Vec<RunResult>)],
) -> std::io::Result<()> {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bookleaf-scaling-v3\",");
    let _ = writeln!(j, "  \"host_cores\": {host_cores},");
    let _ = writeln!(j, "  \"mesh\": {},", args.mesh);
    let _ = writeln!(j, "  \"final_time\": {},", args.final_time);
    let _ = writeln!(j, "  \"ranks\": {},", args.ranks);
    let _ = writeln!(j, "  \"repeats\": {},", args.repeats);
    let _ = writeln!(j, "  \"problems\": [");
    for (pi, (problem, runs)) in problems.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"problem\": \"{problem}\",");
        let _ = writeln!(j, "      \"runs\": [");
        for (ri, r) in runs.iter().enumerate() {
            let _ = writeln!(j, "        {{");
            let _ = writeln!(j, "          \"label\": \"{}\",", r.label);
            let _ = writeln!(j, "          \"executor\": \"{}\",", r.executor);
            let _ = writeln!(j, "          \"threads_per_rank\": {},", r.threads_per_rank);
            let _ = writeln!(j, "          \"total_threads\": {},", r.total_threads);
            let _ = writeln!(j, "          \"overlap\": {},", r.overlap);
            let _ = writeln!(j, "          \"steps\": {},", r.steps);
            let _ = writeln!(j, "          \"links\": {},", r.links);
            let _ = writeln!(j, "          \"wall_s\": {:.6},", r.wall_s);
            let _ = writeln!(j, "          \"kernel_section_s\": {:.6},", r.kernel_s);
            let _ = writeln!(j, "          \"kernels\": {{");
            for (ki, (k, s)) in r.per_kernel.iter().enumerate() {
                let comma = if ki + 1 < r.per_kernel.len() { "," } else { "" };
                let _ = writeln!(
                    j,
                    "            \"{}\": {:.6}{comma}",
                    json_escape_kernel(*k),
                    s
                );
            }
            let _ = writeln!(j, "          }},");
            // Team-wide wire traffic of the kept run, broken down per
            // aggregated exchange phase (the cost model's message and
            // byte terms).
            let _ = writeln!(j, "          \"comm\": {{");
            let _ = writeln!(
                j,
                "            \"messages_sent\": {},",
                r.comm.messages_sent
            );
            let _ = writeln!(j, "            \"doubles_sent\": {},", r.comm.doubles_sent);
            let _ = writeln!(j, "            \"collectives\": {},", r.comm.collectives);
            let _ = writeln!(
                j,
                "            \"msgs_per_link_per_step\": {:.3},",
                r.msgs_per_link_per_step()
            );
            let _ = writeln!(
                j,
                "            \"recv_wait_s\": {:.6},",
                r.comm.recv_wait_seconds
            );
            let _ = writeln!(
                j,
                "            \"overlap_window_s\": {:.6},",
                r.comm.overlap_window_seconds
            );
            let _ = writeln!(j, "            \"per_phase\": {{");
            for (fi, p) in r.comm.phases.iter().enumerate() {
                let comma = if fi + 1 < r.comm.phases.len() {
                    ","
                } else {
                    ""
                };
                let _ = writeln!(
                    j,
                    "              \"{}\": {{ \"messages\": {}, \"doubles\": {}, \
                     \"recv_wait_s\": {:.6}, \"overlap_window_s\": {:.6} }}{comma}",
                    p.name,
                    p.messages_sent,
                    p.doubles_sent,
                    p.recv_wait_seconds,
                    p.overlap_window_seconds
                );
            }
            let _ = writeln!(j, "            }}");
            let _ = writeln!(j, "          }}");
            let comma = if ri + 1 < runs.len() { "," } else { "" };
            let _ = writeln!(j, "        }}{comma}");
        }
        let _ = writeln!(j, "      ],");
        // Speedups of the kernel section relative to the narrowest
        // hybrid configuration measured (threads_per_rank = 1 in the
        // default sweep).
        let base = baseline(runs);
        let _ = writeln!(
            j,
            "      \"speedup_baseline_threads_per_rank\": {},",
            base.map_or(0, |b| b.threads_per_rank)
        );
        let _ = writeln!(j, "      \"kernel_section_speedup_vs_baseline\": {{");
        // Speedups track the baseline's own overlap mode so the map has
        // one entry per thread count even when both modes were swept.
        let hybrid: Vec<&RunResult> = runs
            .iter()
            .filter(|r| r.executor == "hybrid" && base.is_none_or(|b| r.overlap == b.overlap))
            .collect();
        for (hi, r) in hybrid.iter().enumerate() {
            let comma = if hi + 1 < hybrid.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "        \"{}\": {:.3}{comma}",
                r.threads_per_rank,
                speedup_vs(base, r)
            );
        }
        let _ = writeln!(j, "      }}");
        let comma = if pi + 1 < problems.len() { "," } else { "" };
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    // The writer can never emit an artifact that violates its own
    // schema contract.
    if let Err(message) = bookleaf_bench::schema::validate_scaling_json(&j) {
        panic!("emitted JSON violates {SCALING_SCHEMA}: {message}");
    }
    std::fs::write(out_path, j)
}

fn parse_args() -> (Args, Vec<usize>, String) {
    let mut args = Args {
        mesh: 96,
        final_time: 0.02,
        ranks: 1,
        repeats: 3,
        run_noh: true,
        run_sod: true,
        overlap_on: true,
        overlap_off: true,
        check_overlap: false,
    };
    let mut threads = vec![1, 2, 4];
    let mut out_path = "BENCH_scaling.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let val = argv.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {key}");
            std::process::exit(2);
        });
        match key {
            "--mesh" => args.mesh = val.parse().expect("--mesh N"),
            "--final-time" => args.final_time = val.parse().expect("--final-time T"),
            "--ranks" => args.ranks = val.parse().expect("--ranks N"),
            "--repeats" => args.repeats = val.parse().expect("--repeats N"),
            "--threads" => {
                threads = val
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads csv of ints"))
                    .collect();
            }
            "--problems" => {
                args.run_noh = false;
                args.run_sod = false;
                for p in val.split(',').map(str::trim) {
                    match p {
                        "noh" => args.run_noh = true,
                        "sod" => args.run_sod = true,
                        other => {
                            eprintln!("unknown problem {other:?} (expected noh and/or sod)");
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--overlap" => match val.as_str() {
                "on" => {
                    args.overlap_on = true;
                    args.overlap_off = false;
                }
                "off" => {
                    args.overlap_on = false;
                    args.overlap_off = true;
                }
                "both" => {
                    args.overlap_on = true;
                    args.overlap_off = true;
                }
                other => {
                    eprintln!("--overlap must be on, off or both (got {other:?})");
                    std::process::exit(2);
                }
            },
            "--check-overlap" => match val.as_str() {
                "on" => args.check_overlap = true,
                "off" => args.check_overlap = false,
                other => {
                    eprintln!("--check-overlap must be on or off (got {other:?})");
                    std::process::exit(2);
                }
            },
            "--out" => out_path = val.clone(),
            "--validate" => {
                let text = std::fs::read_to_string(val).unwrap_or_else(|e| {
                    eprintln!("cannot read {val}: {e}");
                    std::process::exit(2);
                });
                match bookleaf_bench::schema::validate_scaling_json(&text) {
                    Ok(()) => {
                        println!("{val}: valid {} ", bookleaf_bench::schema::SCALING_SCHEMA);
                        std::process::exit(0);
                    }
                    Err(message) => {
                        eprintln!("{val}: schema violation: {message}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    (args, threads, out_path)
}

fn main() {
    let (args, threads, out_path) = parse_args();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("Intra-rank strong scaling (work-stealing rayon shim)");
    println!(
        "host cores: {host_cores} | mesh {0}x{0}-ish | t_final {1} | ranks {2} | best of {3}",
        args.mesh, args.final_time, args.ranks, args.repeats
    );
    println!("{}", "=".repeat(76));

    let mut problems: Vec<(String, Vec<RunResult>)> = Vec::new();
    let selected: Vec<&str> = [("noh", args.run_noh), ("sod", args.run_sod)]
        .into_iter()
        .filter_map(|(p, on)| on.then_some(p))
        .collect();

    let modes: Vec<bool> = [(true, args.overlap_on), (false, args.overlap_off)]
        .into_iter()
        .filter_map(|(mode, on)| on.then_some(mode))
        .collect();
    if modes.is_empty() {
        eprintln!("nothing to run: both overlap modes disabled");
        std::process::exit(2);
    }

    for problem in selected {
        println!("--- {problem} ---");
        println!(
            "{:<28} {:>8} {:>11} {:>11} {:>10} {:>8}",
            "configuration", "steps", "wall (s)", "kernels (s)", "wait (s)", "speedup"
        );
        let mut runs: Vec<RunResult> = Vec::new();
        for &overlap in &modes {
            let suffix = if overlap { "" } else { " (no-overlap)" };
            for &t in &threads {
                let label = format!("hybrid {}x{t}{suffix}", args.ranks);
                let r = measure(
                    problem,
                    args,
                    ExecutorKind::Hybrid {
                        ranks: args.ranks,
                        threads_per_rank: t,
                    },
                    label,
                    "hybrid",
                    overlap,
                );
                runs.push(r);
            }
            // Flat-MPI at the same total core count as the widest hybrid,
            // the paper's §V comparison axis.
            let max_threads = threads.iter().copied().max().unwrap_or(1);
            let flat_ranks = args.ranks * max_threads;
            runs.push(measure(
                problem,
                args,
                ExecutorKind::FlatMpi { ranks: flat_ranks },
                format!("flat-mpi x{flat_ranks}{suffix}"),
                "flat_mpi",
                overlap,
            ));
        }

        let base = baseline(&runs).map(|b| (b.label.clone(), b.kernel_s));
        for r in &runs {
            let speedup = match &base {
                Some((_, b)) if r.kernel_s > 0.0 => b / r.kernel_s,
                _ => 0.0,
            };
            println!(
                "{:<28} {:>8} {:>11.4} {:>11.4} {:>10.4} {:>7.2}x",
                r.label, r.steps, r.wall_s, r.kernel_s, r.comm.recv_wait_seconds, speedup
            );
        }
        if let Some((label, _)) = &base {
            println!("(speedup baseline: {label})");
        }
        if let Some(r) = runs.last() {
            let phases: Vec<String> = r
                .comm
                .phases
                .iter()
                .map(|p| {
                    format!(
                        "{} {} msg / {} dbl / {:.4}s wait",
                        p.name, p.messages_sent, p.doubles_sent, p.recv_wait_seconds
                    )
                })
                .collect();
            println!(
                "comm ({}): {} messages ({:.1}/link/step), {} doubles, \
                 {:.4}s recv-wait, {:.4}s overlap window [{}]",
                r.label,
                r.comm.messages_sent,
                r.msgs_per_link_per_step(),
                r.comm.doubles_sent,
                r.comm.recv_wait_seconds,
                r.comm.overlap_window_seconds,
                phases.join("; ")
            );
        }
        problems.push((problem.to_string(), runs));
    }

    emit_json(&out_path, args, host_cores, &problems).expect("write BENCH json");
    println!("{}", "=".repeat(76));
    println!("wrote {out_path}");

    if args.check_overlap {
        let failures = check_overlap_invariants(args, &problems);
        if !failures.is_empty() {
            eprintln!("overlap invariant check FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!("overlap invariant check passed");
    }
}

/// The hard invariants of the overlapped exchange, as CI gates:
///
/// 1. for every configuration measured in both modes, the message and
///    double counts are identical — overlap changes *when* receives
///    drain, never what flows;
/// 2. every Lagrangian run sits exactly on the PR 3 baseline of
///    3 messages per directed link per step;
/// 3. a dedicated small ALE pair (remap every step) sits exactly on 4,
///    again identically in both modes.
fn check_overlap_invariants(args: Args, problems: &[(String, Vec<RunResult>)]) -> Vec<String> {
    let mut failures = Vec::new();
    for (problem, runs) in problems {
        for r in runs {
            if r.links > 0 && (r.msgs_per_link_per_step() - 3.0).abs() > 1e-9 {
                failures.push(format!(
                    "{problem} / {}: {:.3} messages per link per step (expected exactly 3)",
                    r.label,
                    r.msgs_per_link_per_step()
                ));
            }
        }
        for a in runs.iter().filter(|r| r.overlap) {
            let base_label = a.label.clone();
            if let Some(b) = runs
                .iter()
                .find(|r| !r.overlap && r.label == format!("{base_label} (no-overlap)"))
            {
                if a.comm.messages_sent != b.comm.messages_sent
                    || a.comm.doubles_sent != b.comm.doubles_sent
                {
                    failures.push(format!(
                        "{problem} / {}: overlap on/off traffic differs \
                         ({} vs {} msgs, {} vs {} dbls)",
                        a.label,
                        a.comm.messages_sent,
                        b.comm.messages_sent,
                        a.comm.doubles_sent,
                        b.comm.doubles_sent
                    ));
                }
            }
        }
    }

    // ALE pair: remap every step at a deliberately small size — the
    // point is the message accounting (4 per link per step), not time.
    if args.ranks >= 2 {
        let deck = decks::sod(24, 3);
        let links = directed_links(&deck, args.ranks);
        let mut counts = Vec::new();
        for overlap in [true, false] {
            let config = RunConfig {
                final_time: 0.005,
                ale: Some(AleOptions {
                    mode: AleMode::Eulerian,
                    frequency: 1,
                }),
                executor: ExecutorKind::FlatMpi { ranks: args.ranks },
                overlap,
                ..RunConfig::default()
            };
            let out = Simulation::builder()
                .deck(deck.clone())
                .config(config)
                .build()
                .expect("valid deck")
                .run()
                .expect("ALE check run failed");
            let per_link_step = out.comm.messages_sent as f64 / (links * out.steps) as f64;
            if (per_link_step - 4.0).abs() > 1e-9 {
                failures.push(format!(
                    "ALE (overlap={overlap}): {per_link_step:.3} messages per link \
                     per step (expected exactly 4)"
                ));
            }
            counts.push(out.comm.messages_sent);
        }
        if counts[0] != counts[1] {
            failures.push(format!(
                "ALE: overlap on/off message counts differ ({} vs {})",
                counts[0], counts[1]
            ));
        }
    } else {
        println!("(ALE link check skipped: needs --ranks >= 2)");
    }
    failures
}
