//! Measured **serve throughput and tail latency** — including the
//! healthy tail *under chaos*.
//!
//! Starts an in-process [`bookleaf_serve::Server`] and drives it with
//! closed-loop client threads through the real TCP wire path, in
//! phases:
//!
//! * `baseline` — healthy tenants only, small Noh/Sod decks;
//! * `cache_warm` — the same decks again, now deck-cache hits;
//! * `chaos` — the same healthy load, plus a chaos tenant submitting
//!   fault-injected and limit-violating requests. The latency columns
//!   of this phase are computed **over the healthy responses only**:
//!   the number that matters is how much the adversarial fraction
//!   perturbs the healthy tail (`p999`), not how fast errors return.
//!
//! Every phase records requests, completions, typed errors, throughput
//! and p50/p99/p999 latency into `BENCH_serve.json` (schema
//! `bookleaf-serve-v1`). The writer self-validates before touching the
//! output file; `--validate <file>` checks an existing artifact and
//! exits non-zero on the first violation.
//!
//! ```text
//! serve_load [--requests 40] [--clients 4] [--out BENCH_serve.json]
//! serve_load --validate BENCH_serve.json
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bookleaf_bench::schema::{validate_serve_json, SERVE_SCHEMA};
use bookleaf_serve::{client, QuarantinePolicy, ServeConfig, Server};

const HEALTHY_DECKS: [&str; 2] = [
    "problem = noh\nn = 10\n[control]\nmax_steps = 12\n",
    "problem = sod\nnx = 24\nny = 3\n[control]\nmax_steps = 12\n",
];

/// A deck the sentinel kills quickly and deterministically: the dt
/// floor is forced above the stable step so the collapse is typed.
const POISON_DECK: &str = "problem = noh\nn = 8\n[control]\nmax_steps = 40\n[dt]\ndt_initial = 0.1\ndt_min = 0.09\ndt_max = 0.5\n";

struct PhaseResult {
    name: &'static str,
    requests: usize,
    completed: usize,
    typed_errors: usize,
    wall: Duration,
    healthy_latencies_ms: Vec<f64>,
}

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Closed-loop: `clients` threads each issue deck requests round-robin
/// until `requests` total have been answered.
fn drive(
    addr: std::net::SocketAddr,
    name: &'static str,
    requests: usize,
    clients: usize,
    chaos: bool,
) -> PhaseResult {
    let issued = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let issued = Arc::clone(&issued);
            std::thread::spawn(move || {
                let mut completed = 0usize;
                let mut typed_errors = 0usize;
                let mut latencies = Vec::new();
                loop {
                    let i = issued.fetch_add(1, Ordering::SeqCst);
                    if i >= requests {
                        break;
                    }
                    // In the chaos phase, client 0 is the adversary.
                    let adversarial = chaos && c == 0;
                    let (deck, headers): (&str, Vec<(&str, &str)>) = if adversarial {
                        match i % 3 {
                            0 => (POISON_DECK, vec![("X-Tenant", "mallory")]),
                            1 => (
                                HEALTHY_DECKS[0],
                                vec![("X-Tenant", "mallory"), ("X-Fault-Inject", "corrupt:2:0")],
                            ),
                            _ => ("problem = noh\nn = 4096\n", vec![("X-Tenant", "mallory")]),
                        }
                    } else {
                        (
                            HEALTHY_DECKS[i % HEALTHY_DECKS.len()],
                            vec![("X-Tenant", "alice")],
                        )
                    };
                    let t0 = Instant::now();
                    let resp = client::post_run(addr, deck, &headers, Duration::from_secs(30));
                    let dt_ms = t0.elapsed().as_secs_f64() * 1e3;
                    match resp {
                        Ok(resp) if resp.status == 200 => {
                            completed += 1;
                            if !adversarial {
                                latencies.push(dt_ms);
                            }
                        }
                        Ok(_) => typed_errors += 1,
                        Err(_) => typed_errors += 1,
                    }
                }
                (completed, typed_errors, latencies)
            })
        })
        .collect();
    let mut completed = 0;
    let mut typed_errors = 0;
    let mut healthy_latencies_ms = Vec::new();
    for handle in handles {
        let (c, e, l) = handle.join().expect("client thread panicked");
        completed += c;
        typed_errors += e;
        healthy_latencies_ms.extend(l);
    }
    healthy_latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    PhaseResult {
        name,
        requests,
        completed,
        typed_errors,
        wall: started.elapsed(),
        healthy_latencies_ms,
    }
}

fn render(config: &ServeConfig, phases: &[PhaseResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SERVE_SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    );
    let _ = writeln!(out, "  \"workers\": {},", config.workers);
    let _ = writeln!(out, "  \"queue_depth\": {},", config.queue_depth);
    let _ = writeln!(out, "  \"pool_threads\": {},", config.pool_threads);
    let _ = writeln!(out, "  \"phases\": [");
    for (i, p) in phases.iter().enumerate() {
        let rps = p.completed as f64 / p.wall.as_secs_f64().max(1e-9);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", p.name);
        let _ = writeln!(out, "      \"requests\": {},", p.requests);
        let _ = writeln!(out, "      \"completed\": {},", p.completed);
        let _ = writeln!(out, "      \"typed_errors\": {},", p.typed_errors);
        let _ = writeln!(out, "      \"throughput_rps\": {rps:.3},");
        let _ = writeln!(
            out,
            "      \"p50_ms\": {:.3},",
            quantile(&p.healthy_latencies_ms, 0.50)
        );
        let _ = writeln!(
            out,
            "      \"p99_ms\": {:.3},",
            quantile(&p.healthy_latencies_ms, 0.99)
        );
        let _ = writeln!(
            out,
            "      \"p999_ms\": {:.3}",
            quantile(&p.healthy_latencies_ms, 0.999)
        );
        let _ = write!(
            out,
            "    }}{}",
            if i + 1 < phases.len() { ",\n" } else { "\n" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut requests = 40usize;
    let mut clients = 4usize;
    let mut out_path = String::from("BENCH_serve.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--validate" => {
                let path = args.get(i + 1).expect("--validate needs a file");
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                match validate_serve_json(&text) {
                    Ok(()) => {
                        println!("{path}: valid {SERVE_SCHEMA}");
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--requests" => {
                requests = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs an integer");
                i += 1;
            }
            "--clients" => {
                clients = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs an integer");
                i += 1;
            }
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 1;
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    let config = ServeConfig {
        workers: clients.max(2),
        allow_fault_injection: true,
        // Keep mallory sending: this bench measures the healthy tail
        // *under* sustained adversarial load, so quarantine must not
        // silence the adversary halfway through the phase.
        quarantine: QuarantinePolicy {
            threshold: u32::MAX,
            ..QuarantinePolicy::default()
        },
        default_deadline: Some(Duration::from_secs(30)),
        drain_dir: std::env::temp_dir().join(format!("bookleaf_serve_load_{}", std::process::id())),
        ..ServeConfig::default()
    };
    let server = Server::start(config.clone()).expect("server start");
    let addr = server.addr();
    eprintln!("serve_load: {requests} requests x {clients} clients on {addr}");

    let phases = vec![
        drive(addr, "baseline", requests, clients, false),
        drive(addr, "cache_warm", requests, clients, false),
        drive(addr, "chaos", requests, clients, true),
    ];
    for p in &phases {
        eprintln!(
            "  {}: {}/{} ok, {} typed errors, {:.1} rps, p99 {:.1} ms",
            p.name,
            p.completed,
            p.requests,
            p.typed_errors,
            p.completed as f64 / p.wall.as_secs_f64().max(1e-9),
            quantile(&p.healthy_latencies_ms, 0.99),
        );
    }
    server.shutdown();

    let json = render(&config, &phases);
    validate_serve_json(&json).expect("emitted artifact must satisfy its own schema");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("serve_load: wrote {out_path}");
}
