//! Regenerate **Table I** — the experimental configuration.
//!
//! The paper's Table I lists the five hardware/compiler configurations
//! used in the evaluation. Ours lists the corresponding *modeled
//! platforms* (the substitution of DESIGN.md §3) with the parameters the
//! performance models use, plus the execution models attached to each.

use bookleaf_device::{CpuPlatform, GpuPlatform, Interconnect};

fn main() {
    println!("Table I: experimental configuration (modeled platforms)");
    println!("{}", "=".repeat(100));
    println!(
        "{:<42} {:>8} {:>12} {:>12} {:>20}",
        "Hardware", "cores", "GF/s-core", "GB/s-core", "execution models"
    );
    for cpu in [CpuPlatform::skylake(), CpuPlatform::broadwell()] {
        println!(
            "{:<42} {:>8} {:>12.2} {:>12.2} {:>20}",
            cpu.name,
            cpu.cores(),
            cpu.gflops_per_core,
            cpu.mem_bw_per_core,
            "flat MPI, hybrid"
        );
    }
    println!(
        "{:<42} {:>8} {:>12} {:>12} {:>20}",
        "GPU", "-", "GF/s", "GB/s", ""
    );
    for (gpu, models) in [
        (GpuPlatform::p100(), "OpenMP offload, CUDA"),
        (GpuPlatform::v100(), "CUDA"),
    ] {
        println!(
            "{:<42} {:>8} {:>12.0} {:>12.0} {:>20}",
            gpu.name, "-", gpu.gflops, gpu.mem_bw, models
        );
    }
    let net = Interconnect::aries();
    println!();
    println!(
        "Interconnect (Cray Aries class): latency {:.1} us, bandwidth {:.0} GB/s",
        net.latency_us, net.bandwidth
    );
    println!();
    println!("Paper original: Cray XC50 (Cray compiler) for CPU + OpenMP offload;");
    println!("SuperMicro 2028GR-TR (PGI compiler) for CUDA Fortran — see Table I of the paper.");
}
