//! Regenerate **Table II** — per-kernel performance breakdown for the
//! Noh problem on a single node, across all seven configurations.
//!
//! Part 1 prints the *modeled* seconds for the paper's platforms (the
//! `bookleaf-device` substitution) side by side with the paper's
//! published values and the ratio, so the reproduction quality is
//! visible per cell.
//!
//! Part 2 runs a *real, measured* Noh problem on the host machine under
//! the three locally executable models (serial, flat MPI, hybrid) and
//! prints the same breakdown — the shape comparison the paper's §V-B
//! draws (flat MPI beats hybrid; viscosity dominates; the acceleration
//! kernel degrades under threading).

use bookleaf_bench::{
    format_row, measured_noh, table2_header, table2_row, NOH_MODEL_WORKLOAD, PAPER_TABLE2,
};
use bookleaf_core::ExecutorKind;
use bookleaf_device::{CpuExecution, CpuModel, CpuPlatform, GpuExecution, GpuModel};
use bookleaf_util::TimerReport;

fn modeled_reports() -> Vec<(&'static str, TimerReport)> {
    let w = NOH_MODEL_WORKLOAD;
    let skl = CpuModel::new(CpuPlatform::skylake());
    let bdw = CpuModel::new(CpuPlatform::broadwell());
    let cuda = GpuExecution::Cuda { dope_fix: false };
    vec![
        ("Skylake MPI", skl.report(w, CpuExecution::FlatMpi)),
        ("Skylake Hybrid", skl.report(w, CpuExecution::Hybrid)),
        ("Broadwell MPI", bdw.report(w, CpuExecution::FlatMpi)),
        ("Broadwell Hybrid", bdw.report(w, CpuExecution::Hybrid)),
        (
            "P100 OpenMP",
            GpuModel::p100().report(w, GpuExecution::Offload),
        ),
        ("P100 CUDA", GpuModel::p100().report(w, cuda)),
        ("V100 CUDA", GpuModel::v100().report(w, cuda)),
    ]
}

fn main() {
    println!("Table II: per-kernel breakdown, Noh single node (seconds)");
    println!("{}", "=".repeat(100));
    println!("--- modeled platforms (vs paper values) ---");
    println!("{}", table2_header());
    for ((label, rep), (plabel, paper)) in modeled_reports().iter().zip(PAPER_TABLE2) {
        assert_eq!(*label, plabel);
        let row = table2_row(rep);
        println!("{}", format_row(label, &row));
        let ratio: Vec<String> = row
            .iter()
            .zip(paper)
            .map(|(m, p)| format!("{:>9.2}", m / p))
            .collect();
        println!(
            "{:<18} {}   <- model / paper",
            "  paper ratio",
            ratio.join(" ")
        );
    }

    println!();
    println!("--- measured on this host (Noh 60x60 to t = 0.2, 5-run mean) ---");
    println!("{}", table2_header());
    let configs = [
        ("host serial", ExecutorKind::Serial),
        ("host flat MPI x4", ExecutorKind::FlatMpi { ranks: 4 }),
        (
            "host hybrid 2x2",
            ExecutorKind::Hybrid {
                ranks: 2,
                threads_per_rank: 2,
            },
        ),
    ];
    for (label, exec) in configs {
        // The paper: "the results presented are the average runtime of
        // five executions".
        let mut rows = Vec::new();
        let mut walls = Vec::new();
        for _ in 0..5 {
            let (rep, wall) = measured_noh(60, 0.2, exec);
            rows.push(table2_row(&rep));
            walls.push(wall);
        }
        let mean_row: [f64; 7] =
            std::array::from_fn(|i| rows.iter().map(|r| r[i]).sum::<f64>() / rows.len() as f64);
        println!("{}", format_row(label, &mean_row));
        let rsd = bookleaf_util::stats::rel_std_dev(&walls);
        println!(
            "{:<18} wall {:>6.3}s, run-to-run rel. std dev {:.1}%",
            "",
            bookleaf_util::stats::mean(&walls),
            100.0 * rsd
        );
    }
    println!();
    println!("Shape checks (paper's findings): flat MPI < hybrid overall; viscosity");
    println!("within ~15% between models; acceleration/getdt/getgeom blow up hybrid;");
    println!("GPUs slower than Skylake flat MPI; P100 CUDA slowest overall.");
}
