//! # bookleaf-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! BookLeaf paper (see DESIGN.md §4 for the experiment index):
//!
//! | binary | artefact |
//! |--------|----------|
//! | `table1` | Table I — experimental configuration |
//! | `table2` | Table II — per-kernel breakdown, Noh single node |
//! | `fig1`   | Fig 1 — overall Noh single-node comparison |
//! | `fig2`   | Fig 2a/2b — viscosity & acceleration kernels |
//! | `fig3`   | Fig 3 — Sod strong scaling, 8–64 nodes |
//! | `fig4`   | Fig 4a/4b — per-kernel strong scaling |
//! | `ablation_dope` | §IV-D dope-vector optimisation |
//! | `ablation_scatter` | §IV-B acceleration scatter vs gather rewrite |
//!
//! Each binary prints (a) the *modeled* paper-platform numbers produced
//! by `bookleaf-device` (our substitution for the Cray XC50 / GPU
//! testbeds — see DESIGN.md §3) next to the paper's published values,
//! and, where meaningful, (b) *measured* wall-clock numbers from real
//! runs on the host machine. Criterion micro-benches for the kernels
//! live under `benches/`.

use bookleaf_core::{decks, Deck, ExecutorKind, Simulation};
use bookleaf_device::WorkloadCount;
use bookleaf_util::{KernelId, TimerReport};

pub mod schema;

/// The modeled workload standing in for the paper's (unpublished) Noh
/// single-node problem size: chosen so the Skylake flat-MPI roofline
/// lands near Table II's 76 s overall.
pub const NOH_MODEL_WORKLOAD: WorkloadCount = WorkloadCount {
    elements: 4_000_000,
    steps: 930,
};

/// The modeled workload for the Sod strong-scaling study (Fig 3):
/// sized so the per-core working set crosses the cache boundary between
/// 8 and 16 nodes, as the paper's super-linear regime requires.
pub const SOD_SCALING_WORKLOAD: WorkloadCount = WorkloadCount {
    elements: 6_000_000,
    steps: 12_000,
};

/// Table II's published values (seconds), row-major by configuration.
/// Columns: overall, viscosity, acceleration, getdt, getgeom, getforce,
/// getpc.
pub const PAPER_TABLE2: [(&str, [f64; 7]); 7] = [
    (
        "Skylake MPI",
        [76.068, 46.365, 6.663, 8.880, 3.396, 5.364, 1.314],
    ),
    (
        "Skylake Hybrid",
        [168.633, 52.913, 15.923, 53.086, 26.654, 4.925, 2.054],
    ),
    (
        "Broadwell MPI",
        [108.978, 70.116, 8.386, 11.936, 4.834, 7.348, 1.390],
    ),
    (
        "Broadwell Hybrid",
        [180.438, 76.387, 16.142, 45.494, 20.764, 6.501, 2.108],
    ),
    (
        "P100 OpenMP",
        [186.506, 75.873, 26.806, 12.684, 16.784, 40.853, 3.608],
    ),
    (
        "P100 CUDA",
        [261.183, 97.445, 21.995, 40.433, 39.448, 0.536, 17.922],
    ),
    (
        "V100 CUDA",
        [191.636, 44.981, 11.442, 44.401, 14.789, 0.651, 10.051],
    ),
];

/// The kernels Table II reports, in column order.
pub const TABLE2_KERNELS: [KernelId; 6] = [
    KernelId::GetQ,
    KernelId::GetAcc,
    KernelId::GetDt,
    KernelId::GetGeom,
    KernelId::GetForce,
    KernelId::GetPc,
];

/// Extract the Table II row `[overall, q, acc, dt, geom, force, pc]`
/// from a report.
#[must_use]
pub fn table2_row(rep: &TimerReport) -> [f64; 7] {
    let mut row = [0.0; 7];
    row[0] = rep.total_seconds();
    for (i, k) in TABLE2_KERNELS.into_iter().enumerate() {
        row[i + 1] = rep.seconds(k);
    }
    row
}

/// Render one formatted Table II-style row.
#[must_use]
pub fn format_row(label: &str, row: &[f64; 7]) -> String {
    format!(
        "{label:<18} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        row[0], row[1], row[2], row[3], row[4], row[5], row[6]
    )
}

/// The header matching [`format_row`].
#[must_use]
pub fn table2_header() -> String {
    format!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Configuration", "Overall", "Viscosity", "Accel", "getdt", "getgeom", "getforce", "getpc"
    )
}

/// Run a *measured* Noh problem on the host under `executor`, returning
/// the per-kernel report and wall seconds. `n` is the mesh edge size.
pub fn measured_noh(n: usize, t_final: f64, executor: ExecutorKind) -> (TimerReport, f64) {
    measured(decks::noh(n), t_final, executor)
}

/// Run a measured Sod problem, used by the scaling figures.
pub fn measured_sod(nx: usize, t_final: f64, executor: ExecutorKind) -> (TimerReport, f64) {
    measured(decks::sod(nx, nx_over_8_at_least_2(nx)), t_final, executor)
}

/// One builder path for every executor — serial, flat MPI and hybrid
/// all run through `Simulation`.
fn measured(deck: Deck, t_final: f64, executor: ExecutorKind) -> (TimerReport, f64) {
    let report = Simulation::builder()
        .deck(deck)
        .final_time(t_final)
        .executor(executor)
        .build()
        .expect("valid deck")
        .run()
        .expect("measured run");
    (report.timers, report.wall_seconds)
}

/// Tube height used by [`measured_sod`]: an eighth of the length, at
/// least two elements, keeping the quasi-1-D geometry of the deck.
fn nx_over_8_at_least_2(nx: usize) -> usize {
    (nx / 8).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_are_consistent() {
        // Every published row's kernel columns must not exceed overall.
        for (label, row) in PAPER_TABLE2 {
            let sum: f64 = row[1..].iter().sum();
            assert!(
                sum <= row[0] * 1.01,
                "{label}: kernels {sum} exceed overall {}",
                row[0]
            );
        }
    }

    #[test]
    fn row_extraction_orders_kernels() {
        let mut rep = TimerReport::zero();
        rep.set_seconds(KernelId::GetQ, 5.0);
        rep.set_seconds(KernelId::GetPc, 1.0);
        let row = table2_row(&rep);
        assert_eq!(row[1], 5.0);
        assert_eq!(row[6], 1.0);
        assert_eq!(row[0], 6.0);
    }
}
