//! Schema validation for the measured-benchmark artifacts:
//! `BENCH_scaling.json` (schema `bookleaf-scaling-v3`) and
//! `BENCH_kernels.json` (schema `bookleaf-kernels-v1`).
//!
//! The artifacts are consumed by trend-tracking outside this
//! repository, so their shapes are contracts: CI validates both the
//! freshly measured files and the committed baselines against these
//! checkers (`scaling --validate <file>`, `kernels --validate <file>`),
//! and any shape change must come with a deliberate schema-version bump
//! here.
//!
//! The workspace has no JSON dependency (the serde shim is a no-op), so
//! this module carries a small recursive-descent JSON parser — enough
//! for the scaling artifact: objects, arrays, strings with the common
//! escapes, numbers, booleans and null.

/// The schema version this checker (and the `scaling` writer) emit.
pub const SCALING_SCHEMA: &str = "bookleaf-scaling-v3";

/// The schema version the per-kernel roofline bench (`kernels`) emits.
pub const KERNELS_SCHEMA: &str = "bookleaf-kernels-v1";

/// The schema version the serve load bench (`serve_load`) emits.
pub const SERVE_SCHEMA: &str = "bookleaf-serve-v1";

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes after the document at offset {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}", pos = *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let len = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&bytes[*pos..*pos + len])
                    .map_err(|_| format!("invalid UTF-8 at offset {pos}", pos = *pos))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

// --------------------------------------------------------- validation

/// The eight kernel columns every run must report.
const KERNEL_COLUMNS: [&str; 8] = [
    "getdt", "getq", "getforce", "getacc", "getgeom", "getrho", "getein", "getpc",
];

/// The per-phase comm columns of the aggregated halo exchange.
const PHASE_COLUMNS: [&str; 4] = ["messages", "doubles", "recv_wait_s", "overlap_window_s"];

fn expect<'a>(obj: &'a Json, key: &str, want: &str, at: &str) -> Result<&'a Json, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("{at}: missing required key {key:?}"))?;
    let ok = match want {
        "number" => matches!(v, Json::Num(_)),
        "string" => matches!(v, Json::Str(_)),
        "bool" => matches!(v, Json::Bool(_)),
        "array" => matches!(v, Json::Arr(_)),
        "object" => matches!(v, Json::Obj(_)),
        _ => unreachable!(),
    };
    if !ok {
        return Err(format!(
            "{at}: key {key:?} must be a {want}, found {}",
            v.type_name()
        ));
    }
    Ok(v)
}

/// Validate a `BENCH_scaling.json` document against schema v3: the
/// header keys, per-problem run arrays, the eight per-kernel columns,
/// the comm totals and the per-phase breakdown columns, and the
/// per-problem speedup summary.
pub fn validate_scaling_json(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("top level must be an object".into());
    }
    match expect(&doc, "schema", "string", "top level")? {
        Json::Str(s) if s == SCALING_SCHEMA => {}
        Json::Str(s) => {
            return Err(format!(
                "schema is {s:?} but this checker validates {SCALING_SCHEMA:?}"
            ))
        }
        _ => unreachable!(),
    }
    for key in ["host_cores", "mesh", "final_time", "ranks", "repeats"] {
        expect(&doc, key, "number", "top level")?;
    }
    let Json::Arr(problems) = expect(&doc, "problems", "array", "top level")? else {
        unreachable!()
    };
    if problems.is_empty() {
        return Err("problems array is empty".into());
    }
    for (p, problem) in problems.iter().enumerate() {
        let at = format!("problems[{p}]");
        expect(problem, "problem", "string", &at)?;
        expect(problem, "speedup_baseline_threads_per_rank", "number", &at)?;
        expect(problem, "kernel_section_speedup_vs_baseline", "object", &at)?;
        let Json::Arr(runs) = expect(problem, "runs", "array", &at)? else {
            unreachable!()
        };
        if runs.is_empty() {
            return Err(format!("{at}: runs array is empty"));
        }
        for (r, run) in runs.iter().enumerate() {
            let at = format!("{at}.runs[{r}]");
            expect(run, "label", "string", &at)?;
            expect(run, "executor", "string", &at)?;
            expect(run, "overlap", "bool", &at)?;
            for key in [
                "threads_per_rank",
                "total_threads",
                "steps",
                "links",
                "wall_s",
                "kernel_section_s",
            ] {
                expect(run, key, "number", &at)?;
            }
            let kernels = expect(run, "kernels", "object", &at)?;
            for column in KERNEL_COLUMNS {
                expect(kernels, column, "number", &format!("{at}.kernels"))?;
            }
            let comm = expect(run, "comm", "object", &at)?;
            for key in [
                "messages_sent",
                "doubles_sent",
                "collectives",
                "msgs_per_link_per_step",
                "recv_wait_s",
                "overlap_window_s",
            ] {
                expect(comm, key, "number", &format!("{at}.comm"))?;
            }
            let Json::Obj(phases) = expect(comm, "per_phase", "object", &format!("{at}.comm"))?
            else {
                unreachable!()
            };
            if phases.is_empty() {
                return Err(format!("{at}.comm.per_phase has no phases"));
            }
            for (phase, columns) in phases {
                for column in PHASE_COLUMNS {
                    expect(
                        columns,
                        column,
                        "number",
                        &format!("{at}.comm.per_phase.{phase}"),
                    )?;
                }
            }
        }
    }
    Ok(())
}

/// Validate a `BENCH_kernels.json` document against schema v1: the
/// header keys (host peaks, threading, repeats), one entry per timed
/// kernel carrying its per-element counts, arithmetic intensity and
/// roofline bound next to the per-mesh achieved GFLOP/s and GB/s, and
/// the optimised-vs-reference speedup records.
pub fn validate_kernels_json(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("top level must be an object".into());
    }
    match expect(&doc, "schema", "string", "top level")? {
        Json::Str(s) if s == KERNELS_SCHEMA => {}
        Json::Str(s) => {
            return Err(format!(
                "schema is {s:?} but this checker validates {KERNELS_SCHEMA:?}"
            ))
        }
        _ => unreachable!(),
    }
    expect(&doc, "threading", "string", "top level")?;
    for key in ["host_cores", "peak_gflops", "peak_gbs", "repeats"] {
        expect(&doc, key, "number", "top level")?;
    }
    let Json::Arr(kernels) = expect(&doc, "kernels", "array", "top level")? else {
        unreachable!()
    };
    if kernels.is_empty() {
        return Err("kernels array is empty".into());
    }
    for (k, kernel) in kernels.iter().enumerate() {
        let at = format!("kernels[{k}]");
        expect(kernel, "kernel", "string", &at)?;
        expect(kernel, "counts", "string", &at)?;
        for key in [
            "flops_per_element",
            "bytes_per_element",
            "arithmetic_intensity",
            "roofline_gflops",
        ] {
            expect(kernel, key, "number", &at)?;
        }
        let Json::Arr(runs) = expect(kernel, "runs", "array", &at)? else {
            unreachable!()
        };
        if runs.is_empty() {
            return Err(format!("{at}: runs array is empty"));
        }
        for (r, run) in runs.iter().enumerate() {
            let at = format!("{at}.runs[{r}]");
            for key in [
                "mesh",
                "elements",
                "seconds_per_call",
                "gflops",
                "gbs",
                "roofline_fraction",
            ] {
                expect(run, key, "number", &at)?;
            }
        }
    }
    let Json::Arr(speedups) = expect(&doc, "speedups", "array", "top level")? else {
        unreachable!()
    };
    if speedups.is_empty() {
        return Err("speedups array is empty".into());
    }
    for (s, speedup) in speedups.iter().enumerate() {
        let at = format!("speedups[{s}]");
        expect(speedup, "name", "string", &at)?;
        for key in ["mesh", "baseline_s", "optimised_s", "speedup"] {
            expect(speedup, key, "number", &at)?;
        }
    }
    Ok(())
}

/// Validate a `BENCH_serve.json` document against schema v1: the
/// header keys describing the server shape, and one entry per load
/// phase carrying request counts, the typed-error tally, throughput
/// and the p50/p99/p999 latency quantiles. The chaos phases measure
/// the healthy tail *under* fault injection, so the latency columns
/// are always over healthy responses only.
pub fn validate_serve_json(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("top level must be an object".into());
    }
    match expect(&doc, "schema", "string", "top level")? {
        Json::Str(s) if s == SERVE_SCHEMA => {}
        Json::Str(s) => {
            return Err(format!(
                "schema is {s:?} but this checker validates {SERVE_SCHEMA:?}"
            ))
        }
        _ => unreachable!(),
    }
    for key in ["host_cores", "workers", "queue_depth", "pool_threads"] {
        expect(&doc, key, "number", "top level")?;
    }
    let Json::Arr(phases) = expect(&doc, "phases", "array", "top level")? else {
        unreachable!()
    };
    if phases.is_empty() {
        return Err("phases array is empty".into());
    }
    for (p, phase) in phases.iter().enumerate() {
        let at = format!("phases[{p}]");
        expect(phase, "name", "string", &at)?;
        for key in [
            "requests",
            "completed",
            "typed_errors",
            "throughput_rps",
            "p50_ms",
            "p99_ms",
            "p999_ms",
        ] {
            expect(phase, key, "number", &at)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_artifact_grammar() {
        let doc = Json::parse(r#"{"a": [1, -2.5e3, "x\n", true, null], "b": {}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap(), &{
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2500.0),
                Json::Str("x\n".into()),
                Json::Bool(true),
                Json::Null,
            ])
        });
        assert_eq!(doc.get("b"), Some(&Json::Obj(vec![])));
        assert!(Json::parse("{},").is_err(), "trailing garbage accepted");
        assert!(Json::parse(r#"{"a": }"#).is_err());
    }

    #[test]
    fn committed_baseline_passes_schema_v3() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_scaling.json"
        ))
        .expect("committed BENCH_scaling.json");
        validate_scaling_json(&text).unwrap();
    }

    #[test]
    fn missing_keys_are_named_with_their_path() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_scaling.json"
        ))
        .unwrap();
        // Strip a required per-run key and the error names the path.
        let broken = text.replacen("\"kernel_section_s\"", "\"kernel_section_was\"", 1);
        let err = validate_scaling_json(&broken).unwrap_err();
        assert!(err.contains("kernel_section_s"), "{err}");
        assert!(err.contains("runs[0]"), "{err}");

        let wrong_schema = text.replacen("bookleaf-scaling-v3", "bookleaf-scaling-v2", 1);
        let err = validate_scaling_json(&wrong_schema).unwrap_err();
        assert!(err.contains("v2"), "{err}");
    }

    #[test]
    fn committed_kernels_baseline_passes_schema_v1() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_kernels.json"
        ))
        .expect("committed BENCH_kernels.json");
        validate_kernels_json(&text).unwrap();
    }

    #[test]
    fn kernels_violations_are_named_with_their_path() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_kernels.json"
        ))
        .unwrap();
        let broken = text.replacen("\"roofline_fraction\"", "\"roofline_was\"", 1);
        let err = validate_kernels_json(&broken).unwrap_err();
        assert!(err.contains("roofline_fraction"), "{err}");
        assert!(err.contains("runs[0]"), "{err}");

        let wrong_schema = text.replacen("bookleaf-kernels-v1", "bookleaf-kernels-v0", 1);
        let err = validate_kernels_json(&wrong_schema).unwrap_err();
        assert!(err.contains("v0"), "{err}");

        let no_speedups = text.replacen("\"speedups\"", "\"speedwas\"", 1);
        let err = validate_kernels_json(&no_speedups).unwrap_err();
        assert!(err.contains("speedups"), "{err}");
    }

    #[test]
    fn committed_serve_baseline_passes_schema_v1() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_serve.json"
        ))
        .expect("committed BENCH_serve.json");
        validate_serve_json(&text).unwrap();
    }

    #[test]
    fn serve_violations_are_named_with_their_path() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_serve.json"
        ))
        .unwrap();
        let broken = text.replacen("\"p999_ms\"", "\"p998_ms\"", 1);
        let err = validate_serve_json(&broken).unwrap_err();
        assert!(err.contains("p999_ms"), "{err}");
        assert!(err.contains("phases[0]"), "{err}");

        let wrong_schema = text.replacen("bookleaf-serve-v1", "bookleaf-serve-v0", 1);
        let err = validate_serve_json(&wrong_schema).unwrap_err();
        assert!(err.contains("v0"), "{err}");
    }
}
