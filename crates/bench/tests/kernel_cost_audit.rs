//! Traced cross-check of the [`bookleaf_device::RawCost`] audit table.
//!
//! Each EOS-chain kernel's per-element arithmetic is mirrored here with a
//! counting scalar type: every `add`/`sub`/`mul`/`div`/`sqrt` bumps a flop
//! counter, and every distinct double loaded or stored bumps a traffic
//! counter (constants and loop-invariant scalars such as `dt` and the
//! material `gamma` are register-resident and free; a value updated in
//! place counts once). The mirror is validated *bitwise* against the real
//! kernel on a distorted mesh — if the mirror drifts from the kernel, the
//! equality assertions fail and the counts mean nothing — and its per-
//! element tallies are then asserted equal to the `RawCost` table.

use std::cell::Cell;
use std::ops::{Add, Div, Mul, Sub};

use bookleaf_device::RawCost;
use bookleaf_eos::{EosSpec, MaterialTable, CS2_FLOOR};
use bookleaf_hydro::getein::{getein, WorkVelocity};
use bookleaf_hydro::getgeom::getgeom;
use bookleaf_hydro::getpc::getpc;
use bookleaf_hydro::getrho::getrho;
use bookleaf_hydro::{eos_fused, EosStages, FusedEos, HydroState, LocalRange, Threading};
use bookleaf_mesh::{generate_rect, Mesh, RectSpec};
use bookleaf_util::{KernelId, Vec2};

thread_local! {
    static FLOPS: Cell<u64> = const { Cell::new(0) };
    static DOUBLES: Cell<u64> = const { Cell::new(0) };
}

fn reset_counters() {
    FLOPS.with(|c| c.set(0));
    DOUBLES.with(|c| c.set(0));
}

fn flops() -> u64 {
    FLOPS.with(Cell::get)
}

fn doubles() -> u64 {
    DOUBLES.with(Cell::get)
}

fn flop() {
    FLOPS.with(|c| c.set(c.get() + 1));
}

fn touch() {
    DOUBLES.with(|c| c.set(c.get() + 1));
}

/// Counting scalar: flops on arithmetic, traffic on load/store.
#[derive(Clone, Copy)]
struct T(f64);

impl T {
    /// Load one double from memory.
    fn load(x: f64) -> T {
        touch();
        T(x)
    }

    /// An immediate constant — no memory traffic.
    const fn lit(x: f64) -> T {
        T(x)
    }

    /// Store one double to memory.
    fn store(self) -> f64 {
        touch();
        self.0
    }

    fn sqrt(self) -> T {
        flop();
        T(self.0.sqrt())
    }

    // Sign and select operations are free in the audit convention.
    fn abs(self) -> T {
        T(self.0.abs())
    }

    fn max(self, o: T) -> T {
        T(self.0.max(o.0))
    }
}

impl Add for T {
    type Output = T;
    fn add(self, r: T) -> T {
        flop();
        T(self.0 + r.0)
    }
}

impl Sub for T {
    type Output = T;
    fn sub(self, r: T) -> T {
        flop();
        T(self.0 - r.0)
    }
}

impl Mul for T {
    type Output = T;
    fn mul(self, r: T) -> T {
        flop();
        T(self.0 * r.0)
    }
}

impl Div for T {
    type Output = T;
    fn div(self, r: T) -> T {
        flop();
        T(self.0 / r.0)
    }
}

/// Counting vector mirroring `Vec2`'s component expressions exactly.
#[derive(Clone, Copy)]
struct TV {
    x: T,
    y: T,
}

impl TV {
    fn load(v: Vec2) -> TV {
        TV {
            x: T::load(v.x),
            y: T::load(v.y),
        }
    }

    fn midpoint(self, o: TV) -> TV {
        TV {
            x: T::lit(0.5) * (self.x + o.x),
            y: T::lit(0.5) * (self.y + o.y),
        }
    }

    fn dot(self, o: TV) -> T {
        self.x * o.x + self.y * o.y
    }

    fn norm(self) -> T {
        self.dot(self).sqrt()
    }

    fn distance(self, o: TV) -> T {
        (self - o).norm()
    }
}

impl Add for TV {
    type Output = TV;
    fn add(self, r: TV) -> TV {
        TV {
            x: self.x + r.x,
            y: self.y + r.y,
        }
    }
}

impl Sub for TV {
    type Output = TV;
    fn sub(self, r: TV) -> TV {
        TV {
            x: self.x - r.x,
            y: self.y - r.y,
        }
    }
}

impl Mul<T> for TV {
    type Output = TV;
    fn mul(self, s: T) -> TV {
        TV {
            x: self.x * s,
            y: self.y * s,
        }
    }
}

// --- geometry mirrors, expression-for-expression from bookleaf-mesh ---

fn quad_area_t(c: &[TV; 4]) -> T {
    T::lit(0.5)
        * ((c[0].x * c[1].y - c[1].x * c[0].y)
            + (c[1].x * c[2].y - c[2].x * c[1].y)
            + (c[2].x * c[3].y - c[3].x * c[2].y)
            + (c[3].x * c[0].y - c[0].x * c[3].y))
}

fn quad_centroid_t(c: &[TV; 4]) -> TV {
    (c[0] + c[1] + c[2] + c[3]) * T::lit(0.25)
}

fn corner_volumes_t(c: &[TV; 4]) -> [T; 4] {
    let ctr = quad_centroid_t(c);
    let mut out = [T::lit(0.0); 4];
    for i in 0..4 {
        let ip = (i + 1) % 4;
        let im = (i + 3) % 4;
        let m_next = c[i].midpoint(c[ip]);
        let m_prev = c[im].midpoint(c[i]);
        out[i] = quad_area_t(&[c[i], m_next, ctr, m_prev]);
    }
    out
}

fn edge_lengths_t(c: &[TV; 4]) -> [T; 4] {
    [
        c[0].distance(c[1]),
        c[1].distance(c[2]),
        c[2].distance(c[3]),
        c[3].distance(c[0]),
    ]
}

fn char_length_t(c: &[TV; 4]) -> T {
    let area = quad_area_t(c).abs();
    let longest = edge_lengths_t(c).into_iter().fold(T::lit(0.0), T::max);
    if longest.0 == 0.0 {
        T::lit(0.0)
    } else {
        area / longest
    }
}

// --- per-element kernel mirrors ---

/// `getgeom` body: 8 corner doubles in, volume + 4 corner volumes +
/// length out.
fn geom_mirror(corners: &[Vec2; 4]) -> (f64, [f64; 4], f64) {
    let c = [
        TV::load(corners[0]),
        TV::load(corners[1]),
        TV::load(corners[2]),
        TV::load(corners[3]),
    ];
    let v = quad_area_t(&c);
    let cv = corner_volumes_t(&c);
    let l = char_length_t(&c);
    (v.store(), cv.map(T::store), l.store())
}

/// `getrho` body: one divide.
fn rho_mirror(mass: f64, volume: f64) -> f64 {
    (T::load(mass) / T::load(volume)).store()
}

/// `getein` body. `ein` is updated in place, so it is loaded with one
/// traffic count and written back for free.
fn ein_mirror(fx: &[f64; 4], fy: &[f64; 4], vel: &[Vec2; 4], mass: f64, dt: f64, ein: f64) -> f64 {
    let rx = fx.map(T::load);
    let ry = fy.map(T::load);
    let u = [
        TV::load(vel[0]),
        TV::load(vel[1]),
        TV::load(vel[2]),
        TV::load(vel[3]),
    ];
    let m = T::load(mass);
    let e0 = T::load(ein);
    let mut work = T::lit(0.0);
    for c in 0..4 {
        work = work + (rx[c] * u[c].x + ry[c] * u[c].y);
    }
    (e0 - T::lit(dt) * work / m).0
}

/// `getpc` body, ideal-gas form of `EosSpec::pressure_cs2`.
fn pc_mirror(gamma: f64, rho: f64, ein: f64) -> (f64, f64) {
    let r = T::load(rho);
    let e = T::load(ein);
    let p = (T::lit(gamma) - T::lit(1.0)) * r * e;
    let dp_drho = (T::lit(gamma) - T::lit(1.0)) * e;
    let dp_dein = (T::lit(gamma) - T::lit(1.0)) * r;
    let cs2 = dp_drho + p / (r * r) * dp_dein;
    (p.store(), cs2.max(T::lit(CS2_FLOOR)).store())
}

/// The fused sweep: the chain's arithmetic verbatim, but volume, mass,
/// rho and ein stay in registers between stages.
#[allow(clippy::too_many_arguments)]
fn fused_mirror(
    corners: &[Vec2; 4],
    mass: f64,
    fx: &[f64; 4],
    fy: &[f64; 4],
    vel: &[Vec2; 4],
    dt: f64,
    ein: f64,
    gamma: f64,
) -> (f64, [f64; 4], f64, f64, f64, f64, f64) {
    let c = [
        TV::load(corners[0]),
        TV::load(corners[1]),
        TV::load(corners[2]),
        TV::load(corners[3]),
    ];
    let v = quad_area_t(&c);
    let cv = corner_volumes_t(&c);
    let l = char_length_t(&c);

    let m = T::load(mass);
    let r = m / v; // volume still in a register

    let rx = fx.map(T::load);
    let ry = fy.map(T::load);
    let u = [
        TV::load(vel[0]),
        TV::load(vel[1]),
        TV::load(vel[2]),
        TV::load(vel[3]),
    ];
    let e0 = T::load(ein);
    let mut work = T::lit(0.0);
    for cn in 0..4 {
        work = work + (rx[cn] * u[cn].x + ry[cn] * u[cn].y);
    }
    let e1 = e0 - T::lit(dt) * work / m; // mass still in a register

    let p = (T::lit(gamma) - T::lit(1.0)) * r * e1;
    let dp_drho = (T::lit(gamma) - T::lit(1.0)) * e1;
    let dp_dein = (T::lit(gamma) - T::lit(1.0)) * r;
    let cs2 = dp_drho + p / (r * r) * dp_dein;

    (
        v.store(),
        cv.map(T::store),
        l.store(),
        r.store(),
        e1.0, // in place: already counted at load
        p.store(),
        cs2.max(T::lit(CS2_FLOOR)).store(),
    )
}

// --- harness ---

const GAMMA: f64 = 1.4;
const DT: f64 = 1.3e-3;

fn setup() -> (Mesh, MaterialTable, HydroState) {
    let mut mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
    // Distort the interior so no per-element expression degenerates.
    for (i, p) in mesh.nodes.iter_mut().enumerate() {
        p.x += 0.03 * (1.7 * i as f64).sin();
        p.y += 0.02 * (2.3 * i as f64).cos();
    }
    let mat = MaterialTable::single(EosSpec::ideal_gas(GAMMA));
    let nodes = mesh.nodes.clone();
    let mut st = HydroState::new(
        &mesh,
        &mat,
        |e| 1.0 + 0.05 * (e % 5) as f64,
        |e| 2.0 + 0.1 * (e % 3) as f64,
        |i| {
            Vec2::new(
                (4.0 * nodes[i].x).sin() * 0.3,
                (3.0 * nodes[i].y).cos() * 0.2,
            )
        },
    )
    .unwrap();
    for e in 0..st.n_elements() {
        st.cnforce_x[e] = [0.1, -0.2, 0.15, -0.05];
        st.cnforce_y[e] = [-0.1, 0.25, -0.2, 0.05];
    }
    (mesh, mat, st)
}

fn raw(kernel: KernelId) -> RawCost {
    RawCost::of(kernel).expect("kernel has a raw audit entry")
}

/// Assert the counters match the table for `n` elements of `kernel`.
fn assert_counts(kernel: KernelId, n: usize) {
    let cost = raw(kernel);
    assert_eq!(
        flops(),
        n as u64 * cost.flops as u64,
        "{kernel:?} flops over {n} elements"
    );
    assert_eq!(
        8 * doubles(),
        n as u64 * cost.bytes as u64,
        "{kernel:?} bytes over {n} elements"
    );
}

fn element_velocities(mesh: &Mesh, u: &[Vec2], e: usize) -> [Vec2; 4] {
    let nd = mesh.elnd[e];
    [
        u[nd[0] as usize],
        u[nd[1] as usize],
        u[nd[2] as usize],
        u[nd[3] as usize],
    ]
}

#[test]
fn traced_mirrors_match_kernels_and_raw_audit() {
    let (mesh, mat, st0) = setup();
    let n = st0.n_elements();
    let range = LocalRange::whole(&mesh);

    // Run the real chain one kernel at a time, snapshotting the state
    // each mirror needs *before* its kernel runs.
    let mut st = st0.clone();
    getgeom(&mesh, &mut st, range, Threading::Serial).unwrap();
    reset_counters();
    for e in 0..n {
        let (v, cv, l) = geom_mirror(&mesh.corners(e));
        assert_eq!(v, st.volume[e], "volume[{e}]");
        assert_eq!(cv, st.cnvol[e], "cnvol[{e}]");
        assert_eq!(l, st.length[e], "length[{e}]");
    }
    assert_counts(KernelId::GetGeom, n);

    let pre_rho = st.clone();
    getrho(&mut st, range, Threading::Serial).unwrap();
    reset_counters();
    for e in 0..n {
        let r = rho_mirror(pre_rho.mass[e], pre_rho.volume[e]);
        assert_eq!(r, st.rho[e], "rho[{e}]");
    }
    assert_counts(KernelId::GetRho, n);

    let pre_ein = st.clone();
    getein(
        &mesh,
        &mut st,
        range,
        DT,
        WorkVelocity::Current,
        Threading::Serial,
    );
    reset_counters();
    for e in 0..n {
        let vel = element_velocities(&mesh, &pre_ein.u, e);
        let ein = ein_mirror(
            &pre_ein.cnforce_x[e],
            &pre_ein.cnforce_y[e],
            &vel,
            pre_ein.mass[e],
            DT,
            pre_ein.ein[e],
        );
        assert_eq!(ein, st.ein[e], "ein[{e}]");
    }
    assert_counts(KernelId::GetEin, n);

    let pre_pc = st.clone();
    getpc(&mesh, &mat, &mut st, range, Threading::Serial);
    reset_counters();
    for e in 0..n {
        let (p, cs2) = pc_mirror(GAMMA, pre_pc.rho[e], pre_pc.ein[e]);
        assert_eq!(p, st.pressure[e], "pressure[{e}]");
        assert_eq!(cs2, st.cs2[e], "cs2[{e}]");
    }
    assert_counts(KernelId::GetPc, n);
}

#[test]
fn traced_fused_mirror_matches_kernel_and_raw_audit() {
    let (mesh, mat, st0) = setup();
    let n = st0.n_elements();

    let mut st = st0.clone();
    eos_fused(
        &mesh,
        &mat,
        &mut st,
        LocalRange::whole(&mesh),
        FusedEos {
            dt: DT,
            which: WorkVelocity::Current,
            ein_from: None,
            stages: EosStages::all(),
        },
        Threading::Serial,
    )
    .unwrap();

    reset_counters();
    for e in 0..n {
        let vel = element_velocities(&mesh, &st0.u, e);
        let (v, cv, l, r, ein, p, cs2) = fused_mirror(
            &mesh.corners(e),
            st0.mass[e],
            &st0.cnforce_x[e],
            &st0.cnforce_y[e],
            &vel,
            DT,
            st0.ein[e],
            GAMMA,
        );
        assert_eq!(v, st.volume[e], "volume[{e}]");
        assert_eq!(cv, st.cnvol[e], "cnvol[{e}]");
        assert_eq!(l, st.length[e], "length[{e}]");
        assert_eq!(r, st.rho[e], "rho[{e}]");
        assert_eq!(ein, st.ein[e], "ein[{e}]");
        assert_eq!(p, st.pressure[e], "pressure[{e}]");
        assert_eq!(cs2, st.cs2[e], "cs2[{e}]");
    }
    assert_counts(KernelId::EosFused, n);
}
