//! Run configuration: everything an input namelist would set.

use bookleaf_ale::AleOptions;
use bookleaf_hydro::getdt::DtControls;
use bookleaf_hydro::LagOptions;

/// Which programming model executes the run (the paper's evaluation
/// axis, §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Single-threaded reference.
    Serial,
    /// One rank thread per simulated core, serial kernels per rank.
    FlatMpi {
        /// Number of ranks.
        ranks: usize,
    },
    /// Fewer rank threads, rayon threading inside each.
    Hybrid {
        /// Number of ranks (one per simulated NUMA region).
        ranks: usize,
        /// Rayon threads per rank.
        threads_per_rank: usize,
    },
}

/// Full run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Stop once simulated time reaches this.
    pub final_time: f64,
    /// Hard cap on steps (safety for tests).
    pub max_steps: usize,
    /// Time-step controls.
    pub dt: DtControls,
    /// Lagrangian-step options (threading, viscosity, hourglass).
    pub lag: LagOptions,
    /// ALE remap options; `None` = pure Lagrangian frame.
    pub ale: Option<AleOptions>,
    /// Execution model.
    pub executor: ExecutorKind,
    /// Overlap halo exchanges with computation (distributed executors
    /// only): each phase is posted early, interior entities are swept
    /// while its messages are in flight, and the exchange completes
    /// before the boundary sweep. Bitwise identical to the blocking
    /// schedule — this is purely a latency-hiding toggle, kept for
    /// A/B measurement.
    pub overlap: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            final_time: 0.2,
            max_steps: 100_000,
            dt: DtControls::default(),
            lag: LagOptions::default(),
            ale: None,
            executor: ExecutorKind::Serial,
            overlap: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_lagrangian() {
        let c = RunConfig::default();
        assert_eq!(c.executor, ExecutorKind::Serial);
        assert!(c.ale.is_none());
        assert!(c.final_time > 0.0);
        assert!(c.overlap, "overlapped halo exchange is the default");
    }
}
