//! Run configuration: everything an input namelist would set.

use bookleaf_ale::AleOptions;
use bookleaf_hydro::getdt::DtControls;
use bookleaf_hydro::LagOptions;

/// Which programming model executes the run (the paper's evaluation
/// axis, §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Single-threaded reference.
    Serial,
    /// One rank thread per simulated core, serial kernels per rank.
    FlatMpi {
        /// Number of ranks.
        ranks: usize,
    },
    /// Fewer rank threads, rayon threading inside each.
    Hybrid {
        /// Number of ranks (one per simulated NUMA region).
        ranks: usize,
        /// Rayon threads per rank.
        threads_per_rank: usize,
    },
}

/// Health-sentinel controls: the cheap per-step validity sweep that
/// turns silent corruption into a typed
/// [`bookleaf_util::BookLeafError::Unhealthy`] abort.
///
/// The sweep inspects the rank-local state (NaN/Inf in ρ, ε, q, u;
/// non-positive mass/volume), min-reduces an encoded verdict across the
/// team so **every rank aborts together with the same diagnosis**, and
/// checks the already-global quantities (the reduced dt against
/// `dt_floor`; total-energy drift against `drift_tol`) without extra
/// communication beyond the drift check's sum.
///
/// The sentinel is read-only: an enabled sentinel on a healthy run is
/// bitwise identical to a disabled one. It is deliberately *not* part
/// of the text input-deck format (and therefore not embedded in
/// checkpoints): it configures the harness around a run, not the
/// problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelConfig {
    /// Sweep every `every` steps; `0` disables the sentinel entirely.
    pub every: usize,
    /// Abort when the globally-reduced dt falls below this floor
    /// (checked before the step executes). The default `0.0` never
    /// fires — `getdt`'s own `dt_min` collapse error remains the first
    /// line of defence; the floor catches slow decay spirals earlier.
    pub dt_floor: f64,
    /// Abort when the relative total-energy drift from the run's start
    /// exceeds this tolerance. `None` (default) skips the check — it
    /// costs one extra sum-reduction per sweep in distributed runs.
    pub drift_tol: Option<f64>,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            every: 1,
            dt_floor: 0.0,
            drift_tol: None,
        }
    }
}

impl SentinelConfig {
    /// A disabled sentinel (no sweeps, no extra collectives).
    #[must_use]
    pub fn disabled() -> Self {
        SentinelConfig {
            every: 0,
            ..SentinelConfig::default()
        }
    }

    /// Does the sentinel run at all?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.every > 0
    }
}

/// Full run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Stop once simulated time reaches this.
    pub final_time: f64,
    /// Hard cap on steps (safety for tests).
    pub max_steps: usize,
    /// Time-step controls.
    pub dt: DtControls,
    /// Lagrangian-step options (threading, viscosity, hourglass).
    pub lag: LagOptions,
    /// ALE remap options; `None` = pure Lagrangian frame.
    pub ale: Option<AleOptions>,
    /// Execution model.
    pub executor: ExecutorKind,
    /// Overlap halo exchanges with computation (distributed executors
    /// only): each phase is posted early, interior entities are swept
    /// while its messages are in flight, and the exchange completes
    /// before the boundary sweep. Bitwise identical to the blocking
    /// schedule — this is purely a latency-hiding toggle, kept for
    /// A/B measurement.
    pub overlap: bool,
    /// Health-sentinel controls (per-step validity sweep). On by
    /// default with `every = 1`; never rendered into deck text.
    pub sentinel: SentinelConfig,
    /// Wall-clock deadline for the run; `None` (default) never fires.
    /// When the deadline expires mid-run, the rank that notices
    /// proposes a negative dt through the per-step reduction, so every
    /// rank of a team aborts together with a typed
    /// [`bookleaf_util::BookLeafError::DeadlineExceeded`] — the same
    /// symmetric-abort pattern the health sentinel uses. Like the
    /// sentinel, this configures the harness around a run, not the
    /// problem: it is never rendered into deck text or checkpoints,
    /// and an unexpired deadline is bitwise invisible.
    pub deadline: Option<std::time::Instant>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            final_time: 0.2,
            max_steps: 100_000,
            dt: DtControls::default(),
            lag: LagOptions::default(),
            ale: None,
            executor: ExecutorKind::Serial,
            overlap: true,
            sentinel: SentinelConfig::default(),
            deadline: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_lagrangian() {
        let c = RunConfig::default();
        assert_eq!(c.executor, ExecutorKind::Serial);
        assert!(c.ale.is_none());
        assert!(c.final_time > 0.0);
        assert!(c.overlap, "overlapped halo exchange is the default");
        assert!(c.sentinel.enabled(), "sentinel sweeps by default");
        assert_eq!(c.sentinel.dt_floor, 0.0);
        assert!(c.sentinel.drift_tol.is_none());
        assert!(c.deadline.is_none(), "no wall-clock deadline by default");
    }

    #[test]
    fn disabled_sentinel_never_sweeps() {
        let s = SentinelConfig::disabled();
        assert!(!s.enabled());
    }
}
