//! The four standard test problems (paper §III-B).
//!
//! * **Sod's shock tube** — two gases at rest separated by a diaphragm;
//!   removing it launches a shock, contact and rarefaction. Tests basic
//!   shock hydrodynamics.
//! * **The Noh problem** — cold gas imploding radially onto the origin;
//!   an infinite-strength shock reflects outward. Exposes the
//!   wall-heating artefact of artificial-viscosity methods.
//! * **The Sedov problem** — a point blast on a Cartesian mesh, testing
//!   non-mesh-aligned shock propagation.
//! * **Saltzmann's piston** — a 1-D piston driven through a deliberately
//!   distorted mesh, designed to excite hourglass modes.

use bookleaf_eos::{EosSpec, MaterialTable};
use bookleaf_mesh::{generate_rect, saltzmann_distort, Mesh, NodeBc, RectSpec};
use bookleaf_util::{DeckError, Vec2};

pub use crate::input::{InputDeck, ProblemSpec};

/// Parse a text input deck (see [`crate::input`] for the format).
pub fn from_str(text: &str) -> Result<InputDeck, DeckError> {
    text.parse()
}

/// Render an input deck in its canonical text form;
/// [`from_str`]`(`[`to_string`]`(d))` reproduces `d` exactly.
#[must_use]
pub fn to_string(deck: &InputDeck) -> String {
    deck.to_string()
}

/// Driven-wall (piston) specification.
#[derive(Debug, Clone, PartialEq)]
pub struct PistonSpec {
    /// Global ids of the driven nodes.
    pub nodes: Vec<u32>,
    /// Imposed velocity.
    pub velocity: Vec2,
}

/// A fully specified problem: mesh, materials, initial fields and any
/// driven boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Deck {
    /// Problem name (for reports).
    pub name: &'static str,
    /// The initial mesh.
    pub mesh: Mesh,
    /// Region-indexed EoS table.
    pub materials: MaterialTable,
    /// Initial density per element.
    pub rho: Vec<f64>,
    /// Initial specific internal energy per element.
    pub ein: Vec<f64>,
    /// Initial velocity per node.
    pub u: Vec<Vec2>,
    /// Optional driven wall.
    pub piston: Option<PistonSpec>,
    /// The standard end time for this problem.
    pub recommended_final_time: f64,
    /// The [`ProblemSpec`] this deck was constructed from, when it came
    /// from one of the standard constructors. Checkpointing needs it to
    /// embed a rebuildable description of the problem; hand-assembled
    /// decks carry `None` and cannot be checkpointed.
    pub spec: Option<ProblemSpec>,
}

impl Deck {
    /// Validate field-array lengths, the material table and the mesh,
    /// returning a typed [`DeckError`]. Every build path — the
    /// `Simulation` builder, text decks — routes through this.
    pub fn validate(&self) -> Result<(), DeckError> {
        let shape = |message: String| DeckError::Shape {
            deck: self.name.to_string(),
            message,
        };
        if self.rho.len() != self.mesh.n_elements() || self.ein.len() != self.mesh.n_elements() {
            return Err(shape(format!(
                "element fields hold {} / {} entries but the mesh has {} elements",
                self.rho.len(),
                self.ein.len(),
                self.mesh.n_elements()
            )));
        }
        if self.u.len() != self.mesh.n_nodes() {
            return Err(shape(format!(
                "node velocity field holds {} entries but the mesh has {} nodes",
                self.u.len(),
                self.mesh.n_nodes()
            )));
        }
        let invalid = |source| DeckError::Invalid {
            deck: self.name.to_string(),
            source: Box::new(source),
        };
        self.materials
            .check_regions(&self.mesh.region)
            .map_err(invalid)?;
        self.mesh.validate().map_err(invalid)?;
        Ok(())
    }

    /// The initial hydrodynamic state this deck describes, on `mesh`
    /// (the deck's own mesh or a clone of it). The one constructor the
    /// serial engine and the post-run assembled view both use, so the
    /// deck-to-state mapping cannot silently diverge between them; the
    /// distributed ranks apply the same mapping through their
    /// local-to-global index tables.
    pub fn initial_state(&self, mesh: &Mesh) -> bookleaf_util::Result<bookleaf_hydro::HydroState> {
        bookleaf_hydro::HydroState::new(
            mesh,
            &self.materials,
            |e| self.rho[e],
            |e| self.ein[e],
            |n| self.u[n],
        )
    }
}

/// Tiny positive energy standing in for "zero" in cold-gas decks (an
/// exactly-zero energy is fine physically but makes relative-error
/// comparisons in tests degenerate).
pub const COLD: f64 = 1.0e-12;

/// Sod's shock tube on `[0,1] × [0,h]` with `nx × ny` elements
/// (`h = ny/nx` keeps elements square). Left state (ρ=1, p=1), right
/// state (ρ=0.125, p=0.1), γ = 1.4 both sides. Standard end time 0.2.
pub fn sod(nx: usize, ny: usize) -> Deck {
    let h = ny as f64 / nx as f64;
    let spec = RectSpec {
        nx,
        ny,
        origin: Vec2::ZERO,
        extent: Vec2::new(1.0, h),
    };
    let mesh = generate_rect(&spec, |c| u32::from(c.x > 0.5)).expect("valid Sod spec");
    let gamma = 1.4;
    let materials = MaterialTable::new(vec![EosSpec::ideal_gas(gamma); 2]);
    let rho: Vec<f64> = mesh
        .region
        .iter()
        .map(|&r| if r == 0 { 1.0 } else { 0.125 })
        .collect();
    // ein = p / ((γ-1) ρ): left 1/(0.4·1) = 2.5, right 0.1/(0.4·0.125) = 2.
    let ein: Vec<f64> = mesh
        .region
        .iter()
        .map(|&r| if r == 0 { 2.5 } else { 2.0 })
        .collect();
    let u = vec![Vec2::ZERO; mesh.n_nodes()];
    Deck {
        name: "sod",
        spec: Some(ProblemSpec::Sod { nx, ny }),
        mesh,
        materials,
        rho,
        ein,
        u,
        piston: None,
        recommended_final_time: 0.2,
    }
}

/// The Noh problem on the quarter-plane `[0,1]²`, `n × n` elements:
/// γ = 5/3 ideal gas, ρ = 1, ε ≈ 0, radially inward unit velocity.
/// The x = 0 and y = 0 walls are the symmetry planes. Standard end time
/// 0.6 (shock at r = 0.2).
pub fn noh(n: usize) -> Deck {
    let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).expect("valid Noh spec");
    let materials = MaterialTable::single(EosSpec::ideal_gas(5.0 / 3.0));
    let rho = vec![1.0; mesh.n_elements()];
    let ein = vec![COLD; mesh.n_elements()];
    // Initial velocities are projected through the wall constraints
    // (the outer walls are reflective; an unprojected inward velocity
    // there would be destroyed by the first acceleration's BC
    // application, showing up as a spurious kinetic-energy drop). The
    // outer-wall region only matters long after the shock comparisons.
    let u: Vec<Vec2> = mesh
        .nodes
        .iter()
        .enumerate()
        .map(|(n, &p)| {
            let r = p.norm();
            if r > 1e-12 {
                mesh.node_bc[n].apply(-p / r)
            } else {
                Vec2::ZERO
            }
        })
        .collect();
    Deck {
        name: "noh",
        spec: Some(ProblemSpec::Noh { n }),
        mesh,
        materials,
        rho,
        ein,
        u,
        piston: None,
        recommended_final_time: 0.6,
    }
}

/// Sedov blast-wave energy constant for 2-D (cylindrical) γ = 1.4:
/// with total (full-plane) energy `E = SEDOV_ALPHA` the shock reaches
/// r = 1 at t = 1 (Kamm & Timmes cylindrical similarity constant).
pub const SEDOV_ALPHA: f64 = 0.9839;

/// The Sedov problem on the quarter-plane `[0,1.1]²`, `n × n` elements:
/// γ = 1.4, ρ = 1, cold everywhere except the origin cell, which receives
/// the quarter share of the blast energy. Standard end time 1.0 (shock
/// at r = 1).
pub fn sedov(n: usize) -> Deck {
    let spec = RectSpec {
        nx: n,
        ny: n,
        origin: Vec2::ZERO,
        extent: Vec2::new(1.1, 1.1),
    };
    let mesh = generate_rect(&spec, |_| 0).expect("valid Sedov spec");
    let materials = MaterialTable::single(EosSpec::ideal_gas(1.4));
    let rho = vec![1.0; mesh.n_elements()];
    let cell_vol = (1.1 / n as f64) * (1.1 / n as f64);
    let e_deposit = SEDOV_ALPHA / 4.0; // quarter plane
    let mut ein = vec![COLD; mesh.n_elements()];
    ein[0] = e_deposit / (rho[0] * cell_vol); // origin-corner cell
    let u = vec![Vec2::ZERO; mesh.n_nodes()];
    Deck {
        name: "sedov",
        spec: Some(ProblemSpec::Sedov { n }),
        mesh,
        materials,
        rho,
        ein,
        u,
        piston: None,
        recommended_final_time: 1.0,
    }
}

/// Saltzmann's piston on `[0,1] × [0,0.1]`, `nx × ny` elements with the
/// canonical skewed mesh: γ = 5/3 cold gas, a unit-velocity piston
/// driving from the left wall. Standard end time 0.6.
pub fn saltzmann(nx: usize, ny: usize) -> Deck {
    let origin = Vec2::ZERO;
    let extent = Vec2::new(1.0, 0.1);
    let spec = RectSpec {
        nx,
        ny,
        origin,
        extent,
    };
    let mut mesh = generate_rect(&spec, |_| 0).expect("valid Saltzmann spec");
    saltzmann_distort(&mut mesh, origin, extent);

    // The left wall is the piston: nodes there are *driven*, not fixed —
    // release the x constraint and record them.
    let mut piston_nodes = Vec::new();
    for n in 0..mesh.n_nodes() {
        if mesh.nodes[n].x.abs() < 1e-12 {
            mesh.node_bc[n] = NodeBc {
                fix_x: false,
                fix_y: mesh.node_bc[n].fix_y,
            };
            piston_nodes.push(n as u32);
        }
    }

    let materials = MaterialTable::single(EosSpec::ideal_gas(5.0 / 3.0));
    let rho = vec![1.0; mesh.n_elements()];
    let ein = vec![COLD; mesh.n_elements()];
    let piston_velocity = Vec2::new(1.0, 0.0);
    let u: Vec<Vec2> = (0..mesh.n_nodes())
        .map(|n| {
            if piston_nodes.contains(&(n as u32)) {
                piston_velocity
            } else {
                Vec2::ZERO
            }
        })
        .collect();
    Deck {
        name: "saltzmann",
        spec: Some(ProblemSpec::Saltzmann { nx, ny }),
        mesh,
        materials,
        rho,
        ein,
        u,
        piston: Some(PistonSpec {
            nodes: piston_nodes,
            velocity: piston_velocity,
        }),
        recommended_final_time: 0.6,
    }
}

/// Underwater-explosion deck: a JWL detonation-product bubble in Tait
/// water — the multi-material configuration that exercises the paper's
/// two non-trivial EoS options (§III-A lists ideal gas, Tait and JWL)
/// through the full driver.
///
/// Quarter-plane `[0,1]²`, `n × n` elements. Region 0 (r < 0.15):
/// compressed JWL products; region 1: Tait water at reference density.
/// The bubble drives a pressure wave into the water at the water sound
/// speed. Scaled (non-physical) parameters keep the time step civil.
pub fn underwater(n: usize) -> Deck {
    let bubble_radius = 0.15;
    let mesh = generate_rect(&RectSpec::unit_square(n), move |c| {
        u32::from(c.norm() > bubble_radius)
    })
    .expect("valid underwater spec");
    let jwl = EosSpec::Jwl {
        a: 8.0,
        b: 0.2,
        r1: 4.5,
        r2: 1.5,
        omega: 0.3,
        rho0: 1.6,
    };
    let tait = EosSpec::Tait {
        p0: 1.0e2,
        rho0: 1.0,
        gamma: 7.0,
    };
    let materials = MaterialTable::new(vec![jwl, tait]);
    let rho: Vec<f64> = mesh
        .region
        .iter()
        .map(|&r| if r == 0 { 1.6 } else { 1.0 })
        .collect();
    let ein: Vec<f64> = mesh
        .region
        .iter()
        .map(|&r| if r == 0 { 40.0 } else { COLD })
        .collect();
    let u = vec![Vec2::ZERO; mesh.n_nodes()];
    Deck {
        name: "underwater",
        spec: Some(ProblemSpec::Underwater { n }),
        mesh,
        materials,
        rho,
        ein,
        u,
        piston: None,
        recommended_final_time: 0.01,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_util::approx_eq;

    #[test]
    fn all_decks_validate() {
        for deck in [sod(20, 4), noh(10), sedov(10), saltzmann(20, 4)] {
            deck.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", deck.name));
        }
    }

    #[test]
    fn sod_states_and_pressures() {
        let d = sod(10, 2);
        let gamma = 1.4;
        // Left elements: p = (γ-1) ρ ε = 1; right: 0.1.
        for e in 0..d.mesh.n_elements() {
            let p = (gamma - 1.0) * d.rho[e] * d.ein[e];
            if d.mesh.region[e] == 0 {
                assert!(approx_eq(p, 1.0, 1e-12));
            } else {
                assert!(approx_eq(p, 0.1, 1e-12));
            }
        }
        let left = d.mesh.region.iter().filter(|&&r| r == 0).count();
        assert_eq!(left, d.mesh.n_elements() / 2);
    }

    #[test]
    fn noh_velocity_is_unit_inward_where_unconstrained() {
        let d = noh(8);
        for (n, &u) in d.u.iter().enumerate() {
            let p = d.mesh.nodes[n];
            let bc = d.mesh.node_bc[n];
            if p.norm() <= 1e-12 {
                assert_eq!(u, Vec2::ZERO);
            } else if bc == NodeBc::FREE {
                assert!(approx_eq(u.norm(), 1.0, 1e-12), "node {n}");
                assert!(u.dot(p) < 0.0, "node {n} not inward");
            } else {
                // Wall nodes: the wall-normal component is projected out
                // so the deck is consistent with its reflective BCs.
                let raw = -p / p.norm();
                assert_eq!(u, bc.apply(raw), "node {n} not projected");
            }
        }
    }

    #[test]
    fn sedov_total_energy_is_quarter_alpha() {
        let d = sedov(16);
        let cell_vol = (1.1 / 16.0) * (1.1 / 16.0);
        let total: f64 = d
            .ein
            .iter()
            .enumerate()
            .map(|(e, &ein)| ein * d.rho[e] * cell_vol)
            .sum();
        assert!(approx_eq(total, SEDOV_ALPHA / 4.0, 1e-6), "total = {total}");
        // Energy concentrated in the origin cell.
        assert!(d.ein[0] > 1e3 * d.ein[1]);
    }

    #[test]
    fn saltzmann_piston_setup() {
        let d = saltzmann(20, 4);
        let p = d.piston.as_ref().unwrap();
        assert_eq!(p.nodes.len(), 5); // ny + 1 left-wall nodes
        for &n in &p.nodes {
            assert!(d.mesh.nodes[n as usize].x.abs() < 1e-12);
            assert!(
                !d.mesh.node_bc[n as usize].fix_x,
                "piston node still pinned"
            );
            assert_eq!(d.u[n as usize], Vec2::new(1.0, 0.0));
        }
        // Mesh is actually distorted.
        let undistorted = generate_rect(
            &RectSpec {
                nx: 20,
                ny: 4,
                origin: Vec2::ZERO,
                extent: Vec2::new(1.0, 0.1),
            },
            |_| 0,
        )
        .unwrap();
        assert_ne!(d.mesh.nodes, undistorted.nodes);
    }

    #[test]
    fn deck_validation_catches_corruption() {
        let mut d = sod(4, 2);
        d.rho.pop();
        assert!(d.validate().is_err());
    }
}
