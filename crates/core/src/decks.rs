//! Problem decks: the four standard test problems (paper §III-B) plus
//! the multi-material underwater deck, all expressed through the
//! generic scenario vocabulary of [`crate::scenario`].
//!
//! * **Sod's shock tube** — two gases at rest separated by a diaphragm;
//!   removing it launches a shock, contact and rarefaction. Tests basic
//!   shock hydrodynamics.
//! * **The Noh problem** — cold gas imploding radially onto the origin;
//!   an infinite-strength shock reflects outward. Exposes the
//!   wall-heating artefact of artificial-viscosity methods.
//! * **The Sedov problem** — a point blast on a Cartesian mesh, testing
//!   non-mesh-aligned shock propagation.
//! * **Saltzmann's piston** — a 1-D piston driven through a deliberately
//!   distorted mesh, designed to excite hourglass modes.
//! * **Underwater explosion** — a JWL product bubble in Tait water, the
//!   two-material configuration.
//!
//! Each named constructor below is a thin wrapper: it builds the
//! equivalent [`crate::scenario::GenericSpec`] (see
//! `scenario::sod_generic` and friends) and stamps the standard end
//! time and the named [`ProblemSpec`]. The wrappers are *bitwise*
//! equivalent to the pre-scenario hand-rolled constructors — pinned by
//! `tests/deck_generic_parity.rs` — so nothing downstream (checkpoint
//! fixtures, equivalence suites) moves.
//!
//! A [`Deck`] itself stays the fully *resolved* form: mesh, material
//! table, per-element/node initial fields, optional piston. Text decks
//! (named or generic — the full grammar is in [`crate::input`]) resolve
//! to a `Deck` via [`from_str`] + `InputDeck::build_deck`.

use bookleaf_eos::MaterialTable;
use bookleaf_mesh::Mesh;
use bookleaf_util::{DeckError, Vec2};

use crate::scenario::{self, GenericSpec};

pub use crate::input::{InputDeck, ProblemSpec};

/// Parse a text input deck (see [`crate::input`] for the format).
pub fn from_str(text: &str) -> Result<InputDeck, DeckError> {
    text.parse()
}

/// Render an input deck in its canonical text form;
/// [`from_str`]`(`[`to_string`]`(d))` reproduces `d` exactly.
#[must_use]
pub fn to_string(deck: &InputDeck) -> String {
    deck.to_string()
}

/// Driven-wall (piston) specification.
#[derive(Debug, Clone, PartialEq)]
pub struct PistonSpec {
    /// Global ids of the driven nodes.
    pub nodes: Vec<u32>,
    /// Imposed velocity.
    pub velocity: Vec2,
}

/// A fully specified problem: mesh, materials, initial fields and any
/// driven boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Deck {
    /// Problem name (for reports).
    pub name: String,
    /// The initial mesh.
    pub mesh: Mesh,
    /// Region-indexed EoS table.
    pub materials: MaterialTable,
    /// Initial density per element.
    pub rho: Vec<f64>,
    /// Initial specific internal energy per element.
    pub ein: Vec<f64>,
    /// Initial velocity per node.
    pub u: Vec<Vec2>,
    /// Optional driven wall.
    pub piston: Option<PistonSpec>,
    /// The standard end time for this problem.
    pub recommended_final_time: f64,
    /// The [`ProblemSpec`] this deck was constructed from, when it came
    /// from a standard constructor or a generic scenario build.
    /// Checkpointing needs it to embed a rebuildable description of the
    /// problem; hand-assembled decks carry `None` and cannot be
    /// checkpointed.
    pub spec: Option<ProblemSpec>,
}

impl Deck {
    /// Validate field-array lengths, the material table and the mesh,
    /// returning a typed [`DeckError`]. Every build path — the
    /// `Simulation` builder, text decks — routes through this.
    pub fn validate(&self) -> Result<(), DeckError> {
        let shape = |message: String| DeckError::Shape {
            deck: self.name.clone(),
            message,
        };
        if self.rho.len() != self.mesh.n_elements() || self.ein.len() != self.mesh.n_elements() {
            return Err(shape(format!(
                "element fields hold {} / {} entries but the mesh has {} elements",
                self.rho.len(),
                self.ein.len(),
                self.mesh.n_elements()
            )));
        }
        if self.u.len() != self.mesh.n_nodes() {
            return Err(shape(format!(
                "node velocity field holds {} entries but the mesh has {} nodes",
                self.u.len(),
                self.mesh.n_nodes()
            )));
        }
        let invalid = |source| DeckError::Invalid {
            deck: self.name.clone(),
            source: Box::new(source),
        };
        self.materials
            .check_regions(&self.mesh.region)
            .map_err(invalid)?;
        self.mesh.validate().map_err(invalid)?;
        Ok(())
    }

    /// The initial hydrodynamic state this deck describes, on `mesh`
    /// (the deck's own mesh or a clone of it). The one constructor the
    /// serial engine and the post-run assembled view both use, so the
    /// deck-to-state mapping cannot silently diverge between them; the
    /// distributed ranks apply the same mapping through their
    /// local-to-global index tables.
    pub fn initial_state(&self, mesh: &Mesh) -> bookleaf_util::Result<bookleaf_hydro::HydroState> {
        bookleaf_hydro::HydroState::new(
            mesh,
            &self.materials,
            |e| self.rho[e],
            |e| self.ein[e],
            |n| self.u[n],
        )
    }
}

/// Tiny positive energy standing in for "zero" in cold-gas decks (an
/// exactly-zero energy is fine physically but makes relative-error
/// comparisons in tests degenerate).
pub const COLD: f64 = 1.0e-12;

/// Sedov blast-wave energy constant for 2-D (cylindrical) γ = 1.4:
/// with total (full-plane) energy `E = SEDOV_ALPHA` the shock reaches
/// r = 1 at t = 1 (Kamm & Timmes cylindrical similarity constant).
pub const SEDOV_ALPHA: f64 = 0.9839;

/// Resolve a standard problem's generic spec and stamp the named
/// [`ProblemSpec`] (with its standard end time) onto the result. The
/// generic builders are written so this is bitwise identical to the
/// old hand-rolled constructors.
fn named(generic: GenericSpec, spec: ProblemSpec) -> Deck {
    let mut deck = generic
        .build()
        .unwrap_or_else(|e| panic!("standard deck `{}` must build: {e}", spec.name()));
    deck.recommended_final_time = spec.recommended_final_time();
    deck.spec = Some(spec);
    deck
}

/// Sod's shock tube on `[0,1] × [0,h]` with `nx × ny` elements
/// (`h = ny/nx` keeps elements square). Left state (ρ=1, p=1), right
/// state (ρ=0.125, p=0.1), γ = 1.4 both sides. Standard end time 0.2.
pub fn sod(nx: usize, ny: usize) -> Deck {
    named(scenario::sod_generic(nx, ny), ProblemSpec::Sod { nx, ny })
}

/// The Noh problem on the quarter-plane `[0,1]²`, `n × n` elements:
/// γ = 5/3 ideal gas, ρ = 1, ε ≈ 0, radially inward unit velocity.
/// The x = 0 and y = 0 walls are the symmetry planes. Standard end time
/// 0.6 (shock at r = 0.2).
pub fn noh(n: usize) -> Deck {
    named(scenario::noh_generic(n), ProblemSpec::Noh { n })
}

/// The Sedov problem on the quarter-plane `[0,1.1]²`, `n × n` elements:
/// γ = 1.4, ρ = 1, cold everywhere except the origin cell, which receives
/// the quarter share of the blast energy. Standard end time 1.0 (shock
/// at r = 1).
pub fn sedov(n: usize) -> Deck {
    named(scenario::sedov_generic(n), ProblemSpec::Sedov { n })
}

/// Saltzmann's piston on `[0,1] × [0,0.1]`, `nx × ny` elements with the
/// canonical skewed mesh: γ = 5/3 cold gas, a unit-velocity piston
/// driving from the left wall. Standard end time 0.6.
pub fn saltzmann(nx: usize, ny: usize) -> Deck {
    named(
        scenario::saltzmann_generic(nx, ny),
        ProblemSpec::Saltzmann { nx, ny },
    )
}

/// Underwater-explosion deck: a JWL detonation-product bubble in Tait
/// water — the multi-material configuration that exercises the paper's
/// two non-trivial EoS options (§III-A lists ideal gas, Tait and JWL)
/// through the full driver.
///
/// Quarter-plane `[0,1]²`, `n × n` elements. Region 0 (r ≤ 0.15):
/// compressed JWL products; region 1: Tait water at reference density.
/// The bubble drives a pressure wave into the water at the water sound
/// speed. Scaled (non-physical) parameters keep the time step civil.
pub fn underwater(n: usize) -> Deck {
    named(
        scenario::underwater_generic(n),
        ProblemSpec::Underwater { n },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_mesh::{generate_rect, NodeBc, RectSpec};
    use bookleaf_util::approx_eq;

    #[test]
    fn all_decks_validate() {
        for deck in [sod(20, 4), noh(10), sedov(10), saltzmann(20, 4)] {
            deck.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", deck.name));
        }
    }

    #[test]
    fn sod_states_and_pressures() {
        let d = sod(10, 2);
        let gamma = 1.4;
        // Left elements: p = (γ-1) ρ ε = 1; right: 0.1.
        for e in 0..d.mesh.n_elements() {
            let p = (gamma - 1.0) * d.rho[e] * d.ein[e];
            if d.mesh.region[e] == 0 {
                assert!(approx_eq(p, 1.0, 1e-12));
            } else {
                assert!(approx_eq(p, 0.1, 1e-12));
            }
        }
        let left = d.mesh.region.iter().filter(|&&r| r == 0).count();
        assert_eq!(left, d.mesh.n_elements() / 2);
    }

    #[test]
    fn noh_velocity_is_unit_inward_where_unconstrained() {
        let d = noh(8);
        for (n, &u) in d.u.iter().enumerate() {
            let p = d.mesh.nodes[n];
            let bc = d.mesh.node_bc[n];
            if p.norm() <= 1e-12 {
                assert_eq!(u, Vec2::ZERO);
            } else if bc == NodeBc::FREE {
                assert!(approx_eq(u.norm(), 1.0, 1e-12), "node {n}");
                assert!(u.dot(p) < 0.0, "node {n} not inward");
            } else {
                // Wall nodes: the wall-normal component is projected out
                // so the deck is consistent with its reflective BCs.
                let raw = -p / p.norm();
                assert_eq!(u, bc.apply(raw), "node {n} not projected");
            }
        }
    }

    #[test]
    fn sedov_total_energy_is_quarter_alpha() {
        let d = sedov(16);
        let cell_vol = (1.1 / 16.0) * (1.1 / 16.0);
        let total: f64 = d
            .ein
            .iter()
            .enumerate()
            .map(|(e, &ein)| ein * d.rho[e] * cell_vol)
            .sum();
        assert!(approx_eq(total, SEDOV_ALPHA / 4.0, 1e-6), "total = {total}");
        // Energy concentrated in the origin cell.
        assert!(d.ein[0] > 1e3 * d.ein[1]);
    }

    #[test]
    fn saltzmann_piston_setup() {
        let d = saltzmann(20, 4);
        let p = d.piston.as_ref().unwrap();
        assert_eq!(p.nodes.len(), 5); // ny + 1 left-wall nodes
        for &n in &p.nodes {
            assert!(d.mesh.nodes[n as usize].x.abs() < 1e-12);
            assert!(
                !d.mesh.node_bc[n as usize].fix_x,
                "piston node still pinned"
            );
            assert_eq!(d.u[n as usize], Vec2::new(1.0, 0.0));
        }
        // Mesh is actually distorted.
        let undistorted = generate_rect(
            &RectSpec {
                nx: 20,
                ny: 4,
                origin: Vec2::ZERO,
                extent: Vec2::new(1.0, 0.1),
            },
            |_| 0,
        )
        .unwrap();
        assert_ne!(d.mesh.nodes, undistorted.nodes);
    }

    #[test]
    fn deck_validation_catches_corruption() {
        let mut d = sod(4, 2);
        d.rho.pop();
        assert!(d.validate().is_err());
    }
}
