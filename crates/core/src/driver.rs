//! The hydro loop (Algorithm 1 of the paper).
//!
//! ```text
//! procedure HYDRO()
//!     dt ← initial dt
//!     loop
//!         if after first time step then dt ← GETDT(dt)
//!         LAGSTEP(dt)
//!         if grid requires Eulerian remap then ALESTEP(dt)
//!     end loop
//! end procedure
//! ```
//!
//! [`run_loop`] is the one loop every executor drives: the serial
//! engine and the distributed ranks both call it, injecting their halo
//! hooks, the dt reduction, and (optionally) a [`LoopWatch`] through
//! which the simulation's observers fire at run/step/phase boundaries.
//!

use bookleaf_ale::{RemapOverlap, Remapper};
use bookleaf_eos::MaterialTable;
use bookleaf_hydro::getdt::getdt;
use bookleaf_hydro::{lagstep_timed, HaloOps, HydroState, KernelSplit, LocalRange};
use bookleaf_mesh::{Mesh, OverlapSets};
use bookleaf_util::{BookLeafError, HealthDiagnosis, HealthField, KernelId, Result, TimerRegistry};

use crate::config::RunConfig;
use crate::observer::{LoopWatch, StepPhase, StepView};

/// Mutable loop bookkeeping, persisted across [`run_loop`] calls so
/// drivers can resume (restart files, incremental advancement).
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopState {
    /// Simulated time.
    pub t: f64,
    /// Steps taken so far.
    pub steps: usize,
    /// Previous dt (None before the first step).
    pub dt_prev: Option<f64>,
}

/// The collectives the health sentinel needs, plus the drift
/// reference. Identity reductions serially; Typhon collectives on a
/// rank. The loop calls them at identical points on every rank (gated
/// only by the team-shared [`crate::SentinelConfig`] and the step
/// counter), which is what keeps them deadlock-free.
pub struct SentinelOps<'s> {
    /// This rank's id (0 for serial) — stamped into field diagnoses.
    pub rank: usize,
    /// Global min reduction for the encoded health word.
    pub reduce_min: &'s dyn Fn(f64) -> Result<f64>,
    /// Global sum reduction for the drift check.
    pub reduce_sum: &'s dyn Fn(f64) -> Result<f64>,
    /// This rank's energy contribution (each partition counted once).
    pub local_energy: &'s dyn Fn(&Mesh, &HydroState) -> f64,
    /// The run's starting global energy — the drift reference.
    pub energy_ref: f64,
}

/// The reusable hydro loop: serial and distributed drivers share it.
///
/// `reduce_dt` turns a local dt proposal into the global step (identity
/// for serial; Typhon `allreduce_min` for distributed runs — BookLeaf's
/// single global reduction per step). It receives the 0-based index of
/// the step about to execute, the one per-step point where a rank
/// announces progress to the comm layer (`RankCtx::begin_step`) — and
/// it is fallible, because that announcement is where a scheduled rank
/// death fires and where a collective can time out against a dead peer.
/// Continues from `cursor` and leaves it at the stop point.
///
/// With `overlap` set (distributed ranks with the overlap toggle on),
/// every halo phase is split: posted early, completed only before the
/// boundary sweep of the kernels it feeds, with the interior swept while
/// the messages are in flight — bitwise identical to the blocking
/// schedule by the interior/boundary classification's guarantees.
///
/// With `watch` set (and observers registered), the observer hooks fire
/// at run begin/end, step begin/end and after each phase. Observers are
/// read-only, so a watched run is bitwise identical to an unwatched
/// one. When the observers ask for the global energy, every rank issues
/// the extra `reduce_sum` at the same loop points — the symmetry that
/// makes the collective safe.
///
/// With `sentinel` set and `config.sentinel` enabled, the health sweep
/// runs after every `config.sentinel.every`-th step: rank-local NaN/Inf
/// and positivity checks are min-reduced into one team-wide verdict, so
/// **all ranks abort together** with the same typed
/// [`BookLeafError::Unhealthy`] diagnosis; the reduced dt is checked
/// against the configured floor before each step executes.
#[allow(clippy::too_many_arguments)]
pub fn run_loop<H: HaloOps>(
    mesh: &mut Mesh,
    materials: &MaterialTable,
    state: &mut HydroState,
    range: LocalRange,
    config: &RunConfig,
    remapper: Option<&Remapper>,
    halo: &mut H,
    mut reduce_dt: impl FnMut(usize, f64) -> Result<f64>,
    timers: &TimerRegistry,
    cursor: &mut LoopState,
    overlap: Option<&OverlapSets>,
    watch: Option<&LoopWatch<'_>>,
    sentinel: Option<&SentinelOps<'_>>,
) -> Result<()> {
    let mut t = cursor.t;
    let mut steps = cursor.steps;
    let mut dt_prev = cursor.dt_prev;
    let split = overlap.map(|o| KernelSplit {
        el_boundary: &o.el_boundary,
        nd_boundary: &o.nd_boundary,
    });

    let watch = watch.filter(|w| !w.observers.is_empty());
    let needs = watch.map(|w| w.observers.needs()).unwrap_or_default();
    let sentry = sentinel.filter(|_| config.sentinel.enabled());

    if let Some(w) = watch {
        let view = boundary_view(
            w,
            needs,
            steps,
            t,
            dt_prev.unwrap_or(0.0),
            mesh,
            state,
            range,
        )?;
        w.observers.run_begin(&view);
    }

    while t < config.final_time - 1e-15 && steps < config.max_steps {
        let proposal = timers.time(KernelId::GetDt, || {
            getdt(
                mesh,
                state,
                range,
                &config.dt,
                dt_prev,
                config.lag.threading,
            )
        })?;
        // Wall-clock deadline: expiry is rank-local knowledge (clocks
        // are not synchronized), so the rank that notices proposes a
        // negative dt through the reduction every rank already
        // performs — the whole team sees the same negative verdict and
        // aborts together, no extra collective. A hydro dt is always
        // positive, so a negative proposal is unambiguous.
        let mut local_dt = proposal.dt;
        if let Some(deadline) = config.deadline {
            if std::time::Instant::now() >= deadline {
                local_dt = -1.0;
            }
        }
        let mut dt = timers.time(KernelId::Comms, || reduce_dt(steps, local_dt))?;
        if dt < 0.0 {
            return Err(BookLeafError::DeadlineExceeded { step: steps });
        }
        // Dt-collapse floor: checked on the *pre-clamp* reduced dt (the
        // final-step truncation below legitimately produces a tiny dt).
        // The reduced dt is identical on every rank, so the abort is
        // symmetric without further communication.
        if sentry.is_some() {
            let floor = config.sentinel.dt_floor;
            if dt < floor {
                return Err(BookLeafError::Unhealthy {
                    step: steps,
                    diagnosis: HealthDiagnosis::DtFloor { dt, floor },
                });
            }
        }
        dt = dt.min(config.final_time - t);

        if let Some(w) = watch {
            w.observers.step_begin(&StepView {
                step: steps,
                time: t,
                dt,
                mesh,
                state,
                range,
                rank: w.rank,
                n_ranks: w.n_ranks,
                comm: needs.comm_stats.then(|| (w.comm_stats)()),
                global_energy: None,
            });
        }

        lagstep_timed(
            mesh,
            materials,
            state,
            range,
            dt,
            &config.lag,
            halo,
            timers,
            split,
        )?;
        if let Some(w) = watch {
            let view = mid_view(w, steps, t + dt, dt, mesh, state, range);
            w.observers.phase_end(StepPhase::Lagrangian, &view);
        }

        if let (Some(remapper), true) = (remapper, config.ale.is_some()) {
            if remapper.due(steps) {
                match overlap {
                    Some(o) => {
                        // Overlapped remap: the exchange is posted and
                        // completed inside the remap itself, so its cost
                        // lands in the ALE bucket; the wait that could
                        // not be hidden is in CommStats either way.
                        timers.time(KernelId::Ale, || {
                            remapper.step_overlapped(
                                mesh,
                                state,
                                range,
                                config.lag.threading,
                                Some(RemapOverlap {
                                    pre_el: &o.remap_pre_el,
                                    pre_nd: &o.remap_pre_nd,
                                }),
                                halo,
                            )
                        })?;
                    }
                    None => {
                        timers.time(KernelId::Ale, || {
                            remapper.step_threaded(mesh, state, range, config.lag.threading)
                        })?;
                        timers.time(KernelId::Comms, || halo.post_remap(mesh, state))?;
                    }
                }
                if let Some(w) = watch {
                    let view = mid_view(w, steps, t + dt, dt, mesh, state, range);
                    w.observers.phase_end(StepPhase::Remap, &view);
                }
            }
        }

        t += dt;
        dt_prev = Some(dt);
        steps += 1;

        // Health sweep: gated purely by the team-shared config and the
        // step counter, so every rank reduces (or skips) together.
        if let Some(s) = sentry {
            if steps.is_multiple_of(config.sentinel.every) {
                sentinel_check(s, config, steps - 1, mesh, state, range)?;
            }
        }

        if let Some(w) = watch {
            let view = boundary_view(w, needs, steps - 1, t, dt, mesh, state, range)?;
            w.observers.step_end(&view);
        }
    }
    *cursor = LoopState { t, steps, dt_prev };

    if let Some(w) = watch {
        let view = boundary_view(
            w,
            needs,
            steps,
            t,
            dt_prev.unwrap_or(0.0),
            mesh,
            state,
            range,
        )?;
        w.observers.run_end(&view);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The health sentinel.

/// Health-word encoding: a diagnosis packed into an f64 so one
/// `allreduce_min` gives every rank the same verdict. Healthy is +∞;
/// any finite word decodes to the team's lexicographically smallest
/// `(kind, field, rank, index)` finding. The packed integer stays below
/// 2^52, well inside f64's exact range.
fn encode_health(kind: u64, field: HealthField, rank: usize, index: usize) -> f64 {
    debug_assert!(kind < 4 && rank < (1 << 14) && index < (1 << 32));
    let word = (kind << 50) | (field.code() << 46) | ((rank as u64) << 32) | index as u64;
    word as f64
}

/// Inverse of [`encode_health`]; `None` for the healthy word (+∞) or
/// anything malformed.
fn decode_health(word: f64) -> Option<HealthDiagnosis> {
    if !word.is_finite() || word < 0.0 {
        return None;
    }
    let w = word as u64;
    let field = HealthField::from_code((w >> 46) & 0xF)?;
    let rank = ((w >> 32) & 0x3FFF) as usize;
    let index = (w & 0xFFFF_FFFF) as usize;
    match w >> 50 {
        0 => Some(HealthDiagnosis::NonFinite { rank, field, index }),
        1 => Some(HealthDiagnosis::NonPositive { rank, field, index }),
        _ => None,
    }
}

/// Rank-local validity sweep: first finding in a fixed scan order
/// (deterministic), encoded; +∞ when healthy. Scans the owned elements
/// and the active nodes — ghosts mirror their owners, so scanning them
/// would only duplicate findings the min-reduction dedups anyway.
fn sentinel_sweep(state: &HydroState, range: LocalRange, rank: usize) -> f64 {
    for e in 0..range.n_owned_el {
        if !state.rho[e].is_finite() {
            return encode_health(0, HealthField::Rho, rank, e);
        }
        if !state.ein[e].is_finite() {
            return encode_health(0, HealthField::Ein, rank, e);
        }
        if !state.q[e].is_finite() {
            return encode_health(0, HealthField::Q, rank, e);
        }
        if state.mass[e] <= 0.0 || state.mass[e].is_nan() {
            return encode_health(1, HealthField::Mass, rank, e);
        }
        if state.volume[e] <= 0.0 || state.volume[e].is_nan() {
            return encode_health(1, HealthField::Volume, rank, e);
        }
    }
    for n in 0..range.n_active_nd {
        if !state.u[n].x.is_finite() || !state.u[n].y.is_finite() {
            return encode_health(0, HealthField::U, rank, n);
        }
    }
    f64::INFINITY
}

/// One sentinel firing: sweep, min-reduce the verdict, then (opt-in)
/// the conservation-drift check. `step` is the 0-based index of the
/// step whose results are being inspected.
fn sentinel_check(
    s: &SentinelOps<'_>,
    config: &RunConfig,
    step: usize,
    mesh: &Mesh,
    state: &HydroState,
    range: LocalRange,
) -> Result<()> {
    let verdict = (s.reduce_min)(sentinel_sweep(state, range, s.rank))?;
    if let Some(diagnosis) = decode_health(verdict) {
        return Err(BookLeafError::Unhealthy { step, diagnosis });
    }
    if let Some(tol) = config.sentinel.drift_tol {
        let energy = (s.reduce_sum)((s.local_energy)(mesh, state))?;
        if s.energy_ref != 0.0 {
            let drift = ((energy - s.energy_ref) / s.energy_ref).abs();
            if drift > tol {
                return Err(BookLeafError::Unhealthy {
                    step,
                    diagnosis: HealthDiagnosis::ConservationDrift { drift, tol },
                });
            }
        }
    }
    Ok(())
}

/// Run/step-boundary view: snapshots the comm counters and reduces the
/// global energy when the observers asked for them. The energy
/// reduction is collective, so whether it runs depends only on the
/// team-shared observer needs and the hook point — never on anything
/// rank-local. Fallible because that reduction can time out against a
/// dead rank.
#[allow(clippy::too_many_arguments)]
fn boundary_view<'a>(
    w: &LoopWatch<'_>,
    needs: crate::observer::ObserverNeeds,
    step: usize,
    time: f64,
    dt: f64,
    mesh: &'a Mesh,
    state: &'a HydroState,
    range: LocalRange,
) -> Result<StepView<'a>> {
    let global_energy = if needs.global_energy {
        Some((w.reduce_sum)((w.local_energy)(mesh, state))?)
    } else {
        None
    };
    Ok(StepView {
        step,
        time,
        dt,
        mesh,
        state,
        range,
        rank: w.rank,
        n_ranks: w.n_ranks,
        comm: needs.comm_stats.then(|| (w.comm_stats)()),
        global_energy,
    })
}

/// Mid-step view (phase hooks): no comm snapshot, no energy reduction —
/// phase hooks may fire a different number of times per step on
/// remapping vs non-remapping steps, so nothing collective is allowed
/// here.
fn mid_view<'a>(
    w: &LoopWatch<'_>,
    step: usize,
    time: f64,
    dt: f64,
    mesh: &'a Mesh,
    state: &'a HydroState,
    range: LocalRange,
) -> StepView<'a> {
    StepView {
        step,
        time,
        dt,
        mesh,
        state,
        range,
        rank: w.rank,
        n_ranks: w.n_ranks,
        comm: None,
        global_energy: None,
    }
}

#[cfg(test)]
mod sentinel_tests {
    use super::*;
    use crate::config::SentinelConfig;
    use crate::decks;
    use crate::sim::Simulation;
    use bookleaf_hydro::LocalRange;
    use bookleaf_util::Vec2;

    #[test]
    fn health_words_round_trip_and_order() {
        for (kind, field, rank, index) in [
            (0u64, HealthField::Rho, 0usize, 0usize),
            (0, HealthField::U, 3, 17),
            (1, HealthField::Mass, 1, 999_999),
            (1, HealthField::Volume, 13, u32::MAX as usize),
        ] {
            let w = encode_health(kind, field, rank, index);
            assert!(w.is_finite());
            let d = decode_health(w).expect("decodable");
            match d {
                HealthDiagnosis::NonFinite {
                    rank: r,
                    field: f,
                    index: i,
                } => {
                    assert_eq!(kind, 0);
                    assert_eq!((r, f, i), (rank, field, index));
                }
                HealthDiagnosis::NonPositive {
                    rank: r,
                    field: f,
                    index: i,
                } => {
                    assert_eq!(kind, 1);
                    assert_eq!((r, f, i), (rank, field, index));
                }
                other => panic!("unexpected diagnosis {other:?}"),
            }
        }
        // Healthy word decodes to nothing, and every encoded word beats it
        // in a min-reduction.
        assert!(decode_health(f64::INFINITY).is_none());
        assert!(encode_health(1, HealthField::Volume, 0, 7) < f64::INFINITY);
        // NonFinite findings outrank NonPositive ones in the reduction
        // (smaller kind ⇒ smaller word), so the most alarming diagnosis
        // wins ties deterministically.
        assert!(
            encode_health(0, HealthField::U, 5, 1000) < encode_health(1, HealthField::Mass, 0, 0)
        );
    }

    #[test]
    fn sweep_finds_the_first_bad_entry_in_scan_order() {
        let deck = decks::sod(8, 2);
        let mut state = deck.initial_state(&deck.mesh).unwrap();
        let range = LocalRange::whole(&deck.mesh);
        assert_eq!(sentinel_sweep(&state, range, 0), f64::INFINITY);

        state.u[3] = Vec2::new(f64::NAN, 0.0);
        let d = decode_health(sentinel_sweep(&state, range, 2)).unwrap();
        assert_eq!(
            d,
            HealthDiagnosis::NonFinite {
                rank: 2,
                field: HealthField::U,
                index: 3
            }
        );

        // An element finding preempts the node finding (elements scan
        // first), and NaN rho at element 5 preempts bad mass at 6.
        state.mass[6] = 0.0;
        state.rho[5] = f64::NAN;
        let d = decode_health(sentinel_sweep(&state, range, 0)).unwrap();
        assert_eq!(
            d,
            HealthDiagnosis::NonFinite {
                rank: 0,
                field: HealthField::Rho,
                index: 5
            }
        );
    }

    #[test]
    fn dt_floor_aborts_with_a_typed_diagnosis() {
        let deck = decks::sod(16, 2);
        let config = RunConfig {
            final_time: 0.05,
            sentinel: SentinelConfig {
                dt_floor: 1.0, // every hydro dt is far below this
                ..SentinelConfig::default()
            },
            ..RunConfig::default()
        };
        let err = Simulation::builder()
            .deck(deck)
            .config(config)
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            bookleaf_util::BookLeafError::Unhealthy {
                step,
                diagnosis: HealthDiagnosis::DtFloor { dt, floor },
            } => {
                assert_eq!(step, 0, "the floor trips before the first step runs");
                assert!(dt < floor);
                assert_eq!(floor, 1.0);
            }
            other => panic!("expected DtFloor, got {other:?}"),
        }
    }

    #[test]
    fn drift_tolerance_aborts_when_set_impossibly_tight() {
        let deck = decks::sod(16, 2);
        let config = RunConfig {
            final_time: 0.05,
            sentinel: SentinelConfig {
                drift_tol: Some(0.0), // any rounding-level drift trips it
                ..SentinelConfig::default()
            },
            ..RunConfig::default()
        };
        let err = Simulation::builder()
            .deck(deck)
            .config(config)
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            bookleaf_util::BookLeafError::Unhealthy {
                diagnosis: HealthDiagnosis::ConservationDrift { drift, tol },
                ..
            } => {
                assert!(drift > tol);
            }
            other => panic!("expected ConservationDrift, got {other:?}"),
        }
    }

    #[test]
    fn enabled_sentinel_is_bitwise_invisible_on_a_healthy_run() {
        let run = |sentinel: SentinelConfig| {
            let mut sim = Simulation::builder()
                .deck(decks::sod(20, 2))
                .final_time(0.01)
                .config(RunConfig {
                    final_time: 0.01,
                    sentinel,
                    ..RunConfig::default()
                })
                .build()
                .unwrap();
            sim.run().unwrap();
            sim.state().rho.clone()
        };
        let with = run(SentinelConfig {
            drift_tol: Some(1.0),
            ..SentinelConfig::default()
        });
        let without = run(SentinelConfig::disabled());
        for (e, (a, b)) in with.iter().zip(&without).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sentinel moved a bit at {e}");
        }
    }
}
