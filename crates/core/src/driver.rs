//! The hydro loop driver (Algorithm 1 of the paper).
//!
//! ```text
//! procedure HYDRO()
//!     dt ← initial dt
//!     loop
//!         if after first time step then dt ← GETDT(dt)
//!         LAGSTEP(dt)
//!         if grid requires Eulerian remap then ALESTEP(dt)
//!     end loop
//! end procedure
//! ```
//!
//! [`Driver`] is the serial entry point; the distributed executors reuse
//! its core via [`run_loop`], injecting halo hooks and the dt reduction.

use std::time::Instant;

use bookleaf_ale::{RemapOverlap, Remapper};
use bookleaf_eos::MaterialTable;
use bookleaf_hydro::getdt::getdt;
use bookleaf_hydro::{lagstep_timed, HaloOps, HydroState, KernelSplit, LocalRange};
use bookleaf_mesh::{Mesh, OverlapSets};
use bookleaf_util::{KernelId, Result, TimerRegistry, TimerReport};

use crate::config::RunConfig;
use crate::decks::Deck;
use crate::halo::{LocalPiston, SerialHooks};

/// What a completed run reports.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Steps taken.
    pub steps: usize,
    /// Final simulated time.
    pub time: f64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-kernel timing (Table II buckets).
    pub timers: TimerReport,
    /// Total energy at t = 0 (internal + kinetic, owned partition).
    pub energy_start: f64,
    /// Total energy at the end.
    pub energy_end: f64,
}

impl RunSummary {
    /// Relative energy drift over the run (0 for a perfectly compatible
    /// Lagrangian run; the remap and driven boundaries do work).
    #[must_use]
    pub fn energy_drift(&self) -> f64 {
        if self.energy_start == 0.0 {
            return 0.0;
        }
        ((self.energy_end - self.energy_start) / self.energy_start).abs()
    }
}

/// Mutable loop bookkeeping, persisted across [`run_loop`] calls so
/// drivers can resume (restart files, incremental advancement).
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopState {
    /// Simulated time.
    pub t: f64,
    /// Steps taken so far.
    pub steps: usize,
    /// Previous dt (None before the first step).
    pub dt_prev: Option<f64>,
}

/// The reusable hydro loop: serial and distributed drivers share it.
///
/// `reduce_dt` turns a local dt proposal into the global step (identity
/// for serial; Typhon `allreduce_min` for distributed runs — BookLeaf's
/// single global reduction per step). Continues from `cursor` and leaves
/// it at the stop point.
///
/// With `overlap` set (distributed ranks with the overlap toggle on),
/// every halo phase is split: posted early, completed only before the
/// boundary sweep of the kernels it feeds, with the interior swept while
/// the messages are in flight — bitwise identical to the blocking
/// schedule by the interior/boundary classification's guarantees.
#[allow(clippy::too_many_arguments)]
pub fn run_loop<H: HaloOps>(
    mesh: &mut Mesh,
    materials: &MaterialTable,
    state: &mut HydroState,
    range: LocalRange,
    config: &RunConfig,
    remapper: Option<&Remapper>,
    halo: &mut H,
    mut reduce_dt: impl FnMut(f64) -> f64,
    timers: &TimerRegistry,
    cursor: &mut LoopState,
    overlap: Option<&OverlapSets>,
) -> Result<()> {
    let mut t = cursor.t;
    let mut steps = cursor.steps;
    let mut dt_prev = cursor.dt_prev;
    let split = overlap.map(|o| KernelSplit {
        el_boundary: &o.el_boundary,
        nd_boundary: &o.nd_boundary,
    });

    while t < config.final_time - 1e-15 && steps < config.max_steps {
        let proposal = timers.time(KernelId::GetDt, || {
            getdt(
                mesh,
                state,
                range,
                &config.dt,
                dt_prev,
                config.lag.threading,
            )
        })?;
        let mut dt = timers.time(KernelId::Comms, || reduce_dt(proposal.dt));
        dt = dt.min(config.final_time - t);

        lagstep_timed(
            mesh,
            materials,
            state,
            range,
            dt,
            &config.lag,
            halo,
            timers,
            split,
        )?;

        if let (Some(remapper), true) = (remapper, config.ale.is_some()) {
            if remapper.due(steps) {
                match overlap {
                    Some(o) => {
                        // Overlapped remap: the exchange is posted and
                        // completed inside the remap itself, so its cost
                        // lands in the ALE bucket; the wait that could
                        // not be hidden is in CommStats either way.
                        timers.time(KernelId::Ale, || {
                            remapper.step_overlapped(
                                mesh,
                                state,
                                range,
                                config.lag.threading,
                                Some(RemapOverlap {
                                    pre_el: &o.remap_pre_el,
                                    pre_nd: &o.remap_pre_nd,
                                }),
                                halo,
                            )
                        })?;
                    }
                    None => {
                        timers.time(KernelId::Ale, || {
                            remapper.step_threaded(mesh, state, range, config.lag.threading)
                        })?;
                        timers.time(KernelId::Comms, || halo.post_remap(mesh, state));
                    }
                }
            }
        }

        t += dt;
        dt_prev = Some(dt);
        steps += 1;
    }
    *cursor = LoopState { t, steps, dt_prev };
    Ok(())
}

/// Serial driver owning the whole problem.
#[derive(Debug)]
pub struct Driver {
    mesh: Mesh,
    materials: MaterialTable,
    state: HydroState,
    remapper: Option<Remapper>,
    hooks: SerialHooks,
    config: RunConfig,
    timers: TimerRegistry,
    cursor: LoopState,
}

impl Driver {
    /// Build a driver from a deck and a configuration.
    pub fn new(deck: Deck, config: RunConfig) -> Result<Driver> {
        deck.validate()?;
        let Deck {
            mesh,
            materials,
            rho,
            ein,
            u,
            piston,
            ..
        } = deck;
        let state = HydroState::new(&mesh, &materials, |e| rho[e], |e| ein[e], |n| u[n])?;
        let remapper = config.ale.map(|opts| Remapper::new(&mesh, opts));
        let hooks = SerialHooks {
            piston: piston.map(|p| LocalPiston {
                nodes: p.nodes,
                velocity: p.velocity,
            }),
        };
        Ok(Driver {
            mesh,
            materials,
            state,
            remapper,
            hooks,
            config,
            timers: TimerRegistry::new(),
            cursor: LoopState::default(),
        })
    }

    /// Run (or continue) to the configured final time.
    pub fn run(&mut self) -> Result<RunSummary> {
        let range = LocalRange::whole(&self.mesh);
        let e0 = self.state.total_energy(&self.mesh, range);
        let start = Instant::now();
        run_loop(
            &mut self.mesh,
            &self.materials,
            &mut self.state,
            range,
            &self.config,
            self.remapper.as_ref(),
            &mut self.hooks,
            |dt| dt,
            &self.timers,
            &mut self.cursor,
            None,
        )?;
        let wall = start.elapsed().as_secs_f64();
        let e1 = self.state.total_energy(&self.mesh, range);
        Ok(RunSummary {
            steps: self.cursor.steps,
            time: self.cursor.t,
            wall_seconds: wall,
            timers: self.timers.report(),
            energy_start: e0,
            energy_end: e1,
        })
    }

    /// Advance to `t_target` (clamped to the configured final time),
    /// leaving the driver resumable. Useful for in-situ output loops.
    pub fn advance_to(&mut self, t_target: f64) -> Result<&LoopState> {
        let range = LocalRange::whole(&self.mesh);
        let capped = RunConfig {
            final_time: t_target.min(self.config.final_time),
            ..self.config
        };
        run_loop(
            &mut self.mesh,
            &self.materials,
            &mut self.state,
            range,
            &capped,
            self.remapper.as_ref(),
            &mut self.hooks,
            |dt| dt,
            &self.timers,
            &mut self.cursor,
            None,
        )?;
        Ok(&self.cursor)
    }

    /// Capture a restart snapshot of the current state.
    #[must_use]
    pub fn snapshot(&self) -> crate::output::Snapshot {
        crate::output::Snapshot::capture(
            &self.mesh,
            &self.state,
            self.cursor.t,
            self.cursor.steps as u64,
            self.cursor.dt_prev.unwrap_or(self.config.dt.dt_initial),
        )
    }

    /// Restore a snapshot (shapes must match this driver's deck) and
    /// resume from its time/step cursor.
    pub fn restore(&mut self, snap: &crate::output::Snapshot) -> Result<()> {
        snap.restore(&mut self.mesh, &mut self.state)?;
        self.cursor = LoopState {
            t: snap.time,
            steps: snap.steps as usize,
            dt_prev: Some(snap.dt_prev),
        };
        // Re-derive the dependent fields the snapshot omits.
        let range = LocalRange::whole(&self.mesh);
        bookleaf_hydro::getgeom::getgeom(
            &self.mesh,
            &mut self.state,
            range,
            self.config.lag.threading,
        )?;
        bookleaf_hydro::getpc::getpc(
            &self.mesh,
            &self.materials,
            &mut self.state,
            range,
            self.config.lag.threading,
        );
        Ok(())
    }

    /// The current mesh.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> &HydroState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decks;
    use bookleaf_ale::{AleMode, AleOptions};

    #[test]
    fn sod_runs_and_conserves_energy() {
        let deck = decks::sod(40, 4);
        let config = RunConfig {
            final_time: 0.05,
            ..RunConfig::default()
        };
        let mut driver = Driver::new(deck, config).unwrap();
        let s = driver.run().unwrap();
        assert!(s.steps > 10, "only {} steps", s.steps);
        assert!((s.time - 0.05).abs() < 1e-12, "time {}", s.time);
        assert!(s.energy_drift() < 1e-9, "drift {}", s.energy_drift());
        // The shock moved: density left of the diaphragm region rose
        // somewhere beyond 1 or fell below 0.125 nowhere...
        let rho_max = driver.state().rho.iter().cloned().fold(0.0f64, f64::max);
        assert!(rho_max > 0.13, "no wave formed");
    }

    #[test]
    fn noh_forms_a_shock() {
        let deck = decks::noh(16);
        let config = RunConfig {
            final_time: 0.1,
            ..RunConfig::default()
        };
        let mut driver = Driver::new(deck, config).unwrap();
        driver.run().unwrap();
        // Gas piles up near the origin: density at the origin cell grows
        // towards 16 (the analytic post-shock value for gamma = 5/3).
        assert!(
            driver.state().rho[0] > 3.0,
            "rho[0] = {}",
            driver.state().rho[0]
        );
    }

    #[test]
    fn saltzmann_piston_compresses() {
        let deck = decks::saltzmann(40, 4);
        let config = RunConfig {
            final_time: 0.1,
            ..RunConfig::default()
        };
        let mut driver = Driver::new(deck, config).unwrap();
        let s = driver.run().unwrap();
        assert!(s.steps > 0);
        // Piston wall has advanced to x ≈ 0.1.
        let min_x = driver
            .mesh()
            .nodes
            .iter()
            .map(|p| p.x)
            .fold(f64::INFINITY, f64::min);
        assert!((min_x - 0.1).abs() < 0.02, "piston at {min_x}");
        // Shocked gas is denser than 1 near the piston.
        let rho_max = driver.state().rho.iter().cloned().fold(0.0f64, f64::max);
        assert!(rho_max > 2.0, "rho_max = {rho_max}");
    }

    #[test]
    fn eulerian_ale_keeps_mesh_fixed() {
        let deck = decks::sod(30, 3);
        let x_ref = deck.mesh.nodes.clone();
        let config = RunConfig {
            final_time: 0.03,
            ale: Some(AleOptions {
                mode: AleMode::Eulerian,
                frequency: 1,
            }),
            ..RunConfig::default()
        };
        let mut driver = Driver::new(deck, config).unwrap();
        driver.run().unwrap();
        for (n, p) in driver.mesh().nodes.iter().enumerate() {
            assert!(p.distance(x_ref[n]) < 1e-12, "node {n} wandered");
        }
        // And mass is still conserved.
        let m: f64 = driver.state().mass.iter().sum();
        let expect = 0.5 * 0.1 + 0.5 * 0.1 * 0.125;
        assert!((m - expect).abs() < 1e-9, "mass {m} vs {expect}");
    }

    #[test]
    fn timers_populate_table_two_buckets() {
        let deck = decks::noh(12);
        let config = RunConfig {
            final_time: 0.02,
            ..RunConfig::default()
        };
        let mut driver = Driver::new(deck, config).unwrap();
        let s = driver.run().unwrap();
        for k in [
            KernelId::GetQ,
            KernelId::GetAcc,
            KernelId::GetDt,
            KernelId::GetGeom,
        ] {
            assert!(s.timers.calls(k) > 0, "{k:?} never timed");
        }
        // Two viscosity calls per step (predictor + corrector).
        assert_eq!(s.timers.calls(KernelId::GetQ), 2 * s.steps as u64);
        assert_eq!(s.timers.calls(KernelId::GetAcc), s.steps as u64);
    }

    #[test]
    fn max_steps_caps_the_run() {
        let deck = decks::sod(20, 2);
        let config = RunConfig {
            final_time: 10.0,
            max_steps: 5,
            ..RunConfig::default()
        };
        let mut driver = Driver::new(deck, config).unwrap();
        let s = driver.run().unwrap();
        assert_eq!(s.steps, 5);
        assert!(s.time < 10.0);
    }

    #[test]
    fn final_time_hit_exactly() {
        let deck = decks::sod(20, 2);
        let config = RunConfig {
            final_time: 0.01,
            ..RunConfig::default()
        };
        let mut driver = Driver::new(deck, config).unwrap();
        let s = driver.run().unwrap();
        assert!((s.time - 0.01).abs() < 1e-14);
    }
}
