//! The hydro loop (Algorithm 1 of the paper).
//!
//! ```text
//! procedure HYDRO()
//!     dt ← initial dt
//!     loop
//!         if after first time step then dt ← GETDT(dt)
//!         LAGSTEP(dt)
//!         if grid requires Eulerian remap then ALESTEP(dt)
//!     end loop
//! end procedure
//! ```
//!
//! [`run_loop`] is the one loop every executor drives: the serial
//! engine and the distributed ranks both call it, injecting their halo
//! hooks, the dt reduction, and (optionally) a [`LoopWatch`] through
//! which the simulation's observers fire at run/step/phase boundaries.
//!
//! [`Driver`] is the pre-`Simulation` serial entry point, kept as a
//! thin deprecated wrapper over [`crate::Simulation`].

use bookleaf_ale::{RemapOverlap, Remapper};
use bookleaf_eos::MaterialTable;
use bookleaf_hydro::getdt::getdt;
use bookleaf_hydro::{lagstep_timed, HaloOps, HydroState, KernelSplit, LocalRange};
use bookleaf_mesh::{Mesh, OverlapSets};
use bookleaf_util::{KernelId, Result, TimerRegistry};

use crate::config::RunConfig;
use crate::decks::Deck;
use crate::observer::{LoopWatch, StepPhase, StepView};
use crate::report::RunReport;
use crate::sim::Simulation;

/// What a completed run reports.
#[deprecated(note = "use `RunReport` (the unified report for every executor)")]
pub type RunSummary = RunReport;

/// Mutable loop bookkeeping, persisted across [`run_loop`] calls so
/// drivers can resume (restart files, incremental advancement).
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopState {
    /// Simulated time.
    pub t: f64,
    /// Steps taken so far.
    pub steps: usize,
    /// Previous dt (None before the first step).
    pub dt_prev: Option<f64>,
}

/// The reusable hydro loop: serial and distributed drivers share it.
///
/// `reduce_dt` turns a local dt proposal into the global step (identity
/// for serial; Typhon `allreduce_min` for distributed runs — BookLeaf's
/// single global reduction per step). Continues from `cursor` and leaves
/// it at the stop point.
///
/// With `overlap` set (distributed ranks with the overlap toggle on),
/// every halo phase is split: posted early, completed only before the
/// boundary sweep of the kernels it feeds, with the interior swept while
/// the messages are in flight — bitwise identical to the blocking
/// schedule by the interior/boundary classification's guarantees.
///
/// With `watch` set (and observers registered), the observer hooks fire
/// at run begin/end, step begin/end and after each phase. Observers are
/// read-only, so a watched run is bitwise identical to an unwatched
/// one. When the observers ask for the global energy, every rank issues
/// the extra `reduce_sum` at the same loop points — the symmetry that
/// makes the collective safe.
#[allow(clippy::too_many_arguments)]
pub fn run_loop<H: HaloOps>(
    mesh: &mut Mesh,
    materials: &MaterialTable,
    state: &mut HydroState,
    range: LocalRange,
    config: &RunConfig,
    remapper: Option<&Remapper>,
    halo: &mut H,
    mut reduce_dt: impl FnMut(f64) -> f64,
    timers: &TimerRegistry,
    cursor: &mut LoopState,
    overlap: Option<&OverlapSets>,
    watch: Option<&LoopWatch<'_>>,
) -> Result<()> {
    let mut t = cursor.t;
    let mut steps = cursor.steps;
    let mut dt_prev = cursor.dt_prev;
    let split = overlap.map(|o| KernelSplit {
        el_boundary: &o.el_boundary,
        nd_boundary: &o.nd_boundary,
    });

    let watch = watch.filter(|w| !w.observers.is_empty());
    let needs = watch.map(|w| w.observers.needs()).unwrap_or_default();

    if let Some(w) = watch {
        let view = boundary_view(
            w,
            needs,
            steps,
            t,
            dt_prev.unwrap_or(0.0),
            mesh,
            state,
            range,
        );
        w.observers.run_begin(&view);
    }

    while t < config.final_time - 1e-15 && steps < config.max_steps {
        let proposal = timers.time(KernelId::GetDt, || {
            getdt(
                mesh,
                state,
                range,
                &config.dt,
                dt_prev,
                config.lag.threading,
            )
        })?;
        let mut dt = timers.time(KernelId::Comms, || reduce_dt(proposal.dt));
        dt = dt.min(config.final_time - t);

        if let Some(w) = watch {
            w.observers.step_begin(&StepView {
                step: steps,
                time: t,
                dt,
                mesh,
                state,
                range,
                rank: w.rank,
                n_ranks: w.n_ranks,
                comm: needs.comm_stats.then(|| (w.comm_stats)()),
                global_energy: None,
            });
        }

        lagstep_timed(
            mesh,
            materials,
            state,
            range,
            dt,
            &config.lag,
            halo,
            timers,
            split,
        )?;
        if let Some(w) = watch {
            let view = mid_view(w, steps, t + dt, dt, mesh, state, range);
            w.observers.phase_end(StepPhase::Lagrangian, &view);
        }

        if let (Some(remapper), true) = (remapper, config.ale.is_some()) {
            if remapper.due(steps) {
                match overlap {
                    Some(o) => {
                        // Overlapped remap: the exchange is posted and
                        // completed inside the remap itself, so its cost
                        // lands in the ALE bucket; the wait that could
                        // not be hidden is in CommStats either way.
                        timers.time(KernelId::Ale, || {
                            remapper.step_overlapped(
                                mesh,
                                state,
                                range,
                                config.lag.threading,
                                Some(RemapOverlap {
                                    pre_el: &o.remap_pre_el,
                                    pre_nd: &o.remap_pre_nd,
                                }),
                                halo,
                            )
                        })?;
                    }
                    None => {
                        timers.time(KernelId::Ale, || {
                            remapper.step_threaded(mesh, state, range, config.lag.threading)
                        })?;
                        timers.time(KernelId::Comms, || halo.post_remap(mesh, state));
                    }
                }
                if let Some(w) = watch {
                    let view = mid_view(w, steps, t + dt, dt, mesh, state, range);
                    w.observers.phase_end(StepPhase::Remap, &view);
                }
            }
        }

        t += dt;
        dt_prev = Some(dt);
        steps += 1;

        if let Some(w) = watch {
            let view = boundary_view(w, needs, steps - 1, t, dt, mesh, state, range);
            w.observers.step_end(&view);
        }
    }
    *cursor = LoopState { t, steps, dt_prev };

    if let Some(w) = watch {
        let view = boundary_view(
            w,
            needs,
            steps,
            t,
            dt_prev.unwrap_or(0.0),
            mesh,
            state,
            range,
        );
        w.observers.run_end(&view);
    }
    Ok(())
}

/// Run/step-boundary view: snapshots the comm counters and reduces the
/// global energy when the observers asked for them. The energy
/// reduction is collective, so whether it runs depends only on the
/// team-shared observer needs and the hook point — never on anything
/// rank-local.
#[allow(clippy::too_many_arguments)]
fn boundary_view<'a>(
    w: &LoopWatch<'_>,
    needs: crate::observer::ObserverNeeds,
    step: usize,
    time: f64,
    dt: f64,
    mesh: &'a Mesh,
    state: &'a HydroState,
    range: LocalRange,
) -> StepView<'a> {
    StepView {
        step,
        time,
        dt,
        mesh,
        state,
        range,
        rank: w.rank,
        n_ranks: w.n_ranks,
        comm: needs.comm_stats.then(|| (w.comm_stats)()),
        global_energy: needs
            .global_energy
            .then(|| (w.reduce_sum)((w.local_energy)(mesh, state))),
    }
}

/// Mid-step view (phase hooks): no comm snapshot, no energy reduction —
/// phase hooks may fire a different number of times per step on
/// remapping vs non-remapping steps, so nothing collective is allowed
/// here.
fn mid_view<'a>(
    w: &LoopWatch<'_>,
    step: usize,
    time: f64,
    dt: f64,
    mesh: &'a Mesh,
    state: &'a HydroState,
    range: LocalRange,
) -> StepView<'a> {
    StepView {
        step,
        time,
        dt,
        mesh,
        state,
        range,
        rank: w.rank,
        n_ranks: w.n_ranks,
        comm: None,
        global_energy: None,
    }
}

/// Serial driver owning the whole problem.
///
/// Deprecated: [`Simulation`] is the single front door for every
/// executor. `Driver` survives as a thin wrapper so existing code keeps
/// compiling; it *is* a serial `Simulation`. One intentional semantic
/// change rides along: the report's `energy_start` (and therefore
/// `energy_drift`) is pinned at t = 0 for the whole trajectory, where
/// the old `Driver::run` recomputed it at the top of every call — an
/// `advance_to`-then-`run` sequence now reports whole-run drift, not
/// last-segment drift, consistent with the report's cumulative
/// steps/timers/wall clock.
#[deprecated(note = "use `Simulation::builder().deck(..).config(..).build()`")]
#[derive(Debug)]
pub struct Driver {
    sim: Simulation,
}

#[allow(deprecated)]
impl Driver {
    /// Build a driver from a deck and a configuration.
    pub fn new(deck: Deck, config: RunConfig) -> Result<Driver> {
        let config = RunConfig {
            executor: crate::config::ExecutorKind::Serial,
            ..config
        };
        Ok(Driver {
            sim: Simulation::builder().deck(deck).config(config).build()?,
        })
    }

    /// Run (or continue) to the configured final time.
    pub fn run(&mut self) -> Result<RunReport> {
        self.sim.run()
    }

    /// Advance to `t_target` (clamped to the configured final time),
    /// leaving the driver resumable. Useful for in-situ output loops.
    pub fn advance_to(&mut self, t_target: f64) -> Result<&LoopState> {
        self.sim.advance_to(t_target)
    }

    /// Capture a restart snapshot of the current state.
    #[must_use]
    pub fn snapshot(&self) -> crate::output::Snapshot {
        self.sim.snapshot().expect("serial simulation can snapshot")
    }

    /// Restore a snapshot (shapes must match this driver's deck) and
    /// resume from its time/step cursor.
    pub fn restore(&mut self, snap: &crate::output::Snapshot) -> Result<()> {
        self.sim.restore(snap)
    }

    /// The current mesh.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        self.sim.mesh()
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> &HydroState {
        self.sim.state()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::decks;

    // The serial physics tests live in `crate::sim`; these pin only the
    // wrapper contract: `Driver` delegates to `Simulation` unchanged.

    #[test]
    fn driver_wrapper_matches_simulation() {
        let deck = decks::sod(24, 2);
        let config = RunConfig {
            final_time: 0.02,
            ..RunConfig::default()
        };

        let mut driver = Driver::new(deck.clone(), config).unwrap();
        let via_driver = driver.run().unwrap();

        let mut sim = Simulation::builder()
            .deck(deck)
            .config(config)
            .build()
            .unwrap();
        let via_sim = sim.run().unwrap();

        assert_eq!(via_driver.steps, via_sim.steps);
        assert_eq!(via_driver.time.to_bits(), via_sim.time.to_bits());
        for e in 0..driver.state().rho.len() {
            assert_eq!(
                driver.state().rho[e].to_bits(),
                sim.state().rho[e].to_bits(),
                "wrapper diverged at element {e}"
            );
        }
    }

    #[test]
    fn driver_wrapper_snapshots_and_advances() {
        let deck = decks::sod(16, 2);
        let config = RunConfig {
            final_time: 0.02,
            ..RunConfig::default()
        };
        let mut driver = Driver::new(deck, config).unwrap();
        let cursor = driver.advance_to(0.01).unwrap();
        assert!(cursor.t >= 0.01 - 1e-12);
        let snap = driver.snapshot();
        driver.run().unwrap();
        driver.restore(&snap).unwrap();
        let report = driver.run().unwrap();
        assert!((report.time - 0.02).abs() < 1e-12);
    }

    #[test]
    fn driver_rejects_corrupt_decks() {
        let mut deck = decks::sod(8, 2);
        deck.rho.pop();
        assert!(Driver::new(deck, RunConfig::default()).is_err());
    }
}
