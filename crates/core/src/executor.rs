//! Distributed execution: the paper's flat-MPI and hybrid models.
//!
//! * **Flat MPI** — one rank (thread) per simulated core; kernels run
//!   serially inside each rank; all parallelism comes from the domain
//!   decomposition. This is the reference code's default and the paper's
//!   best single-node configuration.
//! * **Hybrid MPI+OpenMP** — one rank per simulated NUMA region with a
//!   rayon pool (the OpenMP analogue) inside. The acceleration kernel's
//!   scatter dependency keeps it serial within each rank unless the
//!   conflict-free gather rewrite is selected (`AccMode`), mirroring
//!   §IV-B.
//!
//! Both use real message passing (Typhon) with the two halo-exchange
//! phases and the single global dt reduction per step. Results are
//! assembled back into global element/node order so validation code can
//! compare executors directly.
//!
//! This module is driven through [`crate::Simulation`]. Observer hooks
//! fire on every rank with the rank's partition view, and the run's
//! energy accounting counts each owned element and owned node exactly
//! once across the team.

use std::collections::HashMap;

use bookleaf_ale::Remapper;
use bookleaf_hydro::{HydroState, LocalRange, Threading};
use bookleaf_mesh::{Mesh, SubMesh, SubMeshPlan};
use bookleaf_partition::{partition, Strategy};
use bookleaf_typhon::{CommStats, Typhon, TyphonOptions};
use bookleaf_util::{BookLeafError, Result, TimerReport, Vec2};

use crate::config::{ExecutorKind, RunConfig};
use crate::decks::Deck;
use crate::driver::{run_loop, LoopState, SentinelOps};
use crate::halo::{LocalPiston, TyphonHalo};
use crate::observer::{LoopWatch, ObserverSet};
use crate::output::Snapshot;
use crate::report::RunReport;

/// The solution fields a distributed run assembles back into global
/// element/node order — the full checkpointable field set, so a
/// distributed run can be checkpointed (and re-resumed at any shape)
/// from its assembled view.
#[derive(Debug, Clone)]
pub(crate) struct Assembled {
    pub rho: Vec<f64>,
    pub ein: Vec<f64>,
    pub pressure: Vec<f64>,
    pub u: Vec<Vec2>,
    pub nodes: Vec<Vec2>,
    pub mass: Vec<f64>,
    pub q: Vec<f64>,
    pub nd_mass: Vec<f64>,
    pub cnmass: Vec<[f64; 4]>,
    /// The team's loop cursor after the run (identical on every rank).
    pub cursor: LoopState,
}

struct RankOut {
    rank: usize,
    rho: Vec<f64>,
    ein: Vec<f64>,
    pressure: Vec<f64>,
    mass: Vec<f64>,
    q: Vec<f64>,
    cnmass: Vec<[f64; 4]>,
    u_owned: Vec<(u32, Vec2)>,
    x_owned: Vec<(u32, Vec2)>,
    nd_mass_owned: Vec<(u32, f64)>,
    steps: usize,
    time: f64,
    dt_prev: Option<f64>,
    timers: TimerReport,
    comm: CommStats,
    /// Globally reduced start/end energies (identical on every rank).
    energy_start: f64,
    energy_end: f64,
}

/// The distributed run machinery behind [`crate::Simulation`]:
/// partition, spawn the rank team, run the shared loop (observers
/// firing per rank), assemble the global solution and the unified
/// report.
///
/// With `resume` set, every rank scatters its *owned* entities from the
/// (global) checkpoint state, fills its ghosts through the one-shot
/// `restore` halo exchange, re-derives the dependent fields, and
/// continues the loop from the checkpoint's cursor — this is how a
/// serial (or any-shape) checkpoint repartitions onto this executor's
/// rank count.
pub(crate) fn run_with_observers(
    deck: &Deck,
    config: &RunConfig,
    observers: &ObserverSet,
    resume: Option<&Snapshot>,
    typhon: &TyphonOptions,
) -> Result<(RunReport, Assembled)> {
    let (ranks, threads_per_rank) = match config.executor {
        ExecutorKind::FlatMpi { ranks } => (ranks, 0),
        ExecutorKind::Hybrid {
            ranks,
            threads_per_rank,
        } => (ranks, threads_per_rank),
        ExecutorKind::Serial => {
            return Err(BookLeafError::InvalidDeck(
                "distributed run requested with the serial executor".into(),
            ))
        }
    };
    deck.validate()?;
    let owner = partition(&deck.mesh, ranks, Strategy::Rcb)?;
    let subs = SubMeshPlan::build(&deck.mesh, &owner, ranks)?;

    let mut rank_config = *config;
    rank_config.lag.threading = if threads_per_rank > 1 {
        Threading::Rayon
    } else {
        Threading::Serial
    };

    let start = std::time::Instant::now();
    let results: Vec<Result<RankOut>> = Typhon::run_with(ranks, typhon.clone(), |ctx| {
        let sub = &subs[ctx.rank()];
        let body =
            || -> Result<RankOut> { run_rank(ctx, sub, deck, &rank_config, observers, resume) };
        if threads_per_rank > 1 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads_per_rank)
                .build()
                .map_err(|e| BookLeafError::Comm(format!("rayon pool: {e}")))?;
            pool.install(body)
        } else {
            body()
        }
    })?;
    let wall = start.elapsed().as_secs_f64();

    // Assemble.
    let ne = deck.mesh.n_elements();
    let nn = deck.mesh.n_nodes();
    let mut fields = Assembled {
        rho: vec![0.0; ne],
        ein: vec![0.0; ne],
        pressure: vec![0.0; ne],
        u: vec![Vec2::ZERO; nn],
        nodes: vec![Vec2::ZERO; nn],
        mass: vec![0.0; ne],
        q: vec![0.0; ne],
        nd_mass: vec![0.0; nn],
        cnmass: vec![[0.0; 4]; ne],
        cursor: LoopState::default(),
    };
    let mut report = RunReport {
        name: deck.name.to_string(),
        executor: config.executor,
        ranks,
        steps: 0,
        time: 0.0,
        wall_seconds: wall,
        timers: TimerReport::zero(),
        comm: CommStats::default(),
        energy_start: 0.0,
        energy_end: 0.0,
        recovery: crate::resilience::RecoveryLog::default(),
    };
    for r in results {
        let r = r?;
        let sub = &subs[r.rank];
        for (l, &g) in sub.el_l2g[..sub.n_owned_el].iter().enumerate() {
            fields.rho[g as usize] = r.rho[l];
            fields.ein[g as usize] = r.ein[l];
            fields.pressure[g as usize] = r.pressure[l];
            fields.mass[g as usize] = r.mass[l];
            fields.q[g as usize] = r.q[l];
            fields.cnmass[g as usize] = r.cnmass[l];
        }
        for &(g, v) in &r.u_owned {
            fields.u[g as usize] = v;
        }
        for &(g, p) in &r.x_owned {
            fields.nodes[g as usize] = p;
        }
        for &(g, m) in &r.nd_mass_owned {
            fields.nd_mass[g as usize] = m;
        }
        fields.cursor = LoopState {
            t: r.time,
            steps: r.steps,
            dt_prev: r.dt_prev,
        };
        report.steps = report.steps.max(r.steps);
        // Max, not last-writer-wins: every rank reports the same final
        // time, but a reordered result vector must not leave a stale
        // zero (or any one rank's value) in charge.
        report.time = report.time.max(r.time);
        report.timers = report.timers.max(&r.timers);
        report.comm = report.comm.merged(&r.comm);
        // Already globally reduced — identical on every rank.
        report.energy_start = r.energy_start;
        report.energy_end = r.energy_end;
    }
    Ok((report, fields))
}

/// One rank's work: local state, halo hooks, the shared run loop.
fn run_rank(
    ctx: &bookleaf_typhon::RankCtx,
    sub: &SubMesh,
    deck: &Deck,
    config: &RunConfig,
    observers: &ObserverSet,
    resume: Option<&Snapshot>,
) -> Result<RankOut> {
    let mut mesh = sub.mesh.clone();
    let mut state = HydroState::new(
        &mesh,
        &deck.materials,
        |e| deck.rho[sub.el_l2g[e] as usize],
        |e| deck.ein[sub.el_l2g[e] as usize],
        |n| deck.u[sub.nd_l2g[n] as usize],
    )?;
    let range = LocalRange {
        n_owned_el: sub.n_owned_el,
        n_active_nd: sub.n_active_nd,
    };

    // Map global piston nodes to local ids.
    let piston = deck.piston.as_ref().map(|p| {
        let g2l: HashMap<u32, u32> = sub
            .nd_l2g
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();
        LocalPiston {
            nodes: p.nodes.iter().filter_map(|g| g2l.get(g).copied()).collect(),
            velocity: p.velocity,
        }
    });

    // The remapper must capture the *deck-initial* node positions
    // (they are the Eulerian remap target), so it is built before any
    // checkpoint overwrites the mesh.
    let remapper = config.ale.map(|opts| Remapper::new(&mesh, opts));
    // Build the rank's aggregated exchange plan once; every halo hook
    // then moves its whole phase as one message per neighbour.
    let mut halo = TyphonHalo::new(ctx, sub, piston);

    let mut cursor = crate::driver::LoopState::default();
    if let Some(snap) = resume {
        // Scatter the global checkpoint state onto the entities this
        // rank owns; ghosts are poised to arrive from their owners.
        for (l, &g) in sub.el_l2g[..sub.n_owned_el].iter().enumerate() {
            let g = g as usize;
            state.mass[l] = snap.mass[g];
            state.rho[l] = snap.rho[g];
            state.ein[l] = snap.ein[g];
            state.q[l] = snap.q[g];
            state.cnmass[l] = snap.cnmass[g];
        }
        for n in 0..sub.n_active_nd {
            if sub.owns_node(n) {
                let g = sub.nd_l2g[n] as usize;
                mesh.nodes[n] = snap.nodes[g];
                state.u[n] = snap.u[g];
                state.nd_mass[n] = snap.nd_mass[g];
            }
        }
        // One-shot restore exchange: every ghost element and halo node
        // receives its owner's checkpoint values — same plan machinery,
        // one message per neighbour.
        halo.exchange_restore(&mut mesh, &mut state)?;
        // Re-derive the dependent fields over the whole local mesh
        // (owned and ghost): geometry and EoS are pure per-element
        // functions of the restored fields, so every rank reproduces
        // the owner's values bitwise.
        let whole = LocalRange {
            n_owned_el: mesh.n_elements(),
            n_active_nd: mesh.n_nodes(),
        };
        bookleaf_hydro::getgeom::getgeom(&mesh, &mut state, whole, config.lag.threading)?;
        bookleaf_hydro::getpc::getpc(
            &mesh,
            &deck.materials,
            &mut state,
            whole,
            config.lag.threading,
        );
        cursor = crate::driver::LoopState {
            t: snap.time,
            steps: snap.steps as usize,
            dt_prev: snap.dt_prev,
        };
    }
    // Interior/boundary classification, derived once per run: with the
    // overlap toggle on, every halo phase is posted early and completed
    // only before the boundary sweep (latency hiding; bitwise identical
    // physics and identical message counts).
    let overlap_sets = config.overlap.then(|| sub.overlap_sets());
    let timers = bookleaf_util::TimerRegistry::new();

    // This rank's energy contribution: owned elements, owned nodes —
    // partition-boundary nodes live on several ranks but are summed
    // exactly once across the team.
    let local_energy = |mesh: &Mesh, state: &HydroState| {
        state.internal_energy(range) + state.kinetic_energy_where(mesh, range, |n| sub.owns_node(n))
    };
    // All collective calls below (start/end energy, dt per step, any
    // sentinel or observer-driven reductions inside the loop) execute
    // in the same order on every rank.
    let energy_start = ctx.allreduce_sum(local_energy(&mesh, &state))?;
    let reduce_sum = |v: f64| -> Result<f64> { Ok(ctx.allreduce_sum(v)?) };
    let reduce_min = |v: f64| -> Result<f64> { Ok(ctx.allreduce_min(v)?) };
    let comm_stats = || ctx.stats();
    let watch = LoopWatch {
        observers,
        rank: ctx.rank(),
        n_ranks: ctx.n_ranks(),
        reduce_sum: &reduce_sum,
        comm_stats: &comm_stats,
        local_energy: &local_energy,
    };
    let sentinel = SentinelOps {
        rank: ctx.rank(),
        reduce_min: &reduce_min,
        reduce_sum: &reduce_sum,
        local_energy: &local_energy,
        energy_ref: energy_start,
    };

    run_loop(
        &mut mesh,
        &deck.materials,
        &mut state,
        range,
        config,
        remapper.as_ref(),
        &mut halo,
        // The one per-step progress announcement: arms scheduled point
        // faults for this step and fires a scheduled rank death, then
        // the single global dt reduction.
        |step, dt| {
            ctx.begin_step(step)?;
            Ok(ctx.allreduce_min(dt)?)
        },
        &timers,
        &mut cursor,
        overlap_sets.as_ref(),
        Some(&watch),
        Some(&sentinel),
    )?;
    let energy_end = ctx.allreduce_sum(local_energy(&mesh, &state))?;
    let (steps, time) = (cursor.steps, cursor.t);

    let u_owned: Vec<(u32, Vec2)> = (0..sub.n_active_nd)
        .filter(|&n| sub.owns_node(n))
        .map(|n| (sub.nd_l2g[n], state.u[n]))
        .collect();
    let x_owned: Vec<(u32, Vec2)> = (0..sub.n_active_nd)
        .filter(|&n| sub.owns_node(n))
        .map(|n| (sub.nd_l2g[n], mesh.nodes[n]))
        .collect();
    let nd_mass_owned: Vec<(u32, f64)> = (0..sub.n_active_nd)
        .filter(|&n| sub.owns_node(n))
        .map(|n| (sub.nd_l2g[n], state.nd_mass[n]))
        .collect();

    Ok(RankOut {
        rank: ctx.rank(),
        rho: state.rho[..sub.n_owned_el].to_vec(),
        ein: state.ein[..sub.n_owned_el].to_vec(),
        pressure: state.pressure[..sub.n_owned_el].to_vec(),
        mass: state.mass[..sub.n_owned_el].to_vec(),
        q: state.q[..sub.n_owned_el].to_vec(),
        cnmass: state.cnmass[..sub.n_owned_el].to_vec(),
        u_owned,
        x_owned,
        nd_mass_owned,
        steps,
        time,
        dt_prev: cursor.dt_prev,
        timers: timers.report(),
        comm: ctx.stats(),
        energy_start,
        energy_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decks;
    use crate::sim::Simulation;
    use bookleaf_util::approx_eq;

    /// Serial vs distributed equivalence on the Sod problem, all
    /// through the one `Simulation` code path.
    fn compare_with_serial(executor: ExecutorKind, tol: f64) {
        let deck = decks::sod(32, 4);
        let config = RunConfig {
            final_time: 0.03,
            ..RunConfig::default()
        };

        let mut serial = Simulation::builder()
            .deck(deck.clone())
            .config(config)
            .build()
            .unwrap();
        serial.run().unwrap();

        let mut dist = Simulation::builder()
            .deck(deck.clone())
            .config(config)
            .executor(executor)
            .build()
            .unwrap();
        dist.run().unwrap();

        for e in 0..deck.mesh.n_elements() {
            assert!(
                approx_eq(serial.state().rho[e], dist.state().rho[e], tol),
                "rho mismatch at {e}: {} vs {}",
                serial.state().rho[e],
                dist.state().rho[e]
            );
            assert!(
                approx_eq(serial.state().ein[e], dist.state().ein[e], tol),
                "ein mismatch at {e}"
            );
        }
        for n in 0..deck.mesh.n_nodes() {
            assert!(
                (serial.state().u[n] - dist.state().u[n]).norm() < tol,
                "velocity mismatch at node {n}"
            );
            assert!(
                serial.mesh().nodes[n].distance(dist.mesh().nodes[n]) < tol,
                "position mismatch at node {n}"
            );
        }
    }

    #[test]
    fn flat_mpi_matches_serial() {
        compare_with_serial(ExecutorKind::FlatMpi { ranks: 4 }, 1e-9);
    }

    #[test]
    fn hybrid_matches_serial() {
        compare_with_serial(
            ExecutorKind::Hybrid {
                ranks: 2,
                threads_per_rank: 2,
            },
            1e-9,
        );
    }

    #[test]
    fn rank_counts_agree_on_steps_and_energy_is_global() {
        let deck = decks::noh(12);
        let mut sim = Simulation::builder()
            .deck(deck.clone())
            .final_time(0.02)
            .executor(ExecutorKind::FlatMpi { ranks: 3 })
            .build()
            .unwrap();
        let report = sim.run().unwrap();
        assert!(report.steps > 0);
        assert!((report.time - 0.02).abs() < 1e-12);
        assert_eq!(report.ranks, 3);
        // Communication actually happened.
        assert!(report.comm.messages_sent > 0);
        assert!(report.comm.doubles_sent > 0);
        // The energy accounting is global (counts every partition once):
        // it matches the serial run's to tight tolerance.
        let mut serial = Simulation::builder()
            .deck(deck)
            .final_time(0.02)
            .build()
            .unwrap();
        let serial_report = serial.run().unwrap();
        assert!(
            approx_eq(report.energy_start, serial_report.energy_start, 1e-9),
            "start energy {} vs serial {}",
            report.energy_start,
            serial_report.energy_start
        );
        assert!(
            approx_eq(report.energy_end, serial_report.energy_end, 1e-6),
            "end energy {} vs serial {}",
            report.energy_end,
            serial_report.energy_end
        );
    }

    #[test]
    fn serial_executor_is_rejected_by_the_distributed_machinery() {
        let deck = decks::sod(8, 2);
        let config = RunConfig {
            executor: ExecutorKind::Serial,
            ..RunConfig::default()
        };
        assert!(run_with_observers(
            &deck,
            &config,
            &ObserverSet::default(),
            None,
            &TyphonOptions::default()
        )
        .is_err());
    }

    #[test]
    fn distributed_piston_works() {
        let mut sim = Simulation::builder()
            .deck(decks::saltzmann(32, 4))
            .final_time(0.05)
            .executor(ExecutorKind::FlatMpi { ranks: 3 })
            .build()
            .unwrap();
        sim.run().unwrap();
        let min_x = sim
            .mesh()
            .nodes
            .iter()
            .map(|p| p.x)
            .fold(f64::INFINITY, f64::min);
        assert!((min_x - 0.05).abs() < 0.02, "piston wall at {min_x}");
    }

    #[test]
    fn distributed_eulerian_ale_matches_serial_loosely() {
        use bookleaf_ale::{AleMode, AleOptions};
        let deck = decks::sod(24, 3);
        let base = RunConfig {
            final_time: 0.02,
            ale: Some(AleOptions {
                mode: AleMode::Eulerian,
                frequency: 1,
            }),
            ..RunConfig::default()
        };
        let mut serial = Simulation::builder()
            .deck(deck.clone())
            .config(base)
            .build()
            .unwrap();
        serial.run().unwrap();
        let mut dist = Simulation::builder()
            .deck(deck.clone())
            .config(base)
            .executor(ExecutorKind::FlatMpi { ranks: 2 })
            .build()
            .unwrap();
        dist.run().unwrap();
        // ALE at partition boundaries falls back to first order for the
        // limiter stencil (see DESIGN.md), so agreement is looser.
        for e in 0..deck.mesh.n_elements() {
            assert!(
                approx_eq(serial.state().rho[e], dist.state().rho[e], 5e-2),
                "rho far off at {e}: {} vs {}",
                serial.state().rho[e],
                dist.state().rho[e]
            );
        }
    }
}
