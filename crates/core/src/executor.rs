//! Distributed execution: the paper's flat-MPI and hybrid models.
//!
//! * **Flat MPI** — one rank (thread) per simulated core; kernels run
//!   serially inside each rank; all parallelism comes from the domain
//!   decomposition. This is the reference code's default and the paper's
//!   best single-node configuration.
//! * **Hybrid MPI+OpenMP** — one rank per simulated NUMA region with a
//!   rayon pool (the OpenMP analogue) inside. The acceleration kernel's
//!   scatter dependency keeps it serial within each rank unless the
//!   conflict-free gather rewrite is selected (`AccMode`), mirroring
//!   §IV-B.
//!
//! Both use real message passing (Typhon) with the two halo-exchange
//! phases and the single global dt reduction per step. Results are
//! assembled back into global element/node order so validation code can
//! compare executors directly.

use std::collections::HashMap;

use bookleaf_ale::Remapper;
use bookleaf_hydro::{HydroState, LocalRange, Threading};
use bookleaf_mesh::{SubMesh, SubMeshPlan};
use bookleaf_partition::{partition, Strategy};
use bookleaf_typhon::{CommStats, Typhon};
use bookleaf_util::{BookLeafError, Result, TimerRegistry, TimerReport, Vec2};

use crate::config::{ExecutorKind, RunConfig};
use crate::decks::Deck;
use crate::driver::run_loop;
use crate::halo::{LocalPiston, TyphonHalo};

/// A distributed run's assembled output (global ordering).
#[derive(Debug, Clone)]
pub struct DistributedOutput {
    /// Density per global element.
    pub rho: Vec<f64>,
    /// Specific internal energy per global element.
    pub ein: Vec<f64>,
    /// Pressure per global element.
    pub pressure: Vec<f64>,
    /// Velocity per global node.
    pub u: Vec<Vec2>,
    /// Final node positions.
    pub nodes: Vec<Vec2>,
    /// Steps taken.
    pub steps: usize,
    /// Final simulated time.
    pub time: f64,
    /// Wall-clock seconds for the whole team.
    pub wall_seconds: f64,
    /// Per-kernel times, max over ranks (how MPI perceives time).
    pub timers: TimerReport,
    /// Total communication volume over all ranks.
    pub comm: CommStats,
}

struct RankOut {
    rank: usize,
    rho: Vec<f64>,
    ein: Vec<f64>,
    pressure: Vec<f64>,
    u_owned: Vec<(u32, Vec2)>,
    x_owned: Vec<(u32, Vec2)>,
    steps: usize,
    time: f64,
    timers: TimerReport,
    comm: CommStats,
}

/// Run `deck` under the distributed executor named by `config.executor`.
pub fn run_distributed(deck: &Deck, config: &RunConfig) -> Result<DistributedOutput> {
    let (ranks, threads_per_rank) = match config.executor {
        ExecutorKind::FlatMpi { ranks } => (ranks, 0),
        ExecutorKind::Hybrid {
            ranks,
            threads_per_rank,
        } => (ranks, threads_per_rank),
        ExecutorKind::Serial => {
            return Err(BookLeafError::InvalidDeck(
                "run_distributed called with the serial executor; use Driver".into(),
            ))
        }
    };
    deck.validate()?;
    let owner = partition(&deck.mesh, ranks, Strategy::Rcb)?;
    let subs = SubMeshPlan::build(&deck.mesh, &owner, ranks)?;

    let mut rank_config = *config;
    rank_config.lag.threading = if threads_per_rank > 1 {
        Threading::Rayon
    } else {
        Threading::Serial
    };

    let start = std::time::Instant::now();
    let results: Vec<Result<RankOut>> = Typhon::run(ranks, |ctx| {
        let sub = &subs[ctx.rank()];
        let body = || -> Result<RankOut> { run_rank(ctx, sub, deck, &rank_config) };
        if threads_per_rank > 1 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads_per_rank)
                .build()
                .map_err(|e| BookLeafError::Comm(format!("rayon pool: {e}")))?;
            pool.install(body)
        } else {
            body()
        }
    })?;
    let wall = start.elapsed().as_secs_f64();

    // Assemble.
    let ne = deck.mesh.n_elements();
    let nn = deck.mesh.n_nodes();
    let mut out = DistributedOutput {
        rho: vec![0.0; ne],
        ein: vec![0.0; ne],
        pressure: vec![0.0; ne],
        u: vec![Vec2::ZERO; nn],
        nodes: vec![Vec2::ZERO; nn],
        steps: 0,
        time: 0.0,
        wall_seconds: wall,
        timers: TimerReport::zero(),
        comm: CommStats::default(),
    };
    for r in results {
        let r = r?;
        let sub = &subs[r.rank];
        for (l, &g) in sub.el_l2g[..sub.n_owned_el].iter().enumerate() {
            out.rho[g as usize] = r.rho[l];
            out.ein[g as usize] = r.ein[l];
            out.pressure[g as usize] = r.pressure[l];
        }
        for &(g, v) in &r.u_owned {
            out.u[g as usize] = v;
        }
        for &(g, p) in &r.x_owned {
            out.nodes[g as usize] = p;
        }
        out.steps = out.steps.max(r.steps);
        // Max, not last-writer-wins: every rank reports the same final
        // time, but a reordered result vector must not leave a stale
        // zero (or any one rank's value) in charge.
        out.time = out.time.max(r.time);
        out.timers = out.timers.max(&r.timers);
        out.comm = out.comm.merged(&r.comm);
    }
    Ok(out)
}

/// One rank's work: local state, halo hooks, the shared run loop.
fn run_rank(
    ctx: &bookleaf_typhon::RankCtx,
    sub: &SubMesh,
    deck: &Deck,
    config: &RunConfig,
) -> Result<RankOut> {
    let mut mesh = sub.mesh.clone();
    let mut state = HydroState::new(
        &mesh,
        &deck.materials,
        |e| deck.rho[sub.el_l2g[e] as usize],
        |e| deck.ein[sub.el_l2g[e] as usize],
        |n| deck.u[sub.nd_l2g[n] as usize],
    )?;
    let range = LocalRange {
        n_owned_el: sub.n_owned_el,
        n_active_nd: sub.n_active_nd,
    };

    // Map global piston nodes to local ids.
    let piston = deck.piston.as_ref().map(|p| {
        let g2l: HashMap<u32, u32> = sub
            .nd_l2g
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();
        LocalPiston {
            nodes: p.nodes.iter().filter_map(|g| g2l.get(g).copied()).collect(),
            velocity: p.velocity,
        }
    });

    let remapper = config.ale.map(|opts| Remapper::new(&mesh, opts));
    // Build the rank's aggregated exchange plan once; every halo hook
    // then moves its whole phase as one message per neighbour.
    let mut halo = TyphonHalo::new(ctx, sub, piston);
    // Interior/boundary classification, derived once per run: with the
    // overlap toggle on, every halo phase is posted early and completed
    // only before the boundary sweep (latency hiding; bitwise identical
    // physics and identical message counts).
    let overlap_sets = config.overlap.then(|| sub.overlap_sets());
    let timers = TimerRegistry::new();

    let mut cursor = crate::driver::LoopState::default();
    run_loop(
        &mut mesh,
        &deck.materials,
        &mut state,
        range,
        config,
        remapper.as_ref(),
        &mut halo,
        |dt| ctx.allreduce_min(dt),
        &timers,
        &mut cursor,
        overlap_sets.as_ref(),
    )?;
    let (steps, time) = (cursor.steps, cursor.t);

    let u_owned: Vec<(u32, Vec2)> = (0..sub.n_active_nd)
        .filter(|&n| sub.owns_node(n))
        .map(|n| (sub.nd_l2g[n], state.u[n]))
        .collect();
    let x_owned: Vec<(u32, Vec2)> = (0..sub.n_active_nd)
        .filter(|&n| sub.owns_node(n))
        .map(|n| (sub.nd_l2g[n], mesh.nodes[n]))
        .collect();

    Ok(RankOut {
        rank: ctx.rank(),
        rho: state.rho[..sub.n_owned_el].to_vec(),
        ein: state.ein[..sub.n_owned_el].to_vec(),
        pressure: state.pressure[..sub.n_owned_el].to_vec(),
        u_owned,
        x_owned,
        steps,
        time,
        timers: timers.report(),
        comm: ctx.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decks;
    use crate::driver::Driver;
    use bookleaf_util::approx_eq;

    /// Serial vs distributed equivalence on the Sod problem.
    fn compare_with_serial(executor: ExecutorKind, tol: f64) {
        let deck = decks::sod(32, 4);
        let config = RunConfig {
            final_time: 0.03,
            ..RunConfig::default()
        };

        let mut serial = Driver::new(deck.clone(), config).unwrap();
        serial.run().unwrap();

        let dist_config = RunConfig { executor, ..config };
        let out = run_distributed(&deck, &dist_config).unwrap();

        for e in 0..deck.mesh.n_elements() {
            assert!(
                approx_eq(serial.state().rho[e], out.rho[e], tol),
                "rho mismatch at {e}: {} vs {}",
                serial.state().rho[e],
                out.rho[e]
            );
            assert!(
                approx_eq(serial.state().ein[e], out.ein[e], tol),
                "ein mismatch at {e}"
            );
        }
        for n in 0..deck.mesh.n_nodes() {
            assert!(
                (serial.state().u[n] - out.u[n]).norm() < tol,
                "velocity mismatch at node {n}"
            );
            assert!(
                serial.mesh().nodes[n].distance(out.nodes[n]) < tol,
                "position mismatch at node {n}"
            );
        }
    }

    #[test]
    fn flat_mpi_matches_serial() {
        compare_with_serial(ExecutorKind::FlatMpi { ranks: 4 }, 1e-9);
    }

    #[test]
    fn hybrid_matches_serial() {
        compare_with_serial(
            ExecutorKind::Hybrid {
                ranks: 2,
                threads_per_rank: 2,
            },
            1e-9,
        );
    }

    #[test]
    fn rank_counts_agree_on_steps() {
        let deck = decks::noh(12);
        let config = RunConfig {
            final_time: 0.02,
            executor: ExecutorKind::FlatMpi { ranks: 3 },
            ..RunConfig::default()
        };
        let out = run_distributed(&deck, &config).unwrap();
        assert!(out.steps > 0);
        assert!((out.time - 0.02).abs() < 1e-12);
        // Communication actually happened.
        assert!(out.comm.messages_sent > 0);
        assert!(out.comm.doubles_sent > 0);
    }

    #[test]
    fn serial_executor_is_rejected() {
        let deck = decks::sod(8, 2);
        let config = RunConfig {
            executor: ExecutorKind::Serial,
            ..RunConfig::default()
        };
        assert!(run_distributed(&deck, &config).is_err());
    }

    #[test]
    fn distributed_piston_works() {
        let deck = decks::saltzmann(32, 4);
        let config = RunConfig {
            final_time: 0.05,
            executor: ExecutorKind::FlatMpi { ranks: 3 },
            ..RunConfig::default()
        };
        let out = run_distributed(&deck, &config).unwrap();
        let min_x = out.nodes.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        assert!((min_x - 0.05).abs() < 0.02, "piston wall at {min_x}");
    }

    #[test]
    fn distributed_eulerian_ale_matches_serial_loosely() {
        use bookleaf_ale::{AleMode, AleOptions};
        let deck = decks::sod(24, 3);
        let base = RunConfig {
            final_time: 0.02,
            ale: Some(AleOptions {
                mode: AleMode::Eulerian,
                frequency: 1,
            }),
            ..RunConfig::default()
        };
        let mut serial = Driver::new(deck.clone(), base).unwrap();
        serial.run().unwrap();
        let dist = RunConfig {
            executor: ExecutorKind::FlatMpi { ranks: 2 },
            ..base
        };
        let out = run_distributed(&deck, &dist).unwrap();
        // ALE at partition boundaries falls back to first order for the
        // limiter stencil (see DESIGN.md), so agreement is looser.
        for e in 0..deck.mesh.n_elements() {
            assert!(
                approx_eq(serial.state().rho[e], out.rho[e], 5e-2),
                "rho far off at {e}: {} vs {}",
                serial.state().rho[e],
                out.rho[e]
            );
        }
    }
}
