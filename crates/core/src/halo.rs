//! Typhon-backed halo operations and the piston hook.
//!
//! [`TyphonHalo`] implements [`bookleaf_hydro::HaloOps`] over a
//! [`bookleaf_typhon::HaloPlan`]: each hook is one registered exchange
//! *phase*, and every field a phase needs travels in a **single packed
//! message per neighbouring rank** (the reference Typhon's aggregated
//! quantity registration — see `bookleaf_typhon::plan`):
//!
//! * **`pre_viscosity`** — node kinematics (positions and velocities)
//!   plus ghost element thermodynamic state (ρ, e, p, c²): six fields,
//!   one message per neighbour;
//! * **`pre_acceleration`** — ghost corner masses and corner forces, so
//!   every rank can close the nodal gather for its nodes. Corner forces
//!   travel as `CornerVec2` wire entries packed straight from the SoA
//!   component rows (`FieldMut::CornerPair`) — no scratch arrays, and
//!   the bytes on the wire are identical to the interleaved layout's;
//! * **`post_remap`** — everything an ALE remap rewrites (masses, state,
//!   volumes, corner masses, node kinematics): seven fields, one
//!   message per neighbour;
//! * **`restore`** — the checkpoint field set (node kinematics, nodal
//!   masses, element mass/ρ/e/q, corner masses): eight fields, executed
//!   **once** when a rank resumes from a checkpoint, filling every ghost
//!   from its owner so the re-derivation sweep sees owner-exact values.
//!
//! Per-phase message and volume counts land in the rank's
//! [`bookleaf_typhon::CommStats`] breakdown under the phase names above.
//!
//! [`LocalPiston`] (and the piston part of `TyphonHalo`) imposes the
//! Saltzmann driven wall after each acceleration.

use bookleaf_hydro::{HaloOps, HydroState};
use bookleaf_mesh::{Mesh, SubMesh};
use bookleaf_typhon::{
    Entity, FieldMut, HaloPlan, HaloPlanBuilder, PendingPhase, PhaseId, RankCtx, SlotKind,
};
use bookleaf_util::{Result, Vec2};

/// Node-local piston description (local node ids).
#[derive(Debug, Clone, Default)]
pub struct LocalPiston {
    /// Local node indices of the driven wall.
    pub nodes: Vec<u32>,
    /// Imposed velocity.
    pub velocity: Vec2,
}

impl LocalPiston {
    /// Apply the piston to `u` and `ubar`.
    pub fn apply(&self, state: &mut HydroState) {
        for &n in &self.nodes {
            state.u[n as usize] = self.velocity;
            state.ubar[n as usize] = self.velocity;
        }
    }
}

/// Serial hooks: no communication, optional piston.
#[derive(Debug, Default)]
pub struct SerialHooks {
    /// Piston, if the deck has one.
    pub piston: Option<LocalPiston>,
}

impl HaloOps for SerialHooks {
    fn post_acceleration(&mut self, _mesh: &Mesh, state: &mut HydroState) -> Result<()> {
        if let Some(p) = &self.piston {
            p.apply(state);
        }
        Ok(())
    }
}

/// Distributed hooks: phase-aggregated Typhon exchanges plus optional
/// piston. Every phase also supports the split post/complete protocol
/// (see [`bookleaf_hydro::HaloOps`]); the in-flight tickets live here
/// so a posted phase is completed exactly once.
pub struct TyphonHalo<'a> {
    ctx: &'a RankCtx,
    plan: HaloPlan,
    pre_visc: PhaseId,
    pre_acc: PhaseId,
    post_remap: PhaseId,
    restore: PhaseId,
    pending_visc: Option<PendingPhase>,
    pending_acc: Option<PendingPhase>,
    pending_remap: Option<PendingPhase>,
    /// Piston with *local* node ids, if any land on this rank.
    pub piston: Option<LocalPiston>,
}

/// The `pre_viscosity` phase bindings, in registration order.
fn visc_fields<'s>(mesh: &'s mut Mesh, state: &'s mut HydroState) -> [FieldMut<'s>; 6] {
    [
        FieldMut::Vec2(&mut mesh.nodes),
        FieldMut::Vec2(&mut state.u),
        FieldMut::Scalar(&mut state.rho),
        FieldMut::Scalar(&mut state.ein),
        FieldMut::Scalar(&mut state.pressure),
        FieldMut::Scalar(&mut state.cs2),
    ]
}

/// The `pre_acceleration` phase bindings.
fn acc_fields(state: &mut HydroState) -> [FieldMut<'_>; 2] {
    [
        FieldMut::Corner4(&mut state.cnmass),
        FieldMut::CornerPair(&mut state.cnforce_x, &mut state.cnforce_y),
    ]
}

/// The one-shot `restore` phase bindings (checkpoint resume).
fn restore_fields<'s>(mesh: &'s mut Mesh, state: &'s mut HydroState) -> [FieldMut<'s>; 8] {
    [
        FieldMut::Vec2(&mut mesh.nodes),
        FieldMut::Vec2(&mut state.u),
        FieldMut::Scalar(&mut state.nd_mass),
        FieldMut::Scalar(&mut state.mass),
        FieldMut::Scalar(&mut state.rho),
        FieldMut::Scalar(&mut state.ein),
        FieldMut::Scalar(&mut state.q),
        FieldMut::Corner4(&mut state.cnmass),
    ]
}

/// The `post_remap` phase bindings.
fn remap_fields<'s>(mesh: &'s mut Mesh, state: &'s mut HydroState) -> [FieldMut<'s>; 7] {
    [
        FieldMut::Vec2(&mut mesh.nodes),
        FieldMut::Vec2(&mut state.u),
        FieldMut::Scalar(&mut state.mass),
        FieldMut::Scalar(&mut state.rho),
        FieldMut::Scalar(&mut state.ein),
        FieldMut::Scalar(&mut state.volume),
        FieldMut::Corner4(&mut state.cnmass),
    ]
}

impl<'a> TyphonHalo<'a> {
    /// Build the rank's exchange plan from the submesh schedules and
    /// register the three standard phases.
    #[must_use]
    pub fn new(ctx: &'a RankCtx, sub: &SubMesh, piston: Option<LocalPiston>) -> Self {
        let mut b = HaloPlanBuilder::new(&sub.el_exchange, &sub.nd_exchange);
        let pre_visc = b.phase(
            "pre_viscosity",
            &[
                (Entity::Node, SlotKind::Vec2),      // mesh.nodes
                (Entity::Node, SlotKind::Vec2),      // u
                (Entity::Element, SlotKind::Scalar), // rho
                (Entity::Element, SlotKind::Scalar), // ein
                (Entity::Element, SlotKind::Scalar), // pressure
                (Entity::Element, SlotKind::Scalar), // cs2
            ],
        );
        let pre_acc = b.phase(
            "pre_acceleration",
            &[
                (Entity::Element, SlotKind::Corner4),    // cnmass
                (Entity::Element, SlotKind::CornerVec2), // cnforce
            ],
        );
        let post_remap = b.phase(
            "post_remap",
            &[
                (Entity::Node, SlotKind::Vec2),       // mesh.nodes
                (Entity::Node, SlotKind::Vec2),       // u
                (Entity::Element, SlotKind::Scalar),  // mass
                (Entity::Element, SlotKind::Scalar),  // rho
                (Entity::Element, SlotKind::Scalar),  // ein
                (Entity::Element, SlotKind::Scalar),  // volume
                (Entity::Element, SlotKind::Corner4), // cnmass
            ],
        );
        let restore = b.phase(
            "restore",
            &[
                (Entity::Node, SlotKind::Vec2),       // mesh.nodes
                (Entity::Node, SlotKind::Vec2),       // u
                (Entity::Node, SlotKind::Scalar),     // nd_mass
                (Entity::Element, SlotKind::Scalar),  // mass
                (Entity::Element, SlotKind::Scalar),  // rho
                (Entity::Element, SlotKind::Scalar),  // ein
                (Entity::Element, SlotKind::Scalar),  // q
                (Entity::Element, SlotKind::Corner4), // cnmass
            ],
        );
        TyphonHalo {
            ctx,
            plan: b.build(),
            pre_visc,
            pre_acc,
            post_remap,
            restore,
            pending_visc: None,
            pending_acc: None,
            pending_remap: None,
            piston,
        }
    }

    /// The rank's frozen exchange plan (for accounting and tests).
    #[must_use]
    pub fn plan(&self) -> &HaloPlan {
        &self.plan
    }

    /// Execute the one-shot `restore` exchange: after a resuming rank
    /// scatters its owned entities from a checkpoint, this fills every
    /// ghost element/halo node with its owner's values — one message
    /// per neighbour, through the same plan machinery as the per-step
    /// phases.
    ///
    /// # Errors
    ///
    /// Propagates any [`bookleaf_util::CommError`] from the exchange as
    /// a `BookLeafError::CommFault`.
    pub fn exchange_restore(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        self.plan
            .execute(self.ctx, self.restore, &mut restore_fields(mesh, state))?;
        Ok(())
    }
}

impl HaloOps for TyphonHalo<'_> {
    fn pre_viscosity(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        self.plan
            .execute(self.ctx, self.pre_visc, &mut visc_fields(mesh, state))?;
        Ok(())
    }

    fn pre_acceleration(&mut self, state: &mut HydroState) -> Result<()> {
        self.plan
            .execute(self.ctx, self.pre_acc, &mut acc_fields(state))?;
        Ok(())
    }

    fn post_acceleration(&mut self, _mesh: &Mesh, state: &mut HydroState) -> Result<()> {
        if let Some(p) = &self.piston {
            p.apply(state);
        }
        Ok(())
    }

    fn post_remap(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        self.plan
            .execute(self.ctx, self.post_remap, &mut remap_fields(mesh, state))?;
        Ok(())
    }

    fn pre_viscosity_post(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        assert!(
            self.pending_visc.is_none(),
            "pre_viscosity posted twice without a complete"
        );
        self.pending_visc = Some(self.plan.post(
            self.ctx,
            self.pre_visc,
            &visc_fields(mesh, state),
        )?);
        Ok(())
    }

    fn pre_viscosity_complete(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        let pending = self
            .pending_visc
            .take()
            .expect("pre_viscosity_complete without a post");
        self.plan
            .complete(self.ctx, pending, &mut visc_fields(mesh, state))?;
        Ok(())
    }

    fn pre_acceleration_post(&mut self, state: &mut HydroState) -> Result<()> {
        assert!(
            self.pending_acc.is_none(),
            "pre_acceleration posted twice without a complete"
        );
        self.pending_acc = Some(self.plan.post(self.ctx, self.pre_acc, &acc_fields(state))?);
        Ok(())
    }

    fn pre_acceleration_complete(&mut self, state: &mut HydroState) -> Result<()> {
        let pending = self
            .pending_acc
            .take()
            .expect("pre_acceleration_complete without a post");
        self.plan
            .complete(self.ctx, pending, &mut acc_fields(state))?;
        Ok(())
    }

    fn post_remap_post(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        assert!(
            self.pending_remap.is_none(),
            "post_remap posted twice without a complete"
        );
        self.pending_remap = Some(self.plan.post(
            self.ctx,
            self.post_remap,
            &remap_fields(mesh, state),
        )?);
        Ok(())
    }

    fn post_remap_complete(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        let pending = self
            .pending_remap
            .take()
            .expect("post_remap_complete without a post");
        self.plan
            .complete(self.ctx, pending, &mut remap_fields(mesh, state))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec, SubMeshPlan};
    use bookleaf_typhon::Typhon;

    #[test]
    fn piston_overrides_velocity() {
        let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let mut st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).unwrap();
        let p = LocalPiston {
            nodes: vec![0, 3],
            velocity: Vec2::new(2.0, 0.0),
        };
        p.apply(&mut st);
        assert_eq!(st.u[0], Vec2::new(2.0, 0.0));
        assert_eq!(st.ubar[3], Vec2::new(2.0, 0.0));
        assert_eq!(st.u[1], Vec2::ZERO);
    }

    #[test]
    fn serial_hooks_apply_piston_post_acceleration() {
        let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let mut st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).unwrap();
        let mut hooks = SerialHooks {
            piston: Some(LocalPiston {
                nodes: vec![1],
                velocity: Vec2::new(-1.0, 0.0),
            }),
        };
        hooks.post_acceleration(&mesh, &mut st).unwrap();
        assert_eq!(st.u[1], Vec2::new(-1.0, 0.0));
    }

    /// Each hook sends exactly one message per neighbour link, and the
    /// corner-force exchange round-trips through the native CornerVec2
    /// packing (no scratch arrays, bit-exact values).
    #[test]
    fn hooks_are_one_message_per_neighbour_per_phase() {
        let m = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| usize::from(e % 6 >= 3))
            .collect();
        let subs = SubMeshPlan::build(&m, &owner, 2).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let out = Typhon::run(2, |ctx| {
            let sub = &subs[ctx.rank()];
            let mut mesh = sub.mesh.clone();
            let mut st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).unwrap();
            // Distinctive owned corner forces; ghosts poisoned.
            for e in 0..mesh.n_elements() {
                let g = sub.el_l2g[e] as f64;
                for c in 0..4 {
                    let f = if sub.owns_element(e) {
                        Vec2::new(g + 0.1 * c as f64, -g - 0.1 * c as f64)
                    } else {
                        Vec2::new(f64::NAN, f64::NAN)
                    };
                    st.set_cnforce(e, c, f);
                }
            }
            let mut halo = TyphonHalo::new(ctx, sub, None);
            halo.pre_viscosity(&mut mesh, &mut st).unwrap();
            halo.pre_acceleration(&mut st).unwrap();
            halo.post_remap(&mut mesh, &mut st).unwrap();
            let forces_ok = (0..mesh.n_elements()).all(|e| {
                let g = sub.el_l2g[e] as f64;
                (0..4)
                    .all(|c| st.cnforce(e, c) == Vec2::new(g + 0.1 * c as f64, -g - 0.1 * c as f64))
            });
            (ctx.stats(), halo.plan().n_links(), forces_ok)
        })
        .unwrap();
        for (stats, n_links, forces_ok) in out {
            assert!(forces_ok, "corner forces corrupted by aggregated packing");
            // Three phases executed once each: 3 × links messages total.
            assert_eq!(stats.messages_sent, 3 * n_links as u64);
            for phase in ["pre_viscosity", "pre_acceleration", "post_remap"] {
                let p = stats.phase(phase).unwrap();
                assert_eq!(p.messages_sent, n_links as u64, "{phase}");
                assert!(p.doubles_sent > 0, "{phase} moved no data");
            }
        }
    }
}
