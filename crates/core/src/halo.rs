//! Typhon-backed halo operations and the piston hook.
//!
//! [`TyphonHalo`] implements [`bookleaf_hydro::HaloOps`] over a
//! [`bookleaf_typhon::RankCtx`] and the exchange schedules of a
//! [`bookleaf_mesh::SubMesh`], reproducing the reference code's two
//! exchange phases:
//!
//! * **before the viscosity calculation** — node kinematics (positions
//!   and velocities) plus ghost element thermodynamic state;
//! * **before the acceleration** — ghost corner masses and corner
//!   forces, so every rank can close the nodal gather for its nodes.
//!
//! [`PistonHook`] (and the piston part of `TyphonHalo`) imposes the
//! Saltzmann driven wall after each acceleration.

use bookleaf_hydro::{HaloOps, HydroState};
use bookleaf_mesh::{Mesh, SubMesh};
use bookleaf_typhon::{exchange_corner, exchange_scalar, exchange_vec2, RankCtx};
use bookleaf_util::Vec2;

/// Node-local piston description (local node ids).
#[derive(Debug, Clone, Default)]
pub struct LocalPiston {
    /// Local node indices of the driven wall.
    pub nodes: Vec<u32>,
    /// Imposed velocity.
    pub velocity: Vec2,
}

impl LocalPiston {
    /// Apply the piston to `u` and `ubar`.
    pub fn apply(&self, state: &mut HydroState) {
        for &n in &self.nodes {
            state.u[n as usize] = self.velocity;
            state.ubar[n as usize] = self.velocity;
        }
    }
}

/// Serial hooks: no communication, optional piston.
#[derive(Debug, Default)]
pub struct SerialHooks {
    /// Piston, if the deck has one.
    pub piston: Option<LocalPiston>,
}

impl HaloOps for SerialHooks {
    fn post_acceleration(&mut self, _mesh: &Mesh, state: &mut HydroState) {
        if let Some(p) = &self.piston {
            p.apply(state);
        }
    }
}

/// Distributed hooks: Typhon exchanges plus optional piston.
pub struct TyphonHalo<'a> {
    /// The rank's communication context.
    pub ctx: &'a RankCtx,
    /// The rank's submesh (schedules live here).
    pub sub: &'a SubMesh,
    /// Piston with *local* node ids, if any land on this rank.
    pub piston: Option<LocalPiston>,
}

impl HaloOps for TyphonHalo<'_> {
    fn pre_viscosity(&mut self, mesh: &mut Mesh, state: &mut HydroState) {
        exchange_vec2(self.ctx, &self.sub.nd_exchange, &mut mesh.nodes);
        exchange_vec2(self.ctx, &self.sub.nd_exchange, &mut state.u);
        exchange_scalar(self.ctx, &self.sub.el_exchange, &mut state.rho);
        exchange_scalar(self.ctx, &self.sub.el_exchange, &mut state.ein);
        exchange_scalar(self.ctx, &self.sub.el_exchange, &mut state.pressure);
        exchange_scalar(self.ctx, &self.sub.el_exchange, &mut state.cs2);
    }

    fn pre_acceleration(&mut self, state: &mut HydroState) {
        exchange_corner(self.ctx, &self.sub.el_exchange, &mut state.cnmass);
        // Corner forces are Vec2 per corner: exchange the two components
        // through scratch corner arrays.
        let n = state.cnforce.len();
        let mut fx = vec![[0.0f64; 4]; n];
        let mut fy = vec![[0.0f64; 4]; n];
        for e in 0..n {
            for c in 0..4 {
                fx[e][c] = state.cnforce[e][c].x;
                fy[e][c] = state.cnforce[e][c].y;
            }
        }
        exchange_corner(self.ctx, &self.sub.el_exchange, &mut fx);
        exchange_corner(self.ctx, &self.sub.el_exchange, &mut fy);
        for e in 0..n {
            for c in 0..4 {
                state.cnforce[e][c] = Vec2::new(fx[e][c], fy[e][c]);
            }
        }
    }

    fn post_acceleration(&mut self, _mesh: &Mesh, state: &mut HydroState) {
        if let Some(p) = &self.piston {
            p.apply(state);
        }
    }

    fn post_remap(&mut self, mesh: &mut Mesh, state: &mut HydroState) {
        // Remap changes masses and velocities; refresh every ghost field
        // an owner may have updated.
        exchange_vec2(self.ctx, &self.sub.nd_exchange, &mut mesh.nodes);
        exchange_vec2(self.ctx, &self.sub.nd_exchange, &mut state.u);
        exchange_scalar(self.ctx, &self.sub.el_exchange, &mut state.mass);
        exchange_scalar(self.ctx, &self.sub.el_exchange, &mut state.rho);
        exchange_scalar(self.ctx, &self.sub.el_exchange, &mut state.ein);
        exchange_scalar(self.ctx, &self.sub.el_exchange, &mut state.volume);
        exchange_corner(self.ctx, &self.sub.el_exchange, &mut state.cnmass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};

    #[test]
    fn piston_overrides_velocity() {
        let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let mut st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).unwrap();
        let p = LocalPiston {
            nodes: vec![0, 3],
            velocity: Vec2::new(2.0, 0.0),
        };
        p.apply(&mut st);
        assert_eq!(st.u[0], Vec2::new(2.0, 0.0));
        assert_eq!(st.ubar[3], Vec2::new(2.0, 0.0));
        assert_eq!(st.u[1], Vec2::ZERO);
    }

    #[test]
    fn serial_hooks_apply_piston_post_acceleration() {
        let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let mut st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).unwrap();
        let mut hooks = SerialHooks {
            piston: Some(LocalPiston {
                nodes: vec![1],
                velocity: Vec2::new(-1.0, 0.0),
            }),
        };
        hooks.post_acceleration(&mesh, &mut st);
        assert_eq!(st.u[1], Vec2::new(-1.0, 0.0));
    }
}
