//! Text input decks: the way real BookLeaf is driven.
//!
//! Every problem in the paper's evaluation is a *text file* fed to one
//! binary. [`InputDeck`] is that file's typed form: the scenario (a
//! named standard problem *or* a fully generic mesh/region/material
//! description) plus every run option an input namelist would carry —
//! time-step controls, ALE options, the executor and overlap toggle.
//! `decks::from_str` / `decks::to_string` convert between [`InputDeck`]
//! and a line-oriented key-value text format (a TOML subset:
//! `key = value` entries under `[section]` headers, `#` comments), and
//! `Simulation::builder().deck_str(..)` / `.deck_file(..)` accept the
//! text directly — new scenarios are data, not code.
//!
//! The spec types carry serde derives so the format can swap to a real
//! serde backend when the workspace vendors one; the shims' derives are
//! no-ops (see `shims/README.md`), so the codec below is hand-rolled in
//! the same field-per-key shape a serde TOML round trip would use.
//!
//! Errors are typed and line-anchored: a malformed file fails with
//! [`DeckError::Text`] naming the 1-based offending line; an
//! inconsistent but syntactically valid spec fails with
//! [`DeckError::Config`].
//!
//! # Named decks
//!
//! A deck with a top-level `problem` key selects one of the five
//! standard problems at a resolution:
//!
//! ```text
//! # BookLeaf-rs input deck
//! problem = sod
//! nx = 40
//! ny = 4
//!
//! [control]
//! final_time = 0.2
//!
//! [executor]
//! model = hybrid
//! ranks = 2
//! threads_per_rank = 2
//! ```
//!
//! # Generic decks
//!
//! A deck with a `[mesh]` section (and no `problem` key) describes the
//! scenario itself — see [`crate::scenario`] for the semantics. The
//! full grammar:
//!
//! | section | key | type | default | meaning |
//! |---|---|---|---|---|
//! | top level | `name` | ident | `generic` | scenario name (reports) |
//! | `[mesh]` | `nx`, `ny` | int | required | elements per direction (≤ [`MAX_MESH_DIM`]) |
//! | | `x0`, `y0` | float | `0` | domain lower-left corner |
//! | | `x1`, `y1` | float | `1` | domain upper-right corner |
//! | | `skew` | `saltzmann` | none | optional mesh distortion |
//! | `[material.<name>]` | `eos` | `ideal_gas` \| `tait` \| `jwl` \| `void` | required | EoS form (`void` takes no parameters) |
//! | | `gamma` | float | — | `ideal_gas` (> 1) and `tait` (≥ 1) |
//! | | `p0`, `rho0` | float | — | `tait` reference pressure scale / density |
//! | | `a`, `b`, `r1`, `r2`, `omega`, `rho0` | float | — | `jwl` parameters |
//! | `[region.<name>]` | `shape` | `rect` \| `circle` \| `halfplane` | required | spatial predicate |
//! | | `x0`, `y0`, `x1`, `y1` | float | — | `rect` bounds (inclusive) |
//! | | `cx`, `cy`, `r` | float | — | `circle` centre and radius |
//! | | `normal_x`, `normal_y`, `offset` | float | — | `halfplane`: inside iff `n·p ≤ offset` |
//! | | `material` | ident | required | a `[material.<name>]` handle |
//! | | `rho` | float | required | initial density (> 0) |
//! | | `ein` *or* `p` | float | required | initial energy, direct or via pressure (exactly one) |
//! | | `ux`, `uy` | float | `0` | uniform initial velocity |
//! | | `u_radial` | float | — | radial velocity about the origin (excludes `ux`/`uy`) |
//! | `[boundary]` | `left`, `right`, `bottom`, `top` | `reflective` \| `free` \| `piston` | `reflective` | per-side condition (≤ 1 piston) |
//! | | `piston_ux`, `piston_uy` | float | `0` | piston velocity (piston side only) |
//!
//! Sections may repeat `[material.<name>]`/`[region.<name>]` with
//! distinct names; region order is significant (first match wins, see
//! [`crate::scenario`]). Generic decks must set `final_time` under
//! `[control]` — there is no standard end time to fall back on. The
//! `[control]`/`[dt]`/`[ale]`/`[executor]` sections and their defaults
//! are shared with named decks.
//!
//! Every value error is anchored to the offending line: a negative
//! `rho` points at the `rho = ...` line, an unknown material at the
//! `material = ...` line, a shadowed region is a [`DeckError::Config`]
//! naming the region (mesh-dependent checks have no single line).
//!
//! ```text
//! name = hot-bubble
//!
//! [mesh]
//! nx = 40
//! ny = 40
//!
//! [material.gas]
//! eos = ideal_gas
//! gamma = 1.4
//!
//! [region.bubble]
//! shape = circle
//! cx = 0.5
//! cy = 0.5
//! r = 0.2
//! material = gas
//! rho = 1
//! p = 10
//!
//! [region.ambient]
//! shape = rect
//! x0 = 0
//! y0 = 0
//! x1 = 1
//! y1 = 1
//! material = gas
//! rho = 1
//! p = 0.1
//!
//! [control]
//! final_time = 0.2
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use bookleaf_ale::{AleMode, AleOptions};
use bookleaf_hydro::getdt::DtControls;
use bookleaf_util::{DeckError, Vec2};

use crate::config::{ExecutorKind, RunConfig};
use crate::decks::{self, Deck};
use crate::scenario::{
    is_ident, BoundarySpec, EnergyInit, GenericSpec, MeshSpec, NamedMaterial, RegionSpec, Shape,
    SideBc, SkewKind, VelocityInit,
};
use bookleaf_eos::EosSpec;

/// Hard cap on a text deck's mesh dimensions: a typo'd `nx = 4000000`
/// should fail fast, not allocate the machine away.
pub const MAX_MESH_DIM: usize = 8192;

/// Which scenario a text deck sets up: one of the five standard
/// problems at a resolution, or a fully generic description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProblemSpec {
    /// Sod's shock tube, `nx × ny` elements.
    Sod {
        /// Elements along the tube.
        nx: usize,
        /// Elements across the tube.
        ny: usize,
    },
    /// The Noh implosion, `n × n` elements.
    Noh {
        /// Elements per side.
        n: usize,
    },
    /// The Sedov blast, `n × n` elements.
    Sedov {
        /// Elements per side.
        n: usize,
    },
    /// Saltzmann's piston, `nx × ny` elements.
    Saltzmann {
        /// Elements along the tube.
        nx: usize,
        /// Elements across the tube.
        ny: usize,
    },
    /// The underwater-explosion multi-material deck, `n × n` elements.
    Underwater {
        /// Elements per side.
        n: usize,
    },
    /// A generic scenario: mesh, regions, materials and boundary
    /// conditions as data (see [`crate::scenario`]).
    Generic(Box<GenericSpec>),
}

impl ProblemSpec {
    /// The scenario's name: the text-deck `problem` value for named
    /// problems, the deck's own `name` for generic scenarios.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            ProblemSpec::Sod { .. } => "sod",
            ProblemSpec::Noh { .. } => "noh",
            ProblemSpec::Sedov { .. } => "sedov",
            ProblemSpec::Saltzmann { .. } => "saltzmann",
            ProblemSpec::Underwater { .. } => "underwater",
            ProblemSpec::Generic(g) => &g.name,
        }
    }

    /// The problem's standard end time (matches the constructed deck's
    /// `recommended_final_time`; pinned by a test). Generic scenarios
    /// have no standard end time — they must set `final_time`
    /// explicitly (enforced by [`InputDeck::validate`]) and report a
    /// placeholder `1.0` here.
    #[must_use]
    pub fn recommended_final_time(&self) -> f64 {
        match self {
            ProblemSpec::Sod { .. } => 0.2,
            ProblemSpec::Noh { .. } | ProblemSpec::Saltzmann { .. } => 0.6,
            ProblemSpec::Sedov { .. } => 1.0,
            ProblemSpec::Underwater { .. } => 0.01,
            ProblemSpec::Generic(_) => 1.0,
        }
    }

    /// Total element count of the mesh this spec would build
    /// (saturating) — what admission control budgets against.
    #[must_use]
    pub fn cells(&self) -> usize {
        match self {
            ProblemSpec::Sod { nx, ny } | ProblemSpec::Saltzmann { nx, ny } => {
                nx.saturating_mul(*ny)
            }
            ProblemSpec::Noh { n } | ProblemSpec::Sedov { n } | ProblemSpec::Underwater { n } => {
                n.saturating_mul(*n)
            }
            ProblemSpec::Generic(g) => g.mesh.cells(),
        }
    }

    /// Named-problem resolution keys; `None` for generic scenarios.
    fn dims(&self) -> Option<(usize, Option<usize>)> {
        match *self {
            ProblemSpec::Sod { nx, ny } | ProblemSpec::Saltzmann { nx, ny } => {
                (nx, Some(ny)).into()
            }
            ProblemSpec::Noh { n } | ProblemSpec::Sedov { n } | ProblemSpec::Underwater { n } => {
                (n, None).into()
            }
            ProblemSpec::Generic(_) => None,
        }
    }
}

/// A fully parsed input deck: problem spec plus every run option.
///
/// Converts to the runtime pair with [`InputDeck::build_deck`] (the
/// [`Deck`]) and [`InputDeck::run_config`] (the [`RunConfig`], with
/// `final_time` defaulting to the problem's standard end time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputDeck {
    /// Problem and resolution.
    pub problem: ProblemSpec,
    /// Stop time; `None` = the problem's recommended end time
    /// (required for generic scenarios, which have none).
    pub final_time: Option<f64>,
    /// Hard step cap.
    pub max_steps: usize,
    /// Overlap halo exchange with computation (distributed executors).
    pub overlap: bool,
    /// Time-step controls.
    pub dt: DtControls,
    /// ALE remap options; `None` = pure Lagrangian.
    pub ale: Option<AleOptions>,
    /// Execution model.
    pub executor: ExecutorKind,
}

impl InputDeck {
    /// A deck for `problem` with default options (serial Lagrangian,
    /// recommended end time).
    #[must_use]
    pub fn new(problem: ProblemSpec) -> Self {
        let defaults = RunConfig::default();
        InputDeck {
            problem,
            final_time: None,
            max_steps: defaults.max_steps,
            overlap: defaults.overlap,
            dt: defaults.dt,
            ale: None,
            executor: ExecutorKind::Serial,
        }
    }

    /// Check every option for consistency (spec-level; the constructed
    /// [`Deck`] is checked again by `Deck::validate`).
    pub fn validate(&self) -> Result<(), DeckError> {
        let bad = |message: String| Err(DeckError::Config { message });
        match &self.problem {
            ProblemSpec::Generic(g) => {
                g.validate()?;
                if self.final_time.is_none() {
                    return bad("generic decks must set `final_time` in [control] \
                         (no standard end time to fall back on)"
                        .into());
                }
            }
            named => {
                let (a, b) = named.dims().expect("named problems have dims");
                for d in [Some(a), b].into_iter().flatten() {
                    if d == 0 || d > MAX_MESH_DIM {
                        return bad(format!(
                            "{}: mesh dimension {d} out of range 1..={MAX_MESH_DIM}",
                            named.name()
                        ));
                    }
                }
            }
        }
        if let Some(t) = self.final_time {
            if !(t > 0.0 && t.is_finite()) {
                return bad(format!("final_time must be positive and finite, got {t}"));
            }
        }
        if self.max_steps == 0 {
            return bad("max_steps must be at least 1".into());
        }
        let dt = &self.dt;
        for (key, v) in [
            ("cfl_sf", dt.cfl_sf),
            ("div_sf", dt.div_sf),
            ("dt_initial", dt.dt_initial),
            ("dt_max", dt.dt_max),
            ("dt_min", dt.dt_min),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return bad(format!("dt.{key} must be positive and finite, got {v}"));
            }
        }
        if !(dt.growth >= 1.0 && dt.growth.is_finite()) {
            return bad(format!("dt.growth must be at least 1, got {}", dt.growth));
        }
        if dt.dt_min > dt.dt_max {
            return bad(format!(
                "dt.dt_min ({}) exceeds dt.dt_max ({})",
                dt.dt_min, dt.dt_max
            ));
        }
        if let Some(ale) = self.ale {
            if ale.frequency == 0 {
                return bad("ale.frequency must be at least 1".into());
            }
            if let AleMode::Smooth { alpha } = ale.mode {
                if !(alpha > 0.0 && alpha <= 1.0) {
                    return bad(format!("ale.alpha must be in (0, 1], got {alpha}"));
                }
            }
        }
        match self.executor {
            ExecutorKind::Serial => {}
            ExecutorKind::FlatMpi { ranks } => {
                if ranks == 0 {
                    return bad("executor.ranks must be at least 1".into());
                }
            }
            ExecutorKind::Hybrid {
                ranks,
                threads_per_rank,
            } => {
                if ranks == 0 || threads_per_rank == 0 {
                    return bad(
                        "executor.ranks and executor.threads_per_rank must be at least 1".into(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Construct the runtime [`Deck`] this spec describes.
    pub fn build_deck(&self) -> Result<Deck, DeckError> {
        self.validate()?;
        Ok(match &self.problem {
            ProblemSpec::Sod { nx, ny } => decks::sod(*nx, *ny),
            ProblemSpec::Noh { n } => decks::noh(*n),
            ProblemSpec::Sedov { n } => decks::sedov(*n),
            ProblemSpec::Saltzmann { nx, ny } => decks::saltzmann(*nx, *ny),
            ProblemSpec::Underwater { n } => decks::underwater(*n),
            ProblemSpec::Generic(g) => {
                let mut deck = g.build()?;
                // validate() above guarantees an explicit final_time.
                if let Some(t) = self.final_time {
                    deck.recommended_final_time = t;
                }
                deck
            }
        })
    }

    /// The run configuration this spec describes. `final_time` defaults
    /// to the problem's recommended end time when the deck omits it.
    #[must_use]
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            final_time: self
                .final_time
                .unwrap_or_else(|| self.problem.recommended_final_time()),
            max_steps: self.max_steps,
            dt: self.dt,
            ale: self.ale,
            executor: self.executor,
            overlap: self.overlap,
            ..RunConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Writer.

impl fmt::Display for InputDeck {
    /// Canonical text form; `deck.to_string().parse()` reproduces the
    /// deck exactly (floats print in shortest round-trip form). Named
    /// decks keep the exact byte form the versioned checkpoint format
    /// embeds — do not reorder their keys.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# BookLeaf-rs input deck")?;
        match &self.problem {
            ProblemSpec::Generic(g) => write_generic(f, g)?,
            named => {
                writeln!(f, "problem = {}", named.name())?;
                match named.dims().expect("named problems have dims") {
                    (nx, Some(ny)) => {
                        writeln!(f, "nx = {nx}")?;
                        writeln!(f, "ny = {ny}")?;
                    }
                    (n, None) => writeln!(f, "n = {n}")?,
                }
            }
        }
        writeln!(f)?;
        writeln!(f, "[control]")?;
        if let Some(t) = self.final_time {
            writeln!(f, "final_time = {t}")?;
        }
        writeln!(f, "max_steps = {}", self.max_steps)?;
        writeln!(f, "overlap = {}", self.overlap)?;
        writeln!(f)?;
        writeln!(f, "[dt]")?;
        writeln!(f, "cfl_sf = {}", self.dt.cfl_sf)?;
        writeln!(f, "div_sf = {}", self.dt.div_sf)?;
        writeln!(f, "growth = {}", self.dt.growth)?;
        writeln!(f, "dt_initial = {}", self.dt.dt_initial)?;
        writeln!(f, "dt_max = {}", self.dt.dt_max)?;
        writeln!(f, "dt_min = {}", self.dt.dt_min)?;
        if let Some(ale) = self.ale {
            writeln!(f)?;
            writeln!(f, "[ale]")?;
            match ale.mode {
                AleMode::Eulerian => writeln!(f, "mode = eulerian")?,
                AleMode::Smooth { alpha } => {
                    writeln!(f, "mode = smooth")?;
                    writeln!(f, "alpha = {alpha}")?;
                }
            }
            writeln!(f, "frequency = {}", ale.frequency)?;
        }
        writeln!(f)?;
        writeln!(f, "[executor]")?;
        match self.executor {
            ExecutorKind::Serial => writeln!(f, "model = serial")?,
            ExecutorKind::FlatMpi { ranks } => {
                writeln!(f, "model = flat_mpi")?;
                writeln!(f, "ranks = {ranks}")?;
            }
            ExecutorKind::Hybrid {
                ranks,
                threads_per_rank,
            } => {
                writeln!(f, "model = hybrid")?;
                writeln!(f, "ranks = {ranks}")?;
                writeln!(f, "threads_per_rank = {threads_per_rank}")?;
            }
        }
        Ok(())
    }
}

fn write_generic(f: &mut fmt::Formatter<'_>, g: &GenericSpec) -> fmt::Result {
    writeln!(f, "name = {}", g.name)?;
    writeln!(f)?;
    writeln!(f, "[mesh]")?;
    writeln!(f, "nx = {}", g.mesh.nx)?;
    writeln!(f, "ny = {}", g.mesh.ny)?;
    writeln!(f, "x0 = {}", g.mesh.origin.x)?;
    writeln!(f, "y0 = {}", g.mesh.origin.y)?;
    writeln!(f, "x1 = {}", g.mesh.extent.x)?;
    writeln!(f, "y1 = {}", g.mesh.extent.y)?;
    if let Some(SkewKind::Saltzmann) = g.mesh.skew {
        writeln!(f, "skew = saltzmann")?;
    }
    for mat in &g.materials {
        writeln!(f)?;
        writeln!(f, "[material.{}]", mat.name)?;
        match mat.eos {
            EosSpec::Void => writeln!(f, "eos = void")?,
            EosSpec::IdealGas { gamma } => {
                writeln!(f, "eos = ideal_gas")?;
                writeln!(f, "gamma = {gamma}")?;
            }
            EosSpec::Tait { p0, rho0, gamma } => {
                writeln!(f, "eos = tait")?;
                writeln!(f, "p0 = {p0}")?;
                writeln!(f, "rho0 = {rho0}")?;
                writeln!(f, "gamma = {gamma}")?;
            }
            EosSpec::Jwl {
                a,
                b,
                r1,
                r2,
                omega,
                rho0,
            } => {
                writeln!(f, "eos = jwl")?;
                writeln!(f, "a = {a}")?;
                writeln!(f, "b = {b}")?;
                writeln!(f, "r1 = {r1}")?;
                writeln!(f, "r2 = {r2}")?;
                writeln!(f, "omega = {omega}")?;
                writeln!(f, "rho0 = {rho0}")?;
            }
        }
    }
    for reg in &g.regions {
        writeln!(f)?;
        writeln!(f, "[region.{}]", reg.name)?;
        match reg.shape {
            Shape::Rect { x0, y0, x1, y1 } => {
                writeln!(f, "shape = rect")?;
                writeln!(f, "x0 = {x0}")?;
                writeln!(f, "y0 = {y0}")?;
                writeln!(f, "x1 = {x1}")?;
                writeln!(f, "y1 = {y1}")?;
            }
            Shape::Circle { cx, cy, r } => {
                writeln!(f, "shape = circle")?;
                writeln!(f, "cx = {cx}")?;
                writeln!(f, "cy = {cy}")?;
                writeln!(f, "r = {r}")?;
            }
            Shape::HalfPlane {
                normal_x,
                normal_y,
                offset,
            } => {
                writeln!(f, "shape = halfplane")?;
                writeln!(f, "normal_x = {normal_x}")?;
                writeln!(f, "normal_y = {normal_y}")?;
                writeln!(f, "offset = {offset}")?;
            }
        }
        writeln!(f, "material = {}", reg.material)?;
        writeln!(f, "rho = {}", reg.rho)?;
        match reg.energy {
            EnergyInit::Ein(e) => writeln!(f, "ein = {e}")?,
            EnergyInit::Pressure(p) => writeln!(f, "p = {p}")?,
        }
        match reg.velocity {
            VelocityInit::Constant(v) => {
                writeln!(f, "ux = {}", v.x)?;
                writeln!(f, "uy = {}", v.y)?;
            }
            VelocityInit::Radial { speed } => writeln!(f, "u_radial = {speed}")?,
        }
    }
    if g.boundary != BoundarySpec::default() {
        writeln!(f)?;
        writeln!(f, "[boundary]")?;
        for (side, bc) in [
            ("left", g.boundary.left),
            ("right", g.boundary.right),
            ("bottom", g.boundary.bottom),
            ("top", g.boundary.top),
        ] {
            let word = match bc {
                SideBc::Reflective => "reflective",
                SideBc::Free => "free",
                SideBc::Piston => "piston",
            };
            writeln!(f, "{side} = {word}")?;
        }
        if let Some(u) = g.boundary.piston_u {
            writeln!(f, "piston_ux = {}", u.x)?;
            writeln!(f, "piston_uy = {}", u.y)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parser.

/// A value with the 1-based line it came from (for anchored errors).
#[derive(Debug, Clone)]
struct At<T> {
    value: T,
    line: usize,
}

/// Which section the parser is inside. `Material`/`Region` index into
/// the raw accumulator's vectors (one entry per section header).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Sec {
    Top,
    Control,
    Dt,
    Ale,
    Executor,
    Mesh,
    Boundary,
    Material(usize),
    Region(usize),
}

#[derive(Default)]
struct RawMaterial {
    name: String,
    line: usize,
    eos: Option<At<&'static str>>,
    params: Vec<(String, At<f64>)>,
}

#[derive(Default)]
struct RawRegion {
    name: String,
    line: usize,
    shape: Option<At<&'static str>>,
    material: Option<At<String>>,
    nums: Vec<(String, At<f64>)>,
}

#[derive(Default)]
struct RawDeck {
    problem: Option<At<&'static str>>,
    nx: Option<At<usize>>,
    ny: Option<At<usize>>,
    n: Option<At<usize>>,
    name: Option<At<String>>,
    mesh: Option<usize>, // [mesh] header line
    mesh_nx: Option<At<usize>>,
    mesh_ny: Option<At<usize>>,
    mesh_x0: Option<At<f64>>,
    mesh_y0: Option<At<f64>>,
    mesh_x1: Option<At<f64>>,
    mesh_y1: Option<At<f64>>,
    mesh_skew: Option<At<&'static str>>,
    materials: Vec<RawMaterial>,
    regions: Vec<RawRegion>,
    boundary: Option<usize>,                  // [boundary] header line
    bnd_sides: [Option<At<&'static str>>; 4], // left, right, bottom, top
    bnd_piston_ux: Option<At<f64>>,
    bnd_piston_uy: Option<At<f64>>,
    final_time: Option<f64>,
    max_steps: Option<usize>,
    overlap: Option<bool>,
    dt: DtControls,
    ale_present: bool,
    ale_mode: Option<At<&'static str>>,
    ale_alpha: Option<At<f64>>,
    ale_frequency: Option<usize>,
    exec_model: Option<At<&'static str>>,
    exec_ranks: Option<At<usize>>,
    exec_threads: Option<At<usize>>,
}

fn text_err(line: usize, message: impl Into<String>) -> DeckError {
    DeckError::Text {
        line,
        message: message.into(),
    }
}

fn parse_num<T: FromStr>(line: usize, key: &str, raw: &str, kind: &str) -> Result<T, DeckError> {
    raw.parse::<T>()
        .map_err(|_| text_err(line, format!("`{key}` expects {kind}, got `{raw}`")))
}

/// Floats in a deck must be finite — `inf`/`nan` parse as `f64` but
/// would only fail later, unanchored, in `InputDeck::validate`; reject
/// them here so the error keeps its line.
fn parse_f64(line: usize, key: &str, raw: &str) -> Result<f64, DeckError> {
    let v: f64 = parse_num(line, key, raw, "a number")?;
    if !v.is_finite() {
        return Err(text_err(
            line,
            format!("`{key}` expects a finite number, got `{raw}`"),
        ));
    }
    Ok(v)
}

fn parse_bool(line: usize, key: &str, raw: &str) -> Result<bool, DeckError> {
    match raw {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(text_err(
            line,
            format!("`{key}` expects `true` or `false`, got `{raw}`"),
        )),
    }
}

/// The section label used for duplicate-key tracking and line lookups
/// (`material.<name>`-style for the dynamic sections).
fn sec_label(raw: &RawDeck, sec: Sec) -> String {
    match sec {
        Sec::Top => String::new(),
        Sec::Control => "control".into(),
        Sec::Dt => "dt".into(),
        Sec::Ale => "ale".into(),
        Sec::Executor => "executor".into(),
        Sec::Mesh => "mesh".into(),
        Sec::Boundary => "boundary".into(),
        Sec::Material(i) => format!("material.{}", raw.materials[i].name),
        Sec::Region(i) => format!("region.{}", raw.regions[i].name),
    }
}

impl FromStr for InputDeck {
    type Err = DeckError;

    fn from_str(text: &str) -> Result<Self, DeckError> {
        let mut raw = RawDeck::default();
        let mut section = Sec::Top;
        // Duplicate keys are last-wins in many loose formats; TOML (our
        // subset) rejects them, and a silently ignored stale `nx = ..`
        // is exactly the typo class a strict parser exists to catch.
        // The map doubles as the source-line index for anchoring
        // value errors found after assembly.
        let mut seen: std::collections::HashMap<(String, String), usize> =
            std::collections::HashMap::new();
        for (idx, full_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            // Strip comments and whitespace.
            let line = full_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(text_err(lineno, format!("unterminated section `{line}`")));
                };
                section = parse_section(&mut raw, lineno, name.trim())?;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(text_err(
                    lineno,
                    format!("expected `key = value` or `[section]`, got `{line}`"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(text_err(lineno, format!("`{key}` has no value")));
            }
            if seen
                .insert((sec_label(&raw, section), key.to_string()), lineno)
                .is_some()
            {
                return Err(text_err(lineno, format!("duplicate key `{key}`")));
            }
            parse_entry(&mut raw, section, lineno, key, value)?;
        }
        assemble(&raw, &seen)
    }
}

/// Parse one `[section]` header, registering dynamic
/// `material.<name>`/`region.<name>` sections in the accumulator.
fn parse_section(raw: &mut RawDeck, line: usize, name: &str) -> Result<Sec, DeckError> {
    Ok(match name {
        "control" => Sec::Control,
        "dt" => Sec::Dt,
        "ale" => {
            raw.ale_present = true;
            Sec::Ale
        }
        "executor" => Sec::Executor,
        "mesh" => {
            raw.mesh.get_or_insert(line);
            Sec::Mesh
        }
        "boundary" => {
            raw.boundary.get_or_insert(line);
            Sec::Boundary
        }
        other => {
            if let Some(mat) = other.strip_prefix("material.") {
                if !is_ident(mat) {
                    return Err(text_err(
                        line,
                        format!("material name `{mat}` must be non-empty [A-Za-z0-9_-]"),
                    ));
                }
                if raw.materials.iter().any(|m| m.name == mat) {
                    return Err(text_err(line, format!("duplicate section `[{other}]`")));
                }
                raw.materials.push(RawMaterial {
                    name: mat.to_string(),
                    line,
                    ..RawMaterial::default()
                });
                return Ok(Sec::Material(raw.materials.len() - 1));
            }
            if let Some(reg) = other.strip_prefix("region.") {
                if !is_ident(reg) {
                    return Err(text_err(
                        line,
                        format!("region name `{reg}` must be non-empty [A-Za-z0-9_-]"),
                    ));
                }
                if raw.regions.iter().any(|r| r.name == reg) {
                    return Err(text_err(line, format!("duplicate section `[{other}]`")));
                }
                raw.regions.push(RawRegion {
                    name: reg.to_string(),
                    line,
                    ..RawRegion::default()
                });
                return Ok(Sec::Region(raw.regions.len() - 1));
            }
            return Err(text_err(line, format!("unknown section `[{other}]`")));
        }
    })
}

/// Every numeric key a `[region.*]` section understands, for
/// unknown-key detection (applicability per shape is checked at
/// assembly, anchored to the offending line).
const REGION_NUM_KEYS: [&str; 16] = [
    "x0", "y0", "x1", "y1", "cx", "cy", "r", "normal_x", "normal_y", "offset", "rho", "ein", "p",
    "ux", "uy", "u_radial",
];

/// Every numeric key a `[material.*]` section understands.
const MATERIAL_NUM_KEYS: [&str; 8] = ["gamma", "p0", "rho0", "a", "b", "r1", "r2", "omega"];

/// Dispatch one `key = value` entry into the raw accumulator.
fn parse_entry(
    raw: &mut RawDeck,
    section: Sec,
    line: usize,
    key: &str,
    value: &str,
) -> Result<(), DeckError> {
    let place = sec_label(raw, section);
    let unknown = |line: usize| {
        let place = if place.is_empty() {
            "the top level".to_string()
        } else {
            format!("[{place}]")
        };
        Err(text_err(line, format!("unknown key `{key}` in {place}")))
    };
    match section {
        Sec::Top => match key {
            "problem" => {
                let name = match value {
                    "sod" => "sod",
                    "noh" => "noh",
                    "sedov" => "sedov",
                    "saltzmann" => "saltzmann",
                    "underwater" => "underwater",
                    other => {
                        return Err(text_err(line, format!("unknown problem `{other}`")));
                    }
                };
                raw.problem = Some(At { value: name, line });
            }
            "nx" => {
                raw.nx = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                })
            }
            "ny" => {
                raw.ny = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                })
            }
            "n" => {
                raw.n = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                })
            }
            "name" => {
                if !is_ident(value) {
                    return Err(text_err(
                        line,
                        format!("deck name `{value}` must be non-empty [A-Za-z0-9_-]"),
                    ));
                }
                raw.name = Some(At {
                    value: value.to_string(),
                    line,
                });
            }
            _ => return unknown(line),
        },
        Sec::Control => match key {
            "final_time" => raw.final_time = Some(parse_f64(line, key, value)?),
            "max_steps" => raw.max_steps = Some(parse_num(line, key, value, "an integer")?),
            "overlap" => raw.overlap = Some(parse_bool(line, key, value)?),
            _ => return unknown(line),
        },
        Sec::Dt => {
            let slot = match key {
                "cfl_sf" => &mut raw.dt.cfl_sf,
                "div_sf" => &mut raw.dt.div_sf,
                "growth" => &mut raw.dt.growth,
                "dt_initial" => &mut raw.dt.dt_initial,
                "dt_max" => &mut raw.dt.dt_max,
                "dt_min" => &mut raw.dt.dt_min,
                _ => return unknown(line),
            };
            *slot = parse_f64(line, key, value)?;
        }
        Sec::Ale => match key {
            "mode" => {
                let mode = match value {
                    "eulerian" => "eulerian",
                    "smooth" => "smooth",
                    other => {
                        return Err(text_err(
                            line,
                            format!("ale mode must be `eulerian` or `smooth`, got `{other}`"),
                        ));
                    }
                };
                raw.ale_mode = Some(At { value: mode, line });
            }
            "alpha" => {
                raw.ale_alpha = Some(At {
                    value: parse_f64(line, key, value)?,
                    line,
                });
            }
            "frequency" => raw.ale_frequency = Some(parse_num(line, key, value, "an integer")?),
            _ => return unknown(line),
        },
        Sec::Executor => match key {
            "model" => {
                let model = match value {
                    "serial" => "serial",
                    "flat_mpi" => "flat_mpi",
                    "hybrid" => "hybrid",
                    other => {
                        return Err(text_err(
                            line,
                            format!(
                                "executor model must be `serial`, `flat_mpi` or `hybrid`, \
                                 got `{other}`"
                            ),
                        ));
                    }
                };
                raw.exec_model = Some(At { value: model, line });
            }
            "ranks" => {
                raw.exec_ranks = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                });
            }
            "threads_per_rank" => {
                raw.exec_threads = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                });
            }
            _ => return unknown(line),
        },
        Sec::Mesh => match key {
            "nx" => {
                raw.mesh_nx = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                })
            }
            "ny" => {
                raw.mesh_ny = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                })
            }
            "x0" | "y0" | "x1" | "y1" => {
                let v = At {
                    value: parse_f64(line, key, value)?,
                    line,
                };
                match key {
                    "x0" => raw.mesh_x0 = Some(v),
                    "y0" => raw.mesh_y0 = Some(v),
                    "x1" => raw.mesh_x1 = Some(v),
                    _ => raw.mesh_y1 = Some(v),
                }
            }
            "skew" => {
                let skew = match value {
                    "saltzmann" => "saltzmann",
                    other => {
                        return Err(text_err(
                            line,
                            format!("mesh skew must be `saltzmann`, got `{other}`"),
                        ));
                    }
                };
                raw.mesh_skew = Some(At { value: skew, line });
            }
            _ => return unknown(line),
        },
        Sec::Boundary => match key {
            "left" | "right" | "bottom" | "top" => {
                let bc = match value {
                    "reflective" => "reflective",
                    "free" => "free",
                    "piston" => "piston",
                    other => {
                        return Err(text_err(
                            line,
                            format!(
                                "boundary side must be `reflective`, `free` or `piston`, \
                                 got `{other}`"
                            ),
                        ));
                    }
                };
                let slot = match key {
                    "left" => 0,
                    "right" => 1,
                    "bottom" => 2,
                    _ => 3,
                };
                raw.bnd_sides[slot] = Some(At { value: bc, line });
            }
            "piston_ux" => {
                raw.bnd_piston_ux = Some(At {
                    value: parse_f64(line, key, value)?,
                    line,
                })
            }
            "piston_uy" => {
                raw.bnd_piston_uy = Some(At {
                    value: parse_f64(line, key, value)?,
                    line,
                })
            }
            _ => return unknown(line),
        },
        Sec::Material(i) => match key {
            "eos" => {
                let kind = match value {
                    "ideal_gas" => "ideal_gas",
                    "tait" => "tait",
                    "jwl" => "jwl",
                    "void" => "void",
                    other => {
                        return Err(text_err(
                            line,
                            format!(
                                "eos must be `ideal_gas`, `tait`, `jwl` or `void`, got `{other}`"
                            ),
                        ));
                    }
                };
                raw.materials[i].eos = Some(At { value: kind, line });
            }
            _ if MATERIAL_NUM_KEYS.contains(&key) => {
                let v = At {
                    value: parse_f64(line, key, value)?,
                    line,
                };
                raw.materials[i].params.push((key.to_string(), v));
            }
            _ => return unknown(line),
        },
        Sec::Region(i) => match key {
            "shape" => {
                let kind = match value {
                    "rect" => "rect",
                    "circle" => "circle",
                    "halfplane" => "halfplane",
                    other => {
                        return Err(text_err(
                            line,
                            format!("shape must be `rect`, `circle` or `halfplane`, got `{other}`"),
                        ));
                    }
                };
                raw.regions[i].shape = Some(At { value: kind, line });
            }
            "material" => {
                raw.regions[i].material = Some(At {
                    value: value.to_string(),
                    line,
                });
            }
            _ if REGION_NUM_KEYS.contains(&key) => {
                let v = At {
                    value: parse_f64(line, key, value)?,
                    line,
                };
                raw.regions[i].nums.push((key.to_string(), v));
            }
            _ => return unknown(line),
        },
    }
    Ok(())
}

/// Assemble (and cross-check) the raw key soup into a typed spec.
fn assemble(
    raw: &RawDeck,
    seen: &std::collections::HashMap<(String, String), usize>,
) -> Result<InputDeck, DeckError> {
    let problem = if raw.mesh.is_some() {
        assemble_generic(raw, seen)?
    } else {
        assemble_named(raw)?
    };

    let ale = if raw.ale_present {
        let Some(mode) = &raw.ale_mode else {
            return Err(DeckError::Config {
                message: "[ale] section is missing `mode`".into(),
            });
        };
        let mode_value = match mode.value {
            "eulerian" => {
                if let Some(alpha) = &raw.ale_alpha {
                    return Err(text_err(
                        alpha.line,
                        "`alpha` applies only to `mode = smooth`",
                    ));
                }
                AleMode::Eulerian
            }
            _ => {
                let Some(alpha) = &raw.ale_alpha else {
                    return Err(text_err(mode.line, "`mode = smooth` requires `alpha`"));
                };
                AleMode::Smooth { alpha: alpha.value }
            }
        };
        Some(AleOptions {
            mode: mode_value,
            frequency: raw.ale_frequency.unwrap_or(1),
        })
    } else {
        None
    };

    let executor = match &raw.exec_model {
        None => {
            if let Some(r) = &raw.exec_ranks {
                return Err(text_err(r.line, "`ranks` requires an executor `model`"));
            }
            if let Some(t) = &raw.exec_threads {
                return Err(text_err(
                    t.line,
                    "`threads_per_rank` requires an executor `model`",
                ));
            }
            ExecutorKind::Serial
        }
        Some(model) => {
            let forbid_threads = |slot: &Option<At<usize>>| match slot {
                Some(t) => Err(text_err(
                    t.line,
                    format!(
                        "`threads_per_rank` does not apply to `model = {}`",
                        model.value
                    ),
                )),
                None => Ok(()),
            };
            match model.value {
                "serial" => {
                    if let Some(r) = &raw.exec_ranks {
                        return Err(text_err(
                            r.line,
                            "`ranks` does not apply to `model = serial`",
                        ));
                    }
                    forbid_threads(&raw.exec_threads)?;
                    ExecutorKind::Serial
                }
                "flat_mpi" => {
                    forbid_threads(&raw.exec_threads)?;
                    let Some(ranks) = &raw.exec_ranks else {
                        return Err(text_err(model.line, "`model = flat_mpi` requires `ranks`"));
                    };
                    ExecutorKind::FlatMpi { ranks: ranks.value }
                }
                _ => {
                    let Some(ranks) = &raw.exec_ranks else {
                        return Err(text_err(model.line, "`model = hybrid` requires `ranks`"));
                    };
                    let Some(threads) = &raw.exec_threads else {
                        return Err(text_err(
                            model.line,
                            "`model = hybrid` requires `threads_per_rank`",
                        ));
                    };
                    ExecutorKind::Hybrid {
                        ranks: ranks.value,
                        threads_per_rank: threads.value,
                    }
                }
            }
        }
    };

    let defaults = RunConfig::default();
    let deck = InputDeck {
        problem,
        final_time: raw.final_time,
        max_steps: raw.max_steps.unwrap_or(defaults.max_steps),
        overlap: raw.overlap.unwrap_or(defaults.overlap),
        dt: raw.dt,
        ale,
        executor,
    };
    deck.validate()?;
    Ok(deck)
}

/// Assemble a named-problem deck (`problem = ...` at the top level).
fn assemble_named(raw: &RawDeck) -> Result<ProblemSpec, DeckError> {
    // Generic-only pieces without a [mesh] section are misplaced.
    if let Some(name) = &raw.name {
        return Err(text_err(
            name.line,
            "`name` applies only to generic decks (add a [mesh] section)",
        ));
    }
    if let Some(line) = raw
        .materials
        .first()
        .map(|m| m.line)
        .or_else(|| raw.regions.first().map(|r| r.line))
        .or(raw.boundary)
    {
        return Err(text_err(
            line,
            "this section applies only to generic decks (add a [mesh] section)",
        ));
    }
    let Some(problem) = &raw.problem else {
        return Err(DeckError::Config {
            message: "deck needs a top-level `problem` key (named) or a [mesh] section (generic)"
                .into(),
        });
    };
    let need = |slot: &Option<At<usize>>, key: &str| {
        slot.as_ref().map(|s| s.value).ok_or_else(|| {
            text_err(
                problem.line,
                format!("problem `{}` requires `{key}`", problem.value),
            )
        })
    };
    let forbid = |slot: &Option<At<usize>>, key: &str| match slot {
        Some(s) => Err(text_err(
            s.line,
            format!("`{key}` does not apply to problem `{}`", problem.value),
        )),
        None => Ok(()),
    };
    Ok(match problem.value {
        "sod" | "saltzmann" => {
            forbid(&raw.n, "n")?;
            let nx = need(&raw.nx, "nx")?;
            let ny = need(&raw.ny, "ny")?;
            if problem.value == "sod" {
                ProblemSpec::Sod { nx, ny }
            } else {
                ProblemSpec::Saltzmann { nx, ny }
            }
        }
        name => {
            forbid(&raw.nx, "nx")?;
            forbid(&raw.ny, "ny")?;
            let n = need(&raw.n, "n")?;
            match name {
                "noh" => ProblemSpec::Noh { n },
                "sedov" => ProblemSpec::Sedov { n },
                _ => ProblemSpec::Underwater { n },
            }
        }
    })
}

/// Take a named parameter out of a raw key list.
fn take_param(params: &mut Vec<(String, At<f64>)>, key: &str) -> Option<At<f64>> {
    params
        .iter()
        .position(|(k, _)| k == key)
        .map(|i| params.remove(i).1)
}

/// Assemble a generic deck (`[mesh]` present): build the
/// [`GenericSpec`] from the dynamic sections, then run the shared
/// value validation with every error anchored to its source line.
fn assemble_generic(
    raw: &RawDeck,
    seen: &std::collections::HashMap<(String, String), usize>,
) -> Result<ProblemSpec, DeckError> {
    let mesh_line = raw.mesh.expect("checked by caller");
    if let Some(problem) = &raw.problem {
        return Err(text_err(
            problem.line,
            "a deck gives either `problem` (named) or [mesh] (generic), not both",
        ));
    }
    if let Some(s) = [&raw.nx, &raw.ny, &raw.n].into_iter().flatten().next() {
        return Err(text_err(
            s.line,
            "top-level resolution keys apply to named problems; \
             generic decks size the mesh in [mesh]",
        ));
    }
    let name = raw
        .name
        .as_ref()
        .map_or_else(|| "generic".to_string(), |n| n.value.clone());
    let Some(nx) = &raw.mesh_nx else {
        return Err(text_err(mesh_line, "[mesh] requires `nx`"));
    };
    let Some(ny) = &raw.mesh_ny else {
        return Err(text_err(mesh_line, "[mesh] requires `ny`"));
    };
    let mesh = MeshSpec {
        nx: nx.value,
        ny: ny.value,
        origin: Vec2::new(
            raw.mesh_x0.as_ref().map_or(0.0, |v| v.value),
            raw.mesh_y0.as_ref().map_or(0.0, |v| v.value),
        ),
        extent: Vec2::new(
            raw.mesh_x1.as_ref().map_or(1.0, |v| v.value),
            raw.mesh_y1.as_ref().map_or(1.0, |v| v.value),
        ),
        skew: raw.mesh_skew.as_ref().map(|_| SkewKind::Saltzmann),
    };

    let mut materials = Vec::with_capacity(raw.materials.len());
    for m in &raw.materials {
        let Some(eos) = &m.eos else {
            return Err(text_err(
                m.line,
                format!(
                    "[material.{}] requires `eos = ideal_gas`, `tait` or `jwl`",
                    m.name
                ),
            ));
        };
        let mut params = m.params.clone();
        let mut need = |key: &str| {
            take_param(&mut params, key)
                .map(|v| v.value)
                .ok_or_else(|| text_err(eos.line, format!("eos `{}` requires `{key}`", eos.value)))
        };
        let spec = match eos.value {
            "void" => EosSpec::Void,
            "ideal_gas" => EosSpec::IdealGas {
                gamma: need("gamma")?,
            },
            "tait" => EosSpec::Tait {
                p0: need("p0")?,
                rho0: need("rho0")?,
                gamma: need("gamma")?,
            },
            _ => EosSpec::Jwl {
                a: need("a")?,
                b: need("b")?,
                r1: need("r1")?,
                r2: need("r2")?,
                omega: need("omega")?,
                rho0: need("rho0")?,
            },
        };
        if let Some((key, v)) = params.first() {
            return Err(text_err(
                v.line,
                format!("`{key}` does not apply to eos `{}`", eos.value),
            ));
        }
        materials.push(NamedMaterial {
            name: m.name.clone(),
            eos: spec,
        });
    }

    let mut regions = Vec::with_capacity(raw.regions.len());
    for r in &raw.regions {
        let Some(shape_kind) = &r.shape else {
            return Err(text_err(
                r.line,
                format!(
                    "[region.{}] requires `shape = rect`, `circle` or `halfplane`",
                    r.name
                ),
            ));
        };
        let mut nums = r.nums.clone();
        let mut need = |key: &str| {
            take_param(&mut nums, key).map(|v| v.value).ok_or_else(|| {
                text_err(
                    shape_kind.line,
                    format!("shape `{}` requires `{key}`", shape_kind.value),
                )
            })
        };
        let shape = match shape_kind.value {
            "rect" => Shape::Rect {
                x0: need("x0")?,
                y0: need("y0")?,
                x1: need("x1")?,
                y1: need("y1")?,
            },
            "circle" => Shape::Circle {
                cx: need("cx")?,
                cy: need("cy")?,
                r: need("r")?,
            },
            _ => Shape::HalfPlane {
                normal_x: need("normal_x")?,
                normal_y: need("normal_y")?,
                offset: need("offset")?,
            },
        };
        let Some(material) = &r.material else {
            return Err(text_err(
                r.line,
                format!("[region.{}] requires `material`", r.name),
            ));
        };
        let Some(rho) = take_param(&mut nums, "rho") else {
            return Err(text_err(
                r.line,
                format!("[region.{}] requires `rho`", r.name),
            ));
        };
        let ein = take_param(&mut nums, "ein");
        let p = take_param(&mut nums, "p");
        let energy = match (ein, p) {
            (Some(e), None) => EnergyInit::Ein(e.value),
            (None, Some(p)) => EnergyInit::Pressure(p.value),
            (Some(_), Some(p)) => {
                return Err(text_err(
                    p.line,
                    format!("[region.{}] gives both `ein` and `p`; pick one", r.name),
                ));
            }
            (None, None) => {
                return Err(text_err(
                    r.line,
                    format!("[region.{}] requires `ein` or `p`", r.name),
                ));
            }
        };
        let u_radial = take_param(&mut nums, "u_radial");
        let ux = take_param(&mut nums, "ux");
        let uy = take_param(&mut nums, "uy");
        let velocity = match u_radial {
            Some(speed) => {
                if let Some(c) = ux.or(uy) {
                    return Err(text_err(c.line, "`ux`/`uy` do not combine with `u_radial`"));
                }
                VelocityInit::Radial { speed: speed.value }
            }
            None => VelocityInit::Constant(Vec2::new(
                ux.map_or(0.0, |v| v.value),
                uy.map_or(0.0, |v| v.value),
            )),
        };
        if let Some((key, v)) = nums.first() {
            return Err(text_err(
                v.line,
                format!("`{key}` does not apply to shape `{}`", shape_kind.value),
            ));
        }
        regions.push(RegionSpec {
            name: r.name.clone(),
            shape,
            material: material.value.clone(),
            rho: rho.value,
            energy,
            velocity,
        });
    }

    let side = |i: usize| match &raw.bnd_sides[i] {
        None => SideBc::Reflective,
        Some(s) => match s.value {
            "reflective" => SideBc::Reflective,
            "free" => SideBc::Free,
            _ => SideBc::Piston,
        },
    };
    let boundary = BoundarySpec {
        left: side(0),
        right: side(1),
        bottom: side(2),
        top: side(3),
        piston_u: if raw.bnd_piston_ux.is_some()
            || raw.bnd_piston_uy.is_some()
            || (0..4).any(|i| side(i) == SideBc::Piston)
        {
            Some(Vec2::new(
                raw.bnd_piston_ux.as_ref().map_or(0.0, |v| v.value),
                raw.bnd_piston_uy.as_ref().map_or(0.0, |v| v.value),
            ))
        } else {
            None
        },
    };

    let spec = GenericSpec {
        name,
        mesh,
        materials,
        regions,
        boundary,
    };
    // Value checks, anchored back to the offending source line where
    // one exists.
    spec.validate_anchored(&|section: &str, key: &str| {
        seen.get(&(section.to_string(), key.to_string())).copied()
    })?;
    Ok(ProblemSpec::Generic(Box::new(spec)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_deck_parses_with_defaults() {
        let deck: InputDeck = "problem = noh\nn = 16\n".parse().unwrap();
        assert_eq!(deck.problem, ProblemSpec::Noh { n: 16 });
        assert_eq!(deck.executor, ExecutorKind::Serial);
        assert_eq!(deck.ale, None);
        assert_eq!(deck.final_time, None);
        assert_eq!(deck.dt, DtControls::default());
        let config = deck.run_config();
        assert!((config.final_time - 0.6).abs() < 1e-15);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a comment\nproblem = sod # inline\n  nx = 8\nny = 2\n\n";
        let deck: InputDeck = text.parse().unwrap();
        assert_eq!(deck.problem, ProblemSpec::Sod { nx: 8, ny: 2 });
    }

    #[test]
    fn full_deck_round_trips_exactly() {
        let deck = InputDeck {
            problem: ProblemSpec::Saltzmann { nx: 40, ny: 4 },
            final_time: Some(0.37),
            max_steps: 1234,
            overlap: false,
            dt: DtControls {
                cfl_sf: 0.41,
                dt_initial: 3.25e-6,
                ..DtControls::default()
            },
            ale: Some(AleOptions {
                mode: AleMode::Smooth { alpha: 0.625 },
                frequency: 7,
            }),
            executor: ExecutorKind::Hybrid {
                ranks: 3,
                threads_per_rank: 2,
            },
        };
        let text = deck.to_string();
        let back: InputDeck = text.parse().unwrap();
        assert_eq!(back, deck);
    }

    #[test]
    fn generic_deck_parses_and_round_trips() {
        let text = "\
name = shocktube

[mesh]
nx = 8
ny = 2
x0 = 0
y0 = 0
x1 = 1
y1 = 0.25

[material.gas]
eos = ideal_gas
gamma = 1.4

[region.left]
shape = rect
x0 = 0
y0 = 0
x1 = 0.5
y1 = 0.25
material = gas
rho = 1
ein = 2.5

[region.right]
shape = rect
x0 = 0.5
y0 = 0
x1 = 1
y1 = 0.25
material = gas
rho = 0.125
p = 0.1

[control]
final_time = 0.2
";
        let deck: InputDeck = text.parse().unwrap();
        let ProblemSpec::Generic(g) = &deck.problem else {
            panic!("expected generic, got {:?}", deck.problem);
        };
        assert_eq!(g.name, "shocktube");
        assert_eq!(g.mesh.nx, 8);
        assert_eq!(g.materials.len(), 1);
        assert_eq!(g.regions.len(), 2);
        assert_eq!(g.regions[1].energy, EnergyInit::Pressure(0.1));
        // Canonical form round trips exactly.
        let canon = deck.to_string();
        let back: InputDeck = canon.parse().unwrap();
        assert_eq!(back, deck);
        assert_eq!(back.to_string(), canon);
        // And builds a runnable deck.
        let built = deck.build_deck().unwrap();
        built.validate().unwrap();
        assert_eq!(built.name, "shocktube");
        assert_eq!(built.mesh.n_elements(), 16);
    }

    #[test]
    fn generic_value_errors_are_line_anchored() {
        // rho on line 12 is negative.
        let text = "\
[mesh]
nx = 4
ny = 4

[material.gas]
eos = ideal_gas
gamma = 1.4

[region.all]
shape = rect
x0 = 0
rho = -1
y0 = 0
x1 = 1
y1 = 1
material = gas
ein = 1

[control]
final_time = 0.1
";
        match text.parse::<InputDeck>().unwrap_err() {
            DeckError::Text { line, message } => {
                assert_eq!(line, 12, "{message}");
                assert!(message.contains("rho"), "{message}");
            }
            other => panic!("expected Text error, got {other:?}"),
        }
    }

    #[test]
    fn generic_unknown_material_is_anchored_to_the_reference() {
        let text = "\
[mesh]
nx = 4
ny = 4

[material.gas]
eos = ideal_gas
gamma = 1.4

[region.all]
shape = rect
x0 = 0
y0 = 0
x1 = 1
y1 = 1
material = steel
rho = 1
ein = 1

[control]
final_time = 0.1
";
        match text.parse::<InputDeck>().unwrap_err() {
            DeckError::Text { line, message } => {
                assert_eq!(line, 15, "{message}");
                assert!(message.contains("steel"), "{message}");
            }
            other => panic!("expected Text error, got {other:?}"),
        }
    }

    #[test]
    fn generic_requires_final_time() {
        let text = "\
[mesh]
nx = 4
ny = 4

[material.gas]
eos = ideal_gas
gamma = 1.4

[region.all]
shape = rect
x0 = 0
y0 = 0
x1 = 1
y1 = 1
material = gas
rho = 1
ein = 1
";
        let err = text.parse::<InputDeck>().unwrap_err();
        assert!(
            matches!(&err, DeckError::Config { message } if message.contains("final_time")),
            "{err:?}"
        );
    }

    #[test]
    fn problem_and_mesh_are_mutually_exclusive() {
        let err = "problem = noh\nn = 4\n[mesh]\nnx = 2\nny = 2\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 1, .. }), "{err:?}");
        // Generic-only sections without [mesh] are rejected too.
        let err = "problem = noh\nn = 4\n[boundary]\nleft = free\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn eos_and_shape_key_sets_are_policed() {
        let base = "[mesh]\nnx = 2\nny = 2\n\n[material.m]\n";
        // tait parameter on an ideal gas (line 7).
        let err = format!("{base}eos = ideal_gas\np0 = 3\ngamma = 1.4\n")
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 7, .. }), "{err:?}");
        // Missing circle radius: anchored at the shape line.
        let text = "\
[mesh]
nx = 2
ny = 2

[material.m]
eos = ideal_gas
gamma = 1.4

[region.all]
shape = circle
cx = 0
cy = 0
material = m
rho = 1
ein = 1

[control]
final_time = 0.1
";
        let err = text.parse::<InputDeck>().unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 10, .. }), "{err:?}");
    }

    #[test]
    fn errors_are_line_anchored() {
        // Line 3 holds the bad value.
        let text = "problem = sod\nnx = 8\nny = twelve\n";
        match text.parse::<InputDeck>().unwrap_err() {
            DeckError::Text { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("ny"), "{message}");
            }
            other => panic!("expected Text error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        let err = "problem = noh\nn = 8\nfrequncy = 3\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 3, .. }), "{err:?}");
        let err = "problem = noh\nn = 8\n[advanced]\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn mismatched_problem_dimensions_are_rejected() {
        let err = "problem = noh\nnx = 8\nn = 8\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 2, .. }), "{err:?}");
        let err = "problem = sod\nnx = 8\n".parse::<InputDeck>().unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn executor_key_consistency_is_enforced() {
        let err = "problem = noh\nn = 8\n[executor]\nmodel = flat_mpi\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 4, .. }), "{err:?}");
        let err = "problem = noh\nn = 8\n[executor]\nmodel = serial\nranks = 2\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 5, .. }), "{err:?}");
    }

    #[test]
    fn semantic_nonsense_fails_config_validation() {
        let mut deck = InputDeck::new(ProblemSpec::Noh { n: 8 });
        deck.max_steps = 0;
        assert!(matches!(
            deck.validate().unwrap_err(),
            DeckError::Config { .. }
        ));
        let err = "problem = noh\nn = 0\n".parse::<InputDeck>().unwrap_err();
        assert!(matches!(err, DeckError::Config { .. }), "{err:?}");
    }

    #[test]
    fn recommended_final_times_match_constructed_decks() {
        for spec in [
            ProblemSpec::Sod { nx: 4, ny: 2 },
            ProblemSpec::Noh { n: 4 },
            ProblemSpec::Sedov { n: 4 },
            ProblemSpec::Saltzmann { nx: 4, ny: 2 },
            ProblemSpec::Underwater { n: 4 },
        ] {
            let deck = InputDeck::new(spec.clone()).build_deck().unwrap();
            assert_eq!(
                deck.recommended_final_time,
                spec.recommended_final_time(),
                "{}",
                spec.name()
            );
        }
    }
}
