//! Text input decks: the way real BookLeaf is driven.
//!
//! Every problem in the paper's evaluation is a *text file* fed to one
//! binary. [`InputDeck`] is that file's typed form: which standard
//! problem to set up (and at what resolution) plus every run option an
//! input namelist would carry — time-step controls, ALE options, the
//! executor and overlap toggle. `decks::from_str` / `decks::to_string`
//! convert between [`InputDeck`] and a line-oriented key-value text
//! format (a TOML subset: `key = value` entries under `[section]`
//! headers, `#` comments), and `Simulation::builder().deck_str(..)` /
//! `.deck_file(..)` accept the text directly — new scenarios are data,
//! not code.
//!
//! The spec types carry serde derives so the format can swap to a real
//! serde backend when the workspace vendors one; the shims' derives are
//! no-ops (see `shims/README.md`), so the codec below is hand-rolled in
//! the same field-per-key shape a serde TOML round trip would use.
//!
//! Errors are typed and line-anchored: a malformed file fails with
//! [`DeckError::Text`] naming the 1-based offending line; an
//! inconsistent but syntactically valid spec fails with
//! [`DeckError::Config`].
//!
//! ```text
//! # BookLeaf-rs input deck
//! problem = sod
//! nx = 40
//! ny = 4
//!
//! [control]
//! final_time = 0.2
//!
//! [executor]
//! model = hybrid
//! ranks = 2
//! threads_per_rank = 2
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use bookleaf_ale::{AleMode, AleOptions};
use bookleaf_hydro::getdt::DtControls;
use bookleaf_util::DeckError;

use crate::config::{ExecutorKind, RunConfig};
use crate::decks::{self, Deck};

/// Hard cap on a text deck's mesh dimensions: a typo'd `nx = 4000000`
/// should fail fast, not allocate the machine away.
pub const MAX_MESH_DIM: usize = 8192;

/// Which standard problem a text deck sets up, with its resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemSpec {
    /// Sod's shock tube, `nx × ny` elements.
    Sod {
        /// Elements along the tube.
        nx: usize,
        /// Elements across the tube.
        ny: usize,
    },
    /// The Noh implosion, `n × n` elements.
    Noh {
        /// Elements per side.
        n: usize,
    },
    /// The Sedov blast, `n × n` elements.
    Sedov {
        /// Elements per side.
        n: usize,
    },
    /// Saltzmann's piston, `nx × ny` elements.
    Saltzmann {
        /// Elements along the tube.
        nx: usize,
        /// Elements across the tube.
        ny: usize,
    },
    /// The underwater-explosion multi-material deck, `n × n` elements.
    Underwater {
        /// Elements per side.
        n: usize,
    },
}

impl ProblemSpec {
    /// The problem's text-deck name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProblemSpec::Sod { .. } => "sod",
            ProblemSpec::Noh { .. } => "noh",
            ProblemSpec::Sedov { .. } => "sedov",
            ProblemSpec::Saltzmann { .. } => "saltzmann",
            ProblemSpec::Underwater { .. } => "underwater",
        }
    }

    /// The problem's standard end time (matches the constructed deck's
    /// `recommended_final_time`; pinned by a test).
    #[must_use]
    pub fn recommended_final_time(self) -> f64 {
        match self {
            ProblemSpec::Sod { .. } => 0.2,
            ProblemSpec::Noh { .. } | ProblemSpec::Saltzmann { .. } => 0.6,
            ProblemSpec::Sedov { .. } => 1.0,
            ProblemSpec::Underwater { .. } => 0.01,
        }
    }

    fn dims(self) -> (usize, Option<usize>) {
        match self {
            ProblemSpec::Sod { nx, ny } | ProblemSpec::Saltzmann { nx, ny } => (nx, Some(ny)),
            ProblemSpec::Noh { n } | ProblemSpec::Sedov { n } | ProblemSpec::Underwater { n } => {
                (n, None)
            }
        }
    }
}

/// A fully parsed input deck: problem spec plus every run option.
///
/// Converts to the runtime pair with [`InputDeck::build_deck`] (the
/// [`Deck`]) and [`InputDeck::run_config`] (the [`RunConfig`], with
/// `final_time` defaulting to the problem's standard end time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputDeck {
    /// Problem and resolution.
    pub problem: ProblemSpec,
    /// Stop time; `None` = the problem's recommended end time.
    pub final_time: Option<f64>,
    /// Hard step cap.
    pub max_steps: usize,
    /// Overlap halo exchange with computation (distributed executors).
    pub overlap: bool,
    /// Time-step controls.
    pub dt: DtControls,
    /// ALE remap options; `None` = pure Lagrangian.
    pub ale: Option<AleOptions>,
    /// Execution model.
    pub executor: ExecutorKind,
}

impl InputDeck {
    /// A deck for `problem` with default options (serial Lagrangian,
    /// recommended end time).
    #[must_use]
    pub fn new(problem: ProblemSpec) -> Self {
        let defaults = RunConfig::default();
        InputDeck {
            problem,
            final_time: None,
            max_steps: defaults.max_steps,
            overlap: defaults.overlap,
            dt: defaults.dt,
            ale: None,
            executor: ExecutorKind::Serial,
        }
    }

    /// Check every option for consistency (spec-level; the constructed
    /// [`Deck`] is checked again by `Deck::validate`).
    pub fn validate(&self) -> Result<(), DeckError> {
        let bad = |message: String| Err(DeckError::Config { message });
        let (a, b) = self.problem.dims();
        for d in [Some(a), b].into_iter().flatten() {
            if d == 0 || d > MAX_MESH_DIM {
                return bad(format!(
                    "{}: mesh dimension {d} out of range 1..={MAX_MESH_DIM}",
                    self.problem.name()
                ));
            }
        }
        if let Some(t) = self.final_time {
            if !(t > 0.0 && t.is_finite()) {
                return bad(format!("final_time must be positive and finite, got {t}"));
            }
        }
        if self.max_steps == 0 {
            return bad("max_steps must be at least 1".into());
        }
        let dt = &self.dt;
        for (key, v) in [
            ("cfl_sf", dt.cfl_sf),
            ("div_sf", dt.div_sf),
            ("dt_initial", dt.dt_initial),
            ("dt_max", dt.dt_max),
            ("dt_min", dt.dt_min),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return bad(format!("dt.{key} must be positive and finite, got {v}"));
            }
        }
        if !(dt.growth >= 1.0 && dt.growth.is_finite()) {
            return bad(format!("dt.growth must be at least 1, got {}", dt.growth));
        }
        if dt.dt_min > dt.dt_max {
            return bad(format!(
                "dt.dt_min ({}) exceeds dt.dt_max ({})",
                dt.dt_min, dt.dt_max
            ));
        }
        if let Some(ale) = self.ale {
            if ale.frequency == 0 {
                return bad("ale.frequency must be at least 1".into());
            }
            if let AleMode::Smooth { alpha } = ale.mode {
                if !(alpha > 0.0 && alpha <= 1.0) {
                    return bad(format!("ale.alpha must be in (0, 1], got {alpha}"));
                }
            }
        }
        match self.executor {
            ExecutorKind::Serial => {}
            ExecutorKind::FlatMpi { ranks } => {
                if ranks == 0 {
                    return bad("executor.ranks must be at least 1".into());
                }
            }
            ExecutorKind::Hybrid {
                ranks,
                threads_per_rank,
            } => {
                if ranks == 0 || threads_per_rank == 0 {
                    return bad(
                        "executor.ranks and executor.threads_per_rank must be at least 1".into(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Construct the runtime [`Deck`] this spec describes.
    pub fn build_deck(&self) -> Result<Deck, DeckError> {
        self.validate()?;
        Ok(match self.problem {
            ProblemSpec::Sod { nx, ny } => decks::sod(nx, ny),
            ProblemSpec::Noh { n } => decks::noh(n),
            ProblemSpec::Sedov { n } => decks::sedov(n),
            ProblemSpec::Saltzmann { nx, ny } => decks::saltzmann(nx, ny),
            ProblemSpec::Underwater { n } => decks::underwater(n),
        })
    }

    /// The run configuration this spec describes. `final_time` defaults
    /// to the problem's recommended end time when the deck omits it.
    #[must_use]
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            final_time: self
                .final_time
                .unwrap_or_else(|| self.problem.recommended_final_time()),
            max_steps: self.max_steps,
            dt: self.dt,
            ale: self.ale,
            executor: self.executor,
            overlap: self.overlap,
            ..RunConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Writer.

impl fmt::Display for InputDeck {
    /// Canonical text form; `deck.to_string().parse()` reproduces the
    /// deck exactly (floats print in shortest round-trip form).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# BookLeaf-rs input deck")?;
        writeln!(f, "problem = {}", self.problem.name())?;
        match self.problem.dims() {
            (nx, Some(ny)) => {
                writeln!(f, "nx = {nx}")?;
                writeln!(f, "ny = {ny}")?;
            }
            (n, None) => writeln!(f, "n = {n}")?,
        }
        writeln!(f)?;
        writeln!(f, "[control]")?;
        if let Some(t) = self.final_time {
            writeln!(f, "final_time = {t}")?;
        }
        writeln!(f, "max_steps = {}", self.max_steps)?;
        writeln!(f, "overlap = {}", self.overlap)?;
        writeln!(f)?;
        writeln!(f, "[dt]")?;
        writeln!(f, "cfl_sf = {}", self.dt.cfl_sf)?;
        writeln!(f, "div_sf = {}", self.dt.div_sf)?;
        writeln!(f, "growth = {}", self.dt.growth)?;
        writeln!(f, "dt_initial = {}", self.dt.dt_initial)?;
        writeln!(f, "dt_max = {}", self.dt.dt_max)?;
        writeln!(f, "dt_min = {}", self.dt.dt_min)?;
        if let Some(ale) = self.ale {
            writeln!(f)?;
            writeln!(f, "[ale]")?;
            match ale.mode {
                AleMode::Eulerian => writeln!(f, "mode = eulerian")?,
                AleMode::Smooth { alpha } => {
                    writeln!(f, "mode = smooth")?;
                    writeln!(f, "alpha = {alpha}")?;
                }
            }
            writeln!(f, "frequency = {}", ale.frequency)?;
        }
        writeln!(f)?;
        writeln!(f, "[executor]")?;
        match self.executor {
            ExecutorKind::Serial => writeln!(f, "model = serial")?,
            ExecutorKind::FlatMpi { ranks } => {
                writeln!(f, "model = flat_mpi")?;
                writeln!(f, "ranks = {ranks}")?;
            }
            ExecutorKind::Hybrid {
                ranks,
                threads_per_rank,
            } => {
                writeln!(f, "model = hybrid")?;
                writeln!(f, "ranks = {ranks}")?;
                writeln!(f, "threads_per_rank = {threads_per_rank}")?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parser.

/// A value with the 1-based line it came from (for anchored errors).
#[derive(Debug, Clone, Copy)]
struct At<T> {
    value: T,
    line: usize,
}

#[derive(Default)]
struct RawDeck {
    problem: Option<At<&'static str>>,
    nx: Option<At<usize>>,
    ny: Option<At<usize>>,
    n: Option<At<usize>>,
    final_time: Option<f64>,
    max_steps: Option<usize>,
    overlap: Option<bool>,
    dt: DtControls,
    ale_present: bool,
    ale_mode: Option<At<&'static str>>,
    ale_alpha: Option<At<f64>>,
    ale_frequency: Option<usize>,
    exec_model: Option<At<&'static str>>,
    exec_ranks: Option<At<usize>>,
    exec_threads: Option<At<usize>>,
}

fn text_err(line: usize, message: impl Into<String>) -> DeckError {
    DeckError::Text {
        line,
        message: message.into(),
    }
}

fn parse_num<T: FromStr>(line: usize, key: &str, raw: &str, kind: &str) -> Result<T, DeckError> {
    raw.parse::<T>()
        .map_err(|_| text_err(line, format!("`{key}` expects {kind}, got `{raw}`")))
}

/// Floats in a deck must be finite — `inf`/`nan` parse as `f64` but
/// would only fail later, unanchored, in `InputDeck::validate`; reject
/// them here so the error keeps its line.
fn parse_f64(line: usize, key: &str, raw: &str) -> Result<f64, DeckError> {
    let v: f64 = parse_num(line, key, raw, "a number")?;
    if !v.is_finite() {
        return Err(text_err(
            line,
            format!("`{key}` expects a finite number, got `{raw}`"),
        ));
    }
    Ok(v)
}

fn parse_bool(line: usize, key: &str, raw: &str) -> Result<bool, DeckError> {
    match raw {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(text_err(
            line,
            format!("`{key}` expects `true` or `false`, got `{raw}`"),
        )),
    }
}

impl FromStr for InputDeck {
    type Err = DeckError;

    fn from_str(text: &str) -> Result<Self, DeckError> {
        let mut raw = RawDeck::default();
        let mut section: Option<&'static str> = None; // None = top level
                                                      // Duplicate keys are last-wins in many loose formats; TOML (our
                                                      // subset) rejects them, and a silently ignored stale `nx = ..`
                                                      // is exactly the typo class a strict parser exists to catch.
        let mut seen: std::collections::HashSet<(&'static str, String)> =
            std::collections::HashSet::new();
        for (idx, full_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            // Strip comments and whitespace.
            let line = full_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(text_err(lineno, format!("unterminated section `{line}`")));
                };
                section = Some(match name.trim() {
                    "control" => "control",
                    "dt" => "dt",
                    "ale" => "ale",
                    "executor" => "executor",
                    other => {
                        return Err(text_err(lineno, format!("unknown section `[{other}]`")));
                    }
                });
                if section == Some("ale") {
                    raw.ale_present = true;
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(text_err(
                    lineno,
                    format!("expected `key = value` or `[section]`, got `{line}`"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(text_err(lineno, format!("`{key}` has no value")));
            }
            if !seen.insert((section.unwrap_or(""), key.to_string())) {
                return Err(text_err(lineno, format!("duplicate key `{key}`")));
            }
            parse_entry(&mut raw, section, lineno, key, value)?;
        }
        assemble(&raw)
    }
}

/// Dispatch one `key = value` entry into the raw accumulator.
fn parse_entry(
    raw: &mut RawDeck,
    section: Option<&'static str>,
    line: usize,
    key: &str,
    value: &str,
) -> Result<(), DeckError> {
    let unknown = |line: usize| {
        let place = section.map_or_else(|| "the top level".into(), |s| format!("[{s}]"));
        Err(text_err(line, format!("unknown key `{key}` in {place}")))
    };
    match section {
        None => match key {
            "problem" => {
                let name = match value {
                    "sod" => "sod",
                    "noh" => "noh",
                    "sedov" => "sedov",
                    "saltzmann" => "saltzmann",
                    "underwater" => "underwater",
                    other => {
                        return Err(text_err(line, format!("unknown problem `{other}`")));
                    }
                };
                raw.problem = Some(At { value: name, line });
            }
            "nx" => {
                raw.nx = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                })
            }
            "ny" => {
                raw.ny = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                })
            }
            "n" => {
                raw.n = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                })
            }
            _ => return unknown(line),
        },
        Some("control") => match key {
            "final_time" => raw.final_time = Some(parse_f64(line, key, value)?),
            "max_steps" => raw.max_steps = Some(parse_num(line, key, value, "an integer")?),
            "overlap" => raw.overlap = Some(parse_bool(line, key, value)?),
            _ => return unknown(line),
        },
        Some("dt") => {
            let slot = match key {
                "cfl_sf" => &mut raw.dt.cfl_sf,
                "div_sf" => &mut raw.dt.div_sf,
                "growth" => &mut raw.dt.growth,
                "dt_initial" => &mut raw.dt.dt_initial,
                "dt_max" => &mut raw.dt.dt_max,
                "dt_min" => &mut raw.dt.dt_min,
                _ => return unknown(line),
            };
            *slot = parse_f64(line, key, value)?;
        }
        Some("ale") => match key {
            "mode" => {
                let mode = match value {
                    "eulerian" => "eulerian",
                    "smooth" => "smooth",
                    other => {
                        return Err(text_err(
                            line,
                            format!("ale mode must be `eulerian` or `smooth`, got `{other}`"),
                        ));
                    }
                };
                raw.ale_mode = Some(At { value: mode, line });
            }
            "alpha" => {
                raw.ale_alpha = Some(At {
                    value: parse_f64(line, key, value)?,
                    line,
                });
            }
            "frequency" => raw.ale_frequency = Some(parse_num(line, key, value, "an integer")?),
            _ => return unknown(line),
        },
        Some("executor") => match key {
            "model" => {
                let model = match value {
                    "serial" => "serial",
                    "flat_mpi" => "flat_mpi",
                    "hybrid" => "hybrid",
                    other => {
                        return Err(text_err(
                            line,
                            format!(
                                "executor model must be `serial`, `flat_mpi` or `hybrid`, \
                                 got `{other}`"
                            ),
                        ));
                    }
                };
                raw.exec_model = Some(At { value: model, line });
            }
            "ranks" => {
                raw.exec_ranks = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                });
            }
            "threads_per_rank" => {
                raw.exec_threads = Some(At {
                    value: parse_num(line, key, value, "an integer")?,
                    line,
                });
            }
            _ => return unknown(line),
        },
        Some(_) => unreachable!("sections are interned above"),
    }
    Ok(())
}

/// Assemble (and cross-check) the raw key soup into a typed spec.
fn assemble(raw: &RawDeck) -> Result<InputDeck, DeckError> {
    let Some(problem) = raw.problem else {
        return Err(DeckError::Config {
            message: "deck is missing the `problem` key".into(),
        });
    };
    let need = |slot: Option<At<usize>>, key: &str| {
        slot.map(|s| s.value).ok_or_else(|| {
            text_err(
                problem.line,
                format!("problem `{}` requires `{key}`", problem.value),
            )
        })
    };
    let forbid = |slot: Option<At<usize>>, key: &str| match slot {
        Some(s) => Err(text_err(
            s.line,
            format!("`{key}` does not apply to problem `{}`", problem.value),
        )),
        None => Ok(()),
    };
    let spec = match problem.value {
        "sod" | "saltzmann" => {
            forbid(raw.n, "n")?;
            let nx = need(raw.nx, "nx")?;
            let ny = need(raw.ny, "ny")?;
            if problem.value == "sod" {
                ProblemSpec::Sod { nx, ny }
            } else {
                ProblemSpec::Saltzmann { nx, ny }
            }
        }
        name => {
            forbid(raw.nx, "nx")?;
            forbid(raw.ny, "ny")?;
            let n = need(raw.n, "n")?;
            match name {
                "noh" => ProblemSpec::Noh { n },
                "sedov" => ProblemSpec::Sedov { n },
                _ => ProblemSpec::Underwater { n },
            }
        }
    };

    let ale = if raw.ale_present {
        let Some(mode) = raw.ale_mode else {
            return Err(DeckError::Config {
                message: "[ale] section is missing `mode`".into(),
            });
        };
        let mode_value = match mode.value {
            "eulerian" => {
                if let Some(alpha) = raw.ale_alpha {
                    return Err(text_err(
                        alpha.line,
                        "`alpha` applies only to `mode = smooth`",
                    ));
                }
                AleMode::Eulerian
            }
            _ => {
                let Some(alpha) = raw.ale_alpha else {
                    return Err(text_err(mode.line, "`mode = smooth` requires `alpha`"));
                };
                AleMode::Smooth { alpha: alpha.value }
            }
        };
        Some(AleOptions {
            mode: mode_value,
            frequency: raw.ale_frequency.unwrap_or(1),
        })
    } else {
        None
    };

    let executor = match raw.exec_model {
        None => {
            if let Some(r) = raw.exec_ranks {
                return Err(text_err(r.line, "`ranks` requires an executor `model`"));
            }
            if let Some(t) = raw.exec_threads {
                return Err(text_err(
                    t.line,
                    "`threads_per_rank` requires an executor `model`",
                ));
            }
            ExecutorKind::Serial
        }
        Some(model) => {
            let forbid_threads = |slot: Option<At<usize>>| match slot {
                Some(t) => Err(text_err(
                    t.line,
                    format!(
                        "`threads_per_rank` does not apply to `model = {}`",
                        model.value
                    ),
                )),
                None => Ok(()),
            };
            match model.value {
                "serial" => {
                    if let Some(r) = raw.exec_ranks {
                        return Err(text_err(
                            r.line,
                            "`ranks` does not apply to `model = serial`",
                        ));
                    }
                    forbid_threads(raw.exec_threads)?;
                    ExecutorKind::Serial
                }
                "flat_mpi" => {
                    forbid_threads(raw.exec_threads)?;
                    let Some(ranks) = raw.exec_ranks else {
                        return Err(text_err(model.line, "`model = flat_mpi` requires `ranks`"));
                    };
                    ExecutorKind::FlatMpi { ranks: ranks.value }
                }
                _ => {
                    let Some(ranks) = raw.exec_ranks else {
                        return Err(text_err(model.line, "`model = hybrid` requires `ranks`"));
                    };
                    let Some(threads) = raw.exec_threads else {
                        return Err(text_err(
                            model.line,
                            "`model = hybrid` requires `threads_per_rank`",
                        ));
                    };
                    ExecutorKind::Hybrid {
                        ranks: ranks.value,
                        threads_per_rank: threads.value,
                    }
                }
            }
        }
    };

    let defaults = RunConfig::default();
    let deck = InputDeck {
        problem: spec,
        final_time: raw.final_time,
        max_steps: raw.max_steps.unwrap_or(defaults.max_steps),
        overlap: raw.overlap.unwrap_or(defaults.overlap),
        dt: raw.dt,
        ale,
        executor,
    };
    deck.validate()?;
    Ok(deck)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_deck_parses_with_defaults() {
        let deck: InputDeck = "problem = noh\nn = 16\n".parse().unwrap();
        assert_eq!(deck.problem, ProblemSpec::Noh { n: 16 });
        assert_eq!(deck.executor, ExecutorKind::Serial);
        assert_eq!(deck.ale, None);
        assert_eq!(deck.final_time, None);
        assert_eq!(deck.dt, DtControls::default());
        let config = deck.run_config();
        assert!((config.final_time - 0.6).abs() < 1e-15);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a comment\nproblem = sod # inline\n  nx = 8\nny = 2\n\n";
        let deck: InputDeck = text.parse().unwrap();
        assert_eq!(deck.problem, ProblemSpec::Sod { nx: 8, ny: 2 });
    }

    #[test]
    fn full_deck_round_trips_exactly() {
        let deck = InputDeck {
            problem: ProblemSpec::Saltzmann { nx: 40, ny: 4 },
            final_time: Some(0.37),
            max_steps: 1234,
            overlap: false,
            dt: DtControls {
                cfl_sf: 0.41,
                dt_initial: 3.25e-6,
                ..DtControls::default()
            },
            ale: Some(AleOptions {
                mode: AleMode::Smooth { alpha: 0.625 },
                frequency: 7,
            }),
            executor: ExecutorKind::Hybrid {
                ranks: 3,
                threads_per_rank: 2,
            },
        };
        let text = deck.to_string();
        let back: InputDeck = text.parse().unwrap();
        assert_eq!(back, deck);
    }

    #[test]
    fn errors_are_line_anchored() {
        // Line 3 holds the bad value.
        let text = "problem = sod\nnx = 8\nny = twelve\n";
        match text.parse::<InputDeck>().unwrap_err() {
            DeckError::Text { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("ny"), "{message}");
            }
            other => panic!("expected Text error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        let err = "problem = noh\nn = 8\nfrequncy = 3\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 3, .. }), "{err:?}");
        let err = "problem = noh\nn = 8\n[advanced]\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn mismatched_problem_dimensions_are_rejected() {
        let err = "problem = noh\nnx = 8\nn = 8\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 2, .. }), "{err:?}");
        let err = "problem = sod\nnx = 8\n".parse::<InputDeck>().unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn executor_key_consistency_is_enforced() {
        let err = "problem = noh\nn = 8\n[executor]\nmodel = flat_mpi\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 4, .. }), "{err:?}");
        let err = "problem = noh\nn = 8\n[executor]\nmodel = serial\nranks = 2\n"
            .parse::<InputDeck>()
            .unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 5, .. }), "{err:?}");
    }

    #[test]
    fn semantic_nonsense_fails_config_validation() {
        let mut deck = InputDeck::new(ProblemSpec::Noh { n: 8 });
        deck.max_steps = 0;
        assert!(matches!(
            deck.validate().unwrap_err(),
            DeckError::Config { .. }
        ));
        let err = "problem = noh\nn = 0\n".parse::<InputDeck>().unwrap_err();
        assert!(matches!(err, DeckError::Config { .. }), "{err:?}");
    }

    #[test]
    fn recommended_final_times_match_constructed_decks() {
        for spec in [
            ProblemSpec::Sod { nx: 4, ny: 2 },
            ProblemSpec::Noh { n: 4 },
            ProblemSpec::Sedov { n: 4 },
            ProblemSpec::Saltzmann { nx: 4, ny: 2 },
            ProblemSpec::Underwater { n: 4 },
        ] {
            let deck = InputDeck::new(spec).build_deck().unwrap();
            assert_eq!(
                deck.recommended_final_time,
                spec.recommended_final_time(),
                "{}",
                spec.name()
            );
        }
    }
}
