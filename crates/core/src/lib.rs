//! # bookleaf-core
//!
//! The BookLeaf-rs driver layer: one front door ([`Simulation`]), text
//! input decks, the hydro loop of Algorithm 1, the observer pipeline,
//! and the programming-model executors of the paper's evaluation.
//!
//! * [`sim`] — [`Simulation`]/[`SimulationBuilder`]: the single entry
//!   point that drives serial, flat-MPI and hybrid execution
//!   identically and returns one unified [`RunReport`];
//! * [`decks`] — the five standard shock-hydrodynamics test problems
//!   (Sod's shock tube, the Noh problem, the Sedov problem, Saltzmann's
//!   piston, the underwater-explosion multi-material deck);
//! * [`input`] — text input decks (`decks::from_str`/`to_string`), the
//!   way real BookLeaf is driven: new scenarios are data, not code;
//! * [`scenario`] — the generic deck vocabulary behind [`input`]:
//!   [`GenericSpec`] (mesh + regions + materials + boundary conditions
//!   as data) and its resolution into a runnable [`Deck`];
//! * [`observer`] — step-level instrumentation hooks ([`Observer`],
//!   [`StepView`]) with shipped implementations (conservation tracer,
//!   dt history, VTK frame dumper, progress logger);
//! * [`driver`] — the shared hydro loop (`getdt` → `lagstep` →
//!   optional `alestep`) every executor runs;
//! * [`executor`] — distributed execution: flat MPI (one rank thread
//!   per "core") and hybrid MPI+OpenMP (rank threads × rayon), both
//!   built on the Typhon runtime with real halo exchanges;
//! * [`halo`] — the [`bookleaf_hydro::HaloOps`] implementation backed by
//!   Typhon exchanges (and the piston hook for Saltzmann);
//! * [`output`] — VTK visualisation files and binary restart snapshots;
//! * [`resilience`] — deterministic fault drills and supervised elastic
//!   recovery: retention-managed [`CheckpointStore`]s with atomic
//!   writes and verified readback, the [`AutoCheckpoint`] observer, and
//!   [`Simulation::run_resilient`] (rewind to the last good checkpoint,
//!   reshape the executor, retry within a budget — with a deterministic
//!   [`RecoveryLog`] on the report).

pub mod config;
pub mod decks;
pub mod driver;
pub mod executor;
pub mod halo;
pub mod input;
pub mod observer;
pub mod output;
pub mod report;
pub mod resilience;
pub mod scenario;
pub mod sim;

pub use config::{ExecutorKind, RunConfig, SentinelConfig};
pub use decks::Deck;
pub use driver::{run_loop, LoopState};
pub use input::{InputDeck, ProblemSpec};
pub use observer::{
    ConservationTracer, DtHistory, DtSample, EnergySample, FrameDumper, LoopWatch, Observer,
    ObserverNeeds, ObserverSet, ProgressLogger, Shared, StepPhase, StepView,
};
pub use output::{read_snapshot, write_vtk, Checkpoint, Snapshot, CHECKPOINT_VERSION};
pub use report::RunReport;
pub use resilience::{
    AutoCheckpoint, CheckpointStore, RecoveryEvent, RecoveryLog, RecoveryPolicy, ReshapePolicy,
    SaveOutcome,
};
pub use scenario::{
    generic_equivalent, BoundarySpec, EnergyInit, GenericSpec, MeshSpec, NamedMaterial, RegionSpec,
    Shape, SideBc, SkewKind, VelocityInit,
};
pub use sim::{Simulation, SimulationBuilder};
