//! # bookleaf-core
//!
//! The BookLeaf-rs driver: input decks, the hydro loop of Algorithm 1,
//! and the programming-model executors of the paper's evaluation.
//!
//! * [`decks`] — the four standard shock-hydrodynamics test problems
//!   (Sod's shock tube, the Noh problem, the Sedov problem, Saltzmann's
//!   piston) plus a generic deck builder;
//! * [`driver`] — the serial reference driver: `getdt` → `lagstep` →
//!   optional `alestep`, repeated to the final time;
//! * [`executor`] — distributed execution: flat MPI (one rank thread per
//!   "core") and hybrid MPI+OpenMP (rank threads × rayon), both built on
//!   the Typhon runtime with real halo exchanges, plus the
//!   device-modeled GPU configurations;
//! * [`halo`] — the [`bookleaf_hydro::HaloOps`] implementation backed by
//!   Typhon exchanges (and the piston hook for Saltzmann).

pub mod config;
pub mod decks;
pub mod driver;
pub mod executor;
pub mod halo;
pub mod output;

pub use config::{ExecutorKind, RunConfig};
pub use decks::Deck;
pub use driver::{Driver, RunSummary};
pub use executor::{run_distributed, DistributedOutput};
pub use output::{read_snapshot, write_vtk, Snapshot};
