//! The observer pipeline: step-level instrumentation hooks for every
//! executor.
//!
//! A [`Simulation`](crate::Simulation) carries a set of [`Observer`]s.
//! The run loop fires them at fixed points — run begin/end, step
//! begin/end, and after each phase (Lagrangian half-steps done, ALE
//! remap done) — with a read-only [`StepView`] of the clock, the mesh
//! and state, and (on request) communication counters and the global
//! energy. The same hooks fire under the serial, flat-MPI and hybrid
//! executors, so diagnostics written once work everywhere; under the
//! distributed executors every *rank* fires the hooks with its local
//! partition view (`view.rank`/`view.n_ranks` tell an observer where it
//! is, and rank-0 gating is the usual idiom for global diagnostics).
//!
//! Observers are strictly read-only: they can never perturb the
//! physics, so a run with observers is bitwise identical to one
//! without. Quantities that require communication (the global energy)
//! are provided *by the loop*, symmetrically on every rank, precisely
//! because an observer body must never call a collective itself — rank
//! A could be inside observer 1 while rank B is inside observer 2, and
//! a collective issued from behind an observer's lock would deadlock
//! the team. Declare what you need in [`Observer::needs`] instead.
//!
//! Shipped observers: [`ConservationTracer`] (global energy per step),
//! [`DtHistory`] (time-step record), [`FrameDumper`] (VTK time series),
//! [`ProgressLogger`] (periodic one-line status). To keep access to an
//! observer after handing it to the builder, wrap it in [`Shared`] and
//! keep a clone.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use bookleaf_hydro::{HydroState, LocalRange};
use bookleaf_mesh::Mesh;
use bookleaf_typhon::CommStats;

/// Which loop-provided quantities an observer wants computed.
///
/// The union over a simulation's observers is taken **once**, before
/// the run starts, and drives the same extra work on every rank (a
/// per-step global-energy reduction is a collective; all ranks must
/// issue it or none). An observer's answer must therefore be constant
/// over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObserverNeeds {
    /// Compute the global total energy (internal + kinetic, every
    /// partition counted once) at each step end — one extra
    /// `allreduce_sum` per step in distributed runs.
    pub global_energy: bool,
    /// Snapshot this rank's [`CommStats`] into step-begin/step-end
    /// views.
    pub comm_stats: bool,
}

impl ObserverNeeds {
    /// Union of two need sets.
    #[must_use]
    pub fn union(self, other: ObserverNeeds) -> ObserverNeeds {
        ObserverNeeds {
            global_energy: self.global_energy || other.global_energy,
            comm_stats: self.comm_stats || other.comm_stats,
        }
    }
}

/// The two phases of a step an observer can hook between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPhase {
    /// The predictor–corrector Lagrangian half-steps finished.
    Lagrangian,
    /// The ALE remap finished (fires only on steps that remap).
    Remap,
}

/// Read-only view handed to every observer hook.
///
/// `mesh`/`state`/`range` are this rank's partition (the whole problem
/// for the serial executor). `step` is the 0-based index of the step
/// the hook belongs to; for `step_begin` `time` is the step's start
/// time, for `phase_end`/`step_end` it is the step's end time.
pub struct StepView<'a> {
    /// 0-based step index.
    pub step: usize,
    /// Simulated time at this hook point.
    pub time: f64,
    /// The step's dt (0 before the first step of a run).
    pub dt: f64,
    /// This rank's mesh.
    pub mesh: &'a Mesh,
    /// This rank's state.
    pub state: &'a HydroState,
    /// Owned extents within `mesh`/`state`.
    pub range: LocalRange,
    /// This rank's id (0 for serial).
    pub rank: usize,
    /// Team size (1 for serial).
    pub n_ranks: usize,
    /// This rank's communication counters so far; present at step
    /// begin/end (and run begin/end) when some observer asked via
    /// [`ObserverNeeds::comm_stats`].
    pub comm: Option<CommStats>,
    /// Global total energy; present at step end (and run begin/end)
    /// when some observer asked via [`ObserverNeeds::global_energy`].
    /// Identical on every rank.
    pub global_energy: Option<f64>,
}

/// Step-level instrumentation attached to a `Simulation`.
///
/// All hooks have empty defaults — implement the ones you care about.
/// Observers must be `Send` (distributed executors fire them from rank
/// threads) and must treat the view as read-only.
pub trait Observer: Send {
    /// Which loop-provided extras this observer wants (constant).
    fn needs(&self) -> ObserverNeeds {
        ObserverNeeds::default()
    }

    /// The run is about to start (or resume); `view.step` is the
    /// cursor's step count (0 for a fresh run).
    fn run_begin(&mut self, _view: &StepView<'_>) {}

    /// A step is about to execute with the already-reduced `view.dt`.
    fn step_begin(&mut self, _view: &StepView<'_>) {}

    /// A phase of the current step finished.
    fn phase_end(&mut self, _phase: StepPhase, _view: &StepView<'_>) {}

    /// The step finished; `view.time` includes the step's dt.
    fn step_end(&mut self, _view: &StepView<'_>) {}

    /// The run loop stopped (final time, step cap, or pause point).
    fn run_end(&mut self, _view: &StepView<'_>) {}
}

/// A clonable, lockable observer wrapper: register one clone with the
/// builder, keep another to read results after the run.
///
/// ```
/// use bookleaf_core::{ConservationTracer, Shared, Simulation, decks};
///
/// let tracer = Shared::new(ConservationTracer::new());
/// let mut sim = Simulation::builder()
///     .deck(decks::sod(20, 2))
///     .final_time(0.01)
///     .observer(tracer.clone())
///     .build()
///     .unwrap();
/// sim.run().unwrap();
/// assert!(tracer.with(|t| t.samples().len()) > 1);
/// ```
pub struct Shared<O>(Arc<Mutex<O>>);

impl<O> Shared<O> {
    /// Wrap an observer for shared access.
    pub fn new(observer: O) -> Self {
        Shared(Arc::new(Mutex::new(observer)))
    }

    /// Run `f` with the observer locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut O) -> R) -> R {
        f(&mut self.0.lock())
    }

    /// Lock the observer directly.
    pub fn lock(&self) -> MutexGuard<'_, O> {
        self.0.lock()
    }
}

impl<O> Clone for Shared<O> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<O: Observer> Observer for Shared<O> {
    fn needs(&self) -> ObserverNeeds {
        self.0.lock().needs()
    }
    fn run_begin(&mut self, view: &StepView<'_>) {
        self.0.lock().run_begin(view);
    }
    fn step_begin(&mut self, view: &StepView<'_>) {
        self.0.lock().step_begin(view);
    }
    fn phase_end(&mut self, phase: StepPhase, view: &StepView<'_>) {
        self.0.lock().phase_end(phase, view);
    }
    fn step_end(&mut self, view: &StepView<'_>) {
        self.0.lock().step_end(view);
    }
    fn run_end(&mut self, view: &StepView<'_>) {
        self.0.lock().run_end(view);
    }
}

/// The simulation's observer collection, shareable across rank threads.
///
/// Each observer sits behind its own mutex; ranks fire hooks in
/// registration order, locking one observer at a time, so per-observer
/// state stays consistent without serialising the whole team.
#[derive(Default)]
pub struct ObserverSet {
    observers: Vec<Arc<Mutex<Box<dyn Observer>>>>,
    needs: ObserverNeeds,
}

impl std::fmt::Debug for ObserverSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverSet")
            .field("len", &self.observers.len())
            .field("needs", &self.needs)
            .finish()
    }
}

impl ObserverSet {
    /// Build a set, capturing the union of the observers' needs.
    #[must_use]
    pub fn new(observers: Vec<Box<dyn Observer>>) -> Self {
        let needs = observers
            .iter()
            .fold(ObserverNeeds::default(), |acc, o| acc.union(o.needs()));
        ObserverSet {
            observers: observers
                .into_iter()
                .map(|o| Arc::new(Mutex::new(o)))
                .collect(),
            needs,
        }
    }

    /// No observers registered?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// Number of observers registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Union of the registered observers' needs.
    #[must_use]
    pub fn needs(&self) -> ObserverNeeds {
        self.needs
    }

    /// Fire `run_begin` on every observer.
    pub fn run_begin(&self, view: &StepView<'_>) {
        for o in &self.observers {
            o.lock().run_begin(view);
        }
    }

    /// Fire `step_begin` on every observer.
    pub fn step_begin(&self, view: &StepView<'_>) {
        for o in &self.observers {
            o.lock().step_begin(view);
        }
    }

    /// Fire `phase_end` on every observer.
    pub fn phase_end(&self, phase: StepPhase, view: &StepView<'_>) {
        for o in &self.observers {
            o.lock().phase_end(phase, view);
        }
    }

    /// Fire `step_end` on every observer.
    pub fn step_end(&self, view: &StepView<'_>) {
        for o in &self.observers {
            o.lock().step_end(view);
        }
    }

    /// Fire `run_end` on every observer.
    pub fn run_end(&self, view: &StepView<'_>) {
        for o in &self.observers {
            o.lock().run_end(view);
        }
    }
}

/// Everything the run loop needs to fire observers on one rank: the
/// shared set plus rank-local providers for the loop-computed extras.
///
/// `reduce_sum` must be a *collective* sum in distributed runs (every
/// rank calls it at the same loop points — the loop guarantees the
/// symmetry) and the identity serially; it is fallible because a
/// distributed collective can time out against a dead rank
/// ([`bookleaf_util::CommError`]). `local_energy` must count every
/// partition exactly once across the team (serial: the whole problem;
/// distributed: owned elements plus owned nodes only).
pub struct LoopWatch<'a> {
    /// The simulation's observers (shared across ranks).
    pub observers: &'a ObserverSet,
    /// This rank's id.
    pub rank: usize,
    /// Team size.
    pub n_ranks: usize,
    /// Global sum reduction (identity for serial runs).
    pub reduce_sum: &'a dyn Fn(f64) -> bookleaf_util::Result<f64>,
    /// Snapshot of this rank's communication counters.
    pub comm_stats: &'a dyn Fn() -> CommStats,
    /// This rank's energy contribution (no double-counted nodes).
    pub local_energy: &'a dyn Fn(&Mesh, &HydroState) -> f64,
}

// ---------------------------------------------------------------------------
// Shipped observers.

/// One global-energy sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySample {
    /// Step count when the sample was taken (0 = before the first step).
    pub step: usize,
    /// Simulated time.
    pub time: f64,
    /// Global total energy (internal + kinetic).
    pub energy: f64,
}

/// Records the global total energy at run begin and after every step —
/// the conservation audit trail of the compatible discretisation.
/// Records on rank 0 only (the reduced energy is identical everywhere).
#[derive(Debug, Default)]
pub struct ConservationTracer {
    samples: Vec<EnergySample>,
}

impl ConservationTracer {
    /// New, empty tracer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded samples, in step order.
    #[must_use]
    pub fn samples(&self) -> &[EnergySample] {
        &self.samples
    }

    /// Largest relative drift of any sample from the first.
    #[must_use]
    pub fn max_drift(&self) -> f64 {
        let Some(first) = self.samples.first() else {
            return 0.0;
        };
        if first.energy == 0.0 {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| ((s.energy - first.energy) / first.energy).abs())
            .fold(0.0, f64::max)
    }

    fn record(&mut self, view: &StepView<'_>, step: usize) {
        if view.rank != 0 {
            return;
        }
        // A resumed run fires run_begin again at the pause step: skip
        // the duplicate sample.
        if self.samples.last().map(|s| s.step) == Some(step) {
            return;
        }
        if let Some(energy) = view.global_energy {
            self.samples.push(EnergySample {
                step,
                time: view.time,
                energy,
            });
        }
    }
}

impl Observer for ConservationTracer {
    fn needs(&self) -> ObserverNeeds {
        ObserverNeeds {
            global_energy: true,
            ..ObserverNeeds::default()
        }
    }
    fn run_begin(&mut self, view: &StepView<'_>) {
        // The run is (re)starting from `view.step`: drop any samples a
        // previous trajectory recorded beyond it — a distributed
        // `run()` re-executing from step 0 starts a fresh trace, and a
        // `restore` rewinding to an earlier snapshot abandons the
        // samples past the rewind point, keeping `samples()` in step
        // order on one consistent trajectory.
        if view.rank == 0 {
            self.samples.retain(|s| s.step <= view.step);
        }
        self.record(view, view.step);
    }
    fn step_end(&mut self, view: &StepView<'_>) {
        self.record(view, view.step + 1);
    }
}

/// One time-step sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtSample {
    /// 0-based step index.
    pub step: usize,
    /// Simulated time at the step's end.
    pub time: f64,
    /// The step's dt.
    pub dt: f64,
}

/// Records every step's (globally reduced) dt. Records on rank 0 only —
/// the dt is identical on every rank by construction.
#[derive(Debug, Default)]
pub struct DtHistory {
    samples: Vec<DtSample>,
}

impl DtHistory {
    /// New, empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded samples, in step order.
    #[must_use]
    pub fn samples(&self) -> &[DtSample] {
        &self.samples
    }

    /// Smallest dt taken (∞ when no steps ran).
    #[must_use]
    pub fn min_dt(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.dt)
            .fold(f64::INFINITY, f64::min)
    }
}

impl Observer for DtHistory {
    fn run_begin(&mut self, view: &StepView<'_>) {
        // The run is (re)starting from `view.step`: the steps about to
        // execute are `view.step..`, so drop any samples a previous
        // trajectory recorded for them — a distributed `run()`
        // re-executing from step 0 starts fresh, a `restore` rewind
        // abandons the samples past the snapshot, and a plain serial
        // resume (nothing recorded past the pause step) keeps
        // accumulating.
        if view.rank == 0 {
            self.samples.retain(|s| s.step < view.step);
        }
    }

    fn step_end(&mut self, view: &StepView<'_>) {
        if view.rank == 0 {
            self.samples.push(DtSample {
                step: view.step,
                time: view.time,
                dt: view.dt,
            });
        }
    }
}

/// Writes a VTK time series of the (rank-local) solution: a frame at
/// run begin and after every `every`-th step, plus the final state.
///
/// Under distributed executors each rank writes its own partition piece
/// with a `.r<rank>` infix — the standard per-rank-piece convention of
/// MPI visualisation dumps. I/O errors do not abort the run; the first
/// one is retained in [`FrameDumper::error`].
#[derive(Debug)]
pub struct FrameDumper {
    dir: PathBuf,
    prefix: String,
    every: usize,
    written: Vec<PathBuf>,
    error: Option<String>,
}

impl FrameDumper {
    /// Dump into `dir` (created on first write) as
    /// `<prefix>_step<NNNNNN>[.r<rank>].vtk`, every `every` steps.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>, every: usize) -> Self {
        FrameDumper {
            dir: dir.into(),
            prefix: prefix.into(),
            every: every.max(1),
            written: Vec::new(),
            error: None,
        }
    }

    /// Paths written so far (this rank's pieces only).
    #[must_use]
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    /// The first I/O error hit, if any.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    fn frame_path(&self, step: usize, view: &StepView<'_>) -> PathBuf {
        let rank_part = if view.n_ranks > 1 {
            format!(".r{}", view.rank)
        } else {
            String::new()
        };
        self.dir
            .join(format!("{}_step{step:06}{rank_part}.vtk", self.prefix))
    }

    fn dump(&mut self, step: usize, view: &StepView<'_>) {
        let path = self.frame_path(step, view);
        // Always write: frames are deterministic, so rewriting a path
        // (the final frame coinciding with a periodic one; a rerun of a
        // distributed simulation re-executing from step 0) is an
        // idempotent overwrite — and it recreates files the user may
        // have moved away between runs. Only the bookkeeping dedups.
        let result = std::fs::create_dir_all(&self.dir).and_then(|()| {
            let file = std::fs::File::create(&path)?;
            let mut w = std::io::BufWriter::new(file);
            crate::output::write_vtk(
                &mut w,
                view.mesh,
                view.state,
                &format!("{} t={:.6}", self.prefix, view.time),
            )
        });
        match result {
            Ok(()) => {
                if !self.written.contains(&path) {
                    self.written.push(path);
                }
            }
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(format!("{}: {e}", path.display()));
                }
            }
        }
    }
}

impl Observer for FrameDumper {
    fn run_begin(&mut self, view: &StepView<'_>) {
        self.dump(view.step, view);
    }
    fn step_end(&mut self, view: &StepView<'_>) {
        if (view.step + 1).is_multiple_of(self.every) {
            self.dump(view.step + 1, view);
        }
    }
    fn run_end(&mut self, view: &StepView<'_>) {
        self.dump(view.step, view);
    }
}

/// Prints a one-line status every `every` steps (rank 0 only), with
/// rank 0's sent-message count when available (per-rank counters; the
/// team-merged totals arrive in the final `RunReport`).
pub struct ProgressLogger {
    every: usize,
    out: Box<dyn Write + Send>,
}

impl ProgressLogger {
    /// Log to stdout.
    #[must_use]
    pub fn stdout(every: usize) -> Self {
        Self::to_writer(every, Box::new(std::io::stdout()))
    }

    /// Log to an arbitrary writer (tests, files).
    #[must_use]
    pub fn to_writer(every: usize, out: Box<dyn Write + Send>) -> Self {
        ProgressLogger {
            every: every.max(1),
            out,
        }
    }
}

impl Observer for ProgressLogger {
    fn needs(&self) -> ObserverNeeds {
        ObserverNeeds {
            comm_stats: true,
            ..ObserverNeeds::default()
        }
    }

    fn step_end(&mut self, view: &StepView<'_>) {
        if view.rank != 0 || !(view.step + 1).is_multiple_of(self.every) {
            return;
        }
        let comms = view
            .comm
            .as_ref()
            .map(|c| format!("  msgs = {}", c.messages_sent))
            .unwrap_or_default();
        let _ = writeln!(
            self.out,
            "step {:>7}  t = {:<12.6}  dt = {:.3e}{comms}",
            view.step + 1,
            view.time,
            view.dt,
        );
    }

    fn run_end(&mut self, view: &StepView<'_>) {
        if view.rank == 0 {
            let _ = writeln!(
                self.out,
                "run finished: {} steps, t = {:.6}",
                view.step, view.time
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_union_is_fieldwise_or() {
        let a = ObserverNeeds {
            global_energy: true,
            comm_stats: false,
        };
        let b = ObserverNeeds {
            global_energy: false,
            comm_stats: true,
        };
        let u = a.union(b);
        assert!(u.global_energy && u.comm_stats);
    }

    #[test]
    fn set_captures_need_union() {
        let set = ObserverSet::new(vec![
            Box::new(ConservationTracer::new()),
            Box::new(DtHistory::new()),
        ]);
        assert_eq!(set.len(), 2);
        assert!(set.needs().global_energy);
        assert!(!set.needs().comm_stats);
    }

    #[test]
    fn tracer_max_drift_over_samples() {
        let mut t = ConservationTracer::new();
        t.samples = vec![
            EnergySample {
                step: 0,
                time: 0.0,
                energy: 2.0,
            },
            EnergySample {
                step: 1,
                time: 0.1,
                energy: 2.1,
            },
            EnergySample {
                step: 2,
                time: 0.2,
                energy: 1.9,
            },
        ];
        assert!((t.max_drift() - 0.05).abs() < 1e-12);
        assert_eq!(ConservationTracer::new().max_drift(), 0.0);
    }

    #[test]
    fn shared_observer_delegates_needs() {
        let shared = Shared::new(ConservationTracer::new());
        assert!(Observer::needs(&shared).global_energy);
        let set = ObserverSet::new(vec![Box::new(shared.clone())]);
        assert!(set.needs().global_energy);
    }
}
