//! Simulation output: legacy-VTK visualisation files, binary state
//! snapshots, and the portable checkpoint format.
//!
//! * [`write_vtk`] emits an ASCII legacy `.vtk` unstructured-grid file
//!   (cell data: ρ, P, ε, q; point data: velocity) loadable by ParaView
//!   or VisIt — the standard way downstream users inspect hydro runs.
//! * [`Snapshot`] serialises the solver state to a compact binary body
//!   and restores it. It is the in-memory payload of a checkpoint; on
//!   its own (via [`Snapshot::write`]/[`read_snapshot`]) it has a magic
//!   but no deck and no checksum — use [`Checkpoint`] for files that
//!   leave the process.
//! * [`Checkpoint`] is the first-class restart artefact: the state
//!   snapshot **plus the originating [`InputDeck`]**, behind a
//!   magic+version header and guarded by a trailing CRC-32. A
//!   checkpoint file is self-contained — `SimulationBuilder::resume`
//!   rebuilds the problem from the embedded deck, so restarts need no
//!   out-of-band configuration and can change executor shape (serial ↔
//!   N ranks) freely.
//!
//! # Checkpoint format, version 1
//!
//! All integers and floats are little-endian. Layout, in order:
//!
//! | bytes        | field                                          |
//! |--------------|------------------------------------------------|
//! | 8            | magic `b"BLFCKPT\0"`                           |
//! | 4            | format version, `u32` (currently 1)            |
//! | 4            | deck text length `L`, `u32`                    |
//! | `L`          | canonical [`InputDeck`] text (UTF-8)           |
//! | 8            | simulated time, `f64`                          |
//! | 8            | steps taken, `u64`                             |
//! | 1            | `dt_prev` flag (0 = none, 1 = present)         |
//! | 8            | previous dt, `f64` (zero when the flag is 0)   |
//! | 8            | node count `NN`, `u64`                         |
//! | 8            | element count `NE`, `u64`                      |
//! | 16·NN        | node positions, `(f64, f64)` pairs             |
//! | 16·NN        | node velocities, `(f64, f64)` pairs            |
//! | 8·NN         | nodal masses                                   |
//! | 8·NE × 4     | element mass, density, energy, viscosity `q`   |
//! | 32·NE        | corner masses, 4 `f64` per element             |
//! | 4            | CRC-32 (IEEE) of every preceding byte          |
//!
//! The field set is exactly the cross-step state of the hydro loop:
//! positions, velocities and the thermodynamic state plus the two
//! quantities that carry information from step *k* into step *k+1*
//! (`q` feeds the next `getdt`; `nd_mass` feeds the next `getforce`
//! momentum limiter). Everything else (volumes, pressures, sound
//! speeds, corner scratch) is re-derived bitwise on load, which is what
//! makes same-shape resume bit-exact.
//!
//! **Versioning policy.** The version integer identifies the byte
//! layout above. Any change to the layout — field added, removed,
//! reordered, re-typed — must bump [`CHECKPOINT_VERSION`] and teach the
//! reader the old layout or reject it with
//! [`CheckpointError::UnsupportedVersion`]. The committed golden
//! fixture `tests/fixtures/noh_v1.ckpt` pins version 1: if it stops
//! loading byte-exactly, the format changed and the bump must be
//! deliberate. Corruption anywhere in the file (including the embedded
//! deck text) is caught by the trailing CRC before any field is
//! interpreted; every failure path is a typed
//! [`bookleaf_util::CheckpointError`], never a panic.

use std::io::{self, Read, Write};
use std::path::Path;

use bookleaf_hydro::HydroState;
use bookleaf_mesh::Mesh;
use bookleaf_util::{crc32, BookLeafError, CheckpointError, Result, Vec2};

use crate::input::{InputDeck, MAX_MESH_DIM};

/// Write the current solution as a legacy ASCII VTK unstructured grid.
pub fn write_vtk(
    w: &mut impl Write,
    mesh: &Mesh,
    state: &HydroState,
    title: &str,
) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "{title}")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET UNSTRUCTURED_GRID")?;

    writeln!(w, "POINTS {} double", mesh.n_nodes())?;
    for p in &mesh.nodes {
        writeln!(w, "{} {} 0.0", p.x, p.y)?;
    }

    writeln!(w, "CELLS {} {}", mesh.n_elements(), mesh.n_elements() * 5)?;
    for quad in &mesh.elnd {
        writeln!(w, "4 {} {} {} {}", quad[0], quad[1], quad[2], quad[3])?;
    }
    writeln!(w, "CELL_TYPES {}", mesh.n_elements())?;
    for _ in 0..mesh.n_elements() {
        writeln!(w, "9")?; // VTK_QUAD
    }

    writeln!(w, "CELL_DATA {}", mesh.n_elements())?;
    for (name, field) in [
        ("density", &state.rho),
        ("pressure", &state.pressure),
        ("internal_energy", &state.ein),
        ("viscosity", &state.q),
    ] {
        writeln!(w, "SCALARS {name} double 1")?;
        writeln!(w, "LOOKUP_TABLE default")?;
        for v in field.iter() {
            writeln!(w, "{v}")?;
        }
    }

    writeln!(w, "POINT_DATA {}", mesh.n_nodes())?;
    writeln!(w, "VECTORS velocity double")?;
    for u in &state.u {
        writeln!(w, "{} {} 0.0", u.x, u.y)?;
    }
    Ok(())
}

/// Magic guarding the standalone snapshot body (bumped from `BLRSNAP1`
/// when `q`/`nd_mass`/the dt-prev flag joined the field set).
const SNAP_MAGIC: &[u8; 8] = b"BLRSNAP2";

/// Magic opening a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"BLFCKPT\0";

/// The checkpoint format version this build writes (and the only one it
/// currently reads). See the module docs for the versioning policy.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Entity counts above this are rejected as corrupt before any
/// allocation: no valid deck can exceed `(MAX_MESH_DIM + 1)²` nodes.
const MAX_ENTITIES: usize = (MAX_MESH_DIM + 1) * (MAX_MESH_DIM + 1);

/// A binary snapshot of everything a restart needs: the cross-step
/// solver state (see the module docs for why exactly these fields).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Simulated time.
    pub time: f64,
    /// Steps taken so far.
    pub steps: u64,
    /// Last time step (`None` before the first step; the growth limiter
    /// ramps from it on restart, and `None` reproduces the initial-dt
    /// path bitwise).
    pub dt_prev: Option<f64>,
    /// Node positions.
    pub nodes: Vec<Vec2>,
    /// Node velocities.
    pub u: Vec<Vec2>,
    /// Nodal masses (refreshed by the previous step's acceleration;
    /// read by the next step's force limiter before it is refreshed
    /// again).
    pub nd_mass: Vec<f64>,
    /// Element mass, density, energy (volume/pressure are re-derived).
    pub mass: Vec<f64>,
    /// Density.
    pub rho: Vec<f64>,
    /// Specific internal energy.
    pub ein: Vec<f64>,
    /// Element artificial viscosity (read by the next step's `getdt`).
    pub q: Vec<f64>,
    /// Corner masses (sub-zonal state).
    pub cnmass: Vec<[f64; 4]>,
}

impl Snapshot {
    /// Capture the solver state.
    #[must_use]
    pub fn capture(
        mesh: &Mesh,
        state: &HydroState,
        time: f64,
        steps: u64,
        dt_prev: Option<f64>,
    ) -> Self {
        Snapshot {
            time,
            steps,
            dt_prev,
            nodes: mesh.nodes.clone(),
            u: state.u.clone(),
            nd_mass: state.nd_mass.clone(),
            mass: state.mass.clone(),
            rho: state.rho.clone(),
            ein: state.ein.clone(),
            q: state.q.clone(),
            cnmass: state.cnmass.clone(),
        }
    }

    /// Node count of the captured state.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Element count of the captured state.
    #[must_use]
    pub fn n_elements(&self) -> usize {
        self.mass.len()
    }

    /// Restore into an existing mesh/state pair (shapes must match the
    /// deck the snapshot came from).
    pub fn restore(&self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        if self.nodes.len() != mesh.n_nodes() || self.mass.len() != mesh.n_elements() {
            return Err(BookLeafError::Checkpoint(CheckpointError::DeckMismatch {
                message: format!(
                    "snapshot shape ({} nodes, {} elements) does not match mesh ({}, {})",
                    self.nodes.len(),
                    self.mass.len(),
                    mesh.n_nodes(),
                    mesh.n_elements()
                ),
            }));
        }
        mesh.nodes.copy_from_slice(&self.nodes);
        state.u.copy_from_slice(&self.u);
        state.nd_mass.copy_from_slice(&self.nd_mass);
        state.mass.copy_from_slice(&self.mass);
        state.rho.copy_from_slice(&self.rho);
        state.ein.copy_from_slice(&self.ein);
        state.q.copy_from_slice(&self.q);
        state.cnmass.copy_from_slice(&self.cnmass);
        Ok(())
    }

    /// Serialise to the standalone binary snapshot format (magic +
    /// body, no checksum; files that leave the process should use
    /// [`Checkpoint`]).
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = Vec::with_capacity(8 + self.body_len());
        out.extend_from_slice(SNAP_MAGIC);
        self.write_body(&mut out);
        w.write_all(&out)
    }

    /// Serialised body length in bytes (everything after the magic).
    fn body_len(&self) -> usize {
        body_len(self.nodes.len(), self.mass.len())
    }

    /// Append the versioned body (shared by snapshot and checkpoint).
    fn write_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.steps.to_le_bytes());
        out.push(u8::from(self.dt_prev.is_some()));
        out.extend_from_slice(&self.dt_prev.unwrap_or(0.0).to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.mass.len() as u64).to_le_bytes());
        for vs in [&self.nodes, &self.u] {
            for v in vs.iter() {
                out.extend_from_slice(&v.x.to_le_bytes());
                out.extend_from_slice(&v.y.to_le_bytes());
            }
        }
        for field in [&self.nd_mass, &self.mass, &self.rho, &self.ein, &self.q] {
            for v in field.iter() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        for cm in &self.cnmass {
            for v in cm {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// Parse a body from `cur`, consuming it exactly to the end.
    fn read_body(cur: &mut Cursor<'_>) -> std::result::Result<Snapshot, CheckpointError> {
        let time = cur.f64("time")?;
        let steps = cur.u64("steps")?;
        let dt_flag = cur.u8("dt_prev flag")?;
        let dt_raw = cur.f64("dt_prev")?;
        let dt_prev = match dt_flag {
            0 => None,
            1 => Some(dt_raw),
            other => {
                return Err(CheckpointError::Corrupt {
                    what: format!("dt_prev flag must be 0 or 1, found {other}"),
                })
            }
        };
        let n_nodes = cur.count("node count")?;
        let n_elements = cur.count("element count")?;
        let expected = body_len(n_nodes, n_elements) - BODY_HEADER_LEN;
        if cur.remaining() != expected {
            return Err(CheckpointError::Corrupt {
                what: format!(
                    "field payload holds {} bytes but {n_nodes} nodes / {n_elements} \
                     elements need {expected}",
                    cur.remaining()
                ),
            });
        }
        let mut vecs = |what: &'static str, n: usize| {
            (0..n)
                .map(|_| Ok(Vec2::new(cur.f64(what)?, cur.f64(what)?)))
                .collect::<std::result::Result<Vec<Vec2>, CheckpointError>>()
        };
        let nodes = vecs("node positions", n_nodes)?;
        let u = vecs("node velocities", n_nodes)?;
        let mut scalars = |what: &'static str, n: usize| {
            (0..n)
                .map(|_| cur.f64(what))
                .collect::<std::result::Result<Vec<f64>, CheckpointError>>()
        };
        let nd_mass = scalars("nodal masses", n_nodes)?;
        let mass = scalars("element masses", n_elements)?;
        let rho = scalars("densities", n_elements)?;
        let ein = scalars("energies", n_elements)?;
        let q = scalars("viscosities", n_elements)?;
        let mut cnmass = Vec::with_capacity(n_elements);
        for _ in 0..n_elements {
            let mut cm = [0.0; 4];
            for v in &mut cm {
                *v = cur.f64("corner masses")?;
            }
            cnmass.push(cm);
        }
        Ok(Snapshot {
            time,
            steps,
            dt_prev,
            nodes,
            u,
            nd_mass,
            mass,
            rho,
            ein,
            q,
            cnmass,
        })
    }
}

/// Fixed-size prefix of the body: time, steps, dt flag + value, counts.
const BODY_HEADER_LEN: usize = 8 + 8 + 1 + 8 + 8 + 8;

/// Total body bytes for the given entity counts.
fn body_len(n_nodes: usize, n_elements: usize) -> usize {
    BODY_HEADER_LEN + 40 * n_nodes + 64 * n_elements
}

/// Deserialise a snapshot from the binary format written by
/// [`Snapshot::write`]. Failures are typed
/// [`BookLeafError::Checkpoint`] values.
pub fn read_snapshot(r: &mut impl Read) -> Result<Snapshot> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).map_err(|e| CheckpointError::Io {
        path: "<stream>".into(),
        message: e.to_string(),
    })?;
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated { what: "magic" }.into());
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(CheckpointError::BadMagic.into());
    }
    let mut cur = Cursor::new(&bytes[8..]);
    let snap = Snapshot::read_body(&mut cur)?;
    if cur.remaining() != 0 {
        return Err(CheckpointError::Corrupt {
            what: format!("{} trailing bytes after the snapshot body", cur.remaining()),
        }
        .into());
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// The checkpoint container.

/// A portable, versioned restart artefact: the cross-step solver state
/// plus the [`InputDeck`] that describes the problem it belongs to. See
/// the module docs for the byte format and versioning policy.
///
/// Produced by `Simulation::checkpoint`; consumed by
/// `SimulationBuilder::resume`/`resume_from`, which rebuild the problem
/// from the embedded deck and may change the executor shape freely
/// (the state is global, so any rank count can repartition it).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The originating problem spec and run options.
    pub input: InputDeck,
    /// The captured solver state.
    pub snap: Snapshot,
}

impl Checkpoint {
    /// Serialise to the version-1 byte format (with trailing CRC-32).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let deck_text = self.input.to_string();
        let mut out = Vec::with_capacity(8 + 4 + 4 + deck_text.len() + self.snap.body_len() + 4);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(deck_text.len() as u32).to_le_bytes());
        out.extend_from_slice(deck_text.as_bytes());
        self.snap.write_body(&mut out);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse the byte format, verifying magic, version and CRC before
    /// interpreting any field. Every failure is a typed
    /// [`CheckpointError`]; no input can panic this parser (pinned by a
    /// byte-flip property test).
    pub fn from_bytes(bytes: &[u8]) -> std::result::Result<Checkpoint, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated { what: "magic" });
        }
        if &bytes[..8] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < 16 {
            return Err(CheckpointError::Truncated { what: "header" });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
        let actual = crc32(payload);
        if stored != actual {
            return Err(CheckpointError::Corrupt {
                what: format!("CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"),
            });
        }
        let mut cur = Cursor::new(&payload[12..]);
        let deck_len = cur.u32("deck length")? as usize;
        let deck_bytes = cur.take(deck_len, "deck text")?;
        let deck_text = std::str::from_utf8(deck_bytes).map_err(|_| CheckpointError::Corrupt {
            what: "embedded deck text is not UTF-8".into(),
        })?;
        let input: InputDeck = deck_text.parse().map_err(|e| CheckpointError::Corrupt {
            what: format!("embedded deck does not parse: {e}"),
        })?;
        let snap = Snapshot::read_body(&mut cur)?;
        if cur.remaining() != 0 {
            return Err(CheckpointError::Corrupt {
                what: format!("{} trailing bytes before the CRC", cur.remaining()),
            });
        }
        let deck = input.build_deck().map_err(|e| CheckpointError::Corrupt {
            what: format!("embedded deck does not build: {e}"),
        })?;
        if snap.n_nodes() != deck.mesh.n_nodes() || snap.n_elements() != deck.mesh.n_elements() {
            return Err(CheckpointError::Corrupt {
                what: format!(
                    "state shape ({} nodes, {} elements) does not match the embedded \
                     deck's mesh ({}, {})",
                    snap.n_nodes(),
                    snap.n_elements(),
                    deck.mesh.n_nodes(),
                    deck.mesh.n_elements()
                ),
            });
        }
        Ok(Checkpoint { input, snap })
    }

    /// Write the checkpoint to `path` **atomically**: the bytes go to a
    /// sibling `<path>.tmp` first, are fsynced, and the temporary is
    /// renamed over the destination. A crash (or any failure) mid-write
    /// therefore never leaves a truncated file at `path` — either the
    /// old checkpoint survives intact or the new one is complete. Every
    /// failure surfaces as a typed [`CheckpointError::Io`] naming the
    /// path involved, and the temporary is cleaned up on error.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::result::Result<(), CheckpointError> {
        use std::io::Write as _;
        let path = path.as_ref();
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        let io_err = |at: &Path, e: std::io::Error| CheckpointError::Io {
            path: at.display().to_string(),
            message: e.to_string(),
        };
        let write_tmp = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&self.to_bytes())?;
            // Flush to the medium before the rename publishes the file:
            // rename is atomic in the namespace, fsync makes the
            // content durable first.
            file.sync_all()
        };
        if let Err(e) = write_tmp() {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err(&tmp, e));
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io_err(path, e)
        })
    }

    /// Read and parse a checkpoint file.
    pub fn read_from(path: impl AsRef<Path>) -> std::result::Result<Checkpoint, CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Checkpoint::from_bytes(&bytes)
    }
}

/// Bounds-checked little-endian reader over a byte slice; every
/// overrun is a typed [`CheckpointError::Truncated`].
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take(
        &mut self,
        n: usize,
        what: &'static str,
    ) -> std::result::Result<&'a [u8], CheckpointError> {
        if self.bytes.len() < n {
            return Err(CheckpointError::Truncated { what });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> std::result::Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> std::result::Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> std::result::Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, what: &'static str) -> std::result::Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// An entity count, rejected before allocation if implausible.
    fn count(&mut self, what: &'static str) -> std::result::Result<usize, CheckpointError> {
        let n = self.u64(what)?;
        if n as usize > MAX_ENTITIES {
            return Err(CheckpointError::Corrupt {
                what: format!("{what} {n} exceeds the maximum mesh size"),
            });
        }
        Ok(n as usize)
    }
}

// The CRC-32 implementation lives in `bookleaf_util::hash`, shared with
// the typhon message-payload checksums.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decks;
    use bookleaf_hydro::HydroState;

    fn sample() -> (Mesh, HydroState) {
        let deck = decks::sod(8, 2);
        let st = HydroState::new(
            &deck.mesh,
            &deck.materials,
            |e| deck.rho[e],
            |e| deck.ein[e],
            |n| deck.u[n],
        )
        .unwrap();
        (deck.mesh, st)
    }

    #[test]
    fn vtk_output_is_well_formed() {
        let (mesh, st) = sample();
        let mut out = Vec::new();
        write_vtk(&mut out, &mesh, &st, "test").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("# vtk DataFile"));
        assert!(text.contains(&format!("POINTS {} double", mesh.n_nodes())));
        assert!(text.contains(&format!(
            "CELLS {} {}",
            mesh.n_elements(),
            mesh.n_elements() * 5
        )));
        assert!(text.contains("SCALARS density double 1"));
        assert!(text.contains("VECTORS velocity double"));
        // One density line per element.
        let after = text.split("LOOKUP_TABLE default").nth(1).unwrap();
        let lines: Vec<&str> = after.trim_start().lines().take(mesh.n_elements()).collect();
        assert_eq!(lines.len(), mesh.n_elements());
        assert_eq!(lines[0].trim(), "1");
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let (mut mesh, mut st) = sample();
        // Perturb so the snapshot is non-trivial.
        st.u[3] = Vec2::new(0.5, -0.25);
        st.ein[2] = 9.0;
        st.q[1] = 0.375;
        st.nd_mass[5] = 0.0625;
        mesh.nodes[4] += Vec2::new(0.001, 0.002);
        let snap = Snapshot::capture(&mesh, &st, 0.125, 42, Some(3e-4));

        let mut bytes = Vec::new();
        snap.write(&mut bytes).unwrap();
        let back = read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, snap);

        // Restore into a fresh state.
        let (mut mesh2, mut st2) = sample();
        back.restore(&mut mesh2, &mut st2).unwrap();
        assert_eq!(mesh2.nodes, mesh.nodes);
        assert_eq!(st2.u, st.u);
        assert_eq!(st2.ein, st.ein);
        assert_eq!(st2.q, st.q);
        assert_eq!(st2.nd_mass, st.nd_mass);
    }

    #[test]
    fn snapshot_preserves_missing_dt_prev() {
        let (mesh, st) = sample();
        let snap = Snapshot::capture(&mesh, &st, 0.0, 0, None);
        let mut bytes = Vec::new();
        snap.write(&mut bytes).unwrap();
        let back = read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.dt_prev, None);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let (mesh, st) = sample();
        let snap = Snapshot::capture(&mesh, &st, 0.0, 0, Some(1e-5));
        let mut bytes = Vec::new();
        snap.write(&mut bytes).unwrap();

        // Truncated.
        let half = &bytes[..bytes.len() / 2];
        assert!(read_snapshot(&mut &half[..]).is_err());
        // Wrong magic.
        let mut corrupt = bytes.clone();
        corrupt[0] = b'X';
        let err = read_snapshot(&mut corrupt.as_slice()).unwrap_err();
        assert!(
            matches!(err, BookLeafError::Checkpoint(CheckpointError::BadMagic)),
            "{err}"
        );
    }

    #[test]
    fn snapshot_rejects_shape_mismatch() {
        let (mesh, st) = sample();
        let snap = Snapshot::capture(&mesh, &st, 0.0, 0, Some(1e-5));
        let other = decks::sod(10, 2);
        let mut mesh2 = other.mesh.clone();
        let mut st2 = HydroState::new(
            &other.mesh,
            &other.materials,
            |e| other.rho[e],
            |e| other.ein[e],
            |n| other.u[n],
        )
        .unwrap();
        let err = snap.restore(&mut mesh2, &mut st2).unwrap_err();
        assert!(
            matches!(
                err,
                BookLeafError::Checkpoint(CheckpointError::DeckMismatch { .. })
            ),
            "{err}"
        );
    }

    fn sample_checkpoint() -> Checkpoint {
        let input = InputDeck::new(crate::input::ProblemSpec::Sod { nx: 8, ny: 2 });
        let (mesh, st) = sample();
        let snap = Snapshot::capture(&mesh, &st, 0.25, 17, Some(2e-4));
        Checkpoint { input, snap }
    }

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        // The writer is deterministic.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn checkpoint_rejects_bad_magic_version_and_crc() {
        let bytes = sample_checkpoint().to_bytes();

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(Checkpoint::from_bytes(&bad), Err(CheckpointError::BadMagic));

        let mut bad = bytes.clone();
        bad[8] = 99; // version field
        assert_eq!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::UnsupportedVersion {
                found: 99,
                supported: CHECKPOINT_VERSION
            })
        );

        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn checkpoint_rejects_truncation_at_any_header_boundary() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in [0, 4, 8, 12, 15, bytes.len() / 2, bytes.len() - 1] {
            let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::Corrupt { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn checkpoint_file_io_errors_are_typed() {
        let err = Checkpoint::read_from("/nonexistent/no/such.ckpt").unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "{err}");
    }

    #[test]
    fn crc32_matches_known_vector_via_util() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
