//! Simulation output: legacy-VTK visualisation files and binary restart
//! snapshots.
//!
//! * [`write_vtk`] emits an ASCII legacy `.vtk` unstructured-grid file
//!   (cell data: ρ, P, ε, q; point data: velocity) loadable by ParaView
//!   or VisIt — the standard way downstream users inspect hydro runs.
//! * [`Snapshot`] serialises the full solver state to a compact binary
//!   format and restores it, enabling restart runs. The format is
//!   self-describing enough to detect truncation and version mismatch;
//!   a restarted run continues the original trajectory (tested to
//!   round-off in `tests/restart.rs`).

use std::io::{self, Read, Write};

use bookleaf_hydro::HydroState;
use bookleaf_mesh::Mesh;
use bookleaf_util::{BookLeafError, Result, Vec2};

/// Write the current solution as a legacy ASCII VTK unstructured grid.
pub fn write_vtk(
    w: &mut impl Write,
    mesh: &Mesh,
    state: &HydroState,
    title: &str,
) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "{title}")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET UNSTRUCTURED_GRID")?;

    writeln!(w, "POINTS {} double", mesh.n_nodes())?;
    for p in &mesh.nodes {
        writeln!(w, "{} {} 0.0", p.x, p.y)?;
    }

    writeln!(w, "CELLS {} {}", mesh.n_elements(), mesh.n_elements() * 5)?;
    for quad in &mesh.elnd {
        writeln!(w, "4 {} {} {} {}", quad[0], quad[1], quad[2], quad[3])?;
    }
    writeln!(w, "CELL_TYPES {}", mesh.n_elements())?;
    for _ in 0..mesh.n_elements() {
        writeln!(w, "9")?; // VTK_QUAD
    }

    writeln!(w, "CELL_DATA {}", mesh.n_elements())?;
    for (name, field) in [
        ("density", &state.rho),
        ("pressure", &state.pressure),
        ("internal_energy", &state.ein),
        ("viscosity", &state.q),
    ] {
        writeln!(w, "SCALARS {name} double 1")?;
        writeln!(w, "LOOKUP_TABLE default")?;
        for v in field.iter() {
            writeln!(w, "{v}")?;
        }
    }

    writeln!(w, "POINT_DATA {}", mesh.n_nodes())?;
    writeln!(w, "VECTORS velocity double")?;
    for u in &state.u {
        writeln!(w, "{} {} 0.0", u.x, u.y)?;
    }
    Ok(())
}

/// Magic + version guarding the snapshot format.
const SNAP_MAGIC: &[u8; 8] = b"BLRSNAP1";

/// A binary snapshot of everything a restart needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Simulated time.
    pub time: f64,
    /// Steps taken so far.
    pub steps: u64,
    /// Last time step (for the growth limiter on restart).
    pub dt_prev: f64,
    /// Node positions.
    pub nodes: Vec<Vec2>,
    /// Node velocities.
    pub u: Vec<Vec2>,
    /// Element mass, density, energy (volume/pressure are re-derived).
    pub mass: Vec<f64>,
    /// Density.
    pub rho: Vec<f64>,
    /// Specific internal energy.
    pub ein: Vec<f64>,
    /// Corner masses (sub-zonal state).
    pub cnmass: Vec<[f64; 4]>,
}

impl Snapshot {
    /// Capture the solver state.
    #[must_use]
    pub fn capture(mesh: &Mesh, state: &HydroState, time: f64, steps: u64, dt_prev: f64) -> Self {
        Snapshot {
            time,
            steps,
            dt_prev,
            nodes: mesh.nodes.clone(),
            u: state.u.clone(),
            mass: state.mass.clone(),
            rho: state.rho.clone(),
            ein: state.ein.clone(),
            cnmass: state.cnmass.clone(),
        }
    }

    /// Restore into an existing mesh/state pair (shapes must match the
    /// deck the snapshot came from).
    pub fn restore(&self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        if self.nodes.len() != mesh.n_nodes() || self.mass.len() != mesh.n_elements() {
            return Err(BookLeafError::InvalidDeck(format!(
                "snapshot shape ({} nodes, {} elements) does not match mesh ({}, {})",
                self.nodes.len(),
                self.mass.len(),
                mesh.n_nodes(),
                mesh.n_elements()
            )));
        }
        mesh.nodes.copy_from_slice(&self.nodes);
        state.u.copy_from_slice(&self.u);
        state.mass.copy_from_slice(&self.mass);
        state.rho.copy_from_slice(&self.rho);
        state.ein.copy_from_slice(&self.ein);
        state.cnmass.copy_from_slice(&self.cnmass);
        Ok(())
    }

    /// Serialise to the binary snapshot format.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(SNAP_MAGIC)?;
        w.write_all(&self.time.to_le_bytes())?;
        w.write_all(&self.steps.to_le_bytes())?;
        w.write_all(&self.dt_prev.to_le_bytes())?;
        w.write_all(&(self.nodes.len() as u64).to_le_bytes())?;
        w.write_all(&(self.mass.len() as u64).to_le_bytes())?;
        let write_vecs = |w: &mut dyn Write, vs: &[Vec2]| -> io::Result<()> {
            for v in vs {
                w.write_all(&v.x.to_le_bytes())?;
                w.write_all(&v.y.to_le_bytes())?;
            }
            Ok(())
        };
        write_vecs(w, &self.nodes)?;
        write_vecs(w, &self.u)?;
        for field in [&self.mass, &self.rho, &self.ein] {
            for v in field.iter() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        for cm in &self.cnmass {
            for v in cm {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }
}

/// Deserialise a snapshot from the binary format written by
/// [`Snapshot::write`].
pub fn read_snapshot(r: &mut impl Read) -> Result<Snapshot> {
    let bad = |what: &str| BookLeafError::InvalidDeck(format!("snapshot: {what}"));
    let mut buf = [0u8; 8];
    let mut take = |r: &mut dyn Read| -> Result<[u8; 8]> {
        r.read_exact(&mut buf).map_err(|_| bad("truncated"))?;
        Ok(buf)
    };
    let magic = take(r)?;
    if &magic != SNAP_MAGIC {
        return Err(bad("wrong magic (not a BookLeaf-rs snapshot?)"));
    }
    let time = f64::from_le_bytes(take(r)?);
    let steps = u64::from_le_bytes(take(r)?);
    let dt_prev = f64::from_le_bytes(take(r)?);
    let n_nodes = u64::from_le_bytes(take(r)?) as usize;
    let n_elements = u64::from_le_bytes(take(r)?) as usize;
    if n_nodes > 1 << 32 || n_elements > 1 << 32 {
        return Err(bad("implausible sizes (corrupt file)"));
    }
    let mut read_vecs = |r: &mut dyn Read, n: usize| -> Result<Vec<Vec2>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let x = f64::from_le_bytes(take(r)?);
            let y = f64::from_le_bytes(take(r)?);
            out.push(Vec2::new(x, y));
        }
        Ok(out)
    };
    let nodes = read_vecs(r, n_nodes)?;
    let u = read_vecs(r, n_nodes)?;
    let mut read_scalars = |r: &mut dyn Read, n: usize| -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_le_bytes(take(r)?));
        }
        Ok(out)
    };
    let mass = read_scalars(r, n_elements)?;
    let rho = read_scalars(r, n_elements)?;
    let ein = read_scalars(r, n_elements)?;
    let mut cnmass = Vec::with_capacity(n_elements);
    for _ in 0..n_elements {
        let mut cm = [0.0; 4];
        for v in &mut cm {
            *v = f64::from_le_bytes(take(r)?);
        }
        cnmass.push(cm);
    }
    Ok(Snapshot {
        time,
        steps,
        dt_prev,
        nodes,
        u,
        mass,
        rho,
        ein,
        cnmass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decks;
    use bookleaf_hydro::HydroState;

    fn sample() -> (Mesh, HydroState) {
        let deck = decks::sod(8, 2);
        let st = HydroState::new(
            &deck.mesh,
            &deck.materials,
            |e| deck.rho[e],
            |e| deck.ein[e],
            |n| deck.u[n],
        )
        .unwrap();
        (deck.mesh, st)
    }

    #[test]
    fn vtk_output_is_well_formed() {
        let (mesh, st) = sample();
        let mut out = Vec::new();
        write_vtk(&mut out, &mesh, &st, "test").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("# vtk DataFile"));
        assert!(text.contains(&format!("POINTS {} double", mesh.n_nodes())));
        assert!(text.contains(&format!(
            "CELLS {} {}",
            mesh.n_elements(),
            mesh.n_elements() * 5
        )));
        assert!(text.contains("SCALARS density double 1"));
        assert!(text.contains("VECTORS velocity double"));
        // One density line per element.
        let after = text.split("LOOKUP_TABLE default").nth(1).unwrap();
        let lines: Vec<&str> = after.trim_start().lines().take(mesh.n_elements()).collect();
        assert_eq!(lines.len(), mesh.n_elements());
        assert_eq!(lines[0].trim(), "1");
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let (mut mesh, mut st) = sample();
        // Perturb so the snapshot is non-trivial.
        st.u[3] = Vec2::new(0.5, -0.25);
        st.ein[2] = 9.0;
        mesh.nodes[4] += Vec2::new(0.001, 0.002);
        let snap = Snapshot::capture(&mesh, &st, 0.125, 42, 3e-4);

        let mut bytes = Vec::new();
        snap.write(&mut bytes).unwrap();
        let back = read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, snap);

        // Restore into a fresh state.
        let (mut mesh2, mut st2) = sample();
        back.restore(&mut mesh2, &mut st2).unwrap();
        assert_eq!(mesh2.nodes, mesh.nodes);
        assert_eq!(st2.u, st.u);
        assert_eq!(st2.ein, st.ein);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let (mesh, st) = sample();
        let snap = Snapshot::capture(&mesh, &st, 0.0, 0, 1e-5);
        let mut bytes = Vec::new();
        snap.write(&mut bytes).unwrap();

        // Truncated.
        let half = &bytes[..bytes.len() / 2];
        assert!(read_snapshot(&mut &half[..]).is_err());
        // Wrong magic.
        let mut corrupt = bytes.clone();
        corrupt[0] = b'X';
        assert!(read_snapshot(&mut corrupt.as_slice()).is_err());
    }

    #[test]
    fn snapshot_rejects_shape_mismatch() {
        let (mesh, st) = sample();
        let snap = Snapshot::capture(&mesh, &st, 0.0, 0, 1e-5);
        let other = decks::sod(10, 2);
        let mut mesh2 = other.mesh.clone();
        let mut st2 = HydroState::new(
            &other.mesh,
            &other.materials,
            |e| other.rho[e],
            |e| other.ein[e],
            |n| other.u[n],
        )
        .unwrap();
        assert!(snap.restore(&mut mesh2, &mut st2).is_err());
    }
}
