//! The unified run report: what every completed run hands back,
//! regardless of executor.
//!
//! [`RunReport`] carries the full accounting for
//! every executor: merged per-kernel timers (max over ranks — how an
//! MPI code experiences time), team-merged [`CommStats`] (all zeros for
//! a serial run: no wire traffic), and the global start/end energies
//! (partition-exact in distributed runs: boundary nodes are counted
//! once).

use bookleaf_typhon::CommStats;
use bookleaf_util::TimerReport;

use crate::config::ExecutorKind;
use crate::resilience::RecoveryLog;

/// What a completed run reports, for every executor.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Deck name (for logs and artefacts).
    pub name: String,
    /// Which programming model executed the run.
    pub executor: ExecutorKind,
    /// Rank count (1 for the serial executor).
    pub ranks: usize,
    /// Steps taken.
    pub steps: usize,
    /// Final simulated time.
    pub time: f64,
    /// Wall-clock seconds for the whole run (team wall for distributed).
    pub wall_seconds: f64,
    /// Per-kernel timing (Table II buckets), max over ranks.
    pub timers: TimerReport,
    /// Team-merged communication counters (zero for serial runs).
    pub comm: CommStats,
    /// Total energy at t = 0 (internal + kinetic, global).
    pub energy_start: f64,
    /// Total energy at the end (global).
    pub energy_end: f64,
    /// What [`Simulation::run_resilient`](crate::Simulation::run_resilient)
    /// survived to produce this report: one event per fault, plus retry
    /// and replay accounting. Empty for plain `run()` calls and for
    /// resilient runs that never hit a fault. Deliberately free of
    /// wall-clock data, so two runs of the same seeded fault schedule
    /// carry identical logs.
    pub recovery: RecoveryLog,
}

impl RunReport {
    /// Relative energy drift over the run (0 for a perfectly compatible
    /// Lagrangian run; the remap and driven boundaries do work).
    #[must_use]
    pub fn energy_drift(&self) -> f64 {
        if self.energy_start == 0.0 {
            return 0.0;
        }
        ((self.energy_end - self.energy_start) / self.energy_start).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(e0: f64, e1: f64) -> RunReport {
        RunReport {
            name: "test".into(),
            executor: ExecutorKind::Serial,
            ranks: 1,
            steps: 10,
            time: 0.1,
            wall_seconds: 0.0,
            timers: TimerReport::zero(),
            comm: CommStats::default(),
            energy_start: e0,
            energy_end: e1,
            recovery: RecoveryLog::default(),
        }
    }

    #[test]
    fn drift_is_relative_and_absolute_valued() {
        assert!((report(2.0, 2.2).energy_drift() - 0.1).abs() < 1e-12);
        assert!((report(2.0, 1.8).energy_drift() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_start_energy_reports_zero_drift() {
        assert_eq!(report(0.0, 1.0).energy_drift(), 0.0);
    }
}
