//! Resilient execution: auto-checkpointing, retention-managed
//! checkpoint stores, and supervised elastic recovery.
//!
//! A long hydro run dies for mundane reasons — a node is drained, a NIC
//! flakes, a rank is OOM-killed. This module turns those deaths from
//! lost runs into bounded replays, built on three pieces:
//!
//! * [`CheckpointStore`] — a directory of atomically-written
//!   checkpoints with keep-the-newest-K retention and verified
//!   readback. Every write goes through the tmp+fsync+rename path of
//!   [`Checkpoint::write_to`], is re-read and CRC-verified before it
//!   counts, and prunes older files beyond the retention budget; a
//!   checkpoint that fails its own readback is deleted and reported as
//!   a warning ([`SaveOutcome::Rejected`]), never silently trusted.
//! * [`AutoCheckpoint`] — an [`Observer`] that checkpoints a running
//!   simulation every N steps through a store, so any run gains rewind
//!   points without touching its driver code. It is read-only like
//!   every observer: a run with auto-checkpointing is bitwise identical
//!   to one without.
//! * [`Simulation::run_resilient`] — the supervisor. It executes the
//!   run in segments of `checkpoint_every_steps`, checkpoints each
//!   segment boundary, and on any typed failure — an injected or real
//!   [`bookleaf_util::CommError`], a sentinel
//!   [`bookleaf_util::BookLeafError::Unhealthy`] abort — rewinds to the
//!   last good checkpoint, optionally **reshapes** the executor (a dead
//!   node means fewer ranks: [`ReshapePolicy::Halve`]), backs off, and
//!   retries within a bounded budget. Elastic recovery falls out of the
//!   portable checkpoint format: a 4-rank segment's checkpoint resumes
//!   unchanged on 2 ranks.
//!
//! Everything the supervisor records ([`RecoveryLog`],
//! [`RecoveryEvent`]) is a pure function of the run and its fault
//! schedule — rank ids, scheduled steps, typed error text; no
//! wall-clock values — so two executions of the same seeded
//! [`bookleaf_typhon::FaultPlan`] produce byte-identical recovery logs.
//! That determinism is what the CI fault matrix pins.
//!
//! ```no_run
//! use bookleaf_core::{decks, ExecutorKind, RecoveryPolicy, ReshapePolicy, Simulation};
//!
//! let mut sim = Simulation::builder()
//!     .deck(decks::noh(16))
//!     .executor(ExecutorKind::FlatMpi { ranks: 4 })
//!     .final_time(0.1)
//!     .build()
//!     .unwrap();
//! let policy = RecoveryPolicy::new("ckpt_dir")
//!     .checkpoint_every_steps(25)
//!     .max_retries(3)
//!     .reshape(ReshapePolicy::Halve);
//! let report = sim.run_resilient(&policy).unwrap();
//! for event in &report.recovery.events {
//!     println!("survived: {}", event.error);
//! }
//! ```

use std::path::{Path, PathBuf};
use std::time::Duration;

use bookleaf_util::{BookLeafError, CheckpointError, CommError, Result};

use crate::config::ExecutorKind;
use crate::input::InputDeck;
use crate::observer::{Observer, StepView};
use crate::output::{Checkpoint, Snapshot};
use crate::report::RunReport;
use crate::sim::Simulation;

// ---------------------------------------------------------------------------
// CheckpointStore: atomic writes, retention, verified readback.

/// What a [`CheckpointStore::save`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaveOutcome {
    /// The checkpoint was written atomically, read back, verified, and
    /// now lives at this path.
    Written(PathBuf),
    /// The checkpoint was written and verified, but this single file is
    /// larger than the store's whole byte budget. It is kept — deleting
    /// the only rewind point to satisfy a quota would be worse — while
    /// every older checkpoint was evicted. A warning, not an abort.
    WrittenOverBudget {
        /// Where the oversized checkpoint lives.
        path: PathBuf,
        /// Size of the written file in bytes.
        bytes: u64,
        /// The store's configured byte budget it exceeds.
        budget: u64,
    },
    /// The checkpoint was written but failed its verification readback;
    /// the file was deleted so it can never be resumed from. The run
    /// keeps going — a rejected rewind point is a warning, not an
    /// abort.
    Rejected {
        /// Where the rejected file briefly lived.
        path: PathBuf,
        /// Why the readback failed.
        reason: String,
    },
}

/// A directory of checkpoints with atomic writes, verified readback and
/// keep-the-newest-K retention.
///
/// Files are named `<prefix>_step<NNNNNNNNNN>.ckpt` (step number, zero
/// padded so lexicographic order is step order). [`CheckpointStore::save`]
/// writes through the atomic [`Checkpoint::write_to`] path, re-reads and
/// fully re-parses the file (magic, version, CRC, shape against the
/// embedded deck), and only then prunes older checkpoints down to the
/// retention budget — a bad write can therefore never evict a good
/// rewind point. [`CheckpointStore::latest_valid`] walks the files
/// newest-first and returns the first that parses, skipping corrupt
/// ones.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    prefix: String,
    keep: usize,
    max_total_bytes: Option<u64>,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on first save), keeping the
    /// newest `keep` checkpoints (clamped to at least 1).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>, keep: usize) -> Self {
        CheckpointStore {
            dir: dir.into(),
            prefix: prefix.into(),
            keep: keep.max(1),
            max_total_bytes: None,
        }
    }

    /// Additionally cap the store's total on-disk size: retention keeps
    /// the newest checkpoints while they fit in **both** the keep-K
    /// count and this byte budget, evicting oldest-first. The newest
    /// checkpoint always survives, even alone over budget — the save
    /// then reports [`SaveOutcome::WrittenOverBudget`] instead of
    /// silently breaking the quota. This is what keeps a draining
    /// server's emergency checkpoints from filling the disk.
    #[must_use]
    pub fn max_total_bytes(mut self, budget: u64) -> Self {
        self.max_total_bytes = Some(budget);
        self
    }

    /// The configured byte budget, if any.
    #[must_use]
    pub fn byte_budget(&self) -> Option<u64> {
        self.max_total_bytes
    }

    /// The directory this store writes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Retention budget: how many checkpoints survive a save.
    #[must_use]
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// The file path a given step's checkpoint lives at.
    #[must_use]
    pub fn path_for(&self, step: u64) -> PathBuf {
        self.dir
            .join(format!("{}_step{step:010}.ckpt", self.prefix))
    }

    /// Atomically write `ckpt`, verify it by reading it back, then
    /// prune older checkpoints beyond the retention budget.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be created or
    /// the atomic write itself fails. A checkpoint that *writes* but
    /// fails verification is not an error: the file is deleted and
    /// [`SaveOutcome::Rejected`] reports why.
    pub fn save(&self, ckpt: &Checkpoint) -> std::result::Result<SaveOutcome, CheckpointError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| CheckpointError::Io {
            path: self.dir.display().to_string(),
            message: e.to_string(),
        })?;
        let path = self.path_for(ckpt.snap.steps);
        ckpt.write_to(&path)?;
        // Trust nothing until the file on disk proves it can be resumed
        // from: full re-parse, not just a byte compare.
        if let Err(e) = Checkpoint::read_from(&path) {
            let _ = std::fs::remove_file(&path);
            return Ok(SaveOutcome::Rejected {
                path,
                reason: e.to_string(),
            });
        }
        // Only a verified write earns the right to evict older files.
        // Newest-first, a file survives while it fits in both the
        // keep-K count and the byte budget; the just-written file
        // always survives (a quota must never delete the only rewind
        // point).
        let mut kept = 0usize;
        let mut kept_bytes = 0u64;
        for (_, old) in self.list().into_iter().rev() {
            let size = std::fs::metadata(&old).map_or(0, |m| m.len());
            let survives = old == path
                || (kept < self.keep
                    && self
                        .max_total_bytes
                        .is_none_or(|budget| kept_bytes + size <= budget));
            if survives {
                kept += 1;
                kept_bytes += size;
            } else {
                let _ = std::fs::remove_file(&old);
            }
        }
        if let Some(budget) = self.max_total_bytes {
            let bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
            if bytes > budget {
                return Ok(SaveOutcome::WrittenOverBudget {
                    path,
                    bytes,
                    budget,
                });
            }
        }
        Ok(SaveOutcome::Written(path))
    }

    /// Every checkpoint file currently in the store, as `(step, path)`
    /// sorted ascending by step. Files that do not match this store's
    /// naming scheme are ignored (the directory may be shared).
    #[must_use]
    pub fn list(&self) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name().into_string().ok()?;
                let stem = name
                    .strip_prefix(&self.prefix)?
                    .strip_prefix("_step")?
                    .strip_suffix(".ckpt")?;
                Some((stem.parse::<u64>().ok()?, entry.path()))
            })
            .collect();
        out.sort();
        out
    }

    /// The newest checkpoint that still parses (magic, version, CRC,
    /// shape), skipping — not deleting — any that do not. `None` when
    /// the store holds no valid checkpoint at all.
    #[must_use]
    pub fn latest_valid(&self) -> Option<(u64, Checkpoint)> {
        self.list()
            .into_iter()
            .rev()
            .find_map(|(step, path)| Some((step, Checkpoint::read_from(&path).ok()?)))
    }
}

// ---------------------------------------------------------------------------
// AutoCheckpoint: periodic rewind points as an observer.

/// An [`Observer`] that checkpoints the running simulation into a
/// [`CheckpointStore`] every `every` steps (and once more at run end).
///
/// The observer needs the [`InputDeck`] that rebuilds the problem —
/// checkpoints are self-describing — so it is constructed with one.
/// Saves that fail their verification readback are **skipped with a
/// recorded warning** (see [`AutoCheckpoint::warnings`]), never an
/// abort: a sick disk must not kill a healthy run. Under distributed
/// executors the per-rank observer views are partition pieces, not the
/// global problem, so the observer records one warning and stands down
/// — distributed runs get their rewind points from
/// [`Simulation::run_resilient`]'s segment boundaries instead.
///
/// Wrap in [`crate::Shared`] and keep a clone to inspect
/// [`AutoCheckpoint::written`]/[`AutoCheckpoint::warnings`] after the
/// run.
#[derive(Debug)]
pub struct AutoCheckpoint {
    store: CheckpointStore,
    every: usize,
    min_interval: Option<Duration>,
    input: InputDeck,
    last_write: Option<std::time::Instant>,
    written: Vec<PathBuf>,
    warnings: Vec<String>,
    stood_down: bool,
}

impl AutoCheckpoint {
    /// Checkpoint through `store` every `every` steps (clamped to at
    /// least 1); `input` is the deck a resume rebuilds the problem
    /// from.
    #[must_use]
    pub fn new(store: CheckpointStore, every: usize, input: InputDeck) -> Self {
        AutoCheckpoint {
            store,
            every: every.max(1),
            min_interval: None,
            input,
            last_write: None,
            written: Vec::new(),
            warnings: Vec::new(),
            stood_down: false,
        }
    }

    /// Additionally rate-limit writes in wall time: a step that is due
    /// by count is skipped while the last write is younger than
    /// `interval`. (The *step* cadence is deterministic; this throttle
    /// only thins it for runs whose steps are much cheaper than their
    /// checkpoints.)
    #[must_use]
    pub fn min_interval(mut self, interval: Duration) -> Self {
        self.min_interval = Some(interval);
        self
    }

    /// Paths of every checkpoint written (and verified) so far.
    #[must_use]
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    /// Warnings recorded so far: rejected readbacks, I/O failures, a
    /// distributed stand-down. Warnings never abort the run.
    #[must_use]
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The store this observer writes through.
    #[must_use]
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    fn save(&mut self, view: &StepView<'_>, step: usize) {
        if view.n_ranks > 1 {
            if !self.stood_down {
                self.warnings.push(
                    "auto-checkpoint: distributed observer views are partition pieces; \
                     standing down (use Simulation::run_resilient for distributed rewind points)"
                        .into(),
                );
                self.stood_down = true;
            }
            return;
        }
        if let (Some(interval), Some(last)) = (self.min_interval, self.last_write) {
            if last.elapsed() < interval {
                return;
            }
        }
        let snap = Snapshot::capture(
            view.mesh,
            view.state,
            view.time,
            step as u64,
            (view.dt > 0.0).then_some(view.dt),
        );
        let ckpt = Checkpoint {
            input: self.input.clone(),
            snap,
        };
        match self.store.save(&ckpt) {
            Ok(SaveOutcome::Written(path)) => {
                self.last_write = Some(std::time::Instant::now());
                if !self.written.contains(&path) {
                    self.written.push(path);
                }
            }
            Ok(SaveOutcome::WrittenOverBudget {
                path,
                bytes,
                budget,
            }) => {
                self.last_write = Some(std::time::Instant::now());
                self.warnings.push(format!(
                    "auto-checkpoint: step {step}: {} is {bytes} B, over the \
                     store's {budget} B budget",
                    path.display()
                ));
                if !self.written.contains(&path) {
                    self.written.push(path);
                }
            }
            Ok(SaveOutcome::Rejected { path, reason }) => self.warnings.push(format!(
                "auto-checkpoint: skipped step {step}: {} failed readback: {reason}",
                path.display()
            )),
            Err(e) => self
                .warnings
                .push(format!("auto-checkpoint: skipped step {step}: {e}")),
        }
    }
}

impl Observer for AutoCheckpoint {
    fn step_end(&mut self, view: &StepView<'_>) {
        if (view.step + 1).is_multiple_of(self.every) {
            self.save(view, view.step + 1);
        }
    }

    fn run_end(&mut self, view: &StepView<'_>) {
        // The final state is always worth a rewind point, whatever the
        // step cadence says (idempotent when it coincides with one).
        self.save(view, view.step);
    }
}

// ---------------------------------------------------------------------------
// Supervised recovery.

/// How the executor reshapes when a retry follows a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshapePolicy {
    /// Retry on the same executor shape.
    Keep,
    /// Halve the rank count on each retry (never below one rank) —
    /// the "a node died, run on what's left" policy.
    Halve,
    /// Switch to this exact executor for every retry.
    To(ExecutorKind),
}

impl ReshapePolicy {
    /// The executor shape a retry should use, given the one that
    /// failed.
    #[must_use]
    pub fn apply(self, current: ExecutorKind) -> ExecutorKind {
        match self {
            ReshapePolicy::Keep => current,
            ReshapePolicy::To(kind) => kind,
            ReshapePolicy::Halve => match current {
                ExecutorKind::Serial => ExecutorKind::Serial,
                ExecutorKind::FlatMpi { ranks } => ExecutorKind::FlatMpi {
                    ranks: (ranks / 2).max(1),
                },
                ExecutorKind::Hybrid {
                    ranks,
                    threads_per_rank,
                } => ExecutorKind::Hybrid {
                    ranks: (ranks / 2).max(1),
                    threads_per_rank,
                },
            },
        }
    }
}

/// How [`Simulation::run_resilient`] supervises a run.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Directory the supervisor's [`CheckpointStore`] writes into.
    pub dir: PathBuf,
    /// Retention budget for segment checkpoints (newest K survive).
    pub keep: usize,
    /// Segment length: checkpoint every this many steps. `0` means a
    /// single unsegmented attempt (still retried from the start).
    pub checkpoint_every_steps: usize,
    /// How many failed attempts the supervisor absorbs before giving
    /// up and returning the last error.
    pub max_retries: usize,
    /// Base backoff slept before a retry; doubles per consecutive
    /// failure, capped at five seconds. Pure supervision — it never
    /// appears in the recovery log.
    pub backoff: Duration,
    /// Executor reshaping applied on each retry.
    pub reshape: ReshapePolicy,
    /// Wall-clock deadline for the whole supervised run. `None`
    /// (default) never fires. When set, it is merged (earliest wins)
    /// into [`crate::RunConfig::deadline`] for the duration of the
    /// supervision, and the retry backoff becomes deadline-aware: a
    /// backoff that would sleep past the deadline returns a typed
    /// [`BookLeafError::DeadlineExceeded`] immediately instead.
    pub deadline: Option<std::time::Instant>,
}

impl RecoveryPolicy {
    /// A policy checkpointing into `dir`, with defaults: keep 2,
    /// checkpoint every 50 steps, 3 retries, 10 ms base backoff, no
    /// reshaping.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RecoveryPolicy {
            dir: dir.into(),
            keep: 2,
            checkpoint_every_steps: 50,
            max_retries: 3,
            backoff: Duration::from_millis(10),
            reshape: ReshapePolicy::Keep,
            deadline: None,
        }
    }

    /// Set the retention budget.
    #[must_use]
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Set the segment length in steps.
    #[must_use]
    pub fn checkpoint_every_steps(mut self, steps: usize) -> Self {
        self.checkpoint_every_steps = steps;
        self
    }

    /// Set the retry budget.
    #[must_use]
    pub fn max_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Set the base backoff.
    #[must_use]
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Set the reshape policy.
    #[must_use]
    pub fn reshape(mut self, reshape: ReshapePolicy) -> Self {
        self.reshape = reshape;
        self
    }

    /// Set a wall-clock deadline for the whole supervised run (see the
    /// [`RecoveryPolicy::deadline`] field).
    #[must_use]
    pub fn deadline(mut self, at: std::time::Instant) -> Self {
        self.deadline = Some(at);
        self
    }
}

/// One supervised failure and the retry that answered it.
///
/// Every field is deterministic — attempt indices, step counts, the
/// typed error's text, the chosen executor — so logs from two runs of
/// the same seeded fault schedule compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The attempt index that failed (the builder's starting attempt
    /// for the first failure, incrementing per retry).
    pub attempt: usize,
    /// The step the retry rewound to (the last good checkpoint's step
    /// count; the run's starting step when nothing was checkpointed
    /// yet).
    pub from_step: usize,
    /// The typed error, rendered. [`bookleaf_util::CommError`] and the
    /// sentinel diagnoses carry no wall-clock fields, so this text is
    /// stable across runs.
    pub error: String,
    /// The executor shape the retry ran on.
    pub retry_executor: ExecutorKind,
}

/// The supervisor's account of a resilient run; carried on
/// [`RunReport::recovery`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    /// One entry per absorbed failure, in order.
    pub events: Vec<RecoveryEvent>,
    /// Steps re-executed after rewinds, summed over the events whose
    /// error names the step it struck at (a scheduled rank death does;
    /// a timeout observed by a surviving rank cannot know how far the
    /// dead rank got, and is not guessed at).
    pub steps_replayed: usize,
    /// Non-fatal supervision warnings (e.g. a segment checkpoint that
    /// failed its verification readback and was skipped).
    pub warnings: Vec<String>,
}

impl RecoveryLog {
    /// How many retries the supervisor performed.
    #[must_use]
    pub fn retries(&self) -> usize {
        self.events.len()
    }

    /// Did the run complete without absorbing any fault?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.events.is_empty()
    }
}

impl Simulation {
    /// Run to the configured final time under supervision: segmented
    /// execution with checkpoints at segment boundaries, and — on any
    /// typed failure — rewind to the last good checkpoint, optional
    /// executor reshape, bounded backoff, and retry within
    /// `policy.max_retries`.
    ///
    /// The returned report's [`RunReport::recovery`] log records every
    /// absorbed fault deterministically (see [`RecoveryLog`]). A
    /// recovered run continues the *same trajectory*: segment
    /// checkpoints capture the full restart state, so replaying a
    /// segment from one reproduces the uninterrupted run bitwise on the
    /// same executor shape, and to solver tolerance across shapes.
    ///
    /// Requires a checkpointable deck (one built from a problem spec or
    /// an input deck — the same constraint as
    /// [`Simulation::checkpoint`]).
    ///
    /// # Errors
    ///
    /// The last attempt's error once the retry budget is exhausted, or
    /// any checkpoint-store I/O error (failing to write a rewind point
    /// is itself a fault the supervisor cannot absorb). When
    /// [`RecoveryPolicy::deadline`] (or the simulation's own
    /// [`crate::RunConfig::deadline`]) is set, a segment that outlives
    /// it — or a retry backoff that would sleep past it — returns a
    /// typed [`BookLeafError::DeadlineExceeded`] instead of running or
    /// sleeping on.
    pub fn run_resilient(&mut self, policy: &RecoveryPolicy) -> Result<RunReport> {
        let store = CheckpointStore::new(&policy.dir, "auto", policy.keep);
        let goal_time = self.config().final_time;
        let goal_steps = self.config().max_steps;
        let base_attempt = self.typhon.attempt;
        // Merge the policy deadline into the run config (earliest
        // wins): the running segments abort symmetrically on it, and
        // the backoff below refuses to sleep past it.
        let base_deadline = self.config().deadline;
        let deadline = match (base_deadline, policy.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.config_mut().deadline = deadline;
        let mut log = RecoveryLog::default();
        let mut failures = 0usize;
        // The rewind target that predates the first segment boundary:
        // the initial (or builder-resumed) state. Held in memory only —
        // it is not a file the retention budget should count.
        let initial = self.checkpoint()?;
        let mut last_good: Option<Checkpoint> = None;
        loop {
            let seg_start = self.cursor().steps;
            let cap = if policy.checkpoint_every_steps == 0 {
                goal_steps
            } else {
                goal_steps.min(seg_start + policy.checkpoint_every_steps)
            };
            self.config_mut().max_steps = cap;
            self.typhon.attempt = base_attempt + failures;
            let result = self.run();
            self.config_mut().max_steps = goal_steps;
            match result {
                Ok(mut report) => {
                    let done = report.steps >= goal_steps || report.time >= goal_time - 1e-15;
                    let ckpt = self.checkpoint()?;
                    match store.save(&ckpt)? {
                        SaveOutcome::Written(_) => {}
                        SaveOutcome::WrittenOverBudget {
                            path,
                            bytes,
                            budget,
                        } => log.warnings.push(format!(
                            "segment checkpoint at step {}: {} is {bytes} B, over the \
                             store's {budget} B budget",
                            ckpt.snap.steps,
                            path.display()
                        )),
                        SaveOutcome::Rejected { path, reason } => log.warnings.push(format!(
                            "segment checkpoint at step {} skipped: {} failed readback: {reason}",
                            ckpt.snap.steps,
                            path.display()
                        )),
                    }
                    // The next segment (and any rewind-free retry of a
                    // distributed run) resumes from here.
                    self.prime_resume(&ckpt.snap);
                    last_good = Some(ckpt);
                    if done {
                        self.typhon.attempt = base_attempt;
                        self.config_mut().deadline = base_deadline;
                        report.recovery = log;
                        return Ok(report);
                    }
                }
                Err(err) => {
                    if failures >= policy.max_retries {
                        self.typhon.attempt = base_attempt;
                        self.config_mut().deadline = base_deadline;
                        return Err(err);
                    }
                    let target = last_good.as_ref().unwrap_or(&initial);
                    let from_step = target.snap.steps as usize;
                    if let BookLeafError::CommFault(CommError::Killed { step, .. }) = &err {
                        log.steps_replayed += step.saturating_sub(from_step);
                    }
                    let retry_executor = policy.reshape.apply(self.config().executor);
                    log.events.push(RecoveryEvent {
                        attempt: base_attempt + failures,
                        from_step,
                        error: err.to_string(),
                        retry_executor,
                    });
                    // Bounded exponential backoff: pure supervision
                    // wall time, never recorded anywhere. A backoff
                    // that would sleep past the deadline gives up now
                    // with the typed error the sleep would earn anyway.
                    let exp = u32::try_from(failures.min(8)).unwrap_or(8);
                    let delay = policy
                        .backoff
                        .checked_mul(1 << exp)
                        .unwrap_or(Duration::from_secs(5))
                        .min(Duration::from_secs(5));
                    if let Some(at) = deadline {
                        if std::time::Instant::now() + delay >= at {
                            self.typhon.attempt = base_attempt;
                            self.config_mut().deadline = base_deadline;
                            return Err(BookLeafError::DeadlineExceeded {
                                step: self.cursor().steps,
                            });
                        }
                    }
                    std::thread::sleep(delay);
                    failures += 1;
                    self.config_mut().executor = retry_executor;
                    let snap = target.snap.clone();
                    self.rewind_to(&snap)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decks;
    use crate::input::ProblemSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bookleaf_resilience_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn noh_checkpoint(step: u64) -> Checkpoint {
        let mut sim = Simulation::builder()
            .deck(decks::noh(8))
            .final_time(1.0)
            .max_steps(step as usize)
            .build()
            .unwrap();
        sim.run().unwrap();
        let ckpt = sim.checkpoint().unwrap();
        assert_eq!(ckpt.snap.steps, step);
        ckpt
    }

    #[test]
    fn store_names_are_step_ordered() {
        let store = CheckpointStore::new("/tmp/x", "auto", 2);
        let a = store.path_for(7);
        let b = store.path_for(1234);
        assert!(a.to_string_lossy() < b.to_string_lossy());
        assert!(a.to_string_lossy().ends_with("auto_step0000000007.ckpt"));
    }

    #[test]
    fn retention_keeps_exactly_the_newest_k_valid_files() {
        let dir = tmp_dir("retention");
        let store = CheckpointStore::new(&dir, "auto", 2);
        for step in [2u64, 4, 6] {
            assert!(matches!(
                store.save(&noh_checkpoint(step)).unwrap(),
                SaveOutcome::Written(_)
            ));
        }
        let listed = store.list();
        assert_eq!(
            listed.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![4, 6],
            "K = 2 must keep exactly the two newest"
        );
        for (_, path) in &listed {
            Checkpoint::read_from(path).unwrap();
        }
        let (step, latest) = store.latest_valid().unwrap();
        assert_eq!(step, 6);
        assert_eq!(latest.snap.steps, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_oldest_first() {
        let dir = tmp_dir("byte_budget");
        // Learn one checkpoint's on-disk size, then budget for ~1.5 of
        // them: keep-K alone would retain three, the byte budget must
        // trim that to the newest one.
        let probe = CheckpointStore::new(&dir, "probe", 1);
        let SaveOutcome::Written(path) = probe.save(&noh_checkpoint(2)).unwrap() else {
            panic!("probe write rejected");
        };
        let one = std::fs::metadata(&path).unwrap().len();
        let _ = std::fs::remove_file(&path);

        let store = CheckpointStore::new(&dir, "auto", 3).max_total_bytes(one + one / 2);
        for step in [2u64, 4, 6] {
            assert!(matches!(
                store.save(&noh_checkpoint(step)).unwrap(),
                SaveOutcome::Written(_)
            ));
        }
        assert_eq!(
            store.list().iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![6],
            "byte budget must evict oldest-first down to the newest"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_over_budget_checkpoint_survives_with_typed_warning() {
        let dir = tmp_dir("over_budget");
        let store = CheckpointStore::new(&dir, "auto", 3).max_total_bytes(16);
        match store.save(&noh_checkpoint(2)).unwrap() {
            SaveOutcome::WrittenOverBudget {
                path,
                bytes,
                budget,
            } => {
                assert!(path.exists(), "the only rewind point must survive");
                assert!(bytes > budget);
                assert_eq!(budget, 16);
            }
            other => panic!("expected WrittenOverBudget, got {other:?}"),
        }
        // And it still resumes.
        let (step, _) = store.latest_valid().unwrap();
        assert_eq!(step, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_never_sleeps_past_the_deadline() {
        use bookleaf_typhon::FaultPlan;
        let dir = tmp_dir("deadline");
        let mut sim = Simulation::builder()
            .deck(decks::noh(8))
            .executor(ExecutorKind::FlatMpi { ranks: 2 })
            .final_time(1.0)
            .max_steps(10)
            .fault_plan(FaultPlan::new(7).kill(3, 1))
            .comm_timeout(Duration::from_millis(300))
            .build()
            .unwrap();
        // A backoff of a minute against a deadline milliseconds away:
        // the supervisor must return the typed error immediately
        // instead of sleeping.
        let policy = RecoveryPolicy::new(&dir)
            .max_retries(3)
            .backoff(Duration::from_secs(60))
            .deadline(std::time::Instant::now() + Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        let err = sim.run_resilient(&policy).unwrap_err();
        assert!(
            matches!(err, BookLeafError::DeadlineExceeded { .. }),
            "{err}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "must not sleep the full backoff"
        );
        // Supervision must restore the run's own (unset) deadline.
        assert!(sim.config().deadline.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_skips_a_corrupt_newest_file() {
        let dir = tmp_dir("skip_corrupt");
        let store = CheckpointStore::new(&dir, "auto", 3);
        store.save(&noh_checkpoint(2)).unwrap();
        store.save(&noh_checkpoint(4)).unwrap();
        // Corrupt the newest file in place (flip a payload byte; the
        // CRC trailer catches it).
        let newest = store.path_for(4);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let (step, ckpt) = store.latest_valid().unwrap();
        assert_eq!(step, 2, "corrupt newest must be skipped, not trusted");
        assert_eq!(ckpt.snap.steps, 2);
        // The corrupt file is skipped, not deleted: forensics matter.
        assert!(newest.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_failure_is_a_typed_error_and_leaves_no_file() {
        let dir = tmp_dir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("blocked.ckpt");
        // A directory squatting on the temporary path forces the
        // injected write failure.
        std::fs::create_dir_all(dir.join("blocked.ckpt.tmp")).unwrap();
        let err = noh_checkpoint(2).write_to(&target).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "{err}");
        assert!(!target.exists(), "failed write must not publish a file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_but_never_truncates() {
        let dir = tmp_dir("replace");
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("state.ckpt");
        noh_checkpoint(2).write_to(&target).unwrap();
        let first = std::fs::read(&target).unwrap();
        noh_checkpoint(4).write_to(&target).unwrap();
        let second = std::fs::read(&target).unwrap();
        assert_ne!(first, second);
        assert_eq!(Checkpoint::read_from(&target).unwrap().snap.steps, 4);
        assert!(
            !dir.join("state.ckpt.tmp").exists(),
            "temporary must not linger"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_writes_on_cadence_and_retains_k() {
        let dir = tmp_dir("auto");
        let store = CheckpointStore::new(&dir, "noh", 2);
        let auto = crate::Shared::new(AutoCheckpoint::new(
            store.clone(),
            3,
            InputDeck::new(ProblemSpec::Noh { n: 8 }),
        ));
        let mut sim = Simulation::builder()
            .deck(decks::noh(8))
            .final_time(1.0)
            .max_steps(10)
            .observer(auto.clone())
            .build()
            .unwrap();
        sim.run().unwrap();
        // Cadence 3 over 10 steps → steps 3, 6, 9 plus the final step
        // 10; retention 2 keeps only the newest two on disk.
        assert_eq!(auto.with(|a| a.written().len()), 4);
        assert!(auto.with(|a| a.warnings().is_empty()));
        let steps: Vec<u64> = store.list().into_iter().map(|(s, _)| s).collect();
        assert_eq!(steps, vec![9, 10]);
        // And the newest one resumes.
        let (_, ckpt) = store.latest_valid().unwrap();
        let mut resumed = Simulation::builder()
            .resume_from(ckpt)
            .max_steps(10)
            .build()
            .unwrap();
        assert_eq!(resumed.run().unwrap().steps, 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_is_bitwise_invisible() {
        let dir = tmp_dir("invisible");
        let run = |observed: bool| {
            let mut b = Simulation::builder().deck(decks::noh(8)).final_time(0.05);
            if observed {
                b = b.observer(AutoCheckpoint::new(
                    CheckpointStore::new(&dir, "inv", 2),
                    2,
                    InputDeck::new(ProblemSpec::Noh { n: 8 }),
                ));
            }
            let mut sim = b.build().unwrap();
            sim.run().unwrap();
            sim.state().rho.clone()
        };
        let plain = run(false);
        let watched = run(true);
        for (e, (a, b)) in plain.iter().zip(&watched).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "auto-checkpoint moved a bit at {e}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_skips_unwritable_store_with_a_warning() {
        let dir = tmp_dir("unwritable");
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(&dir, "bad", 2);
        // Squat a directory on every path the observer will try, so the
        // atomic rename fails (cannot rename a file over a directory).
        for step in [2u64, 4] {
            std::fs::create_dir_all(store.path_for(step)).unwrap();
        }
        let auto = crate::Shared::new(AutoCheckpoint::new(
            store,
            2,
            InputDeck::new(ProblemSpec::Noh { n: 8 }),
        ));
        let mut sim = Simulation::builder()
            .deck(decks::noh(8))
            .final_time(1.0)
            .max_steps(4)
            .observer(auto.clone())
            .build()
            .unwrap();
        // The run itself must complete: checkpoint trouble is a
        // warning, never an abort.
        assert_eq!(sim.run().unwrap().steps, 4);
        assert!(auto.with(|a| !a.warnings().is_empty()));
        assert_eq!(auto.with(|a| a.written().len()), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reshape_policies_compose() {
        let four = ExecutorKind::FlatMpi { ranks: 4 };
        assert_eq!(ReshapePolicy::Keep.apply(four), four);
        assert_eq!(
            ReshapePolicy::Halve.apply(four),
            ExecutorKind::FlatMpi { ranks: 2 }
        );
        assert_eq!(
            ReshapePolicy::Halve.apply(ExecutorKind::FlatMpi { ranks: 1 }),
            ExecutorKind::FlatMpi { ranks: 1 }
        );
        assert_eq!(
            ReshapePolicy::Halve.apply(ExecutorKind::Hybrid {
                ranks: 4,
                threads_per_rank: 2
            }),
            ExecutorKind::Hybrid {
                ranks: 2,
                threads_per_rank: 2
            }
        );
        assert_eq!(
            ReshapePolicy::To(ExecutorKind::Serial).apply(four),
            ExecutorKind::Serial
        );
    }

    #[test]
    fn resilient_run_without_faults_is_clean_and_matches_plain() {
        let dir = tmp_dir("clean");
        let mut plain = Simulation::builder()
            .deck(decks::noh(8))
            .final_time(0.05)
            .build()
            .unwrap();
        plain.run().unwrap();

        let mut supervised = Simulation::builder()
            .deck(decks::noh(8))
            .final_time(0.05)
            .build()
            .unwrap();
        let policy = RecoveryPolicy::new(&dir).checkpoint_every_steps(7);
        let report = supervised.run_resilient(&policy).unwrap();
        assert!(report.recovery.clean());
        assert_eq!(report.recovery.steps_replayed, 0);
        assert!((report.time - 0.05).abs() < 1e-12);
        // Segmented execution with checkpoint round-trips must not
        // perturb the serial trajectory.
        for (e, (a, b)) in plain
            .state()
            .rho
            .iter()
            .zip(&supervised.state().rho)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "segmenting moved a bit at {e}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
