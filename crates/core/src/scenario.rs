//! Generic scenario decks: meshes, regions, materials and boundary
//! conditions as *data*.
//!
//! The source paper drives every BookLeaf experiment through an input
//! deck — the binary is fixed, the scenario is a text file. This module
//! is the typed form of that vocabulary: a [`GenericSpec`] describes a
//! rectangular mesh ([`MeshSpec`]), a list of named materials mapping
//! onto the [`EosSpec`] menu ([`NamedMaterial`]), a list of named
//! regions each carrying a spatial predicate ([`Shape`]) plus initial
//! fields and a material reference ([`RegionSpec`]), and the boundary
//! conditions as data ([`BoundarySpec`]). `GenericSpec::build`
//! assembles the runtime [`Deck`] — the same structure the five named
//! constructors in [`crate::decks`] produce; those constructors are
//! thin wrappers over this module, so a named deck and its generic
//! re-expression are **bitwise identical**.
//!
//! ## Region semantics
//!
//! Regions use painter (first-match-wins) semantics in declaration
//! order: every element takes the first region whose predicate contains
//! its (undistorted) centroid, and every node's initial velocity comes
//! from the first region containing the node. Two typed errors police
//! the layering: an element covered by *no* region fails with the
//! element's centroid named, and a region whose every covered element
//! was claimed by *earlier* regions is rejected as fully shadowed —
//! the overlap class of mistakes surfaces as shadowing, not silent
//! precedence. A region too small to catch any centroid at the mesh's
//! resolution is legal (the underwater bubble on a coarse mesh must
//! still build).
//!
//! ## Coordinate conventions
//!
//! * Element membership is decided at the element centroid of the
//!   *undistorted* mesh (the optional Saltzmann skew is applied after
//!   region assignment, matching the named Saltzmann constructor).
//! * `u_radial` is radial about the coordinate origin `(0, 0)`:
//!   `u = (p / |p|) · speed` (positive speed = outward), zero within
//!   `1e-12` of the origin.
//! * Region velocities are projected through the node's boundary
//!   constraints (a reflective wall zeroes the wall-normal component),
//!   so decks stay consistent with their own boundary conditions.
//!
//! The text grammar for these types lives in [`crate::input`]; the
//! five standard problems re-expressed in it are available through
//! [`generic_equivalent`].

use serde::{Deserialize, Serialize};

use bookleaf_eos::{EosSpec, MaterialTable};
use bookleaf_mesh::{generate_rect, saltzmann_distort, RectSpec};
use bookleaf_util::{DeckError, Vec2};

use crate::decks::{Deck, PistonSpec, COLD, SEDOV_ALPHA};
use crate::input::{ProblemSpec, MAX_MESH_DIM};

/// The mesh section of a generic deck: a rectangular domain
/// `[x0, x1] × [y0, y1]` meshed `nx × ny`, with an optional canonical
/// distortion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshSpec {
    /// Elements in x.
    pub nx: usize,
    /// Elements in y.
    pub ny: usize,
    /// Domain lower-left corner.
    pub origin: Vec2,
    /// Domain upper-right corner.
    pub extent: Vec2,
    /// Optional mesh distortion, applied after region assignment.
    pub skew: Option<SkewKind>,
}

impl MeshSpec {
    /// A unit-square mesh `n × n`, no skew.
    #[must_use]
    pub fn unit_square(n: usize) -> Self {
        MeshSpec {
            nx: n,
            ny: n,
            origin: Vec2::ZERO,
            extent: Vec2::new(1.0, 1.0),
            skew: None,
        }
    }

    /// Total element count (saturating, for admission checks).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.nx.saturating_mul(self.ny)
    }

    fn rect(&self) -> RectSpec {
        RectSpec {
            nx: self.nx,
            ny: self.ny,
            origin: self.origin,
            extent: self.extent,
        }
    }
}

/// Mesh distortions a deck can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkewKind {
    /// The canonical Saltzmann piston distortion
    /// ([`bookleaf_mesh::saltzmann_distort`]).
    Saltzmann,
}

/// A named material: a handle regions refer to, mapped onto the
/// [`EosSpec`] menu (ideal gas, Tait, JWL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedMaterial {
    /// The handle `[region.*]` sections reference.
    pub name: String,
    /// The equation of state.
    pub eos: EosSpec,
}

/// A spatial predicate selecting part of the domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Axis-aligned rectangle; contains `p` iff
    /// `x0 ≤ p.x ≤ x1 && y0 ≤ p.y ≤ y1`.
    Rect {
        /// Left edge.
        x0: f64,
        /// Bottom edge.
        y0: f64,
        /// Right edge.
        x1: f64,
        /// Top edge.
        y1: f64,
    },
    /// Disc; contains `p` iff `|p − (cx, cy)| ≤ r`.
    Circle {
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
        /// Radius.
        r: f64,
    },
    /// Half-plane; contains `p` iff
    /// `normal_x · p.x + normal_y · p.y ≤ offset`.
    HalfPlane {
        /// Normal x component.
        normal_x: f64,
        /// Normal y component.
        normal_y: f64,
        /// Signed offset along the normal.
        offset: f64,
    },
}

impl Shape {
    /// Whether the shape contains point `p` (boundary inclusive).
    #[must_use]
    pub fn contains(&self, p: Vec2) -> bool {
        match *self {
            Shape::Rect { x0, y0, x1, y1 } => p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1,
            Shape::Circle { cx, cy, r } => (p - Vec2::new(cx, cy)).norm() <= r,
            Shape::HalfPlane {
                normal_x,
                normal_y,
                offset,
            } => normal_x * p.x + normal_y * p.y <= offset,
        }
    }
}

/// How a region's specific internal energy is given.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnergyInit {
    /// Directly, as specific internal energy.
    Ein(f64),
    /// As a pressure, inverted through the region's material EoS
    /// (ideal gas and JWL only — Tait pressure is independent of
    /// energy, so a Tait region must give `ein`).
    Pressure(f64),
}

/// A region's initial velocity field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VelocityInit {
    /// Uniform velocity.
    Constant(Vec2),
    /// Radial about the coordinate origin: `u = (p/|p|) · speed`
    /// (positive = outward), zero within `1e-12` of the origin.
    Radial {
        /// Signed radial speed.
        speed: f64,
    },
}

/// One `[region.<name>]` section: a spatial predicate plus the initial
/// fields and material inside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Region name (for error messages and the text form).
    pub name: String,
    /// The spatial predicate (evaluated at undistorted centroids).
    pub shape: Shape,
    /// Name of the material filling the region.
    pub material: String,
    /// Initial density.
    pub rho: f64,
    /// Initial energy (direct or via pressure).
    pub energy: EnergyInit,
    /// Initial velocity.
    pub velocity: VelocityInit,
}

/// Boundary condition on one side of the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SideBc {
    /// Reflective wall: the wall-normal velocity component is pinned
    /// to zero (the default on every side).
    Reflective,
    /// Free: the wall constraint is released.
    Free,
    /// Driven wall: nodes keep their tangential constraint but are
    /// driven at the deck's piston velocity.
    Piston,
}

/// The `[boundary]` section: one condition per side, plus the piston
/// velocity when a side is driven. At most one side may be a piston.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundarySpec {
    /// Condition on `x = x0`.
    pub left: SideBc,
    /// Condition on `x = x1`.
    pub right: SideBc,
    /// Condition on `y = y0`.
    pub bottom: SideBc,
    /// Condition on `y = y1`.
    pub top: SideBc,
    /// Imposed velocity of the piston side; `Some` iff a side is
    /// [`SideBc::Piston`].
    pub piston_u: Option<Vec2>,
}

impl Default for BoundarySpec {
    /// All four walls reflective, no piston — what
    /// [`bookleaf_mesh::generate_rect`] produces unmodified.
    fn default() -> Self {
        BoundarySpec {
            left: SideBc::Reflective,
            right: SideBc::Reflective,
            bottom: SideBc::Reflective,
            top: SideBc::Reflective,
            piston_u: None,
        }
    }
}

impl BoundarySpec {
    fn sides(&self) -> [(&'static str, SideBc); 4] {
        [
            ("left", self.left),
            ("right", self.right),
            ("bottom", self.bottom),
            ("top", self.top),
        ]
    }
}

/// A fully generic scenario: mesh, materials, regions and boundary
/// conditions as data. The typed form of a `[mesh]`-style text deck
/// (see [`crate::input`] for the grammar) and the substrate the five
/// named constructors in [`crate::decks`] are built on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenericSpec {
    /// Scenario name (reports, error messages); defaults to
    /// `"generic"` in the text form.
    pub name: String,
    /// The mesh.
    pub mesh: MeshSpec,
    /// Named materials, in declaration order (the order fixes the
    /// region/material ids the mesh and [`MaterialTable`] use).
    pub materials: Vec<NamedMaterial>,
    /// Regions, in declaration order (first match wins).
    pub regions: Vec<RegionSpec>,
    /// Boundary conditions.
    pub boundary: BoundarySpec,
}

/// `[A-Za-z0-9_-]+` — the charset deck/material/region names must use
/// so section headers like `[material.<name>]` stay parseable.
pub(crate) fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Where in a [`GenericSpec`] a validation error is anchored; the text
/// parser maps these back to source lines, programmatic construction
/// falls back to unanchored [`DeckError::Config`].
pub(crate) type LineOf<'a> = &'a dyn Fn(&str, &str) -> Option<usize>;

impl GenericSpec {
    /// A minimal valid spec: one ideal-gas material filling the whole
    /// domain at rest. A convenient starting point for programmatic
    /// construction (and the fuzzer's guaranteed-coverage base).
    #[must_use]
    pub fn uniform(name: &str, mesh: MeshSpec, eos: EosSpec, rho: f64, ein: f64) -> Self {
        let whole = Shape::Rect {
            x0: mesh.origin.x,
            y0: mesh.origin.y,
            x1: mesh.extent.x,
            y1: mesh.extent.y,
        };
        GenericSpec {
            name: name.to_string(),
            mesh,
            materials: vec![NamedMaterial {
                name: "mat".into(),
                eos,
            }],
            regions: vec![RegionSpec {
                name: "all".into(),
                shape: whole,
                material: "mat".into(),
                rho,
                energy: EnergyInit::Ein(ein),
                velocity: VelocityInit::Constant(Vec2::ZERO),
            }],
            boundary: BoundarySpec::default(),
        }
    }

    /// Spec-level validation: mesh dimensions and extents, material
    /// names and EoS parameters, region names, material references,
    /// physical initial fields, shape geometry and boundary
    /// consistency. Mesh-dependent checks (element coverage, shadowed
    /// regions) happen in [`GenericSpec::build`].
    pub fn validate(&self) -> Result<(), DeckError> {
        self.validate_anchored(&|_, _| None)
    }

    /// [`GenericSpec::validate`] with a source-line lookup, so the
    /// text parser can anchor value errors to the offending line.
    pub(crate) fn validate_anchored(&self, line_of: LineOf<'_>) -> Result<(), DeckError> {
        let err = |section: &str, key: &str, message: String| match line_of(section, key) {
            Some(line) => Err(DeckError::Text { line, message }),
            None => Err(DeckError::Config { message }),
        };
        if !is_ident(&self.name) {
            return err(
                "",
                "name",
                format!("deck name `{}` must be non-empty [A-Za-z0-9_-]", self.name),
            );
        }
        let m = &self.mesh;
        for (key, v) in [("nx", m.nx), ("ny", m.ny)] {
            if v == 0 || v > MAX_MESH_DIM {
                return err(
                    "mesh",
                    key,
                    format!("mesh dimension {key} = {v} out of range 1..={MAX_MESH_DIM}"),
                );
            }
        }
        for (key, v) in [
            ("x0", m.origin.x),
            ("y0", m.origin.y),
            ("x1", m.extent.x),
            ("y1", m.extent.y),
        ] {
            if !v.is_finite() {
                return err("mesh", key, format!("mesh `{key}` must be finite, got {v}"));
            }
        }
        if m.extent.x <= m.origin.x {
            return err(
                "mesh",
                "x1",
                format!("mesh needs x1 > x0, got [{}, {}]", m.origin.x, m.extent.x),
            );
        }
        if m.extent.y <= m.origin.y {
            return err(
                "mesh",
                "y1",
                format!("mesh needs y1 > y0, got [{}, {}]", m.origin.y, m.extent.y),
            );
        }
        if self.materials.is_empty() {
            return err(
                "mesh",
                "nx",
                "a generic deck needs at least one [material.<name>] section".into(),
            );
        }
        for (i, mat) in self.materials.iter().enumerate() {
            let sec = format!("material.{}", mat.name);
            if !is_ident(&mat.name) {
                return err(
                    &sec,
                    "eos",
                    format!(
                        "material name `{}` must be non-empty [A-Za-z0-9_-]",
                        mat.name
                    ),
                );
            }
            if self.materials[..i].iter().any(|m| m.name == mat.name) {
                return err(&sec, "eos", format!("duplicate material `{}`", mat.name));
            }
            validate_eos(&mat.eos, &mat.name, &sec, &err)?;
        }
        if self.regions.is_empty() {
            return err(
                "mesh",
                "nx",
                "a generic deck needs at least one [region.<name>] section".into(),
            );
        }
        for (i, reg) in self.regions.iter().enumerate() {
            let sec = format!("region.{}", reg.name);
            if !is_ident(&reg.name) {
                return err(
                    &sec,
                    "shape",
                    format!("region name `{}` must be non-empty [A-Za-z0-9_-]", reg.name),
                );
            }
            if self.regions[..i].iter().any(|r| r.name == reg.name) {
                return err(&sec, "shape", format!("duplicate region `{}`", reg.name));
            }
            let Some(mat) = self.materials.iter().find(|m| m.name == reg.material) else {
                return err(
                    &sec,
                    "material",
                    format!(
                        "region `{}` references unknown material `{}`",
                        reg.name, reg.material
                    ),
                );
            };
            validate_shape(&reg.shape, &reg.name, &sec, &err)?;
            if !(reg.rho > 0.0 && reg.rho.is_finite()) {
                return err(
                    &sec,
                    "rho",
                    format!(
                        "region `{}`: rho must be positive and finite, got {}",
                        reg.name, reg.rho
                    ),
                );
            }
            match reg.energy {
                EnergyInit::Ein(e) => {
                    if !(e >= 0.0 && e.is_finite()) {
                        return err(
                            &sec,
                            "ein",
                            format!(
                                "region `{}`: ein must be non-negative and finite, got {e}",
                                reg.name
                            ),
                        );
                    }
                }
                EnergyInit::Pressure(p) => {
                    if !(p >= 0.0 && p.is_finite()) {
                        return err(
                            &sec,
                            "p",
                            format!(
                                "region `{}`: p must be non-negative and finite, got {p}",
                                reg.name
                            ),
                        );
                    }
                    if pressure_to_ein(&mat.eos, reg.rho, p).is_none() {
                        return err(
                            &sec,
                            "p",
                            format!(
                                "region `{}`: material `{}` has a density-only EoS — \
                                 pressure does not determine energy; give `ein`",
                                reg.name, reg.material
                            ),
                        );
                    }
                }
            }
            match reg.velocity {
                VelocityInit::Constant(v) => {
                    if !(v.x.is_finite() && v.y.is_finite()) {
                        return err(
                            &sec,
                            "ux",
                            format!(
                                "region `{}`: velocity must be finite, got ({}, {})",
                                reg.name, v.x, v.y
                            ),
                        );
                    }
                }
                VelocityInit::Radial { speed } => {
                    if !speed.is_finite() {
                        return err(
                            &sec,
                            "u_radial",
                            format!(
                                "region `{}`: u_radial must be finite, got {speed}",
                                reg.name
                            ),
                        );
                    }
                }
            }
        }
        let pistons: Vec<&str> = self
            .boundary
            .sides()
            .into_iter()
            .filter(|(_, bc)| *bc == SideBc::Piston)
            .map(|(side, _)| side)
            .collect();
        if pistons.len() > 1 {
            return err(
                "boundary",
                pistons[1],
                format!(
                    "at most one side may be a piston, got {}",
                    pistons.join(", ")
                ),
            );
        }
        match (&self.boundary.piston_u, pistons.first()) {
            (Some(u), Some(_)) if !(u.x.is_finite() && u.y.is_finite()) => {
                return err(
                    "boundary",
                    "piston_ux",
                    format!("piston velocity must be finite, got ({}, {})", u.x, u.y),
                );
            }
            (Some(_), None) => {
                return err(
                    "boundary",
                    "piston_ux",
                    "piston velocity given but no side is `piston`".into(),
                );
            }
            (None, Some(side)) => {
                return err(
                    "boundary",
                    side,
                    format!("side `{side}` is a piston but no piston velocity is given"),
                );
            }
            _ => {}
        }
        Ok(())
    }

    /// Assemble the runtime [`Deck`] this spec describes: generate the
    /// mesh, assign regions (first match wins, at undistorted
    /// centroids), apply the skew and boundary overrides, fill the
    /// initial fields and build the [`MaterialTable`].
    ///
    /// The returned deck's `recommended_final_time` is a placeholder
    /// `1.0` — generic decks carry no standard end time, and the text
    /// path requires an explicit `final_time` (see
    /// [`crate::input::InputDeck::validate`]).
    pub fn build(&self) -> Result<Deck, DeckError> {
        self.validate()?;
        let config = |message: String| DeckError::Config { message };
        let rect = self.mesh.rect();
        // First-match region-section index per element (u32::MAX =
        // uncovered), evaluated at the undistorted centroid. While
        // painting, also count how many elements each region *would*
        // match ignoring paint order, to tell an overlap mistake
        // (shadowed region) from a region merely below resolution.
        let would_match = std::cell::RefCell::new(vec![0usize; self.regions.len()]);
        let mesh = generate_rect(&rect, |c| {
            let mut first = u32::MAX;
            let mut matches = would_match.borrow_mut();
            for (i, r) in self.regions.iter().enumerate() {
                if r.shape.contains(c) {
                    matches[i] += 1;
                    if first == u32::MAX {
                        first = i as u32;
                    }
                }
            }
            first
        });
        let mut mesh = mesh.map_err(|e| DeckError::Invalid {
            deck: self.name.clone(),
            source: Box::new(e),
        })?;
        let section: Vec<u32> = mesh.region.clone();
        // Coverage: every element must land in a region. A region that
        // claims no element is an error only when earlier regions
        // *stole* everything it covers (the overlap mistake class); a
        // region too small to catch any centroid at this resolution is
        // legal (e.g. the underwater bubble on a coarse mesh).
        let mut counts = vec![0usize; self.regions.len()];
        let d = rect.spacing();
        for (e, &s) in section.iter().enumerate() {
            if s == u32::MAX {
                let (i, j) = (e % self.mesh.nx, e / self.mesh.nx);
                let c = Vec2::new(
                    self.mesh.origin.x + (i as f64 + 0.5) * d.x,
                    self.mesh.origin.y + (j as f64 + 0.5) * d.y,
                );
                return Err(config(format!(
                    "element {e} (centroid ({}, {})) is covered by no region",
                    c.x, c.y
                )));
            }
            counts[s as usize] += 1;
        }
        let would_match = would_match.into_inner();
        for (r, &n) in counts.iter().enumerate() {
            if n == 0 && would_match[r] > 0 {
                return Err(config(format!(
                    "region `{}` assigns no elements — all {} elements it covers \
                     are claimed by earlier regions",
                    self.regions[r].name, would_match[r]
                )));
            }
        }
        // Region ids in the mesh are *material* indices (declaration
        // order of [material.*]), the id space MaterialTable uses.
        let mat_of: Vec<u32> = self
            .regions
            .iter()
            .map(|reg| {
                self.materials
                    .iter()
                    .position(|m| m.name == reg.material)
                    .expect("validated material reference") as u32
            })
            .collect();
        for (e, &s) in section.iter().enumerate() {
            mesh.region[e] = mat_of[s as usize];
        }

        if let Some(SkewKind::Saltzmann) = self.mesh.skew {
            saltzmann_distort(&mut mesh, rect.origin, rect.extent);
        }

        // Boundary overrides. Side membership is decided by grid
        // index (row-major node numbering), not coordinates, so it is
        // exact even after the skew.
        let (nx, ny) = (self.mesh.nx, self.mesh.ny);
        let side_nodes = |side: &str| -> Vec<usize> {
            let nid = |i: usize, j: usize| j * (nx + 1) + i;
            match side {
                "left" => (0..=ny).map(|j| nid(0, j)).collect(),
                "right" => (0..=ny).map(|j| nid(nx, j)).collect(),
                "bottom" => (0..=nx).map(|i| nid(i, 0)).collect(),
                _ => (0..=nx).map(|i| nid(i, ny)).collect(),
            }
        };
        let mut piston_nodes: Vec<u32> = Vec::new();
        for (side, bc) in self.boundary.sides() {
            if bc == SideBc::Reflective {
                continue;
            }
            let horizontal = matches!(side, "bottom" | "top");
            for n in side_nodes(side) {
                // Release the wall-normal constraint; tangential
                // constraints (from adjoining walls) are kept.
                if horizontal {
                    mesh.node_bc[n].fix_y = false;
                } else {
                    mesh.node_bc[n].fix_x = false;
                }
                if bc == SideBc::Piston {
                    piston_nodes.push(n as u32);
                }
            }
        }

        // Per-region energy, with pressure inverted through the
        // region's material EoS once (density is uniform per region).
        let mut region_ein = Vec::with_capacity(self.regions.len());
        for (reg, &mat) in self.regions.iter().zip(&mat_of) {
            let eos = &self.materials[mat as usize].eos;
            let ein = match reg.energy {
                EnergyInit::Ein(e) => e,
                EnergyInit::Pressure(p) => {
                    pressure_to_ein(eos, reg.rho, p).expect("validated pressure-energy inversion")
                }
            };
            if !(ein >= 0.0 && ein.is_finite()) {
                return Err(config(format!(
                    "region `{}`: p = {:?} inverts to ein = {ein} through material `{}`",
                    reg.name, reg.energy, reg.material
                )));
            }
            region_ein.push(ein);
        }
        let rho: Vec<f64> = section
            .iter()
            .map(|&s| self.regions[s as usize].rho)
            .collect();
        let ein: Vec<f64> = section.iter().map(|&s| region_ein[s as usize]).collect();

        // Node velocities: first region containing the node, projected
        // through the node's (final) boundary constraints; nodes
        // outside every region start at rest.
        let mut u: Vec<Vec2> = mesh
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let Some(reg) = self.regions.iter().find(|r| r.shape.contains(p)) else {
                    return Vec2::ZERO;
                };
                match reg.velocity {
                    VelocityInit::Constant(v) => mesh.node_bc[n].apply(v),
                    VelocityInit::Radial { speed } => {
                        let r = p.norm();
                        if r > 1e-12 {
                            mesh.node_bc[n].apply((p / r) * speed)
                        } else {
                            Vec2::ZERO
                        }
                    }
                }
            })
            .collect();

        let piston = self.boundary.piston_u.map(|velocity| {
            for &n in &piston_nodes {
                u[n as usize] = velocity;
            }
            PistonSpec {
                nodes: piston_nodes,
                velocity,
            }
        });

        Ok(Deck {
            name: self.name.clone(),
            materials: MaterialTable::new(self.materials.iter().map(|m| m.eos).collect()),
            mesh,
            rho,
            ein,
            u,
            piston,
            recommended_final_time: 1.0,
            spec: Some(ProblemSpec::Generic(Box::new(self.clone()))),
        })
    }
}

fn validate_eos(
    eos: &EosSpec,
    name: &str,
    sec: &str,
    err: &dyn Fn(&str, &str, String) -> Result<(), DeckError>,
) -> Result<(), DeckError> {
    let bad = |key: &str, what: &str, v: f64| {
        err(
            sec,
            key,
            format!("material `{name}`: `{key}` must be {what}, got {v}"),
        )
    };
    match *eos {
        EosSpec::Void => {}
        EosSpec::IdealGas { gamma } => {
            if !(gamma > 1.0 && gamma.is_finite()) {
                return bad("gamma", "finite and > 1", gamma);
            }
        }
        EosSpec::Tait { p0, rho0, gamma } => {
            if !(p0 > 0.0 && p0.is_finite()) {
                return bad("p0", "positive and finite", p0);
            }
            if !(rho0 > 0.0 && rho0.is_finite()) {
                return bad("rho0", "positive and finite", rho0);
            }
            if !(gamma >= 1.0 && gamma.is_finite()) {
                return bad("gamma", "finite and >= 1", gamma);
            }
        }
        EosSpec::Jwl {
            a,
            b,
            r1,
            r2,
            omega,
            rho0,
        } => {
            for (key, v, positive) in [
                ("a", a, false),
                ("b", b, false),
                ("r1", r1, true),
                ("r2", r2, true),
                ("omega", omega, true),
                ("rho0", rho0, true),
            ] {
                if positive {
                    if !(v > 0.0 && v.is_finite()) {
                        return bad(key, "positive and finite", v);
                    }
                } else if !(v >= 0.0 && v.is_finite()) {
                    return bad(key, "non-negative and finite", v);
                }
            }
        }
    }
    Ok(())
}

fn validate_shape(
    shape: &Shape,
    name: &str,
    sec: &str,
    err: &dyn Fn(&str, &str, String) -> Result<(), DeckError>,
) -> Result<(), DeckError> {
    match *shape {
        Shape::Rect { x0, y0, x1, y1 } => {
            for (key, v) in [("x0", x0), ("y0", y0), ("x1", x1), ("y1", y1)] {
                if !v.is_finite() {
                    return err(
                        sec,
                        key,
                        format!("region `{name}`: `{key}` must be finite, got {v}"),
                    );
                }
            }
            if x1 < x0 || y1 < y0 {
                return err(
                    sec,
                    "x1",
                    format!("region `{name}`: rect needs x1 >= x0 and y1 >= y0"),
                );
            }
        }
        Shape::Circle { cx, cy, r } => {
            for (key, v) in [("cx", cx), ("cy", cy)] {
                if !v.is_finite() {
                    return err(
                        sec,
                        key,
                        format!("region `{name}`: `{key}` must be finite, got {v}"),
                    );
                }
            }
            if !(r > 0.0 && r.is_finite()) {
                return err(
                    sec,
                    "r",
                    format!("region `{name}`: circle radius must be positive, got {r}"),
                );
            }
        }
        Shape::HalfPlane {
            normal_x,
            normal_y,
            offset,
        } => {
            for (key, v) in [
                ("normal_x", normal_x),
                ("normal_y", normal_y),
                ("offset", offset),
            ] {
                if !v.is_finite() {
                    return err(
                        sec,
                        key,
                        format!("region `{name}`: `{key}` must be finite, got {v}"),
                    );
                }
            }
            if normal_x == 0.0 && normal_y == 0.0 {
                return err(
                    sec,
                    "normal_x",
                    format!("region `{name}`: half-plane normal must be non-zero"),
                );
            }
        }
    }
    Ok(())
}

/// Invert `p(rho, ein) = p` for `ein` where the EoS permits it:
/// ideal gas `ein = p / ((γ−1) ρ)`, JWL in closed form; `None` for the
/// density-only Tait form and the pressureless void.
fn pressure_to_ein(eos: &EosSpec, rho: f64, p: f64) -> Option<f64> {
    match *eos {
        EosSpec::IdealGas { gamma } => Some(p / ((gamma - 1.0) * rho)),
        EosSpec::Tait { .. } | EosSpec::Void => None,
        EosSpec::Jwl {
            a,
            b,
            r1,
            r2,
            omega,
            rho0,
        } => {
            let v = rho0 / rho;
            let cold = a * (1.0 - omega / (r1 * v)) * (-r1 * v).exp()
                + b * (1.0 - omega / (r2 * v)) * (-r2 * v).exp();
            Some((p - cold) / (omega * rho))
        }
    }
}

// ---------------------------------------------------------------------------
// The five standard problems, re-expressed in the generic vocabulary.

/// Sod's shock tube as a [`GenericSpec`] (see [`crate::decks::sod`]).
#[must_use]
pub fn sod_generic(nx: usize, ny: usize) -> GenericSpec {
    let h = ny as f64 / nx as f64;
    let gas = |name: &str| NamedMaterial {
        name: name.into(),
        eos: EosSpec::ideal_gas(1.4),
    };
    let state = |name: &str, x0: f64, x1: f64, material: &str, rho: f64, ein: f64| RegionSpec {
        name: name.into(),
        shape: Shape::Rect {
            x0,
            y0: 0.0,
            x1,
            y1: h,
        },
        material: material.into(),
        rho,
        energy: EnergyInit::Ein(ein),
        velocity: VelocityInit::Constant(Vec2::ZERO),
    };
    GenericSpec {
        name: "sod".into(),
        mesh: MeshSpec {
            nx,
            ny,
            origin: Vec2::ZERO,
            extent: Vec2::new(1.0, h),
            skew: None,
        },
        materials: vec![gas("left"), gas("right")],
        regions: vec![
            state("left", 0.0, 0.5, "left", 1.0, 2.5),
            state("right", 0.5, 1.0, "right", 0.125, 2.0),
        ],
        boundary: BoundarySpec::default(),
    }
}

/// The Noh implosion as a [`GenericSpec`] (see [`crate::decks::noh`]).
#[must_use]
pub fn noh_generic(n: usize) -> GenericSpec {
    let mut spec = GenericSpec::uniform(
        "noh",
        MeshSpec::unit_square(n),
        EosSpec::ideal_gas(5.0 / 3.0),
        1.0,
        COLD,
    );
    spec.regions[0].velocity = VelocityInit::Radial { speed: -1.0 };
    spec
}

/// The Sedov blast as a [`GenericSpec`] (see [`crate::decks::sedov`]).
#[must_use]
pub fn sedov_generic(n: usize) -> GenericSpec {
    let cell_vol = (1.1 / n as f64) * (1.1 / n as f64);
    let e_deposit = SEDOV_ALPHA / 4.0; // quarter plane
    let mut spec = GenericSpec::uniform(
        "sedov",
        MeshSpec {
            nx: n,
            ny: n,
            origin: Vec2::ZERO,
            extent: Vec2::new(1.1, 1.1),
            skew: None,
        },
        EosSpec::ideal_gas(1.4),
        1.0,
        COLD,
    );
    spec.regions[0].name = "rest".into();
    // The blast source: a disc around the origin sized to capture
    // exactly the origin-corner cell's centroid at every resolution
    // (centroid at 0.55·√2/n ≈ 0.78/n < 1.1/n < 1.74/n, the next
    // nearest centroid).
    let source = RegionSpec {
        name: "source".into(),
        shape: Shape::Circle {
            cx: 0.0,
            cy: 0.0,
            r: 1.1 / n as f64,
        },
        material: "mat".into(),
        rho: 1.0,
        energy: EnergyInit::Ein(e_deposit / (1.0 * cell_vol)),
        velocity: VelocityInit::Constant(Vec2::ZERO),
    };
    if n == 1 {
        // A single cell: the source disc covers the whole mesh and
        // would shadow `rest` entirely.
        spec.regions = vec![source];
    } else {
        spec.regions.insert(0, source);
    }
    spec
}

/// Saltzmann's piston as a [`GenericSpec`]
/// (see [`crate::decks::saltzmann`]).
#[must_use]
pub fn saltzmann_generic(nx: usize, ny: usize) -> GenericSpec {
    let mut spec = GenericSpec::uniform(
        "saltzmann",
        MeshSpec {
            nx,
            ny,
            origin: Vec2::ZERO,
            extent: Vec2::new(1.0, 0.1),
            skew: Some(SkewKind::Saltzmann),
        },
        EosSpec::ideal_gas(5.0 / 3.0),
        1.0,
        COLD,
    );
    spec.boundary.left = SideBc::Piston;
    spec.boundary.piston_u = Some(Vec2::new(1.0, 0.0));
    spec
}

/// The underwater-explosion deck as a [`GenericSpec`]
/// (see [`crate::decks::underwater`]).
#[must_use]
pub fn underwater_generic(n: usize) -> GenericSpec {
    GenericSpec {
        name: "underwater".into(),
        mesh: MeshSpec::unit_square(n),
        materials: vec![
            NamedMaterial {
                name: "products".into(),
                eos: EosSpec::Jwl {
                    a: 8.0,
                    b: 0.2,
                    r1: 4.5,
                    r2: 1.5,
                    omega: 0.3,
                    rho0: 1.6,
                },
            },
            NamedMaterial {
                name: "water".into(),
                eos: EosSpec::Tait {
                    p0: 1.0e2,
                    rho0: 1.0,
                    gamma: 7.0,
                },
            },
        ],
        regions: vec![
            RegionSpec {
                name: "bubble".into(),
                shape: Shape::Circle {
                    cx: 0.0,
                    cy: 0.0,
                    r: 0.15,
                },
                material: "products".into(),
                rho: 1.6,
                energy: EnergyInit::Ein(40.0),
                velocity: VelocityInit::Constant(Vec2::ZERO),
            },
            RegionSpec {
                name: "water".into(),
                shape: Shape::Rect {
                    x0: 0.0,
                    y0: 0.0,
                    x1: 1.0,
                    y1: 1.0,
                },
                material: "water".into(),
                rho: 1.0,
                energy: EnergyInit::Ein(COLD),
                velocity: VelocityInit::Constant(Vec2::ZERO),
            },
        ],
        boundary: BoundarySpec::default(),
    }
}

/// The generic re-expression of a named problem, or `None` for specs
/// that are already generic. Built decks are **bitwise identical** to
/// the named constructors' (pinned by tests) — the constructors are
/// wrappers over these specs.
#[must_use]
pub fn generic_equivalent(spec: &ProblemSpec) -> Option<GenericSpec> {
    match *spec {
        ProblemSpec::Sod { nx, ny } => Some(sod_generic(nx, ny)),
        ProblemSpec::Noh { n } => Some(noh_generic(n)),
        ProblemSpec::Sedov { n } => Some(sedov_generic(n)),
        ProblemSpec::Saltzmann { nx, ny } => Some(saltzmann_generic(nx, ny)),
        ProblemSpec::Underwater { n } => Some(underwater_generic(n)),
        ProblemSpec::Generic(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_mesh::NodeBc;

    fn base() -> GenericSpec {
        GenericSpec::uniform(
            "base",
            MeshSpec::unit_square(4),
            EosSpec::ideal_gas(1.4),
            1.0,
            2.5,
        )
    }

    #[test]
    fn uniform_spec_builds_and_validates() {
        let deck = base().build().unwrap();
        deck.validate().unwrap();
        assert_eq!(deck.name, "base");
        assert_eq!(deck.mesh.n_elements(), 16);
        assert!(deck.rho.iter().all(|&r| r == 1.0));
        assert!(deck.ein.iter().all(|&e| e == 2.5));
        assert!(matches!(deck.spec, Some(ProblemSpec::Generic(_))));
    }

    #[test]
    fn uncovered_element_is_a_typed_error() {
        let mut spec = base();
        // Shrink the region to the left half: right-half centroids
        // are uncovered.
        spec.regions[0].shape = Shape::Rect {
            x0: 0.0,
            y0: 0.0,
            x1: 0.5,
            y1: 1.0,
        };
        let err = spec.build().unwrap_err();
        assert!(
            matches!(&err, DeckError::Config { message } if message.contains("covered by no region")),
            "{err:?}"
        );
    }

    #[test]
    fn shadowed_region_is_a_typed_error() {
        let mut spec = base();
        // A second whole-domain region behind the first: first match
        // wins everywhere, so it assigns nothing.
        let mut shadowed = spec.regions[0].clone();
        shadowed.name = "shadowed".into();
        spec.regions.push(shadowed);
        let err = spec.build().unwrap_err();
        assert!(
            matches!(&err, DeckError::Config { message } if message.contains("shadowed")),
            "{err:?}"
        );
    }

    #[test]
    fn unknown_material_reference_is_rejected() {
        let mut spec = base();
        spec.regions[0].material = "unobtainium".into();
        let err = spec.validate().unwrap_err();
        assert!(
            matches!(&err, DeckError::Config { message } if message.contains("unobtainium")),
            "{err:?}"
        );
    }

    #[test]
    fn non_physical_fields_are_rejected() {
        let mut spec = base();
        spec.regions[0].rho = -1.0;
        assert!(spec.validate().is_err());
        let mut spec = base();
        spec.regions[0].energy = EnergyInit::Ein(f64::NAN);
        assert!(spec.validate().is_err());
        let mut spec = base();
        spec.materials[0].eos = EosSpec::ideal_gas(0.9);
        assert!(spec.validate().is_err());
        let mut spec = base();
        spec.mesh.nx = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn tait_region_cannot_be_initialised_by_pressure() {
        let mut spec = base();
        spec.materials[0].eos = EosSpec::Tait {
            p0: 100.0,
            rho0: 1.0,
            gamma: 7.0,
        };
        spec.regions[0].energy = EnergyInit::Pressure(1.0);
        let err = spec.validate().unwrap_err();
        assert!(
            matches!(&err, DeckError::Config { message } if message.contains("density-only")),
            "{err:?}"
        );
    }

    #[test]
    fn pressure_init_matches_ideal_gas_ein() {
        let mut spec = base();
        // p = 1 at rho = 1, gamma = 1.4 → ein = 1 / 0.4.
        spec.regions[0].energy = EnergyInit::Pressure(1.0);
        let deck = spec.build().unwrap();
        let expect = 1.0 / ((1.4 - 1.0) * 1.0);
        assert!(deck.ein.iter().all(|&e| e == expect));
    }

    #[test]
    fn free_side_releases_the_wall_constraint() {
        let mut spec = base();
        spec.boundary.top = SideBc::Free;
        let deck = spec.build().unwrap();
        let n = deck.mesh.n_nodes();
        let nx1 = spec.mesh.nx + 1;
        // Top-row interior nodes are fully free; top corners keep
        // their x-wall constraint.
        for id in (n - nx1)..n {
            assert!(!deck.mesh.node_bc[id].fix_y, "node {id}");
        }
        assert!(deck.mesh.node_bc[n - nx1].fix_x);
        assert_eq!(deck.mesh.node_bc[n - nx1 + 1], NodeBc::FREE);
    }

    #[test]
    fn piston_boundary_matches_saltzmann_shape() {
        let spec = saltzmann_generic(8, 2);
        let deck = spec.build().unwrap();
        let piston = deck.piston.as_ref().unwrap();
        assert_eq!(piston.nodes.len(), 3); // ny + 1 left-wall nodes
        for &n in &piston.nodes {
            assert!(!deck.mesh.node_bc[n as usize].fix_x);
            assert_eq!(deck.u[n as usize], Vec2::new(1.0, 0.0));
        }
    }

    #[test]
    fn first_match_wins_on_the_interface() {
        // Two overlapping rects: the seam column belongs to the first.
        let mut spec = base();
        spec.materials.push(NamedMaterial {
            name: "mat2".into(),
            eos: EosSpec::ideal_gas(1.6),
        });
        spec.regions[0].shape = Shape::Rect {
            x0: 0.0,
            y0: 0.0,
            x1: 0.5,
            y1: 1.0,
        };
        spec.regions.push(RegionSpec {
            name: "rest".into(),
            shape: Shape::Rect {
                x0: 0.0,
                y0: 0.0,
                x1: 1.0,
                y1: 1.0,
            },
            material: "mat2".into(),
            rho: 2.0,
            energy: EnergyInit::Ein(1.0),
            velocity: VelocityInit::Constant(Vec2::ZERO),
        });
        let deck = spec.build().unwrap();
        let left = deck.mesh.region.iter().filter(|&&r| r == 0).count();
        assert_eq!(left, 8);
        assert_eq!(deck.rho.iter().filter(|&&r| r == 2.0).count(), 8);
    }
}
