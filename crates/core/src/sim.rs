//! The single front door: [`Simulation`] and its builder.
//!
//! Real BookLeaf is one binary driven by text input decks; this module
//! is that shape in library form. One fluent path —
//!
//! ```
//! use bookleaf_core::{decks, ExecutorKind, Simulation};
//!
//! let report = Simulation::builder()
//!     .deck(decks::sod(40, 4))           // or .deck_str(..) / .deck_file(..)
//!     .executor(ExecutorKind::Serial)
//!     .final_time(0.02)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(report.steps > 0);
//! ```
//!
//! — drives serial, flat-MPI and hybrid execution identically and
//! returns one unified [`RunReport`] (merged timers, team comm stats,
//! global energy accounting) for all of them. Observers registered via
//! [`SimulationBuilder::observer`] fire under every executor; after the
//! run, [`Simulation::mesh`]/[`Simulation::state`] expose the solution
//! (the rank pieces of a distributed run are assembled back into
//! global order).
//!
//! Configuration precedence, lowest to highest: the defaults, the text
//! deck's own `[control]`/`[dt]`/`[ale]`/`[executor]` sections, a
//! wholesale [`SimulationBuilder::config`], then the individual builder
//! setters (`.executor(..)`, `.final_time(..)`, …).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bookleaf_ale::{AleOptions, Remapper};
use bookleaf_eos::MaterialTable;
use bookleaf_hydro::getdt::DtControls;
use bookleaf_hydro::{HydroState, LocalRange};
use bookleaf_mesh::Mesh;
use bookleaf_typhon::{CommStats, FaultPlan, TyphonOptions};
use bookleaf_util::{BookLeafError, DeckError, Result, TimerRegistry};

use bookleaf_util::CheckpointError;

use crate::config::{ExecutorKind, RunConfig};
use crate::decks::Deck;
use crate::driver::{run_loop, LoopState, SentinelOps};
use crate::executor::run_with_observers;
use crate::halo::{LocalPiston, SerialHooks};
use crate::input::InputDeck;
use crate::observer::{LoopWatch, Observer, ObserverSet};
use crate::output::{Checkpoint, Snapshot};
use crate::report::RunReport;

/// Where the builder's deck comes from.
enum DeckSource {
    /// A programmatically constructed deck.
    Built(Box<Deck>),
    /// A parsed input-deck spec.
    Input(Box<InputDeck>),
    /// Input-deck text, parsed at build time.
    Text(String),
    /// A path to an input-deck file, read and parsed at build time.
    File(PathBuf),
    /// An in-memory checkpoint: deck, config baseline and state.
    Resume(Box<Checkpoint>),
    /// A checkpoint file, read and parsed at build time.
    ResumeFile(PathBuf),
}

/// Fluent constructor for [`Simulation`]; see the module docs.
#[must_use = "call .build() to obtain the Simulation"]
#[derive(Default)]
pub struct SimulationBuilder {
    source: Option<DeckSource>,
    config: Option<RunConfig>,
    executor: Option<ExecutorKind>,
    final_time: Option<f64>,
    max_steps: Option<usize>,
    dt: Option<DtControls>,
    ale: Option<Option<AleOptions>>,
    overlap: Option<bool>,
    observers: Vec<Box<dyn Observer>>,
    fault_plan: Option<FaultPlan>,
    comm_timeout: Option<Duration>,
    deadline: Option<std::time::Instant>,
}

impl SimulationBuilder {
    /// Use a programmatically constructed [`Deck`].
    pub fn deck(mut self, deck: Deck) -> Self {
        self.source = Some(DeckSource::Built(Box::new(deck)));
        self
    }

    /// Use a parsed [`InputDeck`] spec (its run options become the
    /// configuration baseline).
    pub fn deck_input(mut self, input: InputDeck) -> Self {
        self.source = Some(DeckSource::Input(Box::new(input)));
        self
    }

    /// Use input-deck text (see [`crate::input`] for the format);
    /// parsed — with line-anchored errors — at [`Self::build`].
    pub fn deck_str(mut self, text: impl Into<String>) -> Self {
        self.source = Some(DeckSource::Text(text.into()));
        self
    }

    /// Use an input-deck file; read and parsed at [`Self::build`].
    pub fn deck_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.source = Some(DeckSource::File(path.into()));
        self
    }

    /// Resume from a checkpoint file (written by
    /// [`Simulation::checkpoint_to`]). The embedded input deck supplies
    /// the problem and the configuration baseline; the builder setters
    /// override on top, so a checkpoint written by a serial run can
    /// resume under `.executor(ExecutorKind::FlatMpi { ranks: 4 })` (or
    /// any other shape) — the state is repartitioned automatically.
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.source = Some(DeckSource::ResumeFile(path.into()));
        self
    }

    /// Resume from an in-memory [`Checkpoint`] (see [`Self::resume`]).
    pub fn resume_from(mut self, checkpoint: Checkpoint) -> Self {
        self.source = Some(DeckSource::Resume(Box::new(checkpoint)));
        self
    }

    /// Replace the whole run configuration (individual setters below
    /// still override on top).
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Select the execution model.
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Stop once simulated time reaches `t`.
    pub fn final_time(mut self, t: f64) -> Self {
        self.final_time = Some(t);
        self
    }

    /// Hard cap on steps.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Time-step controls.
    pub fn dt(mut self, dt: DtControls) -> Self {
        self.dt = Some(dt);
        self
    }

    /// ALE remap options (`None` = pure Lagrangian frame).
    pub fn ale(mut self, ale: Option<AleOptions>) -> Self {
        self.ale = Some(ale);
        self
    }

    /// Toggle halo-exchange/computation overlap (distributed only).
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.overlap = Some(overlap);
        self
    }

    /// Register an observer; hooks fire under every executor. Wrap in
    /// [`crate::Shared`] and keep a clone to read results afterwards.
    pub fn observer(mut self, observer: impl Observer + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Inject a deterministic [`FaultPlan`] into the communication
    /// layer (distributed executors only; serial runs have no comm
    /// layer to fault). Every scheduled fault surfaces as a typed
    /// [`bookleaf_util::CommError`] — never a hang or a panic — which
    /// is what the resilience test matrix and
    /// [`Simulation::run_resilient`] drills are built on.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Deadline for every blocking receive and collective in
    /// distributed runs (default 60 s — generous enough that healthy
    /// runs never trip it, bounded enough that a dead rank surfaces as
    /// a typed timeout instead of a hang). Fault-injection tests drop
    /// it to keep failure paths fast.
    pub fn comm_timeout(mut self, timeout: Duration) -> Self {
        self.comm_timeout = Some(timeout);
        self
    }

    /// Wall-clock deadline for the run (see [`RunConfig::deadline`]):
    /// once `at` passes, the run aborts symmetrically on every rank
    /// with a typed [`BookLeafError::DeadlineExceeded`], checked once
    /// per step at the dt reduction. The per-request supervision knob
    /// of `bookleaf serve`.
    pub fn deadline(mut self, at: std::time::Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Resolve the deck, merge the configuration layers, validate, and
    /// construct the [`Simulation`].
    pub fn build(self) -> Result<Simulation> {
        let Some(source) = self.source else {
            return Err(BookLeafError::InvalidDeck(
                "Simulation::builder() needs a deck: call .deck(..), .deck_str(..), \
                 .deck_file(..) or .resume(..)"
                    .into(),
            ));
        };
        let mut resume_snap: Option<Box<Snapshot>> = None;
        let (deck, input) = match source {
            DeckSource::Built(deck) => (*deck, None),
            DeckSource::Input(input) => (input.build_deck()?, Some(*input)),
            DeckSource::Text(text) => {
                let input: InputDeck = text.parse::<InputDeck>()?;
                (input.build_deck()?, Some(input))
            }
            DeckSource::Resume(ckpt) => {
                let Checkpoint { input, snap } = *ckpt;
                let deck = input.build_deck()?;
                resume_snap = Some(Box::new(snap));
                (deck, Some(input))
            }
            DeckSource::ResumeFile(path) => {
                let ckpt = Checkpoint::read_from(&path)?;
                let deck = ckpt.input.build_deck()?;
                resume_snap = Some(Box::new(ckpt.snap));
                (deck, Some(ckpt.input))
            }
            DeckSource::File(path) => {
                let text = std::fs::read_to_string(&path).map_err(|e| {
                    BookLeafError::InvalidDeck(format!(
                        "cannot read deck file {}: {e}",
                        path.display()
                    ))
                })?;
                // Keep errors typed (and line-anchored where the parser
                // anchored them), but name the file they belong to.
                let anchor = |e: DeckError| match e {
                    DeckError::Text { line, message } => DeckError::Text {
                        line,
                        message: format!("{}: {message}", path.display()),
                    },
                    DeckError::Config { message } => DeckError::Config {
                        message: format!("{}: {message}", path.display()),
                    },
                    other => other,
                };
                let input = text.parse::<InputDeck>().map_err(anchor)?;
                let deck = input.build_deck().map_err(anchor)?;
                (deck, Some(input))
            }
        };

        // Configuration layers: defaults < text deck < .config() <
        // individual setters.
        let mut config = self
            .config
            .or_else(|| input.as_ref().map(InputDeck::run_config))
            .unwrap_or_default();
        if let Some(executor) = self.executor {
            config.executor = executor;
        }
        if let Some(t) = self.final_time {
            config.final_time = t;
        }
        if let Some(n) = self.max_steps {
            config.max_steps = n;
        }
        if let Some(dt) = self.dt {
            config.dt = dt;
        }
        if let Some(ale) = self.ale {
            config.ale = ale;
        }
        if let Some(overlap) = self.overlap {
            config.overlap = overlap;
        }
        if let Some(deadline) = self.deadline {
            config.deadline = Some(deadline);
        }

        deck.validate()?;
        if let Some(snap) = &resume_snap {
            // The file path validated the snapshot against the embedded
            // deck already; this also covers in-memory checkpoints
            // assembled by hand.
            if snap.n_nodes() != deck.mesh.n_nodes() || snap.n_elements() != deck.mesh.n_elements()
            {
                return Err(CheckpointError::DeckMismatch {
                    message: format!(
                        "checkpoint carries {} nodes / {} elements but its deck builds a \
                         {}-node / {}-element mesh",
                        snap.n_nodes(),
                        snap.n_elements(),
                        deck.mesh.n_nodes(),
                        deck.mesh.n_elements()
                    ),
                }
                .into());
            }
        }
        let engine = match config.executor {
            ExecutorKind::Serial => {
                let mut engine = SerialEngine::new(&deck, &config)?;
                if let Some(snap) = &resume_snap {
                    engine.install(snap, &deck, &config)?;
                }
                Engine::Serial(Box::new(engine))
            }
            ExecutorKind::FlatMpi { .. } | ExecutorKind::Hybrid { .. } => {
                let mut view = AssembledView::new(&deck)?;
                if let Some(snap) = &resume_snap {
                    view.install(snap, &deck, &config)?;
                }
                Engine::Distributed(Box::new(view))
            }
        };
        let mut typhon = TyphonOptions::default();
        if let Some(plan) = self.fault_plan {
            typhon.fault_plan = Some(Arc::new(plan));
        }
        if let Some(timeout) = self.comm_timeout {
            typhon.recv_timeout = timeout;
        }
        Ok(Simulation {
            deck,
            input,
            config,
            observers: ObserverSet::new(self.observers),
            engine,
            resume: resume_snap,
            typhon,
        })
    }
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("has_deck", &self.source.is_some())
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

/// In-place serial execution state.
struct SerialEngine {
    mesh: Mesh,
    materials: MaterialTable,
    state: HydroState,
    remapper: Option<Remapper>,
    hooks: SerialHooks,
    timers: TimerRegistry,
    cursor: LoopState,
    energy_start: Option<f64>,
    /// Cumulative wall seconds across every `run`/`advance_to` segment,
    /// so a resumed run's report stays consistent with its cumulative
    /// steps/timers/energy.
    wall_seconds: f64,
}

impl SerialEngine {
    fn new(deck: &Deck, config: &RunConfig) -> Result<Self> {
        let mesh = deck.mesh.clone();
        let state = deck.initial_state(&mesh)?;
        let remapper = config.ale.map(|opts| Remapper::new(&mesh, opts));
        let hooks = SerialHooks {
            piston: deck.piston.as_ref().map(|p| LocalPiston {
                nodes: p.nodes.clone(),
                velocity: p.velocity,
            }),
        };
        Ok(SerialEngine {
            mesh,
            materials: deck.materials.clone(),
            state,
            remapper,
            hooks,
            timers: TimerRegistry::new(),
            cursor: LoopState::default(),
            energy_start: None,
            wall_seconds: 0.0,
        })
    }

    /// Load a snapshot into the live mesh/state, place the loop cursor
    /// at its time/step, and re-derive the dependent fields the
    /// snapshot omits (geometry, then pressure/sound speed).
    fn install(&mut self, snap: &Snapshot, deck: &Deck, config: &RunConfig) -> Result<()> {
        snap.restore(&mut self.mesh, &mut self.state)?;
        self.cursor = LoopState {
            t: snap.time,
            steps: snap.steps as usize,
            dt_prev: snap.dt_prev,
        };
        let range = LocalRange::whole(&self.mesh);
        bookleaf_hydro::getgeom::getgeom(&self.mesh, &mut self.state, range, config.lag.threading)?;
        bookleaf_hydro::getpc::getpc(
            &self.mesh,
            &deck.materials,
            &mut self.state,
            range,
            config.lag.threading,
        );
        Ok(())
    }

    /// Run to `config.final_time`, firing `observers` along the way.
    fn run(&mut self, config: &RunConfig, observers: &ObserverSet) -> Result<()> {
        let start = std::time::Instant::now();
        let result = self.run_inner(config, observers);
        self.wall_seconds += start.elapsed().as_secs_f64();
        result
    }

    fn run_inner(&mut self, config: &RunConfig, observers: &ObserverSet) -> Result<()> {
        let range = LocalRange::whole(&self.mesh);
        let energy_ref = *self
            .energy_start
            .get_or_insert_with(|| self.state.total_energy(&self.mesh, range));
        let identity = |v: f64| -> Result<f64> { Ok(v) };
        let no_comm = CommStats::default;
        let whole_energy =
            |mesh: &Mesh, state: &HydroState| state.total_energy(mesh, LocalRange::whole(mesh));
        let watch = LoopWatch {
            observers,
            rank: 0,
            n_ranks: 1,
            reduce_sum: &identity,
            comm_stats: &no_comm,
            local_energy: &whole_energy,
        };
        let sentinel = SentinelOps {
            rank: 0,
            reduce_min: &identity,
            reduce_sum: &identity,
            local_energy: &whole_energy,
            energy_ref,
        };
        run_loop(
            &mut self.mesh,
            &self.materials,
            &mut self.state,
            range,
            config,
            self.remapper.as_ref(),
            &mut self.hooks,
            |_step, dt| Ok(dt),
            &self.timers,
            &mut self.cursor,
            None,
            Some(&watch),
            Some(&sentinel),
        )
    }
}

impl std::fmt::Debug for SerialEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SerialEngine")
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

/// Post-run global view of a distributed run: the deck's mesh and
/// initial state, overwritten with the assembled rank pieces after
/// every run (ρ, ε, p, u and node positions — the fields the executors
/// have always assembled; derived scratch fields keep their initial
/// values).
#[derive(Debug)]
struct AssembledView {
    mesh: Mesh,
    state: HydroState,
    /// The assembled time/step/dt cursor — default before any run,
    /// the checkpoint's cursor after a resume install, the final
    /// cursor after a run. Feeds [`Simulation::checkpoint`].
    cursor: LoopState,
}

impl AssembledView {
    fn new(deck: &Deck) -> Result<Self> {
        let mesh = deck.mesh.clone();
        let state = deck.initial_state(&mesh)?;
        Ok(AssembledView {
            mesh,
            state,
            cursor: LoopState::default(),
        })
    }

    /// Mirror of [`SerialEngine::install`] for the global view, so
    /// `state()`/`checkpoint()` reflect the checkpoint even before the
    /// resumed distributed run happens.
    fn install(&mut self, snap: &Snapshot, deck: &Deck, config: &RunConfig) -> Result<()> {
        snap.restore(&mut self.mesh, &mut self.state)?;
        self.cursor = LoopState {
            t: snap.time,
            steps: snap.steps as usize,
            dt_prev: snap.dt_prev,
        };
        let range = LocalRange::whole(&self.mesh);
        bookleaf_hydro::getgeom::getgeom(&self.mesh, &mut self.state, range, config.lag.threading)?;
        bookleaf_hydro::getpc::getpc(
            &self.mesh,
            &deck.materials,
            &mut self.state,
            range,
            config.lag.threading,
        );
        Ok(())
    }
}

#[derive(Debug)]
enum Engine {
    Serial(Box<SerialEngine>),
    Distributed(Box<AssembledView>),
}

/// One handle for a whole run, whatever the executor. Build with
/// [`Simulation::builder`]; see the module docs for the shape of the
/// API.
#[derive(Debug)]
pub struct Simulation {
    deck: Deck,
    input: Option<InputDeck>,
    config: RunConfig,
    observers: ObserverSet,
    engine: Engine,
    /// Snapshot to scatter across the ranks of a distributed run, when
    /// the simulation was built from a checkpoint (serial engines
    /// install it directly at build time instead).
    resume: Option<Box<Snapshot>>,
    /// Comm-layer options for distributed runs: receive/collective
    /// deadline, fault schedule, recovery-attempt index.
    pub(crate) typhon: TyphonOptions,
}

impl Simulation {
    /// Start building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Run to the configured final time and report.
    ///
    /// Serial simulations are resumable: a second `run` after raising
    /// `final_time` (or a [`Simulation::restore`]) continues where the
    /// first stopped. Distributed simulations execute the whole problem
    /// each call.
    pub fn run(&mut self) -> Result<RunReport> {
        match &mut self.engine {
            Engine::Serial(engine) => {
                let range = LocalRange::whole(&engine.mesh);
                let e0 = *engine
                    .energy_start
                    .get_or_insert_with(|| engine.state.total_energy(&engine.mesh, range));
                engine.run(&self.config, &self.observers)?;
                let e1 = engine.state.total_energy(&engine.mesh, range);
                // Every quantity spans the whole trajectory so far —
                // steps, timers, energy (pinned at t = 0) and the
                // cumulative wall clock — so resumed runs report
                // consistently.
                Ok(RunReport {
                    name: self.deck.name.to_string(),
                    executor: self.config.executor,
                    ranks: 1,
                    steps: engine.cursor.steps,
                    time: engine.cursor.t,
                    wall_seconds: engine.wall_seconds,
                    timers: engine.timers.report(),
                    comm: CommStats::default(),
                    energy_start: e0,
                    energy_end: e1,
                    recovery: crate::resilience::RecoveryLog::default(),
                })
            }
            Engine::Distributed(view) => {
                let (report, fields) = run_with_observers(
                    &self.deck,
                    &self.config,
                    &self.observers,
                    self.resume.as_deref(),
                    &self.typhon,
                )?;
                view.mesh.nodes.copy_from_slice(&fields.nodes);
                view.state.rho.copy_from_slice(&fields.rho);
                view.state.ein.copy_from_slice(&fields.ein);
                view.state.pressure.copy_from_slice(&fields.pressure);
                view.state.u.copy_from_slice(&fields.u);
                view.state.mass.copy_from_slice(&fields.mass);
                view.state.q.copy_from_slice(&fields.q);
                view.state.nd_mass.copy_from_slice(&fields.nd_mass);
                view.state.cnmass.copy_from_slice(&fields.cnmass);
                view.cursor = fields.cursor;
                Ok(report)
            }
        }
    }

    /// Has the run reached its goal — the configured final time or the
    /// step cap — according to the loop cursor?
    #[must_use]
    pub fn complete(&self) -> bool {
        let c = self.cursor();
        c.t >= self.config.final_time - 1e-15 || c.steps >= self.config.max_steps
    }

    /// Advance up to `steps` more steps (at least one) under **any**
    /// executor, leaving the simulation resumable: the next
    /// [`Simulation::run`] or `run_segment` continues where this one
    /// stopped. Segments stop at step boundaries — no dt truncation —
    /// so a segmented run reproduces the unsegmented trajectory
    /// **bitwise** on the same executor shape (the mechanism
    /// [`Simulation::run_resilient`] pins in its tests). This is the
    /// cooperative-scheduling primitive `bookleaf serve` drains with:
    /// a worker can pause between segments, checkpoint, and hand the
    /// request back as a resumable handle.
    ///
    /// The returned report spans the whole trajectory so far (steps,
    /// time, cumulative timers), not just this segment.
    ///
    /// # Errors
    ///
    /// Everything [`Simulation::run`] can return.
    pub fn run_segment(&mut self, steps: usize) -> Result<RunReport> {
        let goal_steps = self.config.max_steps;
        let seg_start = self.cursor().steps;
        let cap = goal_steps.min(seg_start.saturating_add(steps.max(1)));
        self.config_mut().max_steps = cap;
        let result = self.run();
        self.config_mut().max_steps = goal_steps;
        let report = result?;
        // Distributed engines re-execute from their resume snapshot on
        // every `run` call; re-prime it from the assembled segment
        // state so the next segment continues instead of restarting.
        let done = self.complete();
        let snap = match &self.engine {
            Engine::Distributed(v) if !done => Some(Snapshot::capture(
                &v.mesh,
                &v.state,
                v.cursor.t,
                v.cursor.steps as u64,
                v.cursor.dt_prev,
            )),
            _ => None,
        };
        if let Some(snap) = snap {
            self.resume = Some(Box::new(snap));
        }
        Ok(report)
    }

    /// Advance a **serial** simulation to `t_target` (clamped to the
    /// configured final time), leaving it resumable — the in-situ
    /// output idiom. Errors under distributed executors.
    pub fn advance_to(&mut self, t_target: f64) -> Result<&LoopState> {
        let Engine::Serial(engine) = &mut self.engine else {
            return Err(BookLeafError::InvalidDeck(
                "advance_to requires the serial executor".into(),
            ));
        };
        let range = LocalRange::whole(&engine.mesh);
        engine
            .energy_start
            .get_or_insert_with(|| engine.state.total_energy(&engine.mesh, range));
        let capped = RunConfig {
            final_time: t_target.min(self.config.final_time),
            ..self.config
        };
        engine.run(&capped, &self.observers)?;
        Ok(&engine.cursor)
    }

    /// Capture a restart snapshot (serial executor only).
    pub fn snapshot(&self) -> Result<Snapshot> {
        let Engine::Serial(engine) = &self.engine else {
            return Err(BookLeafError::InvalidDeck(
                "snapshots require the serial executor".into(),
            ));
        };
        Ok(Snapshot::capture(
            &engine.mesh,
            &engine.state,
            engine.cursor.t,
            engine.cursor.steps as u64,
            engine.cursor.dt_prev,
        ))
    }

    /// Restore a snapshot (shapes must match this simulation's deck)
    /// and resume from its time/step cursor. Serial executor only.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<()> {
        let Engine::Serial(engine) = &mut self.engine else {
            return Err(BookLeafError::InvalidDeck(
                "snapshots require the serial executor".into(),
            ));
        };
        engine.install(snap, &self.deck, &self.config)
    }

    /// Capture a portable, versioned [`Checkpoint`]: the full restart
    /// state plus the input deck that rebuilds this problem (so
    /// [`SimulationBuilder::resume`] needs nothing but the file). Works
    /// under every executor — distributed runs checkpoint their
    /// assembled global view — but requires a deck that carries a
    /// problem spec ([`Deck::spec`]); hand-assembled decks cannot be
    /// checkpointed and return a typed
    /// [`CheckpointError::DeckMismatch`].
    pub fn checkpoint(&self) -> Result<Checkpoint> {
        let Some(problem) = self
            .deck
            .spec
            .clone()
            .or_else(|| self.input.as_ref().map(|i| i.problem.clone()))
        else {
            return Err(CheckpointError::DeckMismatch {
                message: "this deck was assembled by hand and carries no problem spec, \
                          so a resumed run could not rebuild it; construct the deck \
                          via bookleaf_core::decks or an input deck to checkpoint"
                    .into(),
            }
            .into());
        };
        // Embed the *effective* configuration so the checkpoint is
        // self-contained: resuming without overrides continues exactly
        // this run (same final time, dt controls, ALE and executor).
        let input = InputDeck {
            problem,
            final_time: Some(self.config.final_time),
            max_steps: self.config.max_steps,
            overlap: self.config.overlap,
            dt: self.config.dt,
            ale: self.config.ale,
            executor: self.config.executor,
        };
        let snap = match &self.engine {
            Engine::Serial(e) => Snapshot::capture(
                &e.mesh,
                &e.state,
                e.cursor.t,
                e.cursor.steps as u64,
                e.cursor.dt_prev,
            ),
            Engine::Distributed(v) => Snapshot::capture(
                &v.mesh,
                &v.state,
                v.cursor.t,
                v.cursor.steps as u64,
                v.cursor.dt_prev,
            ),
        };
        Ok(Checkpoint { input, snap })
    }

    /// Write [`Simulation::checkpoint`] to a file (see
    /// [`crate::output`] for the on-disk format).
    pub fn checkpoint_to(&self, path: impl Into<PathBuf>) -> Result<()> {
        self.checkpoint()?.write_to(path.into())?;
        Ok(())
    }

    /// The loop cursor: where the next `run` continues from (serial
    /// engines advance it in place; distributed engines mirror the
    /// team's cursor into the assembled view after each run).
    pub(crate) fn cursor(&self) -> &LoopState {
        match &self.engine {
            Engine::Serial(e) => &e.cursor,
            Engine::Distributed(v) => &v.cursor,
        }
    }

    /// Mutable configuration access for the resilience supervisor
    /// (segment caps, executor reshapes).
    pub(crate) fn config_mut(&mut self) -> &mut RunConfig {
        &mut self.config
    }

    /// Make the next distributed `run` start from `snap` (serial
    /// engines carry their state in place and ignore this).
    pub(crate) fn prime_resume(&mut self, snap: &Snapshot) {
        self.resume = Some(Box::new(snap.clone()));
    }

    /// Rewind for a supervised retry: rebuild the engine to match the
    /// *current* configured executor — the supervisor may have reshaped
    /// it, including across the serial/distributed divide — and install
    /// `snap` as the state the retry continues from.
    pub(crate) fn rewind_to(&mut self, snap: &Snapshot) -> Result<()> {
        self.engine = match self.config.executor {
            ExecutorKind::Serial => {
                let mut engine = SerialEngine::new(&self.deck, &self.config)?;
                engine.install(snap, &self.deck, &self.config)?;
                Engine::Serial(Box::new(engine))
            }
            ExecutorKind::FlatMpi { .. } | ExecutorKind::Hybrid { .. } => {
                let mut view = AssembledView::new(&self.deck)?;
                view.install(snap, &self.deck, &self.config)?;
                Engine::Distributed(Box::new(view))
            }
        };
        self.resume = Some(Box::new(snap.clone()));
        Ok(())
    }

    /// The problem deck this simulation was built from.
    #[must_use]
    pub fn deck(&self) -> &Deck {
        &self.deck
    }

    /// The parsed input-deck spec, when the deck came from text.
    #[must_use]
    pub fn input_deck(&self) -> Option<&InputDeck> {
        self.input.as_ref()
    }

    /// The effective run configuration.
    #[must_use]
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The current mesh: live solver state for serial runs, the
    /// assembled global view after distributed runs.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        match &self.engine {
            Engine::Serial(e) => &e.mesh,
            Engine::Distributed(v) => &v.mesh,
        }
    }

    /// The current state (see [`Simulation::mesh`] for the semantics;
    /// distributed runs assemble ρ, ε, p, u and node positions).
    #[must_use]
    pub fn state(&self) -> &HydroState {
        match &self.engine {
            Engine::Serial(e) => &e.state,
            Engine::Distributed(v) => &v.state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decks;
    use crate::observer::{ConservationTracer, DtHistory, Shared};
    use bookleaf_ale::AleMode;
    use bookleaf_util::KernelId;

    #[test]
    fn sod_runs_and_conserves_energy() {
        let mut sim = Simulation::builder()
            .deck(decks::sod(40, 4))
            .final_time(0.05)
            .build()
            .unwrap();
        let s = sim.run().unwrap();
        assert!(s.steps > 10, "only {} steps", s.steps);
        assert!((s.time - 0.05).abs() < 1e-12, "time {}", s.time);
        assert!(s.energy_drift() < 1e-9, "drift {}", s.energy_drift());
        assert_eq!(s.ranks, 1);
        assert_eq!(s.comm.messages_sent, 0, "serial run sent messages?");
        let rho_max = sim.state().rho.iter().cloned().fold(0.0f64, f64::max);
        assert!(rho_max > 0.13, "no wave formed");
    }

    #[test]
    fn noh_forms_a_shock() {
        let mut sim = Simulation::builder()
            .deck(decks::noh(16))
            .final_time(0.1)
            .build()
            .unwrap();
        sim.run().unwrap();
        assert!(sim.state().rho[0] > 3.0, "rho[0] = {}", sim.state().rho[0]);
    }

    #[test]
    fn saltzmann_piston_compresses() {
        let mut sim = Simulation::builder()
            .deck(decks::saltzmann(40, 4))
            .final_time(0.1)
            .build()
            .unwrap();
        let s = sim.run().unwrap();
        assert!(s.steps > 0);
        let min_x = sim
            .mesh()
            .nodes
            .iter()
            .map(|p| p.x)
            .fold(f64::INFINITY, f64::min);
        assert!((min_x - 0.1).abs() < 0.02, "piston at {min_x}");
        let rho_max = sim.state().rho.iter().cloned().fold(0.0f64, f64::max);
        assert!(rho_max > 2.0, "rho_max = {rho_max}");
    }

    #[test]
    fn eulerian_ale_keeps_mesh_fixed() {
        let deck = decks::sod(30, 3);
        let x_ref = deck.mesh.nodes.clone();
        let mut sim = Simulation::builder()
            .deck(deck)
            .final_time(0.03)
            .ale(Some(AleOptions {
                mode: AleMode::Eulerian,
                frequency: 1,
            }))
            .build()
            .unwrap();
        sim.run().unwrap();
        for (n, p) in sim.mesh().nodes.iter().enumerate() {
            assert!(p.distance(x_ref[n]) < 1e-12, "node {n} wandered");
        }
        let m: f64 = sim.state().mass.iter().sum();
        let expect = 0.5 * 0.1 + 0.5 * 0.1 * 0.125;
        assert!((m - expect).abs() < 1e-9, "mass {m} vs {expect}");
    }

    #[test]
    fn timers_populate_table_two_buckets() {
        let mut sim = Simulation::builder()
            .deck(decks::noh(12))
            .final_time(0.02)
            .build()
            .unwrap();
        let s = sim.run().unwrap();
        for k in [
            KernelId::GetQ,
            KernelId::GetAcc,
            KernelId::GetDt,
            KernelId::EosFused,
        ] {
            assert!(s.timers.calls(k) > 0, "{k:?} never timed");
        }
        assert_eq!(s.timers.calls(KernelId::GetQ), 2 * s.steps as u64);
        assert_eq!(s.timers.calls(KernelId::GetAcc), s.steps as u64);
        // With EOS fusion on by default, the four-kernel chain never runs
        // standalone inside the lagstep: its time lands in the fused bucket.
        assert_eq!(s.timers.calls(KernelId::EosFused), 2 * s.steps as u64);
        assert_eq!(s.timers.calls(KernelId::GetGeom), 0);
    }

    #[test]
    fn max_steps_caps_the_run() {
        let mut sim = Simulation::builder()
            .deck(decks::sod(20, 2))
            .final_time(10.0)
            .max_steps(5)
            .build()
            .unwrap();
        let s = sim.run().unwrap();
        assert_eq!(s.steps, 5);
        assert!(s.time < 10.0);
    }

    #[test]
    fn final_time_hit_exactly() {
        let mut sim = Simulation::builder()
            .deck(decks::sod(20, 2))
            .final_time(0.01)
            .build()
            .unwrap();
        let s = sim.run().unwrap();
        assert!((s.time - 0.01).abs() < 1e-14);
    }

    #[test]
    fn builder_without_deck_is_rejected() {
        let err = Simulation::builder().final_time(0.1).build().unwrap_err();
        assert!(matches!(err, BookLeafError::InvalidDeck(_)), "{err}");
    }

    #[test]
    fn builder_validates_the_deck() {
        let mut deck = decks::sod(8, 2);
        deck.ein.truncate(3);
        let err = Simulation::builder().deck(deck).build().unwrap_err();
        assert!(
            matches!(err, BookLeafError::Deck(DeckError::Shape { .. })),
            "{err}"
        );
    }

    #[test]
    fn deck_str_options_flow_into_config_and_setters_override() {
        let text = "problem = sod\nnx = 16\nny = 2\n\n[control]\nfinal_time = 0.07\n";
        let sim = Simulation::builder().deck_str(text).build().unwrap();
        assert!((sim.config().final_time - 0.07).abs() < 1e-15);
        assert!(sim.input_deck().is_some());

        let sim = Simulation::builder()
            .deck_str(text)
            .final_time(0.01)
            .build()
            .unwrap();
        assert!((sim.config().final_time - 0.01).abs() < 1e-15);
    }

    #[test]
    fn deck_str_parse_errors_are_line_anchored() {
        let err = Simulation::builder()
            .deck_str("problem = sod\nnx = 16\nny = nope\n")
            .build()
            .unwrap_err();
        assert!(
            matches!(err, BookLeafError::Deck(DeckError::Text { line: 3, .. })),
            "{err}"
        );
    }

    #[test]
    fn observers_fire_and_share_state() {
        let tracer = Shared::new(ConservationTracer::new());
        let dts = Shared::new(DtHistory::new());
        let mut sim = Simulation::builder()
            .deck(decks::sod(20, 2))
            .final_time(0.01)
            .observer(tracer.clone())
            .observer(dts.clone())
            .build()
            .unwrap();
        let s = sim.run().unwrap();
        // One energy sample at run begin plus one per step.
        assert_eq!(tracer.with(|t| t.samples().len()), s.steps + 1);
        assert!(tracer.with(|t| t.max_drift()) < 1e-9);
        assert_eq!(dts.with(|d| d.samples().len()), s.steps);
        // The recorded dts integrate to the simulated time.
        let sum: f64 = dts.with(|d| d.samples().iter().map(|s| s.dt).sum());
        assert!((sum - s.time).abs() < 1e-12);
    }

    #[test]
    fn observers_do_not_perturb_the_physics() {
        let run = |observed: bool| {
            let mut b = Simulation::builder()
                .deck(decks::sod(20, 2))
                .final_time(0.01);
            if observed {
                b = b.observer(ConservationTracer::new());
            }
            let mut sim = b.build().unwrap();
            sim.run().unwrap();
            sim.state().rho.clone()
        };
        let plain = run(false);
        let watched = run(true);
        for (e, (a, b)) in plain.iter().zip(&watched).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "observer moved a bit at {e}");
        }
    }

    #[test]
    fn serial_run_is_resumable_via_advance_to() {
        let mut sim = Simulation::builder()
            .deck(decks::sod(16, 2))
            .final_time(0.02)
            .build()
            .unwrap();
        let cursor = sim.advance_to(0.01).unwrap();
        assert!(cursor.t >= 0.01 - 1e-12 && cursor.t < 0.02);
        let s = sim.run().unwrap();
        assert!((s.time - 0.02).abs() < 1e-12);

        // One-shot reference run. advance_to truncates one dt to land
        // exactly on the pause target and the growth limiter ramps from
        // that truncated value, so the dt *sequences* differ — physics
        // must still agree closely (`tests/restart.rs` pins the same
        // contract for snapshots).
        let mut reference = Simulation::builder()
            .deck(decks::sod(16, 2))
            .final_time(0.02)
            .build()
            .unwrap();
        reference.run().unwrap();
        for e in 0..sim.state().rho.len() {
            let (a, b) = (sim.state().rho[e], reference.state().rho[e]);
            assert!((a - b).abs() < 1e-3, "rho diverged at {e}: {a} vs {b}");
        }
    }
}
