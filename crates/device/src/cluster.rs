//! Multi-node strong-scaling model (Figs 3 and 4).
//!
//! The paper's §V-C study runs the Sod solver (hybrid MPI+OpenMP) on 8 to
//! 64 Cray XC50 nodes and observes **super-linear scaling between 8 and
//! 16 nodes** — attributed to "significantly better cache utilisation
//! ... when the problem set is divided to a certain size" — followed by
//! near-linear scaling, with very little communication in the way (two
//! halo exchanges and one reduction per step).
//!
//! The model captures exactly those terms:
//!
//! * compute: the single-node roofline of [`crate::cpu`] divided across
//!   nodes, with the platform's `cache_boost` applied when a core's
//!   working-set share fits its cache (the super-linear regime);
//! * communication: per-step messages (2 exchanges × neighbours) at
//!   Aries latency plus halo bytes over bandwidth — small, as observed;
//! * the serial partitioner term of §V-C (why the paper used hybrid for
//!   this study: fewer ranks keep the serial partitioner off the
//!   critical path). It is included so the flat-MPI configuration shows
//!   the degradation the paper describes.

use bookleaf_util::{KernelId, TimerReport};

use crate::cost::WorkloadCount;
use crate::cpu::{CpuExecution, CpuModel};
use crate::platform::{CpuPlatform, Interconnect};

/// Bytes of state per element that must stream each step (for the cache
/// residency test): the full SoA field set.
const STATE_BYTES_PER_ELEMENT: f64 = 300.0;

/// Strong-scaling cluster model.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// The node type.
    pub node: CpuPlatform,
    /// The network.
    pub network: Interconnect,
    /// Per-element cost of the serial partitioner (seconds) — §V-C.
    pub partitioner_s_per_element: f64,
}

impl ClusterModel {
    /// XC50-like cluster of the given nodes.
    #[must_use]
    pub fn xc50(node: CpuPlatform) -> Self {
        ClusterModel {
            node,
            network: Interconnect::aries(),
            partitioner_s_per_element: 2.0e-7,
        }
    }

    /// Per-kernel + comms report for `workload` on `nodes` nodes under
    /// `exec`.
    #[must_use]
    pub fn report(&self, workload: WorkloadCount, nodes: usize, exec: CpuExecution) -> TimerReport {
        let cpu = CpuModel::new(self.node);
        // Per-node slice of the problem.
        let slice = WorkloadCount {
            elements: workload.elements.div_ceil(nodes),
            steps: workload.steps,
        };

        // Cache residency: does one core's share of the state fit?
        let cores = self.node.cores() as f64;
        let ws_per_core = slice.elements as f64 * STATE_BYTES_PER_ELEMENT / cores;
        let cache = self.node.cache_per_core_mib * 1024.0 * 1024.0;
        let boost = if ws_per_core <= cache {
            self.node.cache_boost
        } else {
            1.0
        };

        let mut rep = TimerReport::zero();
        for k in KernelId::ALL {
            rep.set_seconds(k, cpu.kernel_seconds(k, slice, exec) / boost);
        }

        // Communication: per step, 2 halo exchange phases (before
        // viscosity, before acceleration) with ~4 neighbours each, plus
        // one allreduce (log2(nodes) latency hops); halo volume scales
        // with the partition surface ~ sqrt(elements per rank).
        let ranks_per_node = match exec {
            CpuExecution::FlatMpi => self.node.cores(),
            CpuExecution::Hybrid => self.node.sockets,
        };
        let total_ranks = (ranks_per_node * nodes) as f64;
        let halo_elements = (workload.elements as f64 / total_ranks).sqrt().ceil() * 4.0;
        let halo_bytes = halo_elements * 8.0 * 12.0; // ~12 doubles per halo element
        let per_step = 2.0
            * (4.0 * self.network.latency_us * 1e-6 + halo_bytes / (self.network.bandwidth * 1e9))
            + (total_ranks.log2().ceil() * self.network.latency_us * 1e-6);
        rep.set_seconds(KernelId::Comms, workload.steps as f64 * per_step);

        // Serial partitioner (setup, once): proportional to the global
        // element count and to the rank count's bookkeeping.
        let partition_t = workload.elements as f64
            * self.partitioner_s_per_element
            * (1.0 + (total_ranks / 64.0));
        rep.set_seconds(KernelId::Other, partition_t);
        rep
    }

    /// Overall seconds (all kernels + comms + setup).
    #[must_use]
    pub fn overall(&self, workload: WorkloadCount, nodes: usize, exec: CpuExecution) -> f64 {
        self.report(workload, nodes, exec).total_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Sod strong-scaling workload: sized so the per-core
    /// working set crosses the cache capacity between 8 and 16 nodes
    /// (6M elements / 8 nodes / 56 cores ≈ 4 MB > cache; at 16 nodes
    /// ≈ 2 MB ≤ cache), putting the super-linear regime where Fig 3 has
    /// it, on both platforms.
    fn sod_like() -> WorkloadCount {
        WorkloadCount {
            elements: 6_000_000,
            steps: 12_000,
        }
    }

    #[test]
    fn superlinear_between_8_and_16_nodes() {
        for node in [CpuPlatform::skylake(), CpuPlatform::broadwell()] {
            let m = ClusterModel::xc50(node);
            let t8 = m.overall(sod_like(), 8, CpuExecution::Hybrid);
            let t16 = m.overall(sod_like(), 16, CpuExecution::Hybrid);
            let speedup = t8 / t16;
            assert!(
                speedup > 2.05 && speedup < 4.5,
                "{}: 8->16 nodes speedup {speedup:.2} should be super-linear",
                node.name
            );
        }
    }

    #[test]
    fn near_linear_beyond_16_nodes() {
        let m = ClusterModel::xc50(CpuPlatform::skylake());
        let t16 = m.overall(sod_like(), 16, CpuExecution::Hybrid);
        let t32 = m.overall(sod_like(), 32, CpuExecution::Hybrid);
        let t64 = m.overall(sod_like(), 64, CpuExecution::Hybrid);
        for (a, b, label) in [(t16, t32, "16->32"), (t32, t64, "32->64")] {
            let speedup = a / b;
            assert!(
                (1.5..2.3).contains(&speedup),
                "{label}: speedup {speedup:.2} should be near-linear"
            );
        }
    }

    #[test]
    fn skylake_curve_below_broadwell_with_same_shape() {
        let s = ClusterModel::xc50(CpuPlatform::skylake());
        let b = ClusterModel::xc50(CpuPlatform::broadwell());
        let mut ratios = Vec::new();
        for nodes in [8, 16, 32, 64] {
            let ts = s.overall(sod_like(), nodes, CpuExecution::Hybrid);
            let tb = b.overall(sod_like(), nodes, CpuExecution::Hybrid);
            assert!(
                ts < tb,
                "{nodes} nodes: skylake {ts:.0} vs broadwell {tb:.0}"
            );
            ratios.push(tb / ts);
        }
        // "The scaling curve is similar": the platform gap stays within a
        // narrow band across node counts.
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo < 1.6, "curve shapes diverge: ratios {ratios:?}");
    }

    #[test]
    fn kernels_scale_like_the_whole(/* Fig 4 */) {
        let m = ClusterModel::xc50(CpuPlatform::skylake());
        for k in [KernelId::GetQ, KernelId::GetAcc] {
            let t8 = m.report(sod_like(), 8, CpuExecution::Hybrid).seconds(k);
            let t16 = m.report(sod_like(), 16, CpuExecution::Hybrid).seconds(k);
            let t64 = m.report(sod_like(), 64, CpuExecution::Hybrid).seconds(k);
            assert!(t8 / t16 > 2.0, "{k:?} should scale super-linearly 8->16");
            assert!(t16 / t64 > 2.0, "{k:?} should keep scaling to 64");
        }
    }

    #[test]
    fn communication_stays_minor() {
        // §V-C: "the communication overhead ... does not cause a
        // significant issue when increasing node counts."
        let m = ClusterModel::xc50(CpuPlatform::skylake());
        for nodes in [8, 64] {
            let rep = m.report(sod_like(), nodes, CpuExecution::Hybrid);
            let frac = rep.seconds(KernelId::Comms) / rep.total_seconds();
            assert!(frac < 0.15, "{nodes} nodes: comm fraction {frac:.3}");
        }
    }

    #[test]
    fn flat_mpi_partitioner_term_grows_with_ranks() {
        // §V-C's reason for using hybrid in the scaling study.
        let m = ClusterModel::xc50(CpuPlatform::skylake());
        let hybrid = m
            .report(sod_like(), 64, CpuExecution::Hybrid)
            .seconds(KernelId::Other);
        let flat = m
            .report(sod_like(), 64, CpuExecution::FlatMpi)
            .seconds(KernelId::Other);
        assert!(
            flat > 5.0 * hybrid,
            "flat {flat:.1}s vs hybrid {hybrid:.1}s"
        );
    }
}
