//! Per-kernel work counts.
//!
//! The roofline models need, for every kernel, the floating-point
//! operations and bytes moved per element per invocation. These counts
//! were audited against the `bookleaf-hydro` kernel implementations
//! (counting one flop per add/mul/div/sqrt and 8 bytes per distinct
//! double touched, with gather-amplified traffic for the
//! neighbour-reaching kernels).

use bookleaf_util::KernelId;

/// Flop and byte counts per element for one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Double-precision flops per element.
    pub flops: f64,
    /// Bytes moved per element (read + write, gather-amplified).
    pub bytes: f64,
    /// Invocations per time step (predictor + corrector where relevant).
    pub calls_per_step: f64,
    /// Fraction of the kernel that a threaded (OpenMP-style) port runs
    /// serially *per rank* — Amdahl term for the hybrid model. Calibrated
    /// from the Table II hybrid/flat ratios; the mechanisms are the
    /// acceleration scatter dependency, the `MINVAL`/`MINLOC` scans of
    /// `getdt`, and the error-scan reduction of `getgeom` (§IV-B).
    pub serial_fraction: f64,
}

impl KernelCost {
    /// The audited cost table.
    #[must_use]
    pub fn of(kernel: KernelId) -> KernelCost {
        match kernel {
            // NOTE: flop/byte values below are *effective* (cache-aware)
            // counts calibrated so the roofline reproduces Table II's
            // per-kernel proportions; raw code audits gave the same
            // ordering but overweighted the cache-resident kernels.
            // getq: neighbour gathers (5 elements of state), centroid,
            // 4 faces × (midpoints, normalised direction with sqrt+div,
            // limiter, two fused multiplies). Two calls per step.
            KernelId::GetQ => KernelCost {
                flops: 800.0,
                bytes: 800.0,
                calls_per_step: 2.0,
                serial_fraction: 0.007,
            },
            // getacc: node gather of 4-ish corners (mass+force), divide,
            // BC, two axpy. One call per step, node-centred (≈ element
            // count). The scatter formulation serialises nearly all of it
            // in a threaded port.
            KernelId::GetAcc => KernelCost {
                flops: 230.0,
                bytes: 230.0,
                calls_per_step: 1.0,
                serial_fraction: 0.10,
            },
            // getdt: divergence (area gradient dot), CFL ratio, min-scan.
            KernelId::GetDt => KernelCost {
                flops: 306.0,
                bytes: 306.0,
                calls_per_step: 1.0,
                serial_fraction: 0.30,
            },
            // getgeom: shoelace, corner volumes (4 sub-quads), lengths
            // with sqrt; volume-positivity error scan. Two calls.
            KernelId::GetGeom => KernelCost {
                flops: 59.0,
                bytes: 59.0,
                calls_per_step: 2.0,
                serial_fraction: 0.35,
            },
            // getforce: area gradient, 4 edge-q terms, hourglass filter,
            // sub-zonal pressures. Two calls.
            KernelId::GetForce => KernelCost {
                flops: 93.0,
                bytes: 93.0,
                calls_per_step: 2.0,
                serial_fraction: 0.0,
            },
            // getpc: EoS polynomial + sqrt. Two calls.
            KernelId::GetPc => KernelCost {
                flops: 23.0,
                bytes: 23.0,
                calls_per_step: 2.0,
                serial_fraction: 0.0,
            },
            // getrho: one divide, three doubles.
            KernelId::GetRho => KernelCost {
                flops: 8.0,
                bytes: 8.0,
                calls_per_step: 2.0,
                serial_fraction: 0.0,
            },
            // getein: 4 corner dot products + axpy. Two calls.
            KernelId::GetEin => KernelCost {
                flops: 16.0,
                bytes: 16.0,
                calls_per_step: 2.0,
                serial_fraction: 0.0,
            },
            // The fused getgeom→getrho→getein→getpc sweep. The paper
            // platforms (and the calibrated models above) ran the
            // *unfused* reference chain, so the fused kernel gets zero
            // calls per step here — the chain's cost is charged through
            // its four constituents, and pinned model outputs are
            // unchanged. Flops are the exact sum of the chain; bytes
            // drop to one traversal of the shared element arrays
            // (corners, mass, rho, ein read once instead of once per
            // kernel) — the raw audit in [`RawCost`] carries the
            // per-array breakdown.
            KernelId::EosFused => KernelCost {
                flops: 106.0,
                bytes: 74.0,
                calls_per_step: 0.0,
                serial_fraction: 0.35,
            },
            // Remap (when active): flux volumes + limited advection.
            KernelId::Ale => KernelCost {
                flops: 260.0,
                bytes: 540.0,
                calls_per_step: 1.0,
                serial_fraction: 0.05,
            },
            // Comms / other: no per-element cost (modeled separately).
            KernelId::Comms | KernelId::Other => KernelCost {
                flops: 0.0,
                bytes: 0.0,
                calls_per_step: 0.0,
                serial_fraction: 0.0,
            },
        }
    }

    /// Number of distinct per-element array arguments the kernel passes
    /// to a device launch — drives the CUDA Fortran dope-vector transfer
    /// overhead (§IV-D: 72–96 bytes per assumed-size array per launch).
    #[must_use]
    pub fn device_array_args(kernel: KernelId) -> usize {
        match kernel {
            KernelId::GetQ => 10,
            KernelId::GetAcc => 8,
            KernelId::GetDt => 7,
            KernelId::GetGeom => 6,
            KernelId::GetForce => 11,
            KernelId::GetPc => 5,
            KernelId::GetRho => 3,
            KernelId::GetEin => 6,
            // Fused chain: the union of its constituents' argument
            // lists, with the shared arrays (geometry, rho, ein, mass)
            // deduplicated.
            KernelId::EosFused => 14,
            KernelId::Ale => 9,
            KernelId::Comms | KernelId::Other => 0,
        }
    }
}

/// Raw audited work counts for the EOS-chain kernels and their fused
/// sweep: exactly one flop per `add`/`sub`/`mul`/`div`/`sqrt` executed
/// per element (comparisons, `abs`, `min`/`max` are free), and 8 bytes
/// per *distinct* double the element touches (a value read and written
/// in place counts once; no cache model, no gather amplification).
///
/// These are the counts a traced instrumented run of each kernel
/// reproduces (see the `kernel_cost_audit` test in `bookleaf-bench`,
/// which mirrors each kernel's per-element arithmetic with a counting
/// scalar type, checks the mirror against the real kernel bitwise, and
/// compares its tallies to this table). They deliberately differ from
/// [`KernelCost::of`], whose *effective* counts are calibrated so the
/// platform models reproduce the paper's Table II proportions.
///
/// The EOS-evaluation flop count is for the ideal-gas form (the form
/// every standard deck uses); other EOS forms execute more arithmetic
/// in `getpc` but move the same bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawCost {
    /// Double-precision flops per element per invocation.
    pub flops: f64,
    /// Bytes per element per invocation (8 × distinct doubles touched).
    pub bytes: f64,
}

impl RawCost {
    /// The audit table. `None` for kernels outside the EOS chain.
    #[must_use]
    pub fn of(kernel: KernelId) -> Option<RawCost> {
        match kernel {
            // quad_area 16 + corner_volumes 104 + char_length 41 flops;
            // touches 8 corner coordinates, writes volume + 4 corner
            // volumes + length: 14 doubles.
            KernelId::GetGeom => Some(RawCost {
                flops: 161.0,
                bytes: 112.0,
            }),
            // One divide; reads mass and volume, writes rho: 3 doubles.
            KernelId::GetRho => Some(RawCost {
                flops: 1.0,
                bytes: 24.0,
            }),
            // 4 corners × (2 mul + 2 add) + mul + div + sub; reads the
            // two 4-wide force rows, 4 nodal velocities (8 doubles) and
            // mass, updates ein in place: 18 doubles.
            KernelId::GetEin => Some(RawCost {
                flops: 19.0,
                bytes: 144.0,
            }),
            // Ideal gas: p = (γ−1)ρε (3), ∂p/∂ρ (2), ∂p/∂ε (2), cs²
            // assembly (4); reads rho + ein, writes p + cs²: 4 doubles.
            KernelId::GetPc => Some(RawCost {
                flops: 11.0,
                bytes: 32.0,
            }),
            // The fused sweep executes the chain's arithmetic verbatim
            // (161 + 1 + 19 + 11) but touches the shared doubles once:
            // the chain's 39 distinct doubles collapse to 35 (volume,
            // mass, rho and ein are no longer re-read by the downstream
            // kernels).
            KernelId::EosFused => Some(RawCost {
                flops: 192.0,
                bytes: 280.0,
            }),
            _ => None,
        }
    }
}

/// A workload: how many elements and steps a run processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadCount {
    /// Mesh elements.
    pub elements: usize,
    /// Time steps.
    pub steps: usize,
}

impl WorkloadCount {
    /// Element-steps processed by one kernel over the run.
    #[must_use]
    pub fn element_calls(&self, kernel: KernelId) -> f64 {
        self.elements as f64 * self.steps as f64 * KernelCost::of(kernel).calls_per_step
    }

    /// Kernel launches over the run (for GPU launch overheads).
    #[must_use]
    pub fn launches(&self, kernel: KernelId) -> f64 {
        self.steps as f64 * KernelCost::of(kernel).calls_per_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viscosity_is_the_heavy_kernel() {
        let q = KernelCost::of(KernelId::GetQ);
        for k in [
            KernelId::GetAcc,
            KernelId::GetDt,
            KernelId::GetGeom,
            KernelId::GetPc,
        ] {
            let other = KernelCost::of(k);
            assert!(
                q.flops * q.calls_per_step > other.flops * other.calls_per_step,
                "{k:?} should be cheaper than getq"
            );
        }
    }

    #[test]
    fn serial_fractions_match_paper_ordering() {
        // Table II hybrid blow-ups: getgeom > getdt > getacc > getq.
        let sf = |k| KernelCost::of(k).serial_fraction;
        assert!(sf(KernelId::GetGeom) > sf(KernelId::GetDt));
        assert!(sf(KernelId::GetDt) > sf(KernelId::GetAcc));
        assert!(sf(KernelId::GetAcc) > sf(KernelId::GetQ));
    }

    #[test]
    fn workload_counting() {
        let w = WorkloadCount {
            elements: 1000,
            steps: 10,
        };
        assert_eq!(w.element_calls(KernelId::GetQ), 20_000.0);
        assert_eq!(w.launches(KernelId::GetAcc), 10.0);
    }

    #[test]
    fn comms_carries_no_element_cost() {
        let c = KernelCost::of(KernelId::Comms);
        assert_eq!(c.flops, 0.0);
        assert_eq!(c.bytes, 0.0);
    }

    const EOS_CHAIN: [KernelId; 4] = [
        KernelId::GetGeom,
        KernelId::GetRho,
        KernelId::GetEin,
        KernelId::GetPc,
    ];

    #[test]
    fn fused_eos_executes_the_chain_arithmetic_verbatim() {
        // Fusion never changes the arithmetic — that is the bitwise
        // contract — so the raw flop count must be the exact chain sum.
        let chain: f64 = EOS_CHAIN
            .iter()
            .map(|&k| RawCost::of(k).expect("chain kernel audited").flops)
            .sum();
        let fused = RawCost::of(KernelId::EosFused).expect("audited");
        assert_eq!(fused.flops, chain);
    }

    #[test]
    fn fused_eos_moves_fewer_bytes_than_the_chain() {
        // The saving is exactly the shared doubles the chain re-reads:
        // volume, mass, rho, ein — 4 doubles = 32 bytes per element.
        let chain: f64 = EOS_CHAIN
            .iter()
            .map(|&k| RawCost::of(k).expect("chain kernel audited").bytes)
            .sum();
        let fused = RawCost::of(KernelId::EosFused).expect("audited");
        assert!(fused.bytes < chain);
        assert_eq!(chain - fused.bytes, 32.0);
    }

    #[test]
    fn raw_audit_covers_exactly_the_eos_chain() {
        for k in KernelId::ALL {
            let audited = RawCost::of(k).is_some();
            let in_chain = EOS_CHAIN.contains(&k) || k == KernelId::EosFused;
            assert_eq!(audited, in_chain, "{k:?}");
        }
    }

    #[test]
    fn fused_eos_never_launches_in_the_paper_models() {
        // The paper platforms ran the unfused reference chain; the fused
        // kernel must not perturb the pinned model outputs.
        let c = KernelCost::of(KernelId::EosFused);
        assert_eq!(c.calls_per_step, 0.0);
        let w = WorkloadCount {
            elements: 1000,
            steps: 10,
        };
        assert_eq!(w.element_calls(KernelId::EosFused), 0.0);
    }
}
