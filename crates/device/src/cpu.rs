//! CPU node model: flat MPI vs hybrid MPI+OpenMP.
//!
//! Per-kernel node time is a roofline over the platform's aggregate
//! streaming bandwidth and flop rate, plus an Amdahl term for the hybrid
//! model: a kernel's `serial_fraction` runs once per *rank* on a single
//! core instead of spread over all cores. Under flat MPI every core is a
//! rank, so the serial part runs concurrently everywhere and costs
//! nothing extra — which is exactly why the paper's Table II shows flat
//! MPI beating hybrid overall while the (almost fully parallel)
//! viscosity kernel stays within a few percent.

use bookleaf_util::{KernelId, TimerReport};

use crate::cost::{KernelCost, WorkloadCount};
use crate::platform::CpuPlatform;

/// How the node is programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuExecution {
    /// One MPI rank per physical core.
    FlatMpi,
    /// One MPI rank per NUMA region (socket), OpenMP threads inside.
    Hybrid,
}

/// Single-node CPU performance model.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// The node being modeled.
    pub platform: CpuPlatform,
    /// Threading overhead multiplier applied to the parallel part under
    /// the hybrid model (fork/join, NUMA traffic).
    pub thread_overhead: f64,
    /// Bandwidth multiplier a *single* core achieves when running alone
    /// (serial sections are not squeezed to the all-cores share).
    pub solo_bw_factor: f64,
}

impl CpuModel {
    /// Model with default overheads.
    #[must_use]
    pub fn new(platform: CpuPlatform) -> Self {
        CpuModel {
            platform,
            thread_overhead: 1.06,
            solo_bw_factor: 2.0,
        }
    }

    /// Seconds a kernel takes for `workload` under `exec` on one node.
    #[must_use]
    pub fn kernel_seconds(
        &self,
        kernel: KernelId,
        workload: WorkloadCount,
        exec: CpuExecution,
    ) -> f64 {
        let cost = KernelCost::of(kernel);
        let n = workload.element_calls(kernel);
        if n == 0.0 {
            return 0.0;
        }
        let cores = self.platform.cores() as f64;
        let t_flops = n * cost.flops / (cores * self.platform.gflops_per_core * 1e9);
        let t_bytes = n * cost.bytes / (cores * self.platform.mem_bw_per_core * 1e9);
        let t_par = t_flops.max(t_bytes);

        match exec {
            CpuExecution::FlatMpi => t_par,
            CpuExecution::Hybrid => {
                let ranks = self.platform.sockets as f64;
                let sf = cost.serial_fraction;
                // Serial share: each rank's single thread processes the
                // rank's slice of the serial fraction at solo rate.
                let solo_bw = self.platform.mem_bw_per_core * self.solo_bw_factor * 1e9;
                let solo_fl = self.platform.gflops_per_core * 1e9;
                let t_serial = (n * sf / ranks) * (cost.flops / solo_fl).max(cost.bytes / solo_bw);
                (1.0 - sf) * t_par * self.thread_overhead + t_serial
            }
        }
    }

    /// Full per-kernel report for the hydro loop (no remap).
    #[must_use]
    pub fn report(&self, workload: WorkloadCount, exec: CpuExecution) -> TimerReport {
        let mut rep = TimerReport::zero();
        for k in KernelId::ALL {
            rep.set_seconds(k, self.kernel_seconds(k, workload, exec));
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CpuPlatform;

    /// The paper's Noh single-node run: a workload sized so Skylake flat
    /// MPI lands near Table II's 76 s overall.
    fn noh_like() -> WorkloadCount {
        WorkloadCount {
            elements: 4_000_000,
            steps: 930,
        }
    }

    #[test]
    fn flat_mpi_beats_hybrid_overall() {
        for platform in [CpuPlatform::skylake(), CpuPlatform::broadwell()] {
            let m = CpuModel::new(platform);
            let flat = m.report(noh_like(), CpuExecution::FlatMpi).total_seconds();
            let hybrid = m.report(noh_like(), CpuExecution::Hybrid).total_seconds();
            assert!(
                hybrid > 1.5 * flat,
                "{}: hybrid {hybrid:.1} should be well above flat {flat:.1}",
                platform.name
            );
        }
    }

    #[test]
    fn viscosity_within_fifteen_percent_between_models() {
        // Table II / Fig 2a: the viscosity kernel hybrid/flat gap is small.
        let m = CpuModel::new(CpuPlatform::skylake());
        let flat = m.kernel_seconds(KernelId::GetQ, noh_like(), CpuExecution::FlatMpi);
        let hybrid = m.kernel_seconds(KernelId::GetQ, noh_like(), CpuExecution::Hybrid);
        let ratio = hybrid / flat;
        assert!(
            (1.0..1.25).contains(&ratio),
            "viscosity hybrid/flat = {ratio:.3}"
        );
    }

    #[test]
    fn acceleration_suffers_under_hybrid() {
        // Fig 2b: the data-dependent acceleration kernel blows up ~2.4x.
        let m = CpuModel::new(CpuPlatform::skylake());
        let flat = m.kernel_seconds(KernelId::GetAcc, noh_like(), CpuExecution::FlatMpi);
        let hybrid = m.kernel_seconds(KernelId::GetAcc, noh_like(), CpuExecution::Hybrid);
        let ratio = hybrid / flat;
        assert!(
            (1.8..3.5).contains(&ratio),
            "acceleration hybrid/flat = {ratio:.2}"
        );
    }

    #[test]
    fn getdt_and_getgeom_blow_up_most() {
        // Table II: getdt ~6x, getgeom ~7.8x on Skylake.
        let m = CpuModel::new(CpuPlatform::skylake());
        for (k, lo, hi) in [(KernelId::GetDt, 3.0, 9.0), (KernelId::GetGeom, 3.5, 11.0)] {
            let flat = m.kernel_seconds(k, noh_like(), CpuExecution::FlatMpi);
            let hybrid = m.kernel_seconds(k, noh_like(), CpuExecution::Hybrid);
            let r = hybrid / flat;
            assert!(
                (lo..hi).contains(&r),
                "{k:?} ratio {r:.2} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn skylake_faster_than_broadwell() {
        let s = CpuModel::new(CpuPlatform::skylake());
        let b = CpuModel::new(CpuPlatform::broadwell());
        for exec in [CpuExecution::FlatMpi, CpuExecution::Hybrid] {
            let ts = s.report(noh_like(), exec).total_seconds();
            let tb = b.report(noh_like(), exec).total_seconds();
            assert!(ts < tb, "skylake {ts:.1} should beat broadwell {tb:.1}");
        }
    }

    #[test]
    fn skylake_flat_overall_near_paper() {
        // Table II: 76.07 s. The model should land in the right decade
        // and ordering; we accept ±35%.
        let m = CpuModel::new(CpuPlatform::skylake());
        let t = m.report(noh_like(), CpuExecution::FlatMpi).total_seconds();
        assert!((50.0..110.0).contains(&t), "overall = {t:.1}");
    }

    #[test]
    fn viscosity_dominates_flat_profile() {
        // Table II: viscosity is ~70% of Skylake MPI runtime.
        let m = CpuModel::new(CpuPlatform::skylake());
        let rep = m.report(noh_like(), CpuExecution::FlatMpi);
        let frac = rep.fraction(KernelId::GetQ);
        assert!((0.5..0.8).contains(&frac), "viscosity fraction {frac:.2}");
    }

    #[test]
    fn zero_workload_zero_time() {
        let m = CpuModel::new(CpuPlatform::skylake());
        let w = WorkloadCount {
            elements: 0,
            steps: 100,
        };
        assert_eq!(
            m.kernel_seconds(KernelId::GetQ, w, CpuExecution::FlatMpi),
            0.0
        );
    }
}
