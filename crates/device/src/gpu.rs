//! GPU model: CUDA Fortran and OpenMP target offload.
//!
//! Kernel time = launch overhead + (bytes × penalty) / device bandwidth,
//! plus API-specific mechanisms from the paper's §IV-C/D:
//!
//! * **Dope vectors (CUDA Fortran)** — every assumed-size array argument
//!   drags a 72–96-byte descriptor from host to device *per launch*; a
//!   latency-bound synchronous copy each. The paper's fix (declaring
//!   sizes inside the kernels) is the `dope_fix` toggle, and reproduced
//!   the 4.23 s → 2.2 s viscosity improvement.
//! * **Host-side time differential (CUDA)** — CUDA Fortran has no
//!   reduction primitives (no CUB/Thrust for Fortran), so `getdt` runs
//!   on the host: per-step device→host transfers of the dt inputs plus
//!   host-bandwidth compute. OpenMP offload reduces on the device.
//! * **Occupancy penalties** — per-kernel efficiency factors calibrated
//!   against Table II; the CUDA viscosity kernel's register pressure
//!   makes it ~30% slower than the OpenMP offload version, while the
//!   V100's architecture recovers a uniform factor.

use bookleaf_util::{KernelId, TimerReport};

use crate::cost::{KernelCost, WorkloadCount};
use crate::platform::GpuPlatform;

/// GPU programming model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuExecution {
    /// CUDA Fortran (PGI): dope vectors, host-side getdt.
    Cuda {
        /// Apply the paper's fixed-size-array optimisation (§IV-D).
        dope_fix: bool,
    },
    /// OpenMP 4 target offload (Cray): device reductions, no dope
    /// vectors, different register allocation.
    Offload,
}

/// GPU performance model.
#[derive(Debug, Clone, Copy)]
pub struct GpuModel {
    /// Device description.
    pub platform: GpuPlatform,
    /// Host effective bandwidth for the CUDA host-side getdt (GB/s).
    pub host_bw: f64,
    /// Cost per dope-vector transfer (µs) — latency bound.
    pub dope_us: f64,
    /// Architecture efficiency divisor applied to penalties
    /// (1.0 for P100; ~1.39 for V100, whose scheduler hides the
    /// unstructured-gather stalls better).
    pub arch_efficiency: f64,
}

impl GpuModel {
    /// P100 model.
    #[must_use]
    pub fn p100() -> Self {
        GpuModel {
            platform: GpuPlatform::p100(),
            host_bw: 35.0,
            dope_us: 50.0,
            arch_efficiency: 1.0,
        }
    }

    /// V100 model.
    #[must_use]
    pub fn v100() -> Self {
        GpuModel {
            platform: GpuPlatform::v100(),
            host_bw: 35.0,
            dope_us: 50.0,
            arch_efficiency: 1.39,
        }
    }

    /// Per-kernel bandwidth penalty (unstructured gathers, divergence,
    /// register-pressure occupancy). Calibrated from Table II; the
    /// *differences* between the two APIs are the mechanisms the paper
    /// discusses (register allocation, fused force kernels, EoS transfer
    /// handling).
    #[must_use]
    pub fn penalty(kernel: KernelId, exec: GpuExecution) -> f64 {
        let offload = matches!(exec, GpuExecution::Offload);
        match kernel {
            KernelId::GetQ => {
                if offload {
                    6.4 // better register utilisation (§V-B)
                } else {
                    8.2 // register pressure limits occupancy
                }
            }
            KernelId::GetAcc => {
                if offload {
                    15.7
                } else {
                    12.9
                }
            }
            KernelId::GetGeom => {
                if offload {
                    19.1
                } else {
                    44.9
                }
            }
            KernelId::GetForce => {
                if offload {
                    29.6 // poor codegen for the multi-branch force loop
                } else {
                    0.39 // PGI fuses the force assembly efficiently
                }
            }
            KernelId::GetPc => {
                if offload {
                    10.5
                } else {
                    52.3
                }
            }
            KernelId::GetDt => 5.6, // offload only; CUDA runs on the host
            // EosFused never launches in the paper-platform models
            // (calls_per_step is 0); the bandwidth-bound penalty matches
            // its streaming constituents.
            KernelId::GetRho | KernelId::GetEin | KernelId::EosFused | KernelId::Ale => 8.0,
            KernelId::Comms | KernelId::Other => 0.0,
        }
    }

    /// Seconds for one kernel over the workload.
    #[must_use]
    pub fn kernel_seconds(
        &self,
        kernel: KernelId,
        workload: WorkloadCount,
        exec: GpuExecution,
    ) -> f64 {
        let cost = KernelCost::of(kernel);
        let n = workload.element_calls(kernel);
        if n == 0.0 {
            return 0.0;
        }
        let launches = workload.launches(kernel);
        let launch_t = launches * self.platform.launch_latency_us * 1e-6;

        // CUDA getdt: host path (§IV-D — no reduction primitives).
        if kernel == KernelId::GetDt {
            if let GpuExecution::Cuda { .. } = exec {
                // D2H of the dt inputs (three per-element doubles) each
                // step, then host-bandwidth compute.
                let d2h = workload.steps as f64
                    * (3.0 * 8.0 * workload.elements as f64 / (self.platform.pcie_bw * 1e9)
                        + self.platform.pcie_latency_us * 1e-6);
                let host = n * cost.bytes / (self.host_bw * 1e9);
                return launch_t + d2h + host;
            }
        }

        let penalty = Self::penalty(kernel, exec) / self.arch_efficiency;
        let mut t = launch_t + n * cost.bytes * penalty / (self.platform.mem_bw * 1e9);

        // Dope vectors: one latency-bound descriptor copy per array
        // argument per launch (CUDA Fortran without the fix).
        if let GpuExecution::Cuda { dope_fix: false } = exec {
            t += launches * KernelCost::device_array_args(kernel) as f64 * self.dope_us * 1e-6;
        }
        t
    }

    /// Full per-kernel report.
    #[must_use]
    pub fn report(&self, workload: WorkloadCount, exec: GpuExecution) -> TimerReport {
        let mut rep = TimerReport::zero();
        for k in KernelId::ALL {
            rep.set_seconds(k, self.kernel_seconds(k, workload, exec));
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noh_like() -> WorkloadCount {
        WorkloadCount {
            elements: 4_000_000,
            steps: 930,
        }
    }

    const CUDA: GpuExecution = GpuExecution::Cuda { dope_fix: false };

    #[test]
    fn p100_cuda_is_the_slowest_configuration() {
        // Fig 1: P100 CUDA worst; P100 OpenMP between.
        let p100 = GpuModel::p100();
        let cuda = p100.report(noh_like(), CUDA).total_seconds();
        let offload = p100
            .report(noh_like(), GpuExecution::Offload)
            .total_seconds();
        assert!(
            cuda > offload,
            "cuda {cuda:.0} should exceed offload {offload:.0}"
        );
    }

    #[test]
    fn v100_beats_p100_under_cuda() {
        let p = GpuModel::p100().report(noh_like(), CUDA).total_seconds();
        let v = GpuModel::v100().report(noh_like(), CUDA).total_seconds();
        assert!(v < p, "v100 {v:.0} should beat p100 {p:.0}");
    }

    #[test]
    fn offload_viscosity_beats_cuda_viscosity() {
        // §V-B: better register utilisation in the OpenMP offload port.
        let m = GpuModel::p100();
        let q_cuda = m.kernel_seconds(KernelId::GetQ, noh_like(), CUDA);
        let q_off = m.kernel_seconds(KernelId::GetQ, noh_like(), GpuExecution::Offload);
        let ratio = q_cuda / q_off;
        assert!(
            (1.1..1.6).contains(&ratio),
            "cuda/offload viscosity = {ratio:.2}"
        );
    }

    #[test]
    fn cuda_getdt_dominated_by_host_path() {
        // Table II: CUDA getdt ≈ 40 s vs OpenMP ≈ 13 s.
        let m = GpuModel::p100();
        let dt_cuda = m.kernel_seconds(KernelId::GetDt, noh_like(), CUDA);
        let dt_off = m.kernel_seconds(KernelId::GetDt, noh_like(), GpuExecution::Offload);
        assert!(
            dt_cuda > 2.0 * dt_off,
            "host-side getdt {dt_cuda:.1} should dwarf device reduction {dt_off:.1}"
        );
    }

    #[test]
    fn dope_fix_reproduces_the_viscosity_ablation() {
        // §IV-D: 4.23 s -> 2.2 s on "one problem set". Pick a small
        // problem where descriptors dominate, as in the paper's case.
        let m = GpuModel::p100();
        let w = WorkloadCount {
            elements: 45_000,
            steps: 1_870,
        };
        let before = m.kernel_seconds(KernelId::GetQ, w, GpuExecution::Cuda { dope_fix: false });
        let after = m.kernel_seconds(KernelId::GetQ, w, GpuExecution::Cuda { dope_fix: true });
        let speedup = before / after;
        assert!(
            (1.5..2.6).contains(&speedup),
            "dope-fix speedup {speedup:.2} (before {before:.2}s after {after:.2}s)"
        );
    }

    #[test]
    fn cuda_force_kernel_is_nearly_free() {
        // Table II: getforce 0.536 s under CUDA but 40.9 s under offload.
        let m = GpuModel::p100();
        let f_cuda = m.kernel_seconds(
            KernelId::GetForce,
            noh_like(),
            GpuExecution::Cuda { dope_fix: true },
        );
        let f_off = m.kernel_seconds(KernelId::GetForce, noh_like(), GpuExecution::Offload);
        assert!(
            f_off > 20.0 * f_cuda,
            "offload {f_off:.1} vs cuda {f_cuda:.2}"
        );
    }

    #[test]
    fn gpus_slower_than_skylake_flat_mpi() {
        // Fig 1's headline: single-GPU configs lose to the CPU node.
        use crate::cpu::{CpuExecution, CpuModel};
        use crate::platform::CpuPlatform;
        let cpu = CpuModel::new(CpuPlatform::skylake())
            .report(noh_like(), CpuExecution::FlatMpi)
            .total_seconds();
        for t in [
            GpuModel::p100().report(noh_like(), CUDA).total_seconds(),
            GpuModel::p100()
                .report(noh_like(), GpuExecution::Offload)
                .total_seconds(),
            GpuModel::v100().report(noh_like(), CUDA).total_seconds(),
        ] {
            assert!(
                t > cpu,
                "gpu {t:.0} should be slower than skylake flat {cpu:.0}"
            );
        }
    }
}
