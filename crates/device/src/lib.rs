//! # bookleaf-device
//!
//! Hardware performance models standing in for the paper's testbeds.
//!
//! The paper evaluates BookLeaf on Cray XC50 nodes (Intel Xeon Platinum
//! 8176 "Skylake", Xeon E5-2699 v4 "Broadwell") and NVIDIA P100/V100
//! GPUs. We cannot measure those machines; instead this crate provides
//! analytic cost models that map *counted work* (elements × steps ×
//! per-kernel cost) onto *modeled platforms*, reproducing the mechanisms
//! behind every effect the paper reports:
//!
//! * **Roofline kernel costs** — each kernel has a flop and byte count
//!   per element (audited against `bookleaf-hydro`'s code); platform
//!   time is `max(flops/peak, bytes/bandwidth)`.
//! * **Amdahl intra-rank serialisation** — the hybrid MPI+OpenMP model
//!   runs each kernel's serial fraction once per rank instead of once
//!   per core; the acceleration kernel's scatter dependency (§IV-B) and
//!   the expanded `MINVAL`/`MINLOC` scans make those fractions large for
//!   `getacc`, `getdt` and `getgeom` — exactly the kernels Table II
//!   shows blowing up under the hybrid model.
//! * **GPU launch and transfer overheads** — per-kernel-launch fixed
//!   cost; the CUDA Fortran *dope-vector* transfer per array argument
//!   per launch (§IV-D, with the paper's fixed-size-array optimisation
//!   as a toggle); the CUDA time-differential kernel running on the host
//!   with its per-step device↔host array traffic; the register-pressure
//!   occupancy gap between CUDA and OpenMP offload viscosity kernels.
//! * **Cluster strong scaling** — per-node compute with an L3-residency
//!   boost (the paper's super-linear 8→16-node regime), Aries-class
//!   message latency/bandwidth, and the serial partitioner term the
//!   paper calls out in §V-C.
//!
//! Calibration constants are documented inline and recorded in
//! EXPERIMENTS.md; the *shapes* (who wins, by what factor, where the
//! crossovers sit) emerge from the mechanisms, not from curve fitting to
//! every cell.

pub mod cluster;
pub mod cost;
pub mod cpu;
pub mod gpu;
pub mod platform;

pub use cluster::ClusterModel;
pub use cost::{KernelCost, RawCost, WorkloadCount};
pub use cpu::{CpuExecution, CpuModel};
pub use gpu::{GpuExecution, GpuModel};
pub use platform::{CpuPlatform, GpuPlatform, Interconnect};
