//! Platform descriptions — the machines of the paper's Table I.

use serde::{Deserialize, Serialize};

/// A dual-socket CPU node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPlatform {
    /// Marketing name.
    pub name: &'static str,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Sockets per node.
    pub sockets: usize,
    /// Sustained double-precision GFLOP/s per core on hydro kernels
    /// (far below peak: these kernels are not FMA-dense).
    pub gflops_per_core: f64,
    /// Sustained per-core memory bandwidth when all cores stream (GB/s).
    pub mem_bw_per_core: f64,
    /// Effective cache per core for the residency boost (MiB): L2 plus
    /// the core's share of L3.
    pub cache_per_core_mib: f64,
    /// Bandwidth multiplier when a rank's working set fits in cache.
    pub cache_boost: f64,
}

impl CpuPlatform {
    /// Total cores per node.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores_per_socket * self.sockets
    }

    /// Intel Xeon Platinum 8176 "Skylake" (28 cores × 2 sockets,
    /// Cray XC50) — Table I row 1.
    #[must_use]
    pub fn skylake() -> Self {
        CpuPlatform {
            name: "Intel Xeon Platinum 8176 'Skylake'",
            cores_per_socket: 28,
            sockets: 2,
            gflops_per_core: 3.4,
            mem_bw_per_core: 2.3,
            cache_per_core_mib: 2.4, // 1 MiB L2 + ~1.4 MiB L3 share
            cache_boost: 1.62,
        }
    }

    /// Intel Xeon E5-2699 v4 "Broadwell" (22 cores × 2 sockets,
    /// Cray XC50) — Table I row 2.
    #[must_use]
    pub fn broadwell() -> Self {
        CpuPlatform {
            name: "Intel Xeon E5-2699 v4 'Broadwell'",
            cores_per_socket: 22,
            sockets: 2,
            gflops_per_core: 2.7,
            mem_bw_per_core: 1.93,
            cache_per_core_mib: 2.8, // 256 KiB L2 + 2.5 MiB L3 share
            cache_boost: 1.58,
        }
    }
}

/// A PCIe-attached GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuPlatform {
    /// Marketing name.
    pub name: &'static str,
    /// Sustained device memory bandwidth on these kernels (GB/s).
    pub mem_bw: f64,
    /// Sustained double-precision GFLOP/s on these kernels.
    pub gflops: f64,
    /// Host↔device PCIe bandwidth (GB/s).
    pub pcie_bw: f64,
    /// Per-transfer PCIe latency (µs).
    pub pcie_latency_us: f64,
    /// Kernel launch latency (µs).
    pub launch_latency_us: f64,
}

impl GpuPlatform {
    /// NVIDIA P100 (PCIe, SuperMicro host) — Table I rows 3–4.
    #[must_use]
    pub fn p100() -> Self {
        GpuPlatform {
            name: "NVIDIA P100",
            mem_bw: 500.0, // sustained fraction of 732 peak
            gflops: 1200.0,
            pcie_bw: 11.0,
            pcie_latency_us: 8.0,
            launch_latency_us: 9.0,
        }
    }

    /// NVIDIA V100 (PCIe, SuperMicro host) — Table I row 5.
    #[must_use]
    pub fn v100() -> Self {
        GpuPlatform {
            name: "NVIDIA V100",
            mem_bw: 780.0,
            gflops: 2500.0,
            pcie_bw: 11.0,
            pcie_latency_us: 8.0,
            launch_latency_us: 8.0,
        }
    }
}

/// The inter-node network (Cray Aries on the XC50).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Per-message latency (µs).
    pub latency_us: f64,
    /// Per-link bandwidth (GB/s).
    pub bandwidth: f64,
}

impl Interconnect {
    /// Cray Aries (XC50) class numbers.
    #[must_use]
    pub fn aries() -> Self {
        Interconnect {
            latency_us: 1.3,
            bandwidth: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_counts_match_table_one() {
        assert_eq!(CpuPlatform::skylake().cores(), 56);
        assert_eq!(CpuPlatform::broadwell().cores(), 44);
    }

    #[test]
    fn skylake_outclasses_broadwell() {
        let s = CpuPlatform::skylake();
        let b = CpuPlatform::broadwell();
        assert!(s.gflops_per_core > b.gflops_per_core);
        assert!(s.mem_bw_per_core > b.mem_bw_per_core);
        assert!(s.cores() > b.cores());
    }

    #[test]
    fn v100_outclasses_p100() {
        let p = GpuPlatform::p100();
        let v = GpuPlatform::v100();
        assert!(v.mem_bw > p.mem_bw);
        assert!(v.gflops > p.gflops);
    }

    #[test]
    fn aries_is_low_latency() {
        assert!(Interconnect::aries().latency_us < 5.0);
    }
}
