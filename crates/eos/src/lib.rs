//! # bookleaf-eos
//!
//! Equations of state for BookLeaf-rs.
//!
//! Euler's equations (mass, momentum, energy) are closed by an Equation of
//! State relating pressure to density and specific internal energy.
//! BookLeaf provides three EoS options — **ideal gas**, **Tait** and
//! **JWL** — plus a **void** option; this crate implements all four with
//! analytic sound speeds, a material table keyed by region id, and
//! slice-level evaluation used by the `getpc` kernel.
//!
//! The adiabatic sound speed is evaluated from the exact thermodynamic
//! identity
//!
//! ```text
//! cs² = (∂p/∂ρ)|ε + (p/ρ²) (∂p/∂ε)|ρ
//! ```
//!
//! which reduces to the familiar `γp/ρ` for an ideal gas.

mod material;
mod spec;

pub use material::MaterialTable;
pub use spec::EosSpec;

/// Floor applied to sound speed squared to keep the CFL condition finite
/// in cold or void regions.
pub const CS2_FLOOR: f64 = 1.0e-10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compile() {
        let t = MaterialTable::single(EosSpec::ideal_gas(1.4));
        assert_eq!(t.len(), 1);
    }
}
