//! Material table: region id → EoS, and slice-level evaluation.
//!
//! The `getpc` kernel evaluates the EoS for every element. Elements carry
//! a region (material) id; the table maps that id to an [`EosSpec`].

use bookleaf_util::{BookLeafError, Result};

use crate::spec::EosSpec;

/// Region-indexed EoS table.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialTable {
    specs: Vec<EosSpec>,
}

impl MaterialTable {
    /// Table with the given specs; region `i` uses `specs[i]`.
    #[must_use]
    pub fn new(specs: Vec<EosSpec>) -> Self {
        MaterialTable { specs }
    }

    /// Single-material table (regions all map to one EoS).
    #[must_use]
    pub fn single(spec: EosSpec) -> Self {
        MaterialTable { specs: vec![spec] }
    }

    /// Number of materials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// EoS for region `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range — decks are validated at setup time
    /// via [`MaterialTable::check_regions`].
    #[inline]
    #[must_use]
    pub fn spec(&self, r: u32) -> &EosSpec {
        &self.specs[r as usize]
    }

    /// Validate that every region id in `regions` has an entry.
    pub fn check_regions(&self, regions: &[u32]) -> Result<()> {
        if let Some(&bad) = regions.iter().find(|&&r| r as usize >= self.specs.len()) {
            return Err(BookLeafError::InvalidDeck(format!(
                "region {bad} has no material (table has {} entries)",
                self.specs.len()
            )));
        }
        Ok(())
    }

    /// Evaluate pressure and sound speed squared for every element.
    ///
    /// This is the vectorised body of `getpc`: inputs are per-element
    /// density, internal energy and region; outputs are written in place.
    pub fn eval_slice(
        &self,
        rho: &[f64],
        ein: &[f64],
        region: &[u32],
        pressure: &mut [f64],
        cs2: &mut [f64],
    ) {
        debug_assert_eq!(rho.len(), ein.len());
        debug_assert_eq!(rho.len(), region.len());
        debug_assert_eq!(rho.len(), pressure.len());
        debug_assert_eq!(rho.len(), cs2.len());
        for i in 0..rho.len() {
            let (p, c) = self.spec(region[i]).pressure_cs2(rho[i], ein[i]);
            pressure[i] = p;
            cs2[i] = c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_util::approx_eq;

    #[test]
    fn two_material_table() {
        let t = MaterialTable::new(vec![EosSpec::ideal_gas(1.4), EosSpec::ideal_gas(1.2)]);
        assert_eq!(t.len(), 2);
        let p0 = t.spec(0).pressure(1.0, 1.0);
        let p1 = t.spec(1).pressure(1.0, 1.0);
        assert!(approx_eq(p0, 0.4, 1e-14));
        assert!(approx_eq(p1, 0.2, 1e-14));
    }

    #[test]
    fn check_regions_catches_missing_material() {
        let t = MaterialTable::single(EosSpec::ideal_gas(1.4));
        assert!(t.check_regions(&[0, 0, 0]).is_ok());
        assert!(t.check_regions(&[0, 1]).is_err());
    }

    #[test]
    fn eval_slice_matches_scalar() {
        let t = MaterialTable::new(vec![EosSpec::ideal_gas(1.4), EosSpec::Void]);
        let rho = [1.0, 2.0, 0.5];
        let ein = [1.0, 3.0, 2.0];
        let region = [0, 0, 1];
        let mut p = [0.0; 3];
        let mut c = [0.0; 3];
        t.eval_slice(&rho, &ein, &region, &mut p, &mut c);
        for i in 0..3 {
            let (ps, cs) = t.spec(region[i]).pressure_cs2(rho[i], ein[i]);
            assert_eq!(p[i], ps);
            assert_eq!(c[i], cs);
        }
        assert_eq!(p[2], 0.0); // void
    }

    #[test]
    fn empty_table_reports() {
        let t = MaterialTable::new(vec![]);
        assert!(t.is_empty());
        assert!(t.check_regions(&[0]).is_err());
    }
}
