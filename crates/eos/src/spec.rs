//! The four EoS forms and their analytic derivatives.

use serde::{Deserialize, Serialize};

use crate::CS2_FLOOR;

/// An equation of state `p = p(ρ, ε)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EosSpec {
    /// Ideal (gamma-law) gas: `p = (γ−1) ρ ε`.
    IdealGas {
        /// Ratio of specific heats.
        gamma: f64,
    },
    /// Tait (stiffened liquid) form: `p = p0 [ (ρ/ρ0)^γ − 1 ]`.
    ///
    /// Pressure is a function of density only; energy plays no role. Used
    /// for nearly incompressible liquids (water-like materials).
    Tait {
        /// Reference bulk modulus scale.
        p0: f64,
        /// Reference density.
        rho0: f64,
        /// Tait exponent (≈ 7 for water).
        gamma: f64,
    },
    /// Jones–Wilkins–Lee detonation-product EoS:
    /// `p = A (1 − ω/(R1 v)) e^{−R1 v} + B (1 − ω/(R2 v)) e^{−R2 v} + ω ρ ε`
    /// with relative volume `v = ρ0/ρ`.
    Jwl {
        /// First exponential coefficient.
        a: f64,
        /// Second exponential coefficient.
        b: f64,
        /// First exponential rate.
        r1: f64,
        /// Second exponential rate.
        r2: f64,
        /// Grüneisen coefficient.
        omega: f64,
        /// Reference (unreacted) density.
        rho0: f64,
    },
    /// Void: zero pressure, floor sound speed. Used for empty regions.
    Void,
}

impl EosSpec {
    /// Convenience constructor for the most common case.
    #[must_use]
    pub fn ideal_gas(gamma: f64) -> Self {
        EosSpec::IdealGas { gamma }
    }

    /// Pressure from density and specific internal energy.
    #[must_use]
    pub fn pressure(&self, rho: f64, ein: f64) -> f64 {
        match *self {
            EosSpec::IdealGas { gamma } => (gamma - 1.0) * rho * ein,
            EosSpec::Tait { p0, rho0, gamma } => p0 * ((rho / rho0).powf(gamma) - 1.0),
            EosSpec::Jwl {
                a,
                b,
                r1,
                r2,
                omega,
                rho0,
            } => {
                let v = rho0 / rho;
                a * (1.0 - omega / (r1 * v)) * (-r1 * v).exp()
                    + b * (1.0 - omega / (r2 * v)) * (-r2 * v).exp()
                    + omega * rho * ein
            }
            EosSpec::Void => 0.0,
        }
    }

    /// `(∂p/∂ρ)|ε` — analytic.
    #[must_use]
    pub fn dp_drho(&self, rho: f64, ein: f64) -> f64 {
        match *self {
            EosSpec::IdealGas { gamma } => (gamma - 1.0) * ein,
            EosSpec::Tait { p0, rho0, gamma } => p0 * gamma * (rho / rho0).powf(gamma - 1.0) / rho0,
            EosSpec::Jwl {
                a,
                b,
                r1,
                r2,
                omega,
                rho0,
            } => {
                let v = rho0 / rho;
                let dv_drho = -rho0 / (rho * rho);
                // d/dv of each exponential term.
                let term = |coef: f64, r: f64| {
                    coef * (-r * v).exp() * (omega / (r * v * v) - r + omega / v)
                };
                (term(a, r1) + term(b, r2)) * dv_drho + omega * ein
            }
            EosSpec::Void => 0.0,
        }
    }

    /// `(∂p/∂ε)|ρ` — analytic.
    #[must_use]
    pub fn dp_dein(&self, rho: f64) -> f64 {
        match *self {
            EosSpec::IdealGas { gamma } => (gamma - 1.0) * rho,
            EosSpec::Tait { .. } => 0.0,
            EosSpec::Jwl { omega, .. } => omega * rho,
            EosSpec::Void => 0.0,
        }
    }

    /// Adiabatic sound speed squared, floored at [`CS2_FLOOR`].
    ///
    /// Uses `cs² = (∂p/∂ρ)|ε + (p/ρ²)(∂p/∂ε)|ρ`.
    #[must_use]
    pub fn sound_speed2(&self, rho: f64, ein: f64) -> f64 {
        if matches!(self, EosSpec::Void) || rho <= 0.0 {
            return CS2_FLOOR;
        }
        let p = self.pressure(rho, ein);
        let cs2 = self.dp_drho(rho, ein) + p / (rho * rho) * self.dp_dein(rho);
        cs2.max(CS2_FLOOR)
    }

    /// Pressure and sound speed squared in one call (the `getpc` kernel
    /// needs both; this avoids re-deriving `p`).
    #[must_use]
    pub fn pressure_cs2(&self, rho: f64, ein: f64) -> (f64, f64) {
        let p = self.pressure(rho, ein);
        if matches!(self, EosSpec::Void) || rho <= 0.0 {
            return (p, CS2_FLOOR);
        }
        let cs2 = self.dp_drho(rho, ein) + p / (rho * rho) * self.dp_dein(rho);
        (p, cs2.max(CS2_FLOOR))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_util::approx_eq;

    #[test]
    fn ideal_gas_pressure_and_cs2() {
        let eos = EosSpec::ideal_gas(1.4);
        let (rho, ein) = (1.0, 2.5);
        let p = eos.pressure(rho, ein);
        assert!(approx_eq(p, 1.0, 1e-14)); // (1.4-1)*1*2.5 = 1
        let cs2 = eos.sound_speed2(rho, ein);
        assert!(approx_eq(cs2, 1.4 * p / rho, 1e-12)); // γp/ρ
    }

    #[test]
    fn tait_reference_density_zero_pressure() {
        let eos = EosSpec::Tait {
            p0: 3.0e2,
            rho0: 1.0,
            gamma: 7.0,
        };
        assert!(approx_eq(eos.pressure(1.0, 99.0), 0.0, 1e-12));
        // Compression raises pressure steeply.
        assert!(eos.pressure(1.1, 0.0) > 2.0 * 3.0e2 * 0.1 * 7.0 * 0.5);
        // Tension gives negative pressure.
        assert!(eos.pressure(0.9, 0.0) < 0.0);
    }

    #[test]
    fn tait_energy_independent() {
        let eos = EosSpec::Tait {
            p0: 1.0,
            rho0: 1.0,
            gamma: 7.0,
        };
        assert_eq!(eos.pressure(1.2, 0.0), eos.pressure(1.2, 55.0));
        assert_eq!(eos.dp_dein(1.2), 0.0);
    }

    #[test]
    fn jwl_reduces_to_omega_term_at_low_density() {
        // As v = rho0/rho -> large, exponentials vanish: p -> ω ρ ε.
        let eos = EosSpec::Jwl {
            a: 6.0e2,
            b: 0.1e2,
            r1: 4.5,
            r2: 1.5,
            omega: 0.3,
            rho0: 1.8,
        };
        let (rho, ein) = (0.01, 5.0);
        let p = eos.pressure(rho, ein);
        assert!(approx_eq(p, 0.3 * rho * ein, 1e-6), "p = {p}");
    }

    #[test]
    fn void_is_inert() {
        assert_eq!(EosSpec::Void.pressure(1.0, 1.0), 0.0);
        assert_eq!(EosSpec::Void.sound_speed2(1.0, 1.0), CS2_FLOOR);
    }

    #[test]
    fn cs2_floored_for_cold_gas() {
        let eos = EosSpec::ideal_gas(1.4);
        assert_eq!(eos.sound_speed2(1.0, 0.0), CS2_FLOOR);
        assert_eq!(eos.sound_speed2(-1.0, 1.0), CS2_FLOOR);
    }

    /// Finite-difference validation of the analytic derivatives for every
    /// non-trivial EoS.
    #[test]
    fn derivatives_match_finite_differences() {
        let specs = [
            EosSpec::ideal_gas(5.0 / 3.0),
            EosSpec::Tait {
                p0: 2.0,
                rho0: 1.1,
                gamma: 7.15,
            },
            EosSpec::Jwl {
                a: 6.0,
                b: 0.15,
                r1: 4.5,
                r2: 1.4,
                omega: 0.35,
                rho0: 1.6,
            },
        ];
        let (rho, ein) = (1.3, 2.1);
        let h = 1e-6;
        for eos in specs {
            let num_drho = (eos.pressure(rho + h, ein) - eos.pressure(rho - h, ein)) / (2.0 * h);
            assert!(
                approx_eq(eos.dp_drho(rho, ein), num_drho, 1e-5),
                "{eos:?}: dp/drho {} vs {num_drho}",
                eos.dp_drho(rho, ein)
            );
            let num_dein = (eos.pressure(rho, ein + h) - eos.pressure(rho, ein - h)) / (2.0 * h);
            assert!(
                approx_eq(eos.dp_dein(rho), num_dein, 1e-5),
                "{eos:?}: dp/dein {} vs {num_dein}",
                eos.dp_dein(rho)
            );
        }
    }

    #[test]
    fn pressure_cs2_consistent_with_separate_calls() {
        let eos = EosSpec::Jwl {
            a: 6.0,
            b: 0.15,
            r1: 4.5,
            r2: 1.4,
            omega: 0.35,
            rho0: 1.6,
        };
        let (p, cs2) = eos.pressure_cs2(1.9, 3.0);
        assert_eq!(p, eos.pressure(1.9, 3.0));
        assert_eq!(cs2, eos.sound_speed2(1.9, 3.0));
    }

    #[test]
    fn jwl_cs2_positive_in_expansion_and_compression() {
        let eos = EosSpec::Jwl {
            a: 6.0,
            b: 0.15,
            r1: 4.5,
            r2: 1.4,
            omega: 0.35,
            rho0: 1.6,
        };
        for rho in [0.5, 1.0, 1.6, 2.5] {
            assert!(eos.sound_speed2(rho, 4.0) > 0.0, "rho = {rho}");
        }
    }
}
