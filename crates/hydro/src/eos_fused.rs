//! The fused `getgeom → getrho → getein → getpc` element sweep.
//!
//! All four kernels of the EOS chain are per-element independent: each
//! element's geometry, density, energy and pressure depend only on its
//! own corners, mass, corner forces and nodal velocities — never on
//! another element's output from the same chain. Running them as four
//! separate sweeps therefore streams the element arrays through the
//! cache four times for no algorithmic reason. This module performs the
//! whole chain in **one pass**: corner coordinates are loaded once,
//! geometry, density, the compatible work term and the EOS evaluation
//! happen back-to-back in registers, and pressure/sound-speed are
//! written in the same loop iteration.
//!
//! ## Bitwise contract
//!
//! The fused sweep produces *bitwise identical* state to the unfused
//! chain (which remains in the crate as the reference implementation):
//!
//! - every per-element expression is the same expression, in the same
//!   evaluation order, as its unfused counterpart;
//! - there are no floating-point reductions across elements, so any
//!   split of the element range (serial, rayon, overlapped subsets)
//!   yields the same bits;
//! - the serial `getpc` path calls `MaterialTable::eval_slice`, which is
//!   itself a per-element `spec(region).pressure_cs2(rho, ein)` loop —
//!   exactly the call made here.
//!
//! The only observable difference is the **error path**: the unfused
//! chain stops at the first failing kernel (a tangled mesh aborts before
//! density is touched), while the fused sweep completes the pass and
//! *then* reports the first failure with the same error value and
//! precedence (tangling before invalid density). Since both errors are
//! fatal to the step, the partially-updated downstream fields are never
//! observed by a continuing simulation.
//!
//! ## Chain subsets
//!
//! [`EosStages`] lets callers fuse any contiguous or non-contiguous
//! subset of the chain; a disabled stage reads whatever its state array
//! currently holds, exactly as the unfused kernel sequence would. The
//! equivalence suite exercises these combinations against the unfused
//! kernels deck-by-deck.

use bookleaf_eos::MaterialTable;
use bookleaf_mesh::geometry::{char_length, corner_volumes, quad_area};
use bookleaf_mesh::Mesh;
use bookleaf_util::{BookLeafError, Result, Vec2};
use rayon::prelude::*;

use crate::getein::WorkVelocity;
use crate::state::{HydroState, LocalRange};
use crate::Threading;

/// Which stages of the `getgeom → getrho → getein → getpc` chain the
/// fused sweep executes. A disabled stage's outputs are left untouched
/// and its inputs are read from the current state arrays — the same
/// dataflow as skipping that kernel in the unfused sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EosStages {
    /// Recompute volume, corner volumes and characteristic length.
    pub geom: bool,
    /// Recompute density from mass and volume.
    pub rho: bool,
    /// Advance internal energy by the compatible work term.
    pub ein: bool,
    /// Evaluate the EOS for pressure and sound speed.
    pub pc: bool,
}

impl EosStages {
    /// The full chain (the production configuration).
    #[must_use]
    pub fn all() -> Self {
        EosStages {
            geom: true,
            rho: true,
            ein: true,
            pc: true,
        }
    }
}

impl Default for EosStages {
    fn default() -> Self {
        EosStages::all()
    }
}

/// Per-sweep parameters of the fused chain.
#[derive(Debug, Clone, Copy)]
pub struct FusedEos<'a> {
    /// Step the energy update integrates over.
    pub dt: f64,
    /// Velocity the work term uses (predictor: current; corrector:
    /// time-centred).
    pub which: WorkVelocity,
    /// Energy source: `None` advances `state.ein` in place (predictor);
    /// `Some(ein0)` integrates from the saved start-of-step energies
    /// (corrector), replacing the unfused path's restore-then-advance
    /// `copy_from_slice` with a single fused read.
    pub ein_from: Option<&'a [f64]>,
    /// Which chain stages run.
    pub stages: EosStages,
}

/// Run the fused EOS chain over the owned range.
///
/// Errors mirror the unfused chain: the first tangled element is
/// reported as [`BookLeafError::NegativeVolume`]; failing that, the
/// first non-finite or negative density as
/// [`BookLeafError::InvalidState`].
pub fn eos_fused(
    mesh: &Mesh,
    materials: &MaterialTable,
    state: &mut HydroState,
    range: LocalRange,
    sweep: FusedEos<'_>,
    threading: Threading,
) -> Result<()> {
    let n = range.n_owned_el;
    let stages = sweep.stages;
    let dt = sweep.dt;
    let ein_from = sweep.ein_from;
    if let Some(src) = ein_from {
        assert!(
            src.len() >= n,
            "ein_from holds {} entries for {} owned elements",
            src.len(),
            n
        );
    }

    // Slice the element-indexed reads to the owned range so the sweep
    // loops (bounded by the same `n`) index them without bounds checks;
    // `vel` stays full-length — it is gathered through node ids.
    let mass = &state.mass[..n];
    let fx = &state.cnforce_x[..n];
    let fy = &state.cnforce_y[..n];
    let vel: &[Vec2] = match sweep.which {
        WorkVelocity::Current => &state.u,
        WorkVelocity::TimeCentred => &state.ubar,
    };
    let region = &mesh.region[..n];

    // One loop body for the whole chain. Each stage is the verbatim
    // per-element expression of its unfused kernel; the boolean tracks
    // "no failure seen" exactly like `getgeom`'s sweep.
    let body = |e: usize,
                v: &mut f64,
                cv: &mut [f64; 4],
                l: &mut f64,
                r: &mut f64,
                ei: &mut f64,
                p: &mut f64,
                c2: &mut f64|
     -> bool {
        let mut ok = true;
        if stages.geom {
            let c = mesh.corners(e);
            *v = quad_area(&c);
            *cv = corner_volumes(&c);
            *l = char_length(&c);
            ok = *v > 0.0;
        }
        if stages.rho {
            *r = mass[e] / *v;
            ok &= r.is_finite() && *r >= 0.0;
        }
        if stages.ein {
            let nd = mesh.elnd[e];
            let (rx, ry) = (&fx[e], &fy[e]);
            let mut work = 0.0;
            for c in 0..4 {
                let u = vel[nd[c] as usize];
                work += rx[c] * u.x + ry[c] * u.y;
            }
            let src = match ein_from {
                Some(s) => s[e],
                None => *ei,
            };
            *ei = src - dt * work / mass[e];
        }
        if stages.pc {
            let (pe, ce) = materials.spec(region[e]).pressure_cs2(*r, *ei);
            *p = pe;
            *c2 = ce;
        }
        ok
    };

    // The production configuration (every stage on) gets a dedicated
    // straight-line body: same expressions in the same order as `body`
    // with the four stage conditions constant-folded away, so the hot
    // sweep carries no per-element stage dispatch.
    let body_full = |e: usize,
                     v: &mut f64,
                     cv: &mut [f64; 4],
                     l: &mut f64,
                     r: &mut f64,
                     ei: &mut f64,
                     p: &mut f64,
                     c2: &mut f64|
     -> bool {
        let c = mesh.corners(e);
        *v = quad_area(&c);
        *cv = corner_volumes(&c);
        *l = char_length(&c);
        let mut ok = *v > 0.0;
        *r = mass[e] / *v;
        ok &= r.is_finite() && *r >= 0.0;
        let nd = mesh.elnd[e];
        let (rx, ry) = (&fx[e], &fy[e]);
        let mut work = 0.0;
        for corner in 0..4 {
            let u = vel[nd[corner] as usize];
            work += rx[corner] * u.x + ry[corner] * u.y;
        }
        let src = match ein_from {
            Some(s) => s[e],
            None => *ei,
        };
        *ei = src - dt * work / mass[e];
        let (pe, ce) = materials.spec(region[e]).pressure_cs2(*r, *ei);
        *p = pe;
        *c2 = ce;
        ok
    };

    let outs = (
        &mut state.volume[..n],
        &mut state.cnvol[..n],
        &mut state.length[..n],
        &mut state.rho[..n],
        &mut state.ein[..n],
        &mut state.pressure[..n],
        &mut state.cs2[..n],
    );
    let ok = if stages == EosStages::all() {
        run_sweep(threading, outs, body_full)
    } else {
        run_sweep(threading, outs, body)
    };

    if !ok {
        // Locate the offender with the unfused chain's precedence:
        // tangling (getgeom) is reported before invalid density (getrho).
        if stages.geom {
            for e in 0..n {
                if state.volume[e] <= 0.0 {
                    return Err(BookLeafError::NegativeVolume {
                        element: e,
                        volume: state.volume[e],
                    });
                }
            }
        }
        if stages.rho {
            if let Some(e) = (0..n).find(|&e| !state.rho[e].is_finite() || state.rho[e] < 0.0) {
                return Err(BookLeafError::InvalidState {
                    element: e,
                    what: format!("density {} after getrho", state.rho[e]),
                });
            }
        }
    }
    Ok(())
}

/// The seven output streams of the fused sweep, in chain order.
type FusedOuts<'a> = (
    &'a mut [f64],
    &'a mut [[f64; 4]],
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
);

/// Drive `body` over the owned range, zipped over the seven output
/// streams (no per-element bounds checks), serially or via rayon.
/// Monomorphised per body, so the full-chain body compiles to a
/// branch-free loop.
fn run_sweep<B>(threading: Threading, outs: FusedOuts<'_>, body: B) -> bool
where
    B: Fn(usize, &mut f64, &mut [f64; 4], &mut f64, &mut f64, &mut f64, &mut f64, &mut f64) -> bool
        + Sync,
{
    let (volume, cnvol, length, rho, ein, pressure, cs2) = outs;
    match threading {
        Threading::Serial => {
            let mut ok = true;
            for (e, ((((((v, cv), l), r), ei), p), c2)) in volume
                .iter_mut()
                .zip(cnvol.iter_mut())
                .zip(length.iter_mut())
                .zip(rho.iter_mut())
                .zip(ein.iter_mut())
                .zip(pressure.iter_mut())
                .zip(cs2.iter_mut())
                .enumerate()
            {
                ok &= body(e, v, cv, l, r, ei, p, c2);
            }
            ok
        }
        Threading::Rayon => volume
            .par_iter_mut()
            .zip(cnvol.par_iter_mut())
            .zip(length.par_iter_mut())
            .zip(rho.par_iter_mut())
            .zip(ein.par_iter_mut())
            .zip(pressure.par_iter_mut())
            .zip(cs2.par_iter_mut())
            .enumerate()
            .map(|(e, ((((((v, cv), l), r), ei), p), c2))| body(e, v, cv, l, r, ei, p, c2))
            .reduce(|| true, |a, b| a && b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::getein::getein;
    use crate::getgeom::getgeom;
    use crate::getpc::getpc;
    use crate::getrho::getrho;
    use bookleaf_eos::EosSpec;
    use bookleaf_mesh::{generate_rect, RectSpec};

    fn setup(n: usize) -> (Mesh, MaterialTable, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |c| u32::from(c.x > 0.5)).unwrap();
        let mat = MaterialTable::new(vec![EosSpec::ideal_gas(1.4), EosSpec::ideal_gas(5.0 / 3.0)]);
        let nodes = mesh.nodes.clone();
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |e| 1.0 + 0.01 * (e % 7) as f64,
            |_| 2.0,
            |i| {
                Vec2::new(
                    (3.0 * nodes[i].x).sin() * 0.2,
                    (5.0 * nodes[i].y).cos() * 0.1,
                )
            },
        )
        .unwrap();
        for e in 0..st.n_elements() {
            st.cnforce_x[e] = [0.1, -0.2, 0.15, -0.05];
            st.cnforce_y[e] = [-0.1, 0.25, -0.2, 0.05];
        }
        for i in 0..st.n_nodes() {
            st.ubar[i] = Vec2::new(0.01 * (i % 3) as f64, -0.02);
        }
        (mesh, mat, st)
    }

    fn run_unfused(
        mesh: &Mesh,
        mat: &MaterialTable,
        st: &mut HydroState,
        dt: f64,
        which: WorkVelocity,
        th: Threading,
    ) {
        let range = LocalRange::whole(mesh);
        getgeom(mesh, st, range, th).unwrap();
        getrho(st, range, th).unwrap();
        getein(mesh, st, range, dt, which, th);
        getpc(mesh, mat, st, range, th);
    }

    #[test]
    fn fused_matches_unfused_bitwise() {
        for th in [Threading::Serial, Threading::Rayon] {
            let (mesh, mat, st0) = setup(6);
            let mut a = st0.clone();
            let mut b = st0.clone();
            run_unfused(&mesh, &mat, &mut a, 1e-3, WorkVelocity::Current, th);
            eos_fused(
                &mesh,
                &mat,
                &mut b,
                LocalRange::whole(&mesh),
                FusedEos {
                    dt: 1e-3,
                    which: WorkVelocity::Current,
                    ein_from: None,
                    stages: EosStages::all(),
                },
                th,
            )
            .unwrap();
            assert_eq!(a.volume, b.volume, "{th:?}");
            assert_eq!(a.cnvol, b.cnvol, "{th:?}");
            assert_eq!(a.length, b.length, "{th:?}");
            assert_eq!(a.rho, b.rho, "{th:?}");
            assert_eq!(a.ein, b.ein, "{th:?}");
            assert_eq!(a.pressure, b.pressure, "{th:?}");
            assert_eq!(a.cs2, b.cs2, "{th:?}");
        }
    }

    #[test]
    fn ein_from_matches_restore_then_advance() {
        let (mesh, mat, st0) = setup(5);
        let range = LocalRange::whole(&mesh);
        let ein0: Vec<f64> = st0.ein.iter().map(|e| e * 1.25).collect();

        // Unfused corrector idiom: restore the saved energies, then run
        // the chain in place.
        let mut a = st0.clone();
        a.ein[..ein0.len()].copy_from_slice(&ein0);
        run_unfused(
            &mesh,
            &mat,
            &mut a,
            2e-3,
            WorkVelocity::TimeCentred,
            Threading::Serial,
        );

        // Fused corrector: integrate straight from the saved buffer.
        let mut b = st0.clone();
        eos_fused(
            &mesh,
            &mat,
            &mut b,
            range,
            FusedEos {
                dt: 2e-3,
                which: WorkVelocity::TimeCentred,
                ein_from: Some(&ein0),
                stages: EosStages::all(),
            },
            Threading::Serial,
        )
        .unwrap();
        assert_eq!(a.ein, b.ein);
        assert_eq!(a.pressure, b.pressure);
        assert_eq!(a.cs2, b.cs2);
    }

    #[test]
    fn stage_subsets_match_partial_chains() {
        let combos = [
            (true, false, false, false),
            (true, true, false, false),
            (false, false, true, true),
            (true, true, false, true),
            (false, true, true, false),
        ];
        for (geom, rho, ein, pc) in combos {
            let (mesh, mat, st0) = setup(4);
            let range = LocalRange::whole(&mesh);
            let th = Threading::Serial;
            let mut a = st0.clone();
            if geom {
                getgeom(&mesh, &mut a, range, th).unwrap();
            }
            if rho {
                getrho(&mut a, range, th).unwrap();
            }
            if ein {
                getein(&mesh, &mut a, range, 1e-3, WorkVelocity::Current, th);
            }
            if pc {
                getpc(&mesh, &mat, &mut a, range, th);
            }
            let mut b = st0.clone();
            eos_fused(
                &mesh,
                &mat,
                &mut b,
                range,
                FusedEos {
                    dt: 1e-3,
                    which: WorkVelocity::Current,
                    ein_from: None,
                    stages: EosStages { geom, rho, ein, pc },
                },
                th,
            )
            .unwrap();
            let tag = format!("stages geom={geom} rho={rho} ein={ein} pc={pc}");
            assert_eq!(a.volume, b.volume, "{tag}");
            assert_eq!(a.rho, b.rho, "{tag}");
            assert_eq!(a.ein, b.ein, "{tag}");
            assert_eq!(a.pressure, b.pressure, "{tag}");
            assert_eq!(a.cs2, b.cs2, "{tag}");
        }
    }

    #[test]
    fn tangled_mesh_reports_negative_volume_first() {
        let (mut mesh, mat, mut st) = setup(2);
        mesh.nodes[4] = Vec2::new(-5.0, -5.0); // invert cells around the centre
        let err = eos_fused(
            &mesh,
            &mat,
            &mut st,
            LocalRange::whole(&mesh),
            FusedEos {
                dt: 1e-3,
                which: WorkVelocity::Current,
                ein_from: None,
                stages: EosStages::all(),
            },
            Threading::Serial,
        )
        .unwrap_err();
        assert!(matches!(err, BookLeafError::NegativeVolume { .. }));
    }

    #[test]
    fn ghost_entries_untouched() {
        let (mesh, mat, mut st) = setup(3);
        let n = st.n_elements();
        let sentinel = -77.0;
        st.pressure[n - 1] = sentinel;
        st.volume[n - 1] = sentinel;
        let range = LocalRange {
            n_owned_el: n - 1,
            n_active_nd: mesh.n_nodes(),
        };
        eos_fused(
            &mesh,
            &mat,
            &mut st,
            range,
            FusedEos {
                dt: 1e-3,
                which: WorkVelocity::Current,
                ein_from: None,
                stages: EosStages::all(),
            },
            Threading::Serial,
        )
        .unwrap();
        assert_eq!(st.pressure[n - 1], sentinel);
        assert_eq!(st.volume[n - 1], sentinel);
    }
}
