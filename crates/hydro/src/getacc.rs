//! `getacc`: nodal masses, acceleration, boundary conditions, velocity
//! update and node motion.
//!
//! This is the kernel the paper singles out (§IV-B): gathering corner
//! masses and forces to nodes is a *scatter* over elements with write
//! conflicts at shared nodes — "a data dependency that prevents
//! parallelisation" which the reference OpenMP port left serial,
//! "adversely affecting OpenMP performance" (Table II shows the hybrid
//! acceleration kernel ≈ 2.4× slower than flat MPI).
//!
//! We provide both formulations:
//!
//! * [`AccMode::ScatterSerial`] — the reference element-order scatter,
//!   inherently serial (what the paper shipped);
//! * [`AccMode::GatherParallel`] / [`AccMode::GatherSerial`] — the
//!   conflict-free rewrite using the node→element CSR adjacency, safe to
//!   thread (the fix the paper describes as possible "by rewriting the
//!   kernel"). The ablation bench `ablation_scatter` quantifies the gap.

use bookleaf_mesh::Mesh;
use bookleaf_util::Vec2;
use rayon::prelude::*;

use crate::state::{HydroState, LocalRange};
use crate::subset::Subset;

/// How to accumulate corner masses/forces onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccMode {
    /// Element-order scatter with write conflicts — must run serial.
    /// This is the reference implementation's formulation.
    ScatterSerial,
    /// Node-order gather via CSR adjacency, run sequentially.
    #[default]
    GatherSerial,
    /// Node-order gather via CSR adjacency, threaded with rayon.
    GatherParallel,
}

/// Compute accelerations, apply kinematic boundary conditions, advance
/// velocities by `dt` and set the time-centred `ubar`.
///
/// Requires ghost corner masses and forces to be current (exchange
/// phase 2) so that partition-boundary nodes see their complete
/// adjacency.
pub fn getacc(mesh: &Mesh, state: &mut HydroState, range: LocalRange, dt: f64, mode: AccMode) {
    getacc_subset(mesh, state, range, dt, mode, Subset::All);
}

/// [`getacc`] over a [`Subset`] of the active nodes; velocities, `ubar`
/// and nodal masses outside the subset are left untouched. Used by the
/// overlapped executor: the interior subset must contain only nodes
/// whose whole element adjacency is owned (see
/// `bookleaf_mesh::OverlapSets`), so their gathers never read a ghost
/// corner mass or force the in-flight exchange is about to rewrite.
pub fn getacc_subset(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    dt: f64,
    mode: AccMode,
    subset: Subset<'_>,
) {
    let nn = range.n_active_nd;

    // Accumulate nodal mass and force. Entries outside the subset are
    // left at zero and never read below.
    let (nd_mass, nd_force) = match mode {
        AccMode::ScatterSerial => {
            let mut nd_mass = vec![0.0f64; nn];
            let mut nd_force = vec![Vec2::ZERO; nn];
            // The scatter runs over *all* local elements so that active
            // nodes adjacent to ghost elements receive those
            // contributions too. Contributions to nodes outside the
            // subset are skipped (their slots stay zero and unread), so
            // a split sweep accumulates each node's sums exactly once —
            // in the same element order as the unsplit scatter.
            for e in 0..mesh.n_elements() {
                for c in 0..4 {
                    let nd = mesh.elnd[e][c] as usize;
                    if nd < nn && subset.contains(nd) {
                        nd_mass[nd] += state.cnmass[e][c];
                        nd_force[nd] += state.cnforce(e, c);
                    }
                }
            }
            (nd_mass, nd_force)
        }
        AccMode::GatherSerial => {
            let mut nd_mass = vec![0.0f64; nn];
            let mut nd_force = vec![Vec2::ZERO; nn];
            for n in 0..nn {
                if !subset.contains(n) {
                    continue;
                }
                let (m, f) = gather_node(mesh, state, n);
                nd_mass[n] = m;
                nd_force[n] = f;
            }
            (nd_mass, nd_force)
        }
        AccMode::GatherParallel => {
            let mut nd_mass = vec![0.0f64; nn];
            let mut nd_force = vec![Vec2::ZERO; nn];
            nd_mass
                .par_iter_mut()
                .zip(nd_force.par_iter_mut())
                .enumerate()
                .for_each(|(n, (m, f))| {
                    if subset.contains(n) {
                        let (mm, ff) = gather_node(mesh, state, n);
                        *m = mm;
                        *f = ff;
                    }
                });
            (nd_mass, nd_force)
        }
    };

    // Acceleration, BCs, velocity update, time-centred velocity.
    for n in 0..nn {
        if !subset.contains(n) {
            continue;
        }
        state.nd_mass[n] = nd_mass[n];
        let bc = mesh.node_bc[n];
        let m = nd_mass[n];
        let a = if m > 0.0 {
            bc.apply(nd_force[n] / m)
        } else {
            Vec2::ZERO
        };
        let u_old = bc.apply(state.u[n]);
        let u_new = u_old + a * dt;
        state.u[n] = u_new;
        state.ubar[n] = (u_old + u_new) * 0.5;
    }
}

/// Mass and force gathered at node `n` from its adjacent elements.
///
/// The CSR adjacency is ordered by element id, so the summation order is
/// identical on every rank that can see the node — distributed and serial
/// runs produce bitwise-identical node updates.
#[inline]
fn gather_node(mesh: &Mesh, state: &HydroState, n: usize) -> (f64, Vec2) {
    let mut m = 0.0;
    let mut f = Vec2::ZERO;
    for &(e, c) in mesh.elements_of_node(n) {
        m += state.cnmass[e as usize][c as usize];
        f += state.cnforce(e as usize, c as usize);
    }
    (m, f)
}

/// Move nodes by `dt * ubar` (the corrector's time-centred motion; the
/// predictor passes `u` copied into `ubar`).
pub fn move_nodes(mesh: &mut Mesh, state: &HydroState, range: LocalRange, dt: f64) {
    for n in 0..range.n_active_nd {
        mesh.nodes[n] += state.ubar[n] * dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::approx_eq;

    fn setup(n: usize) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 2.5, |_| Vec2::ZERO).unwrap();
        (mesh, st)
    }

    /// Set a known force field: every corner of every element pushes +x.
    fn set_unit_forces(st: &mut HydroState) {
        for e in 0..st.n_elements() {
            st.cnforce_x[e] = [1.0; 4];
            st.cnforce_y[e] = [0.0; 4];
        }
    }

    #[test]
    fn all_modes_agree() {
        let (mesh, st0) = setup(5);
        let range = LocalRange::whole(&mesh);
        let mut outputs = Vec::new();
        for mode in [
            AccMode::ScatterSerial,
            AccMode::GatherSerial,
            AccMode::GatherParallel,
        ] {
            let mut st = st0.clone();
            for e in 0..st.n_elements() {
                st.cnforce_x[e] = [0.1 * e as f64, -0.2, 0.05, 0.0];
                st.cnforce_y[e] = [-0.05, 0.3, 0.05 * e as f64, -0.1];
            }
            getacc(&mesh, &mut st, range, 0.01, mode);
            outputs.push((st.u.clone(), st.ubar.clone()));
        }
        // Scatter and gather may differ in summation order but on this
        // small mesh with exact dyadic values they match bitwise; compare
        // with tolerance to be safe.
        for i in 1..outputs.len() {
            for n in 0..outputs[0].0.len() {
                assert!(approx_eq(outputs[0].0[n].x, outputs[i].0[n].x, 1e-13));
                assert!(approx_eq(outputs[0].0[n].y, outputs[i].0[n].y, 1e-13));
            }
        }
    }

    #[test]
    fn free_interior_node_accelerates() {
        let (mesh, mut st) = setup(2);
        set_unit_forces(&mut st);
        let range = LocalRange::whole(&mesh);
        getacc(&mesh, &mut st, range, 0.1, AccMode::GatherSerial);
        // Interior node 4 of the 3x3 node grid: mass = 4 * 1/16 * ... for
        // a 2x2 unit-square mesh each element has mass 1/4, corner mass
        // 1/16; node 4 touches 4 corners -> m = 4/16 = 0.25. Force = 4.
        let n = 4;
        let expect_a = 4.0 / 0.25;
        assert!(approx_eq(st.u[n].x, 0.1 * expect_a, 1e-12));
        assert_eq!(st.u[n].y, 0.0);
        assert!(approx_eq(st.ubar[n].x, 0.05 * expect_a, 1e-12));
    }

    #[test]
    fn boundary_conditions_pin_normal_velocity() {
        let (mesh, mut st) = setup(2);
        set_unit_forces(&mut st);
        for e in 0..st.n_elements() {
            st.cnforce_x[e] = [1.0; 4];
            st.cnforce_y[e] = [1.0; 4];
        }
        let range = LocalRange::whole(&mesh);
        getacc(&mesh, &mut st, range, 0.1, AccMode::GatherSerial);
        // Node 0 is a corner: fully pinned.
        assert_eq!(st.u[0], Vec2::ZERO);
        // Node 1 (bottom edge): y pinned, x free.
        assert!(st.u[1].x > 0.0);
        assert_eq!(st.u[1].y, 0.0);
        // Node 3 (left edge): x pinned, y free.
        assert_eq!(st.u[3].x, 0.0);
        assert!(st.u[3].y > 0.0);
    }

    #[test]
    fn pre_existing_velocity_on_wall_is_projected() {
        let (mesh, mut st) = setup(2);
        // Give wall node 1 an illegal normal velocity; getacc must clear it.
        st.u[1] = Vec2::new(0.5, 2.0);
        let range = LocalRange::whole(&mesh);
        getacc(&mesh, &mut st, range, 0.1, AccMode::GatherSerial);
        assert_eq!(st.u[1].y, 0.0);
        assert!(approx_eq(st.u[1].x, 0.5, 1e-13));
    }

    #[test]
    fn move_nodes_uses_ubar() {
        let (mut mesh, mut st) = setup(2);
        let range = LocalRange::whole(&mesh);
        st.ubar[4] = Vec2::new(1.0, -2.0);
        let before = mesh.nodes[4];
        move_nodes(&mut mesh, &st, range, 0.25);
        assert!(approx_eq(mesh.nodes[4].x, before.x + 0.25, 1e-14));
        assert!(approx_eq(mesh.nodes[4].y, before.y - 0.5, 1e-14));
    }

    #[test]
    fn momentum_conserved_without_boundaries() {
        // Interior-only forces that sum to zero globally: total momentum
        // of interior nodes must remain zero... instead check Newton's
        // third law pairing: total momentum change equals dt * total force
        // over free directions.
        let (mesh, mut st) = setup(4);
        let range = LocalRange::whole(&mesh);
        // Interior-only synthetic forces.
        for e in 0..st.n_elements() {
            st.cnforce_x[e] = [0.3, -0.3, 0.3, -0.3];
            st.cnforce_y[e] = [0.1, 0.1, -0.1, -0.1];
        }
        getacc(&mesh, &mut st, range, 0.2, AccMode::GatherSerial);
        let mut dp = Vec2::ZERO; // Σ m du over free nodes
        let mut expected = Vec2::ZERO;
        for n in 0..mesh.n_nodes() {
            let (m, f) = super::gather_node(&mesh, &st, n);
            let bc = mesh.node_bc[n];
            dp += st.u[n] * m;
            expected += bc.apply(f) * 0.2;
        }
        assert!(approx_eq(dp.x, expected.x, 1e-12));
        assert!(approx_eq(dp.y, expected.y, 1e-12));
    }

    #[test]
    fn split_node_sweeps_match_full_sweep_bitwise() {
        let (mesh, st0) = setup(5);
        let range = LocalRange::whole(&mesh);
        let prep = |st: &mut HydroState| {
            for e in 0..st.n_elements() {
                st.cnforce_x[e] = [0.1 * e as f64, -0.2, 0.05, 0.0];
                st.cnforce_y[e] = [-0.05, 0.3, 0.05 * e as f64, -0.1];
            }
        };
        let mask: Vec<bool> = (0..mesh.n_nodes()).map(|n| n % 4 == 1).collect();
        for mode in [
            AccMode::ScatterSerial,
            AccMode::GatherSerial,
            AccMode::GatherParallel,
        ] {
            let mut full = st0.clone();
            prep(&mut full);
            getacc(&mesh, &mut full, range, 0.01, mode);
            let mut split = st0.clone();
            prep(&mut split);
            for keep in [false, true] {
                getacc_subset(
                    &mesh,
                    &mut split,
                    range,
                    0.01,
                    mode,
                    crate::subset::Subset::Mask { mask: &mask, keep },
                );
            }
            for n in 0..mesh.n_nodes() {
                assert_eq!(full.u[n], split.u[n], "{mode:?} u at node {n}");
                assert_eq!(full.ubar[n], split.ubar[n], "{mode:?} ubar at node {n}");
                assert_eq!(full.nd_mass[n], split.nd_mass[n], "{mode:?} nd_mass");
            }
        }
    }

    #[test]
    fn subset_leaves_excluded_nodes_untouched() {
        let (mesh, mut st) = setup(3);
        set_unit_forces(&mut st);
        let range = LocalRange::whole(&mesh);
        let frozen = Vec2::new(9.0, -9.0);
        st.u.fill(frozen);
        let mask: Vec<bool> = (0..mesh.n_nodes()).map(|n| n < 6).collect();
        getacc_subset(
            &mesh,
            &mut st,
            range,
            0.1,
            AccMode::GatherSerial,
            crate::subset::Subset::Mask {
                mask: &mask,
                keep: false,
            },
        );
        for n in 0..mesh.n_nodes() {
            if mask[n] {
                assert_eq!(st.u[n], frozen, "masked-out node {n} was updated");
            } else {
                assert_ne!(st.u[n], frozen, "in-subset node {n} was skipped");
            }
        }
    }

    #[test]
    fn active_range_limits_updates() {
        let (mesh, mut st) = setup(3);
        set_unit_forces(&mut st);
        let range = LocalRange {
            n_owned_el: mesh.n_elements(),
            n_active_nd: 4,
        };
        getacc(&mesh, &mut st, range, 0.1, AccMode::GatherSerial);
        // Nodes beyond the active range keep zero velocity.
        assert!(st.u[10..].iter().all(|u| *u == Vec2::ZERO));
    }
}
