//! `getdt`: explicit time-step control.
//!
//! Euler's equations are hyperbolic; BookLeaf integrates them explicitly,
//! so the step must respect a CFL condition. Three limits apply:
//!
//! * **CFL**: `dt ≤ cfl_sf · l / c_eff` per element, with characteristic
//!   length `l` and effective signal speed `c_eff² = cs² + 2 q/ρ`
//!   (viscosity stiffens the acoustics);
//! * **divergence**: `dt ≤ div_sf / |∇·u|` so no element's volume changes
//!   by more than a fraction per step;
//! * **growth**: `dt ≤ growth · dt_prev` and `dt ≤ dt_max`.
//!
//! The reference implementation computes the element minimum with
//! Fortran `MINVAL`/`MINLOC` intrinsics — the paper's §IV-B notes these
//! had to be expanded into explicit loops for OpenMP; we track the
//! controlling element explicitly for the same reason (and better error
//! messages). In a distributed run this kernel ends in BookLeaf's *only*
//! global reduction.

use bookleaf_mesh::geometry::velocity_divergence;
use bookleaf_mesh::Mesh;
use bookleaf_util::constants;
use bookleaf_util::{BookLeafError, Result};
use rayon::prelude::*;

use crate::state::{HydroState, LocalRange};
use crate::Threading;

/// Time-step control parameters (deck-overridable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtControls {
    /// CFL safety factor.
    pub cfl_sf: f64,
    /// Divergence safety factor.
    pub div_sf: f64,
    /// Max growth factor per step.
    pub growth: f64,
    /// Initial dt.
    pub dt_initial: f64,
    /// Hard maximum dt.
    pub dt_max: f64,
    /// Hard minimum dt (collapse below is fatal).
    pub dt_min: f64,
}

impl Default for DtControls {
    fn default() -> Self {
        DtControls {
            cfl_sf: constants::CFL_SF,
            div_sf: constants::DIV_SF,
            growth: constants::DT_GROWTH,
            dt_initial: constants::DT_INITIAL,
            dt_max: constants::DT_MAX,
            dt_min: constants::DT_MIN,
        }
    }
}

/// Which constraint set the step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DtCause {
    /// Sound-speed CFL in the given element.
    Cfl(usize),
    /// Velocity divergence in the given element.
    Divergence(usize),
    /// Growth cap from the previous step.
    Growth,
    /// The configured maximum.
    Max,
    /// First step: the configured initial dt.
    Initial,
}

/// The local (this rank's) time-step proposal before the global min.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtProposal {
    /// Proposed dt.
    pub dt: f64,
    /// Constraint that set it.
    pub cause: DtCause,
}

/// Compute this rank's dt proposal. `dt_prev` is `None` on the first
/// step (use `dt_initial`). Also refreshes `state.div_u`.
pub fn getdt(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    controls: &DtControls,
    dt_prev: Option<f64>,
    threading: Threading,
) -> Result<DtProposal> {
    let n = range.n_owned_el;
    let dt_prev = match dt_prev {
        None => {
            return Ok(DtProposal {
                dt: controls.dt_initial,
                cause: DtCause::Initial,
            });
        }
        Some(d) => d,
    };

    // Per-element CFL ratio l²/c_eff² and divergence, tracking minima.
    let eval = |e: usize| -> (f64, f64) {
        let c = mesh.corners(e);
        let nd = mesh.elnd[e];
        let u = [
            state.u[nd[0] as usize],
            state.u[nd[1] as usize],
            state.u[nd[2] as usize],
            state.u[nd[3] as usize],
        ];
        let div = velocity_divergence(&c, &u);
        let c_eff2 = state.cs2[e] + 2.0 * state.q[e] / state.rho[e].max(1e-300);
        let l2 = state.length[e] * state.length[e];
        let cfl_ratio = l2 / c_eff2.max(1e-300);
        (cfl_ratio, div)
    };

    match threading {
        Threading::Serial => {
            for e in 0..n {
                let (_, div) = eval(e);
                state.div_u[e] = div;
            }
        }
        Threading::Rayon => {
            state.div_u[..n]
                .par_iter_mut()
                .enumerate()
                .for_each(|(e, d)| *d = eval(e).1);
        }
    }

    // The min-scan (the MINVAL/MINLOC the paper discusses) — serial, it
    // is O(n) with trivial cost next to the eval above.
    let mut min_cfl = (f64::INFINITY, 0usize);
    let mut max_div = (0.0f64, 0usize);
    for e in 0..n {
        let c_eff2 = state.cs2[e] + 2.0 * state.q[e] / state.rho[e].max(1e-300);
        let ratio = state.length[e] * state.length[e] / c_eff2.max(1e-300);
        if ratio < min_cfl.0 {
            min_cfl = (ratio, e);
        }
        let ad = state.div_u[e].abs();
        if ad > max_div.0 {
            max_div = (ad, e);
        }
    }

    let dt_cfl = controls.cfl_sf * min_cfl.0.sqrt();
    let dt_div = if max_div.0 > 0.0 {
        controls.div_sf / max_div.0
    } else {
        f64::INFINITY
    };
    let dt_growth = controls.growth * dt_prev;

    let mut dt = dt_cfl;
    let mut cause = DtCause::Cfl(min_cfl.1);
    if dt_div < dt {
        dt = dt_div;
        cause = DtCause::Divergence(max_div.1);
    }
    if dt_growth < dt {
        dt = dt_growth;
        cause = DtCause::Growth;
    }
    if controls.dt_max < dt {
        dt = controls.dt_max;
        cause = DtCause::Max;
    }

    if dt < controls.dt_min || !dt.is_finite() {
        return Err(BookLeafError::TimestepCollapse {
            dt,
            dt_min: controls.dt_min,
            cause: format!("{cause:?}"),
        });
    }
    Ok(DtProposal { dt, cause })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::{approx_eq, Vec2};

    fn setup(n: usize) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 2.5, |_| Vec2::ZERO).unwrap();
        (mesh, st)
    }

    #[test]
    fn first_step_uses_initial_dt() {
        let (mesh, mut st) = setup(4);
        let p = getdt(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            &DtControls::default(),
            None,
            Threading::Serial,
        )
        .unwrap();
        assert_eq!(p.dt, DtControls::default().dt_initial);
        assert_eq!(p.cause, DtCause::Initial);
    }

    #[test]
    fn cfl_limit_for_quiescent_gas() {
        let (mesh, mut st) = setup(10);
        // cs² = 1.4 * 1 / 1 = 1.4; l = 0.1 -> dt_cfl = 0.5 * 0.1/sqrt(1.4).
        let ctrl = DtControls {
            growth: 1e9,
            dt_max: 1e9,
            ..DtControls::default()
        };
        let p = getdt(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            &ctrl,
            Some(1.0),
            Threading::Serial,
        )
        .unwrap();
        let expect = 0.5 * 0.1 / 1.4f64.sqrt();
        assert!(approx_eq(p.dt, expect, 1e-12), "{} vs {expect}", p.dt);
        assert!(matches!(p.cause, DtCause::Cfl(_)));
    }

    #[test]
    fn growth_cap_applies() {
        let (mesh, mut st) = setup(4);
        let ctrl = DtControls::default();
        let p = getdt(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            &ctrl,
            Some(1e-6),
            Threading::Serial,
        )
        .unwrap();
        assert!(approx_eq(p.dt, 1.02e-6, 1e-12));
        assert_eq!(p.cause, DtCause::Growth);
    }

    #[test]
    fn divergence_limits_fast_compression() {
        let (mesh, mut st) = setup(4);
        // Strong uniform compression u = -50 x: div u = -100.
        for n in 0..mesh.n_nodes() {
            st.u[n] = Vec2::new(-50.0 * mesh.nodes[n].x, -50.0 * mesh.nodes[n].y);
        }
        let ctrl = DtControls {
            growth: 1e9,
            dt_max: 1e9,
            ..DtControls::default()
        };
        let p = getdt(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            &ctrl,
            Some(1.0),
            Threading::Serial,
        )
        .unwrap();
        assert!(matches!(p.cause, DtCause::Divergence(_)));
        assert!(approx_eq(p.dt, 0.25 / 100.0, 1e-10), "dt = {}", p.dt);
    }

    #[test]
    fn viscosity_tightens_cfl() {
        let (mesh, mut st0) = setup(4);
        let ctrl = DtControls {
            growth: 1e9,
            dt_max: 1e9,
            ..DtControls::default()
        };
        let base = getdt(
            &mesh,
            &mut st0.clone(),
            LocalRange::whole(&mesh),
            &ctrl,
            Some(1.0),
            Threading::Serial,
        )
        .unwrap();
        for q in &mut st0.q {
            *q = 5.0;
        }
        let with_q = getdt(
            &mesh,
            &mut st0,
            LocalRange::whole(&mesh),
            &ctrl,
            Some(1.0),
            Threading::Serial,
        )
        .unwrap();
        assert!(with_q.dt < base.dt);
    }

    #[test]
    fn collapse_is_fatal() {
        let (mesh, mut st) = setup(4);
        let ctrl = DtControls {
            dt_min: 1.0,
            growth: 1e9,
            ..DtControls::default()
        };
        let err = getdt(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            &ctrl,
            Some(1.0),
            Threading::Serial,
        )
        .unwrap_err();
        assert!(matches!(err, BookLeafError::TimestepCollapse { .. }));
    }

    #[test]
    fn serial_matches_rayon() {
        let (mesh, mut a) = setup(6);
        for n in 0..mesh.n_nodes() {
            a.u[n] = Vec2::new((n as f64).sin(), -(n as f64).cos());
        }
        let mut b = a.clone();
        let ctrl = DtControls {
            growth: 1e9,
            dt_max: 1e9,
            ..DtControls::default()
        };
        let pa = getdt(
            &mesh,
            &mut a,
            LocalRange::whole(&mesh),
            &ctrl,
            Some(1.0),
            Threading::Serial,
        )
        .unwrap();
        let pb = getdt(
            &mesh,
            &mut b,
            LocalRange::whole(&mesh),
            &ctrl,
            Some(1.0),
            Threading::Rayon,
        )
        .unwrap();
        assert_eq!(pa.dt, pb.dt);
        assert_eq!(a.div_u, b.div_u);
    }
}
