//! `getein`: compatible internal-energy update.
//!
//! In the compatible discretisation the internal energy equation is
//! driven by the *same* corner forces as the momentum equation:
//!
//! ```text
//! m_z dε/dt = − Σ_corners F_c · u_c
//! ```
//!
//! where `u_c` is the velocity of the node at corner `c`. Because the
//! nodal momentum update uses exactly the corner forces, total energy
//! (internal + kinetic) is conserved to round-off (Barlow 2008). For a
//! uniform-pressure element this reduces to `m dε = −P dV`, the textbook
//! `pdV` work.

use bookleaf_mesh::Mesh;
use bookleaf_util::Vec2;
use rayon::prelude::*;

use crate::state::{HydroState, LocalRange};
use crate::Threading;

/// Which velocity the work term uses: the predictor half-step uses the
/// start-of-step velocity; the corrector uses the time-centred `ubar`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkVelocity {
    /// Start-of-step nodal velocity `u`.
    Current,
    /// Time-centred velocity `ubar` set by `getacc`.
    TimeCentred,
}

/// Advance internal energy by `dt` over the owned range.
pub fn getein(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    dt: f64,
    which: WorkVelocity,
    threading: Threading,
) {
    let n = range.n_owned_el;
    let vel: &[Vec2] = match which {
        WorkVelocity::Current => &state.u,
        WorkVelocity::TimeCentred => &state.ubar,
    };
    let fx = &state.cnforce_x;
    let fy = &state.cnforce_y;
    let mass = &state.mass;

    // The work term reads the two dense SoA component rows of the
    // element; each corner contributes `fx·vx + fy·vy` — the same
    // grouping as the former `Vec2::dot`, so the sum is bitwise
    // identical to the interleaved layout.
    let body = |e: usize, ein: &mut f64| {
        let nd = mesh.elnd[e];
        let (rx, ry) = (&fx[e], &fy[e]);
        let mut work = 0.0;
        for c in 0..4 {
            let v = vel[nd[c] as usize];
            work += rx[c] * v.x + ry[c] * v.y;
        }
        *ein -= dt * work / mass[e];
    };

    match threading {
        Threading::Serial => {
            for e in 0..n {
                let mut ein = state.ein[e];
                body(e, &mut ein);
                state.ein[e] = ein;
            }
        }
        Threading::Rayon => {
            state.ein[..n]
                .par_iter_mut()
                .enumerate()
                .for_each(|(e, ein)| body(e, ein));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::generation::{generate_rect, RectSpec};
    use bookleaf_mesh::geometry::area_gradient;
    use bookleaf_util::approx_eq;

    fn setup(n: usize) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 2.5, |_| Vec2::ZERO).unwrap();
        (mesh, st)
    }

    #[test]
    fn zero_velocity_means_no_work() {
        let (mesh, mut st) = setup(2);
        for e in 0..st.n_elements() {
            st.cnforce_x[e] = [1.0; 4];
            st.cnforce_y[e] = [1.0; 4];
        }
        let before = st.ein.clone();
        getein(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            0.1,
            WorkVelocity::Current,
            Threading::Serial,
        );
        assert_eq!(st.ein, before);
    }

    #[test]
    fn expansion_reduces_internal_energy_as_pdv() {
        // Single unit element at pressure P with outward velocity u = x:
        // dV/dt = 2V, so m dε/dt = -P dV/dt.
        let (mesh, mut st) = setup(1);
        let p = 1.0;
        st.pressure[0] = p;
        let g = area_gradient(&mesh.corners(0));
        for c in 0..4 {
            st.set_cnforce(0, c, g[c] * p);
        }
        // u = position (pure expansion about the origin).
        for n in 0..mesh.n_nodes() {
            st.u[n] = mesh.nodes[n];
        }
        let dt = 1e-3;
        let e0 = st.ein[0];
        getein(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            dt,
            WorkVelocity::Current,
            Threading::Serial,
        );
        // dV/dt = Σ g·u = 2A = 2 (unit square). m = 1.
        let expect = e0 - dt * p * 2.0;
        assert!(
            approx_eq(st.ein[0], expect, 1e-12),
            "{} vs {expect}",
            st.ein[0]
        );
    }

    #[test]
    fn compression_heats() {
        let (mesh, mut st) = setup(1);
        let g = area_gradient(&mesh.corners(0));
        for c in 0..4 {
            st.set_cnforce(0, c, g[c] * 1.0);
        }
        for n in 0..mesh.n_nodes() {
            st.u[n] = -mesh.nodes[n]; // converging flow
        }
        let e0 = st.ein[0];
        getein(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            1e-3,
            WorkVelocity::Current,
            Threading::Serial,
        );
        assert!(st.ein[0] > e0);
    }

    #[test]
    fn time_centred_uses_ubar() {
        let (mesh, mut st) = setup(1);
        for c in 0..4 {
            st.set_cnforce(0, c, Vec2::new(1.0, 0.0));
        }
        // u says "no work", ubar says "work".
        for n in 0..mesh.n_nodes() {
            st.u[n] = Vec2::ZERO;
            st.ubar[n] = Vec2::new(1.0, 0.0);
        }
        let e0 = st.ein[0];
        let mut st2 = st.clone();
        getein(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            0.1,
            WorkVelocity::Current,
            Threading::Serial,
        );
        assert_eq!(st.ein[0], e0);
        getein(
            &mesh,
            &mut st2,
            LocalRange::whole(&mesh),
            0.1,
            WorkVelocity::TimeCentred,
            Threading::Serial,
        );
        // work = Σ F·ubar = 4 * 1 = 4; dε = -0.1 * 4 / m (m = 1).
        assert!(approx_eq(st2.ein[0], e0 - 0.4, 1e-12));
    }

    #[test]
    fn serial_matches_rayon() {
        let (mesh, mut a) = setup(5);
        for e in 0..a.n_elements() {
            a.cnforce_x[e] = [0.1, -0.1, 0.2, -0.2];
            a.cnforce_y[e] = [0.2, 0.3, -0.2, -0.3];
        }
        for n in 0..a.n_nodes() {
            a.u[n] = Vec2::new((n as f64).sin(), (n as f64).cos());
        }
        let mut b = a.clone();
        getein(
            &mesh,
            &mut a,
            LocalRange::whole(&mesh),
            0.05,
            WorkVelocity::Current,
            Threading::Serial,
        );
        getein(
            &mesh,
            &mut b,
            LocalRange::whole(&mesh),
            0.05,
            WorkVelocity::Current,
            Threading::Rayon,
        );
        assert_eq!(a.ein, b.ein);
    }
}
