//! `getforce`: assemble corner forces.
//!
//! The compatible discretisation drives both momentum and energy from the
//! same *corner forces* (Barlow 2008): element `e` exerts `F[e][c]` on
//! the node at its corner `c`. Three contributions:
//!
//! 1. **Pressure**: `F = P ∂V/∂x_c` — the exact gradient of element
//!    volume with respect to the corner position, so pressure work
//!    accounts exactly for volume change.
//! 2. **Artificial viscosity**: each edge's viscous pressure `edge_q`
//!    acts like an extra surface pressure on that edge, split between its
//!    two end nodes.
//! 3. **Hourglass control**: the two non-physical ("hourglass") degrees
//!    of freedom of the staggered quad are damped by a Hancock-style
//!    filter and stiffened by Caramana–Shashkov sub-zonal pressures, both
//!    optional per deck.

use bookleaf_mesh::geometry::{area_gradient, quad_centroid};
use bookleaf_mesh::Mesh;
use bookleaf_util::Vec2;
use rayon::prelude::*;

use crate::state::{HydroState, LocalRange};
use crate::subset::Subset;
use crate::Threading;

/// Which hourglass-suppression mechanisms are active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourglassControl {
    /// Hancock filter coefficient (0 disables).
    pub kappa_filter: f64,
    /// Sub-zonal pressure coefficient (0 disables).
    pub zeta_subzonal: f64,
}

impl Default for HourglassControl {
    fn default() -> Self {
        HourglassControl {
            kappa_filter: bookleaf_util::constants::KAPPA_HG,
            zeta_subzonal: bookleaf_util::constants::ZETA_SZ,
        }
    }
}

impl HourglassControl {
    /// Disable all hourglass control (for tests and ablations).
    #[must_use]
    pub fn none() -> Self {
        HourglassControl {
            kappa_filter: 0.0,
            zeta_subzonal: 0.0,
        }
    }
}

/// The hourglass mode sign pattern on a quad.
const GAMMA: [f64; 4] = [1.0, -1.0, 1.0, -1.0];

/// Assemble corner forces for the owned range.
///
/// `dt` is the step the forces will be integrated over; the viscous pair
/// forces are *momentum-limited* against it (an explicit damping force
/// must not reverse the relative velocity it opposes within one step, or
/// cold compressed slivers blow up — the classic stiff-q instability).
pub fn getforce(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    hg: HourglassControl,
    dt: f64,
    threading: Threading,
) {
    getforce_subset(mesh, state, range, hg, dt, threading, Subset::All);
}

/// [`getforce`] over a [`Subset`] of the owned elements; corner forces
/// outside the subset are left untouched. The force stencil (own
/// corners, own nodal masses) is contained in the viscosity stencil, so
/// the overlapped executor reuses the viscosity-phase boundary mask.
pub fn getforce_subset(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    hg: HourglassControl,
    dt: f64,
    threading: Threading,
    subset: Subset<'_>,
) {
    let n = range.n_owned_el;
    // Element-indexed reads sliced to the owned range so the sweeps
    // (bounded by the same `n` through the force-row zip) index them
    // without bounds checks; `u` and `nd_mass` stay full-length — they
    // are gathered through node ids.
    let u = &state.u;
    let rho = &state.rho[..n];
    let cs2 = &state.cs2[..n];
    let pressure = &state.pressure[..n];
    let edge_q = &state.edge_q[..n];
    let nd_mass = &state.nd_mass;
    let cnmass = &state.cnmass[..n];
    let cnvol = &state.cnvol[..n];
    let volume = &state.volume[..n];

    let body = |e: usize, force: &mut [Vec2; 4]| {
        let corners = mesh.corners(e);
        let grad = area_gradient(&corners);
        let p = pressure[e];

        // 1. Pressure force.
        for c in 0..4 {
            force[c] = grad[c] * p;
        }

        // 2. Edge viscosity (Caramana et al.): an antisymmetric force
        // pair on each compressive edge, directed along the corner
        // velocity jump so it always opposes the relative approach —
        // per element the pair sums to zero (momentum preserved), and
        // its work Σ F·u = −q L |Δu| < 0 heats the element through the
        // compatible energy update.
        {
            let nd = mesh.elnd[e];
            for f in 0..4 {
                let qf = edge_q[e][f];
                if qf == 0.0 {
                    continue;
                }
                let a = nd[f] as usize;
                let b = nd[(f + 1) % 4] as usize;
                let du = u[b] - u[a];
                let dx = corners[(f + 1) % 4] - corners[f];
                if du.dot(dx) >= 0.0 {
                    continue; // expansion by the time forces assemble
                }
                let du_mag = du.norm();
                if du_mag == 0.0 {
                    continue;
                }
                // Momentum limit against the *reduced mass* of the node
                // pair: an impulse of μ|Δu| is exactly what reverses the
                // relative velocity, so capping each element's share at
                // half that keeps the two elements sharing an interior
                // edge jointly at or below reversal — the linear q term's
                // damping rate can otherwise exceed 1/dt in dense, quiet
                // regions (the Noh plateau) and explode, while legitimate
                // shock-transit forces stay below this cap and dissipate
                // fully.
                let (ma, mb) = (nd_mass[a], nd_mass[b]);
                let mu = if ma + mb > 0.0 {
                    ma * mb / (ma + mb)
                } else {
                    0.0
                };
                let cap = if dt > 0.0 {
                    0.25 * mu * du_mag / dt
                } else {
                    f64::INFINITY
                };
                let mag = (qf * dx.norm()).min(cap);
                let pair = du * (mag / du_mag);
                force[f] += pair;
                force[(f + 1) % 4] -= pair;
            }
        }

        // 3a. Hancock hourglass filter: damp the Γ velocity mode.
        if hg.kappa_filter > 0.0 {
            let nd = mesh.elnd[e];
            let mut u_hg = Vec2::ZERO;
            for c in 0..4 {
                u_hg += u[nd[c] as usize] * GAMMA[c];
            }
            u_hg *= 0.25;
            let cs = cs2[e].max(0.0).sqrt();
            let scale = hg.kappa_filter * rho[e] * cs * volume[e].max(0.0).sqrt();
            for c in 0..4 {
                force[c] -= u_hg * (scale * GAMMA[c]);
            }
        }

        // 3b. Sub-zonal pressures (Caramana–Shashkov): each corner's
        // sub-zone carries its own Lagrangian mass; density deviations
        // from the zone mean create restoring forces that stiffen
        // hourglass motion (hourglass modes compress opposite sub-zones
        // while leaving zone volume fixed). The force is the *full*
        // variational gradient `Σ_c Δp_c ∂A_sz(c)/∂x_i` — the sub-zone
        // quad's midpoints and centroid move with the corners, and
        // dropping those chain terms leaves an unbalanced force field
        // that pumps energy into skewed cells (it destabilised the
        // Saltzmann piston before this was fixed).
        if hg.zeta_subzonal > 0.0 {
            let centre = quad_centroid(&corners);
            for c in 0..4 {
                let cv = cnvol[e][c];
                if cv <= 0.0 {
                    continue;
                }
                let rho_sub = cnmass[e][c] / cv;
                let dp = hg.zeta_subzonal * cs2[e] * (rho_sub - rho[e]);
                if dp == 0.0 {
                    continue;
                }
                // Sub-zone quad v = (x_c, m_next, centre, m_prev) and the
                // shoelace gradients g_k = ∂A/∂v_k = ½ R(v_{k+1} − v_{k−1})
                // with R(w) = (w.y, −w.x).
                let m_next = corners[c].midpoint(corners[(c + 1) % 4]);
                let m_prev = corners[(c + 3) % 4].midpoint(corners[c]);
                let v = [corners[c], m_next, centre, m_prev];
                let rot = |w: Vec2| Vec2::new(w.y, -w.x);
                let g = [
                    rot(v[1] - v[3]) * 0.5,
                    rot(v[2] - v[0]) * 0.5,
                    rot(v[3] - v[1]) * 0.5,
                    rot(v[0] - v[2]) * 0.5,
                ];
                // Chain rule through v0 = x_c, v1 = ½(x_c + x_{c+1}),
                // v2 = ¼Σx, v3 = ½(x_{c−1} + x_c).
                let quarter_g2 = g[2] * 0.25;
                force[c] += (g[0] + (g[1] + g[3]) * 0.5 + quarter_g2) * dp;
                force[(c + 1) % 4] += (g[1] * 0.5 + quarter_g2) * dp;
                force[(c + 2) % 4] += quarter_g2 * dp;
                force[(c + 3) % 4] += (g[3] * 0.5 + quarter_g2) * dp;
            }
        }
    };

    // Store the assembled forces as SoA component rows (one dense
    // `[f64; 4]` row per element and component — the state layout
    // contract the energy update and halo pack rely on).
    let store = |f: &[Vec2; 4], fx: &mut [f64; 4], fy: &mut [f64; 4]| {
        for c in 0..4 {
            fx[c] = f[c].x;
            fy[c] = f[c].y;
        }
    };
    match threading {
        Threading::Serial => {
            let fx_rows = &mut state.cnforce_x[..n];
            let fy_rows = &mut state.cnforce_y[..n];
            for (e, (fx, fy)) in fx_rows.iter_mut().zip(fy_rows.iter_mut()).enumerate() {
                if !subset.contains(e) {
                    continue;
                }
                let mut f = [Vec2::ZERO; 4];
                body(e, &mut f);
                store(&f, fx, fy);
            }
        }
        Threading::Rayon => {
            state.cnforce_x[..n]
                .par_iter_mut()
                .zip(state.cnforce_y[..n].par_iter_mut())
                .enumerate()
                .for_each(|(e, (fx, fy))| {
                    if subset.contains(e) {
                        let mut f = [Vec2::ZERO; 4];
                        body(e, &mut f);
                        store(&f, fx, fy);
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::approx_eq;

    fn setup(n: usize) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 2.5, |_| Vec2::ZERO).unwrap();
        (mesh, st)
    }

    #[test]
    fn pressure_force_is_p_times_area_gradient() {
        let (mesh, mut st) = setup(2);
        getforce(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            HourglassControl::none(),
            1.0,
            Threading::Serial,
        );
        for e in 0..st.n_elements() {
            let g = area_gradient(&mesh.corners(e));
            for c in 0..4 {
                let expect = g[c] * st.pressure[e];
                assert!(approx_eq(st.cnforce(e, c).x, expect.x, 1e-13));
                assert!(approx_eq(st.cnforce(e, c).y, expect.y, 1e-13));
            }
        }
    }

    #[test]
    fn uniform_pressure_forces_sum_to_zero_per_element() {
        let (mesh, mut st) = setup(3);
        getforce(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            HourglassControl::none(),
            1.0,
            Threading::Serial,
        );
        for e in 0..st.n_elements() {
            let total: Vec2 = (0..4).map(|c| st.cnforce(e, c)).sum();
            assert!(total.norm() < 1e-13, "element {e}: net force {total:?}");
        }
    }

    #[test]
    fn interior_nodes_feel_no_net_force_at_uniform_pressure() {
        let (mesh, mut st) = setup(4);
        getforce(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            HourglassControl::none(),
            1.0,
            Threading::Serial,
        );
        // Gather at an interior node: contributions cancel.
        let n = 2 * 5 + 2; // interior node of the 5x5 node grid
        let mut f = Vec2::ZERO;
        for &(e, c) in mesh.elements_of_node(n) {
            f += st.cnforce(e as usize, c as usize);
        }
        assert!(f.norm() < 1e-13);
    }

    #[test]
    fn viscous_edge_force_opposes_corner_approach() {
        let (mesh, mut st) = setup(1);
        // Bottom edge nodes 0 and 1 rushing at each other.
        st.u[0] = Vec2::new(1.0, 0.0);
        st.u[1] = Vec2::new(-1.0, 0.0);
        st.edge_q[0] = [2.0, 0.0, 0.0, 0.0];
        st.pressure[0] = 0.0;
        // Small dt so the momentum cap does not bind here.
        getforce(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            HourglassControl::none(),
            0.01,
            Threading::Serial,
        );
        // du = (-2, 0), |du| = 2, edge length 1: pair = du/|du| * q * L
        // = (-2, 0). Corner 0 gets +pair, corner 1 gets -pair — each
        // force opposes that corner's motion.
        assert!(approx_eq(st.cnforce(0, 0).x, -2.0, 1e-13));
        assert!(approx_eq(st.cnforce(0, 1).x, 2.0, 1e-13));
        assert!(
            st.cnforce(0, 0).x * st.u[0].x < 0.0,
            "must decelerate corner 0"
        );
        assert!(
            st.cnforce(0, 1).x * st.u[1].x < 0.0,
            "must decelerate corner 1"
        );
        // Pair force: zero net on the element.
        let net: Vec2 = (0..4).map(|c| st.cnforce(0, c)).sum();
        assert!(net.norm() < 1e-13);
        assert_eq!(st.cnforce(0, 2), Vec2::ZERO);
        assert_eq!(st.cnforce(0, 3), Vec2::ZERO);
        // Expanding corners feel nothing even with q set.
        st.u[0] = Vec2::new(-1.0, 0.0);
        st.u[1] = Vec2::new(1.0, 0.0);
        getforce(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            HourglassControl::none(),
            0.01,
            Threading::Serial,
        );
        assert_eq!(st.cnforce(0, 0), Vec2::ZERO);
    }

    #[test]
    fn viscous_force_is_momentum_limited_at_large_dt() {
        let (mesh, mut st) = setup(1);
        st.u[0] = Vec2::new(1.0, 0.0);
        st.u[1] = Vec2::new(-1.0, 0.0);
        st.edge_q[0] = [1e6, 0.0, 0.0, 0.0]; // absurdly stiff q
        st.pressure[0] = 0.0;
        let dt = 0.1;
        getforce(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            HourglassControl::none(),
            dt,
            Threading::Serial,
        );
        // Nodal masses on a single element are the corner masses (0.25);
        // mu = 0.125, cap = 0.25 * 0.125 * 2 / 0.1 = 0.625.
        let mag = st.cnforce(0, 0).norm();
        assert!(approx_eq(mag, 0.625, 1e-12), "capped magnitude {mag}");
        // The applied impulse never reverses the relative velocity.
        assert!(mag * dt <= 0.125 * 2.0 + 1e-12);
    }

    #[test]
    fn hourglass_filter_damps_hourglass_mode_only() {
        let mesh = generate_rect(&RectSpec::unit_square(1), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        // Hourglass velocity pattern: alternate +x/-x *in corner order*.
        // The single element's corners are nodes [0, 1, 3, 2].
        let corner_of_node = [0usize, 1, 3, 2]; // node -> corner
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |_| 1.0,
            |_| 2.5,
            |i| Vec2::new(GAMMA[corner_of_node[i]], 0.0),
        )
        .unwrap();
        st.pressure[0] = 0.0;
        let hg = HourglassControl {
            kappa_filter: 0.5,
            zeta_subzonal: 0.0,
        };
        getforce(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            hg,
            1.0,
            Threading::Serial,
        );
        // Force must oppose the mode: sign opposite to GAMMA * u_hg.
        for c in 0..4 {
            assert!(st.cnforce(0, c).x * GAMMA[c] < 0.0, "corner {c} not damped");
            assert!(st.cnforce(0, c).y.abs() < 1e-13);
        }
        // And a rigid translation is untouched by the filter.
        let mut st2 =
            HydroState::new(&mesh, &mat, |_| 1.0, |_| 2.5, |_| Vec2::new(1.0, 0.0)).unwrap();
        st2.pressure[0] = 0.0;
        getforce(
            &mesh,
            &mut st2,
            LocalRange::whole(&mesh),
            hg,
            1.0,
            Threading::Serial,
        );
        for c in 0..4 {
            assert!(st2.cnforce(0, c).norm() < 1e-13);
        }
    }

    #[test]
    fn subzonal_pressure_resists_corner_compression() {
        let (mesh, mut st) = setup(1);
        st.pressure[0] = 0.0;
        // Pretend corner 0's sub-zone got compressed: its volume halved
        // while mass is fixed -> sub-zonal density doubled.
        st.cnvol[0][0] *= 0.5;
        let hg = HourglassControl {
            kappa_filter: 0.0,
            zeta_subzonal: 0.5,
        };
        getforce(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            hg,
            1.0,
            Threading::Serial,
        );
        // The restoring force must push corner 0 outward (towards -x,-y
        // for the bottom-left corner of a unit square).
        let f = st.cnforce(0, 0);
        assert!(
            f.x < 0.0 && f.y < 0.0,
            "restoring force {f:?} should point outward"
        );
        // The variational force distributes over all corners but sums to
        // zero (no net thrust on the element) and is dominated by the
        // compressed corner.
        let net: Vec2 = (0..4).map(|c| st.cnforce(0, c)).sum();
        assert!(net.norm() < 1e-13, "net subzonal force {net:?}");
        assert!(
            st.cnforce(0, 2).norm() < f.norm(),
            "far corner should feel less"
        );
    }

    #[test]
    fn split_sweeps_match_full_sweep_bitwise() {
        let mesh = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let nodes = mesh.nodes.clone();
        let mk = || {
            let mut st = HydroState::new(
                &mesh,
                &mat,
                |e| 1.0 + 0.01 * e as f64,
                |_| 2.0,
                |i| Vec2::new((3.0 * nodes[i].y).sin(), (2.0 * nodes[i].x).cos()),
            )
            .unwrap();
            for e in 0..st.n_elements() {
                st.edge_q[e] = [0.1, 0.0, 0.3, 0.05];
            }
            st
        };
        let range = LocalRange::whole(&mesh);
        let mask: Vec<bool> = (0..mesh.n_elements()).map(|e| (e / 3) % 2 == 0).collect();
        for th in [Threading::Serial, Threading::Rayon] {
            let mut full = mk();
            getforce(
                &mesh,
                &mut full,
                range,
                HourglassControl::default(),
                1.0,
                th,
            );
            let mut split = mk();
            for keep in [true, false] {
                getforce_subset(
                    &mesh,
                    &mut split,
                    range,
                    HourglassControl::default(),
                    1.0,
                    th,
                    crate::subset::Subset::Mask { mask: &mask, keep },
                );
            }
            assert_eq!(full.cnforce_x, split.cnforce_x, "{th:?}");
            assert_eq!(full.cnforce_y, split.cnforce_y, "{th:?}");
        }
    }

    #[test]
    fn serial_matches_rayon() {
        let mesh = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let nodes = mesh.nodes.clone();
        let mut a = HydroState::new(
            &mesh,
            &mat,
            |e| 1.0 + 0.01 * e as f64,
            |_| 2.0,
            |i| Vec2::new((3.0 * nodes[i].y).sin(), (2.0 * nodes[i].x).cos()),
        )
        .unwrap();
        for e in 0..a.n_elements() {
            a.edge_q[e] = [0.1, 0.0, 0.3, 0.05];
        }
        let mut b = a.clone();
        getforce(
            &mesh,
            &mut a,
            LocalRange::whole(&mesh),
            HourglassControl::default(),
            1.0,
            Threading::Serial,
        );
        getforce(
            &mesh,
            &mut b,
            LocalRange::whole(&mesh),
            HourglassControl::default(),
            1.0,
            Threading::Rayon,
        );
        assert_eq!(a.cnforce_x, b.cnforce_x);
        assert_eq!(a.cnforce_y, b.cnforce_y);
    }
}
