//! `getgeom`: update element geometry after node motion.
//!
//! Recomputes, for every owned element: volume (signed area), corner
//! volumes, and the CFL characteristic length. A non-positive volume
//! means the mesh tangled — a fatal error in the reference code too.

use bookleaf_mesh::geometry::{char_length, corner_volumes, quad_area};
use bookleaf_mesh::Mesh;
use bookleaf_util::{BookLeafError, Result};
use rayon::prelude::*;

use crate::state::{HydroState, LocalRange};
use crate::Threading;

/// Recompute geometry for the owned range. Returns the first tangled
/// element as an error.
pub fn getgeom(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    threading: Threading,
) -> Result<()> {
    let n = range.n_owned_el;
    let body = |e: usize, volume: &mut f64, cnvol: &mut [f64; 4], length: &mut f64| -> bool {
        let c = mesh.corners(e);
        let v = quad_area(&c);
        *volume = v;
        *cnvol = corner_volumes(&c);
        *length = char_length(&c);
        v > 0.0
    };

    let ok = match threading {
        Threading::Serial => {
            let mut ok = true;
            for e in 0..n {
                let (mut v, mut cv, mut l) = (0.0, [0.0; 4], 0.0);
                ok &= body(e, &mut v, &mut cv, &mut l);
                state.volume[e] = v;
                state.cnvol[e] = cv;
                state.length[e] = l;
            }
            ok
        }
        Threading::Rayon => state.volume[..n]
            .par_iter_mut()
            .zip(state.cnvol[..n].par_iter_mut())
            .zip(state.length[..n].par_iter_mut())
            .enumerate()
            .map(|(e, ((v, cv), l))| body(e, v, cv, l))
            .reduce(|| true, |a, b| a && b),
    };

    if !ok {
        // Locate the offender for the error message (serial rescan).
        for e in 0..n {
            if state.volume[e] <= 0.0 {
                return Err(BookLeafError::NegativeVolume {
                    element: e,
                    volume: state.volume[e],
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::{approx_eq, Vec2};

    fn setup(n: usize) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).unwrap();
        (mesh, st)
    }

    #[test]
    fn recomputes_after_node_motion() {
        let (mut mesh, mut st) = setup(2);
        let range = LocalRange::whole(&mesh);
        // Stretch the whole mesh by 2x in x.
        for p in &mut mesh.nodes {
            p.x *= 2.0;
        }
        getgeom(&mesh, &mut st, range, Threading::Serial).unwrap();
        let v: f64 = st.volume.iter().sum();
        assert!(approx_eq(v, 2.0, 1e-12));
        for e in 0..st.n_elements() {
            let cv: f64 = st.cnvol[e].iter().sum();
            assert!(approx_eq(cv, st.volume[e], 1e-12));
        }
    }

    #[test]
    fn serial_and_rayon_agree() {
        let (mut mesh, mut st_a) = setup(6);
        for (i, p) in mesh.nodes.iter_mut().enumerate() {
            p.x += 0.001 * (i as f64).sin();
            p.y += 0.001 * (i as f64).cos();
        }
        let mut st_b = st_a.clone();
        let range = LocalRange::whole(&mesh);
        getgeom(&mesh, &mut st_a, range, Threading::Serial).unwrap();
        getgeom(&mesh, &mut st_b, range, Threading::Rayon).unwrap();
        assert_eq!(st_a.volume, st_b.volume);
        assert_eq!(st_a.cnvol, st_b.cnvol);
        assert_eq!(st_a.length, st_b.length);
    }

    #[test]
    fn tangled_mesh_is_fatal() {
        let (mut mesh, mut st) = setup(2);
        let range = LocalRange::whole(&mesh);
        // Collapse node 4 (centre) far past the boundary to invert cells.
        mesh.nodes[4] = Vec2::new(-5.0, -5.0);
        let err = getgeom(&mesh, &mut st, range, Threading::Serial).unwrap_err();
        assert!(matches!(err, BookLeafError::NegativeVolume { .. }));
    }

    #[test]
    fn respects_owned_range() {
        let (mut mesh, mut st) = setup(2);
        let range = LocalRange {
            n_owned_el: 2,
            n_active_nd: mesh.n_nodes(),
        };
        for p in &mut mesh.nodes {
            p.x *= 3.0;
        }
        let before = st.volume[3];
        getgeom(&mesh, &mut st, range, Threading::Serial).unwrap();
        assert!(approx_eq(st.volume[0], 3.0 * 0.25, 1e-12));
        assert_eq!(st.volume[3], before, "ghost element must be untouched");
    }
}
