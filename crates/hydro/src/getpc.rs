//! `getpc`: evaluate the EoS for pressure and sound speed.
//!
//! A thin, threadable wrapper over [`bookleaf_eos::MaterialTable`]; the
//! paper's Table II lists it as the cheapest kernel (1–2 % of runtime on
//! CPUs, more on GPUs where each launch pays fixed overheads).

use bookleaf_eos::MaterialTable;
use bookleaf_mesh::Mesh;
use rayon::prelude::*;

use crate::state::{HydroState, LocalRange};
use crate::Threading;

/// Evaluate pressure and cs² over the owned range.
pub fn getpc(
    mesh: &Mesh,
    materials: &MaterialTable,
    state: &mut HydroState,
    range: LocalRange,
    threading: Threading,
) {
    let n = range.n_owned_el;
    match threading {
        Threading::Serial => {
            let (p, rest) = state.pressure.split_at_mut(n);
            let _ = rest;
            let (c, _) = state.cs2.split_at_mut(n);
            materials.eval_slice(&state.rho[..n], &state.ein[..n], &mesh.region[..n], p, c);
        }
        Threading::Rayon => {
            let rho = &state.rho;
            let ein = &state.ein;
            let region = &mesh.region;
            state.pressure[..n]
                .par_iter_mut()
                .zip(state.cs2[..n].par_iter_mut())
                .enumerate()
                .for_each(|(e, (p, c))| {
                    let (pe, ce) = materials.spec(region[e]).pressure_cs2(rho[e], ein[e]);
                    *p = pe;
                    *c = ce;
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::EosSpec;
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::{approx_eq, Vec2};

    fn setup() -> (Mesh, MaterialTable, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(4), |c| u32::from(c.x > 0.5)).unwrap();
        let mat = MaterialTable::new(vec![EosSpec::ideal_gas(1.4), EosSpec::ideal_gas(5.0 / 3.0)]);
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 3.0, |_| Vec2::ZERO).unwrap();
        (mesh, mat, st)
    }

    #[test]
    fn multi_material_pressures() {
        let (mesh, mat, mut st) = setup();
        // Perturb energies then re-evaluate.
        for e in 0..st.n_elements() {
            st.ein[e] = 2.0;
        }
        getpc(
            &mesh,
            &mat,
            &mut st,
            LocalRange::whole(&mesh),
            Threading::Serial,
        );
        for e in 0..st.n_elements() {
            let expect = if mesh.region[e] == 0 {
                0.4 * 2.0
            } else {
                (2.0 / 3.0) * 2.0
            };
            assert!(approx_eq(st.pressure[e], expect, 1e-12));
        }
    }

    #[test]
    fn serial_matches_rayon() {
        let (mesh, mat, mut a) = setup();
        for e in 0..a.n_elements() {
            a.rho[e] = 1.0 + 0.01 * e as f64;
            a.ein[e] = 2.0 + 0.02 * e as f64;
        }
        let mut b = a.clone();
        getpc(
            &mesh,
            &mat,
            &mut a,
            LocalRange::whole(&mesh),
            Threading::Serial,
        );
        getpc(
            &mesh,
            &mat,
            &mut b,
            LocalRange::whole(&mesh),
            Threading::Rayon,
        );
        assert_eq!(a.pressure, b.pressure);
        assert_eq!(a.cs2, b.cs2);
    }

    #[test]
    fn ghost_entries_untouched() {
        let (mesh, mat, mut st) = setup();
        let sentinel = -99.0;
        let n = st.n_elements();
        st.pressure[n - 1] = sentinel;
        let range = LocalRange {
            n_owned_el: n - 1,
            n_active_nd: mesh.n_nodes(),
        };
        getpc(&mesh, &mat, &mut st, range, Threading::Serial);
        assert_eq!(st.pressure[n - 1], sentinel);
    }
}
