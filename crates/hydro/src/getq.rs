//! `getq`: edge-centred artificial viscosity.
//!
//! The bilinear FE spatial discretisation is valid for differentiable
//! flow but not across shocks; an artificial viscosity smears shock
//! discontinuities over a few cells. BookLeaf follows the edge-centred
//! form of Caramana, Shashkov & Whalen (1998): every element side gets a
//! viscous pressure with a linear (`cq1`, acoustic) and quadratic (`cq2`)
//! term, active only in compression, multiplied by `(1 − ψ)` where `ψ` is
//! a monotonic velocity-gradient limiter that switches the viscosity off
//! in smooth flow (where it would wrongly diffuse the solution).
//!
//! The limiter compares the velocity difference from cell centre to face
//! with its continuation into the neighbouring cell across that face —
//! the reason the reference code performs one of its two halo exchanges
//! *immediately before* this kernel. This is the paper's most expensive
//! kernel (≈ 64–70 % of single-node runtime on CPUs, Table II).

use bookleaf_mesh::geometry::quad_centroid;
use bookleaf_mesh::{Mesh, Neighbor, STENCIL_BOUNDARY};
use bookleaf_util::constants::ZERO_CUT;
use bookleaf_util::Vec2;
use rayon::prelude::*;
use std::cell::RefCell;

use crate::state::{HydroState, LocalRange};
use crate::subset::Subset;
use crate::Threading;

/// Reusable per-thread scratch for the cell-velocity precompute. The
/// table is a megabyte-plus at production mesh sizes; reusing it skips
/// a per-call allocation. Reuse is invisible to results: every entry
/// the sweep reads is written first on every call.
#[derive(Default)]
struct Scratch {
    cell_u: Vec<Vec2>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Artificial viscosity coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QCoeffs {
    /// Linear (acoustic) coefficient.
    pub cq1: f64,
    /// Quadratic coefficient.
    pub cq2: f64,
}

impl Default for QCoeffs {
    fn default() -> Self {
        QCoeffs {
            cq1: bookleaf_util::constants::CQ1,
            cq2: bookleaf_util::constants::CQ2,
        }
    }
}

/// Monotonic limiter: `ψ = clamp(min(2r, ½(1+r)), 0, 1)`.
///
/// `r` is the ratio of the downstream to local velocity difference:
/// `r ≈ 1` in smooth flow (ψ = 1, no viscosity), `r ≤ 0` at extrema and
/// discontinuities (ψ = 0, full viscosity).
#[inline]
#[must_use]
pub fn monotonic_limiter(r: f64) -> f64 {
    (2.0 * r).min(0.5 * (1.0 + r)).clamp(0.0, 1.0)
}

/// Compute edge and element viscosities over the owned range.
///
/// Requires ghost node velocities and positions to be current (exchange
/// phase 1).
pub fn getq(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    coeffs: QCoeffs,
    threading: Threading,
) {
    getq_subset(mesh, state, range, coeffs, threading, Subset::All);
}

/// [`getq`] over a [`Subset`] of the owned elements; entities outside
/// the subset keep their previous `q`/`edge_q` values. Used by the
/// overlapped executor: the interior subset must not reach any
/// halo-received node through its own or its face neighbours' corners
/// (see `bookleaf_mesh::OverlapSets`). The sweep structure (and the
/// parallel split tree) is identical to the unsplit kernel.
pub fn getq_subset(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    coeffs: QCoeffs,
    threading: Threading,
    subset: Subset<'_>,
) {
    let n = range.n_owned_el;

    // Cell-averaged velocities: the limiter reaches from each swept
    // element into its face neighbours (ghost layer included). A split
    // sweep only reads the entries its own elements and their
    // neighbours touch, so restrict the precompute to those — the
    // boundary pass then averages a handful of seam elements instead of
    // the whole local mesh, and the interior pass never computes ghost
    // entries from not-yet-exchanged velocities it would discard.
    let needed: Option<Vec<bool>> = match subset {
        Subset::All => None,
        Subset::Mask { .. } => {
            let mut needed = vec![false; mesh.n_elements()];
            for e in 0..n {
                if !subset.contains(e) {
                    continue;
                }
                needed[e] = true;
                for nb in &mesh.elel[e] {
                    if let Neighbor::Element(en) = nb {
                        needed[*en as usize] = true;
                    }
                }
            }
            Some(needed)
        }
    };
    // The viscosity stencil's neighbour gathers, hoisted out of the
    // face loop: the *indices* (and the boundary discrimination) are
    // the packed per-edge table precomputed once per mesh —
    // `Mesh::face_stencil` — streamed stride-1 here at half the bytes
    // of the tagged `elel` rows; the *values* are the cell-averaged
    // velocities precomputed below, so the heavy sqrt/divide face loop
    // performs exactly one indexed read per compressive interior face.
    // Both tables hold exactly the values the in-loop reads produced,
    // so results are bitwise identical.
    let stencil = &mesh.face_stencil()[..n];

    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let cell_u = &mut scratch.cell_u;
        cell_u.resize(mesh.n_elements(), Vec2::ZERO);

        let entry = |e: usize| match &needed {
            Some(needed) if !needed[e] => Vec2::ZERO, // never read
            _ => cell_velocity(mesh, &state.u, e),
        };
        match threading {
            Threading::Serial => {
                for (e, cu) in cell_u.iter_mut().enumerate() {
                    *cu = entry(e);
                }
            }
            Threading::Rayon => {
                cell_u
                    .par_iter_mut()
                    .enumerate()
                    .for_each(|(e, cu)| *cu = entry(e));
            }
        }

        let cell_u = &*cell_u;
        let u = &state.u;
        let rho = &state.rho[..n];
        let cs2 = &state.cs2[..n];
        let body = |e: usize, edge_q: &mut [f64; 4], q: &mut f64| {
            let corners = mesh.corners(e);
            let centre = quad_centroid(&corners);
            let uc = cell_u[e];
            let cs = cs2[e].max(0.0).sqrt();
            let nd = mesh.elnd[e];
            let nbr = &stencil[e];
            let mut qmax = 0.0f64;
            for f in 0..4 {
                let a = nd[f] as usize;
                let b = nd[(f + 1) % 4] as usize;
                // Edge-centred velocity jump (Caramana et al.): the two
                // corners of side f approaching each other is compression
                // along that edge, whatever the mode (radial crush, shear
                // sliver, hourglass) — this is what makes the edge form
                // robust where a purely face-normal measure is blind.
                let du = u[b] - u[a];
                let dx = corners[(f + 1) % 4] - corners[f];
                if du.dot(dx) >= -ZERO_CUT {
                    edge_q[f] = 0.0;
                    continue;
                }
                let du_mag = du.norm();
                if du_mag <= ZERO_CUT {
                    edge_q[f] = 0.0;
                    continue;
                }

                // Limiter 1: smoothness across the face, measured by the
                // continuation of the centre→face velocity difference into
                // the neighbour (the term that needs the halo exchange),
                // reached through the packed stencil row.
                let xf = corners[f].midpoint(corners[(f + 1) % 4]);
                let uf = u[a].midpoint_vel(u[b]);
                let dir = (xf - centre).normalized();
                let du_face = (uf - uc).dot(dir);
                let psi_face = if nbr[f] == STENCIL_BOUNDARY {
                    // Boundary faces: no smooth continuation exists; apply
                    // full viscosity so wall shocks (Noh) stay stable.
                    0.0
                } else if du_face.abs() > ZERO_CUT {
                    let du_nbr = (cell_u[nbr[f] as usize] - uf).dot(dir);
                    monotonic_limiter(du_nbr / du_face)
                } else {
                    1.0
                };
                // Limiter 2: smoothness along the element, comparing this
                // edge's jump with the opposite edge traversed in the same
                // sense (linear fields give ratio 1; oscillatory modes give
                // negative ratios and full viscosity).
                let du_opp = u[nd[(f + 3) % 4] as usize] - u[nd[(f + 2) % 4] as usize];
                let r2 = -du_opp.dot(du) / (du_mag * du_mag);
                let psi = psi_face.min(monotonic_limiter(r2));

                edge_q[f] = (1.0 - psi) * rho[e] * du_mag * (coeffs.cq2 * du_mag + coeffs.cq1 * cs);
                qmax = qmax.max(edge_q[f]);
            }
            *q = qmax;
        };

        match threading {
            Threading::Serial => {
                for (e, (eq, qv)) in state.edge_q[..n]
                    .iter_mut()
                    .zip(state.q[..n].iter_mut())
                    .enumerate()
                {
                    if subset.contains(e) {
                        body(e, eq, qv);
                    }
                }
            }
            Threading::Rayon => {
                state.edge_q[..n]
                    .par_iter_mut()
                    .zip(state.q[..n].par_iter_mut())
                    .enumerate()
                    .for_each(|(e, (eq, qv))| {
                        if subset.contains(e) {
                            body(e, eq, qv);
                        }
                    });
            }
        }
    });
}

/// Cell-averaged velocity of element `e`.
#[inline]
fn cell_velocity(mesh: &Mesh, u: &[Vec2], e: usize) -> Vec2 {
    let nd = mesh.elnd[e];
    (u[nd[0] as usize] + u[nd[1] as usize] + u[nd[2] as usize] + u[nd[3] as usize]) * 0.25
}

/// Small extension trait: velocity midpoint (same as position midpoint,
/// named for clarity at call sites).
trait VelMid {
    fn midpoint_vel(self, other: Self) -> Self;
}
impl VelMid for Vec2 {
    #[inline]
    fn midpoint_vel(self, other: Self) -> Self {
        self.midpoint(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::approx_eq;

    fn setup(n: usize, u_of: impl Fn(usize) -> Vec2) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(5.0 / 3.0));
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, u_of).unwrap();
        (mesh, st)
    }

    #[test]
    fn limiter_bounds() {
        assert_eq!(monotonic_limiter(1.0), 1.0); // smooth
        assert_eq!(monotonic_limiter(0.0), 0.0); // extremum
        assert_eq!(monotonic_limiter(-3.0), 0.0); // reversal
        assert_eq!(monotonic_limiter(100.0), 1.0); // capped
                                                   // Interior values stay within [0, 1].
        for i in 0..100 {
            let r = -2.0 + 0.05 * i as f64;
            let p = monotonic_limiter(r);
            assert!((0.0..=1.0).contains(&p), "psi({r}) = {p}");
        }
    }

    #[test]
    fn quiescent_flow_has_zero_q() {
        let (mesh, mut st) = setup(4, |_| Vec2::ZERO);
        getq(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            QCoeffs::default(),
            Threading::Serial,
        );
        assert!(st.q.iter().all(|&q| q == 0.0));
        assert!(st.edge_q.iter().flatten().all(|&q| q == 0.0));
    }

    #[test]
    fn uniform_translation_has_zero_q() {
        let (mesh, mut st) = setup(4, |_| Vec2::new(3.0, -1.0));
        getq(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            QCoeffs::default(),
            Threading::Serial,
        );
        assert!(st.q.iter().all(|&q| q == 0.0));
    }

    #[test]
    fn smooth_compression_is_limited_away() {
        // u = -0.05 x: smooth uniform compression; the limiter should see
        // r = 1 in the interior and return psi = 1 => q = 0 there.
        let mesh = generate_rect(&RectSpec::unit_square(8), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(5.0 / 3.0));
        let nodes = mesh.nodes.clone();
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |_| 1.0,
            |_| 1.0,
            |i| Vec2::new(-0.05 * nodes[i].x, 0.0),
        )
        .unwrap();
        getq(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            QCoeffs::default(),
            Threading::Serial,
        );
        // Centre element (row 4ish, col 4ish) fully interior in x.
        let centre = 4 * 8 + 4;
        assert!(
            st.q[centre] < 1e-12,
            "smooth flow wrongly triggers q = {}",
            st.q[centre]
        );
    }

    #[test]
    fn colliding_flow_triggers_q() {
        // Two half-planes colliding at x = 0.5: a genuine discontinuity.
        let mesh = generate_rect(&RectSpec::unit_square(8), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(5.0 / 3.0));
        let nodes = mesh.nodes.clone();
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |_| 1.0,
            |_| 1.0,
            |i| Vec2::new(if nodes[i].x < 0.5 { 1.0 } else { -1.0 }, 0.0),
        )
        .unwrap();
        // Nodes exactly on x=0.5 got u=-1; the jump sits at the interface.
        getq(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            QCoeffs::default(),
            Threading::Serial,
        );
        let max_q = st.q.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max_q > 0.1,
            "collision should trigger viscosity, got {max_q}"
        );
        // And q is localised near the collision plane: far-field zero.
        assert!(st.q[0] < 1e-12);
        assert!(st.q[7] < 1e-12);
    }

    #[test]
    fn expansion_has_zero_q() {
        // u = +x: pure expansion; viscosity must not act.
        let mesh = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(5.0 / 3.0));
        let nodes = mesh.nodes.clone();
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |_| 1.0,
            |_| 1.0,
            |i| nodes[i] - Vec2::new(0.5, 0.5),
        )
        .unwrap();
        getq(
            &mesh,
            &mut st,
            LocalRange::whole(&mesh),
            QCoeffs::default(),
            Threading::Serial,
        );
        let interior = 2 * 6 + 2;
        assert!(st.q[interior] < 1e-12);
    }

    #[test]
    fn serial_matches_rayon() {
        let mesh = generate_rect(&RectSpec::unit_square(7), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let nodes = mesh.nodes.clone();
        let mut a = HydroState::new(
            &mesh,
            &mat,
            |_| 1.0,
            |_| 1.0,
            |i| {
                Vec2::new(
                    (7.0 * nodes[i].x).sin() * 0.3,
                    (5.0 * nodes[i].y).cos() * 0.2,
                )
            },
        )
        .unwrap();
        let mut b = a.clone();
        getq(
            &mesh,
            &mut a,
            LocalRange::whole(&mesh),
            QCoeffs::default(),
            Threading::Serial,
        );
        getq(
            &mesh,
            &mut b,
            LocalRange::whole(&mesh),
            QCoeffs::default(),
            Threading::Rayon,
        );
        assert_eq!(a.q, b.q);
        assert_eq!(a.edge_q, b.edge_q);
    }

    #[test]
    fn split_sweeps_match_full_sweep_bitwise() {
        let mesh = generate_rect(&RectSpec::unit_square(7), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let nodes = mesh.nodes.clone();
        let mk = || {
            HydroState::new(
                &mesh,
                &mat,
                |e| 1.0 + 0.02 * (e % 5) as f64,
                |_| 1.0,
                |i| {
                    Vec2::new(
                        (7.0 * nodes[i].x).sin() * 0.3,
                        (5.0 * nodes[i].y).cos() * 0.2,
                    )
                },
            )
            .unwrap()
        };
        let range = LocalRange::whole(&mesh);
        // Arbitrary split: the union of a mask's two sides must equal
        // the full sweep exactly (per-element independence).
        let mask: Vec<bool> = (0..mesh.n_elements()).map(|e| e % 3 == 0).collect();
        for th in [Threading::Serial, Threading::Rayon] {
            let mut full = mk();
            getq(&mesh, &mut full, range, QCoeffs::default(), th);
            let mut split = mk();
            for keep in [false, true] {
                getq_subset(
                    &mesh,
                    &mut split,
                    range,
                    QCoeffs::default(),
                    th,
                    crate::subset::Subset::Mask { mask: &mask, keep },
                );
            }
            assert_eq!(full.q, split.q, "{th:?}");
            assert_eq!(full.edge_q, split.edge_q, "{th:?}");
        }
    }

    #[test]
    fn subset_leaves_excluded_elements_untouched() {
        let (mesh, mut st) = setup(4, |i| Vec2::new(i as f64 * 0.01, -0.02));
        let range = LocalRange::whole(&mesh);
        let poison = 7.25;
        st.q.fill(poison);
        let mask: Vec<bool> = (0..mesh.n_elements()).map(|e| e < 8).collect();
        getq_subset(
            &mesh,
            &mut st,
            range,
            QCoeffs::default(),
            Threading::Serial,
            crate::subset::Subset::Mask {
                mask: &mask,
                keep: true,
            },
        );
        for e in 0..mesh.n_elements() {
            if !mask[e] {
                assert_eq!(st.q[e], poison, "element {e} outside subset was written");
            } else {
                assert_ne!(st.q[e], poison, "element {e} inside subset was skipped");
            }
        }
    }

    #[test]
    fn q_scales_with_density() {
        let mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let nodes = mesh.nodes.clone();
        let mk = |rho: f64| {
            let mut st = HydroState::new(
                &mesh,
                &mat,
                |_| rho,
                |_| 0.0,
                |i| Vec2::new(if nodes[i].x < 0.5 { 1.0 } else { -1.0 }, 0.0),
            )
            .unwrap();
            getq(
                &mesh,
                &mut st,
                LocalRange::whole(&mesh),
                QCoeffs::default(),
                Threading::Serial,
            );
            st.q.iter().cloned().fold(0.0f64, f64::max)
        };
        let q1 = mk(1.0);
        let q2 = mk(2.0);
        assert!(
            approx_eq(q2, 2.0 * q1, 1e-10),
            "q should scale linearly: {q1} vs {q2}"
        );
    }
}
