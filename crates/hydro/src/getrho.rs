//! `getrho`: density from Lagrangian mass and current volume.
//!
//! In the Lagrangian frame element mass is constant, so mass conservation
//! (paper eq. 1) is enforced exactly by `ρ = m / V` after each geometry
//! update.

use bookleaf_util::{BookLeafError, Result};
use rayon::prelude::*;

use crate::state::{HydroState, LocalRange};
use crate::Threading;

/// Update density over the owned range.
pub fn getrho(state: &mut HydroState, range: LocalRange, threading: Threading) -> Result<()> {
    let n = range.n_owned_el;
    match threading {
        Threading::Serial => {
            for e in 0..n {
                state.rho[e] = state.mass[e] / state.volume[e];
            }
        }
        Threading::Rayon => {
            let mass = &state.mass;
            let volume = &state.volume;
            state.rho[..n]
                .par_iter_mut()
                .enumerate()
                .for_each(|(e, r)| *r = mass[e] / volume[e]);
        }
    }
    if let Some(e) = (0..n).find(|&e| !state.rho[e].is_finite() || state.rho[e] < 0.0) {
        return Err(BookLeafError::InvalidState {
            element: e,
            what: format!("density {} after getrho", state.rho[e]),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, Mesh, RectSpec};
    use bookleaf_util::{approx_eq, Vec2};

    fn setup(n: usize) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 2.0, |_| 1.0, |_| Vec2::ZERO).unwrap();
        (mesh, st)
    }

    #[test]
    fn density_tracks_volume_change() {
        let (mesh, mut st) = setup(2);
        let range = LocalRange::whole(&mesh);
        // Halve every volume: density must double.
        for v in &mut st.volume {
            *v *= 0.5;
        }
        getrho(&mut st, range, Threading::Serial).unwrap();
        assert!(st.rho.iter().all(|&r| approx_eq(r, 4.0, 1e-12)));
    }

    #[test]
    fn serial_matches_rayon() {
        let (mesh, mut a) = setup(5);
        let range = LocalRange::whole(&mesh);
        for (i, v) in a.volume.iter_mut().enumerate() {
            *v *= 1.0 + 0.01 * i as f64;
        }
        let mut b = a.clone();
        getrho(&mut a, range, Threading::Serial).unwrap();
        getrho(&mut b, range, Threading::Rayon).unwrap();
        assert_eq!(a.rho, b.rho);
    }

    #[test]
    fn non_finite_density_rejected() {
        let (mesh, mut st) = setup(2);
        let range = LocalRange::whole(&mesh);
        st.volume[1] = 0.0;
        assert!(getrho(&mut st, range, Threading::Serial).is_err());
    }
}
