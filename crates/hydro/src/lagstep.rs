//! The Lagrangian step: predictor–corrector composition of the kernels.
//!
//! Algorithm 1 of the paper:
//!
//! ```text
//! Predictor:  GETQ GETFORCE GETGEOM GETRHO GETEIN GETPC   (to t + dt/2)
//! Corrector:  GETQ GETFORCE GETACC GETGEOM GETRHO GETEIN GETPC (to t + dt)
//! ```
//!
//! A first-order forward-Euler half step (predictor) time-centres the
//! state; the corrector then advances the full step with second-order
//! accuracy. Halo exchanges happen at exactly the points the paper names:
//! *immediately before the viscosity calculation* and *immediately before
//! calculating the acceleration* — injected here through the [`HaloOps`]
//! hooks so the same kernel code serves serial and distributed runs.

use bookleaf_eos::MaterialTable;
use bookleaf_mesh::Mesh;
use bookleaf_util::{KernelId, Result, TimerRegistry, Vec2};

use crate::eos_fused::{eos_fused, EosStages, FusedEos};
use crate::getacc::{getacc, getacc_subset, move_nodes, AccMode};
use crate::getein::{getein, WorkVelocity};
use crate::getforce::{getforce_subset, HourglassControl};
use crate::getgeom::getgeom;
use crate::getpc::getpc;
use crate::getq::{getq_subset, QCoeffs};
use crate::getrho::getrho;
use crate::state::{HydroState, LocalRange};
use crate::subset::Subset;
use crate::Threading;

/// Communication hooks called at the paper's two exchange points (plus a
/// post-acceleration hook used by driven-boundary decks such as the
/// Saltzmann piston). Serial runs use [`NoComm`].
///
/// **Aggregation contract:** each hook is one *exchange phase*.
/// Distributed implementations must register every field a phase needs
/// up front and move the whole phase as a **single packed message per
/// neighbouring rank** (see `bookleaf_typhon::plan`), so the per-step
/// point-to-point message count is `phase executions × neighbour links`
/// — never `fields × links`. The cluster cost model charges per message
/// as well as per byte; a hook that sends one message per field inflates
/// the modeled (and real) wire time several-fold.
///
/// **Split (post/complete) protocol:** every exchange phase also comes
/// as a `*_post` / `*_complete` pair so the executor can overlap
/// communication with computation. `post` packs and sends the phase's
/// single message per neighbour immediately; `complete` receives and
/// unpacks it. Between a phase's `post` and its `complete` the caller
/// may compute anything that does not read a halo-received entity of
/// that phase — the **interior/boundary ordering invariant**:
///
/// 1. interior entities (no halo dependency, see
///    `bookleaf_mesh::OverlapSets`) are swept while the messages are in
///    flight;
/// 2. the phase is completed;
/// 3. boundary entities are swept with the refreshed halo.
///
/// Because interior sweeps touch no received value and boundary sweeps
/// run after the same unpack a blocking exchange would have done, the
/// split schedule is bitwise identical to the blocking one. A split
/// pair must move exactly the messages the blocking hook moves (the
/// message-count contract above applies per *pair*, not per call), and
/// posts must be issued in the same global order on every rank.
///
/// The default implementations keep legacy hooks correct without
/// opting into overlap: for the two Lagrangian phases `post` runs the
/// full blocking exchange and `complete` is a no-op (every send value
/// is final at post time); for `post_remap` — posted mid-remap, when
/// only the pre-post entities are final — `post` is the no-op and
/// `complete`, called after the full remap, runs the blocking exchange.
///
/// **Fallibility:** every hook returns a [`Result`] so that a
/// communication failure — a dead peer, a timed-out receive, a payload
/// that fails its checksum — aborts the step *at the exchange that saw
/// it*, as a typed error, instead of panicking or shipping garbage into
/// the next kernel. Serial hooks ([`NoComm`], piston drivers) simply
/// return `Ok(())`.
pub trait HaloOps {
    /// Called immediately before each viscosity calculation (twice per
    /// step: predictor and corrector): bring ghost node kinematics and
    /// ghost element thermodynamic state up to date.
    fn pre_viscosity(&mut self, _mesh: &mut Mesh, _state: &mut HydroState) -> Result<()> {
        Ok(())
    }
    /// Called immediately before the acceleration: bring ghost corner
    /// masses and forces up to date.
    fn pre_acceleration(&mut self, _state: &mut HydroState) -> Result<()> {
        Ok(())
    }
    /// Called immediately after the acceleration: impose driven
    /// kinematics (piston walls) on `u`/`ubar`.
    fn post_acceleration(&mut self, _mesh: &Mesh, _state: &mut HydroState) -> Result<()> {
        Ok(())
    }
    /// Called after an ALE remap: refresh ghost copies of everything the
    /// remap rewrote (masses, state, node kinematics).
    fn post_remap(&mut self, _mesh: &mut Mesh, _state: &mut HydroState) -> Result<()> {
        Ok(())
    }

    /// Split form of [`HaloOps::pre_viscosity`]: pack and send without
    /// waiting for the peers' payloads.
    fn pre_viscosity_post(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        self.pre_viscosity(mesh, state)
    }
    /// Drain and unpack the exchange posted by
    /// [`HaloOps::pre_viscosity_post`]; must run before any boundary
    /// entity of the phase is read.
    fn pre_viscosity_complete(&mut self, _mesh: &mut Mesh, _state: &mut HydroState) -> Result<()> {
        Ok(())
    }

    /// Split form of [`HaloOps::pre_acceleration`]: pack and send
    /// without waiting.
    fn pre_acceleration_post(&mut self, state: &mut HydroState) -> Result<()> {
        self.pre_acceleration(state)
    }
    /// Drain the exchange posted by [`HaloOps::pre_acceleration_post`].
    fn pre_acceleration_complete(&mut self, _state: &mut HydroState) -> Result<()> {
        Ok(())
    }

    /// Split form of [`HaloOps::post_remap`], called as soon as every
    /// entity the pack reads (the remap pre-post sets) has been
    /// remapped — *before* the rest of the remap runs.
    fn post_remap_post(&mut self, _mesh: &mut Mesh, _state: &mut HydroState) -> Result<()> {
        Ok(())
    }
    /// Drain the exchange posted by [`HaloOps::post_remap_post`], after
    /// the full remap. The default runs the blocking exchange here, so
    /// implementations that only provide [`HaloOps::post_remap`] stay
    /// correct under the overlapped remap.
    fn post_remap_complete(&mut self, mesh: &mut Mesh, state: &mut HydroState) -> Result<()> {
        self.post_remap(mesh, state)
    }
}

/// Interior/boundary masks steering the overlapped Lagrangian step.
/// Views into `bookleaf_mesh::OverlapSets` (or anything upholding the
/// same guarantees — see the [`HaloOps`] ordering invariant).
#[derive(Debug, Clone, Copy)]
pub struct KernelSplit<'a> {
    /// Per owned element: `true` ⇒ the viscosity-phase stencil touches
    /// a halo-received entity (swept only after the exchange completes).
    pub el_boundary: &'a [bool],
    /// Per active node: `true` ⇒ adjacent to a ghost element (swept
    /// only after the corner exchange completes).
    pub nd_boundary: &'a [bool],
}

/// No-op hooks for serial (single-rank) runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoComm;
impl HaloOps for NoComm {}

/// Per-step options for the Lagrangian step.
#[derive(Debug, Clone, Copy)]
pub struct LagOptions {
    /// Threading of the trivially parallel kernels.
    pub threading: Threading,
    /// Accumulation mode of the acceleration kernel.
    pub acc_mode: AccMode,
    /// Artificial viscosity coefficients.
    pub q: QCoeffs,
    /// Hourglass control coefficients.
    pub hourglass: HourglassControl,
    /// Run the EOS chain (`getgeom → getrho → getein → getpc`) as the
    /// single fused sweep [`fn@crate::eos_fused`] (bitwise identical to the
    /// unfused chain, one pass over the element arrays instead of four).
    /// Default on; turn off to time the unfused reference kernels.
    pub fuse_eos: bool,
}

impl Default for LagOptions {
    fn default() -> Self {
        LagOptions {
            threading: Threading::default(),
            acc_mode: AccMode::default(),
            q: QCoeffs::default(),
            hourglass: HourglassControl::default(),
            fuse_eos: true,
        }
    }
}

/// Advance `state` by one Lagrangian step of size `dt`.
///
/// Equivalent to [`lagstep_timed`] with a throwaway timer registry.
pub fn lagstep<H: HaloOps>(
    mesh: &mut Mesh,
    materials: &MaterialTable,
    state: &mut HydroState,
    range: LocalRange,
    dt: f64,
    opts: &LagOptions,
    halo: &mut H,
) -> Result<()> {
    lagstep_timed(
        mesh,
        materials,
        state,
        range,
        dt,
        opts,
        halo,
        &TimerRegistry::new(),
        None,
    )
}

/// Advance `state` by one Lagrangian step, recording per-kernel wall
/// time into `timers` (the buckets of the paper's Table II).
///
/// With `split` set, each exchange phase is overlapped with the kernels
/// it feeds: the phase is *posted*, interior entities are swept while
/// the messages are in flight, the phase is *completed*, and the
/// boundary entities are swept last — bitwise identical to the blocking
/// schedule (see the [`HaloOps`] ordering invariant).
#[allow(clippy::too_many_arguments)]
pub fn lagstep_timed<H: HaloOps>(
    mesh: &mut Mesh,
    materials: &MaterialTable,
    state: &mut HydroState,
    range: LocalRange,
    dt: f64,
    opts: &LagOptions,
    halo: &mut H,
    timers: &TimerRegistry,
    split: Option<KernelSplit<'_>>,
) -> Result<()> {
    let th = opts.threading;
    // Start-of-step node positions and internal energy: the corrector
    // advances both from t^n (the predictor's half-step values only feed
    // the corrector's *forces*), which is what makes the scheme
    // second-order and exactly energy-conserving.
    let x0: Vec<Vec2> = mesh.nodes[..range.n_active_nd].to_vec();
    let ein0: Vec<f64> = state.ein[..range.n_owned_el].to_vec();

    // The viscosity and force kernels share the pre_viscosity exchange
    // (the force stencil is contained in the viscosity stencil), so one
    // post/complete brackets both.
    let q_and_force =
        |mesh: &mut Mesh, state: &mut HydroState, halo: &mut H, subset: Subset<'_>| -> Result<()> {
            match subset {
                Subset::All => timers.time(KernelId::Comms, || halo.pre_viscosity(mesh, state))?,
                Subset::Mask { mask, .. } => {
                    timers.time(KernelId::Comms, || halo.pre_viscosity_post(mesh, state))?;
                    let interior = Subset::Mask { mask, keep: false };
                    timers.time(KernelId::GetQ, || {
                        getq_subset(mesh, state, range, opts.q, th, interior);
                    });
                    timers.time(KernelId::GetForce, || {
                        getforce_subset(mesh, state, range, opts.hourglass, dt, th, interior);
                    });
                    timers.time(KernelId::Comms, || halo.pre_viscosity_complete(mesh, state))?;
                }
            }
            // The remaining sweep: everything for the blocking schedule,
            // the boundary set for the overlapped one.
            let rest = match subset {
                Subset::All => Subset::All,
                Subset::Mask { mask, .. } => Subset::Mask { mask, keep: true },
            };
            timers.time(KernelId::GetQ, || {
                getq_subset(mesh, state, range, opts.q, th, rest);
            });
            timers.time(KernelId::GetForce, || {
                getforce_subset(mesh, state, range, opts.hourglass, dt, th, rest);
            });
            Ok(())
        };
    let visc_subset = match split {
        None => Subset::All,
        Some(s) => Subset::Mask {
            mask: s.el_boundary,
            keep: true,
        },
    };

    // ---- Predictor: advance thermodynamic state to t + dt/2 ----
    q_and_force(mesh, state, halo, visc_subset)?;
    // Move nodes a half step with the start-of-step velocity.
    state.ubar[..range.n_active_nd].copy_from_slice(&state.u[..range.n_active_nd]);
    move_nodes(mesh, state, range, 0.5 * dt);
    if opts.fuse_eos {
        timers.time(KernelId::EosFused, || {
            eos_fused(
                mesh,
                materials,
                state,
                range,
                FusedEos {
                    dt: 0.5 * dt,
                    which: WorkVelocity::Current,
                    ein_from: None,
                    stages: EosStages::all(),
                },
                th,
            )
        })?;
    } else {
        timers.time(KernelId::GetGeom, || getgeom(mesh, state, range, th))?;
        timers.time(KernelId::GetRho, || getrho(state, range, th))?;
        timers.time(KernelId::GetEin, || {
            getein(mesh, state, range, 0.5 * dt, WorkVelocity::Current, th);
        });
        timers.time(KernelId::GetPc, || getpc(mesh, materials, state, range, th));
    }

    // ---- Corrector: full step with time-centred quantities ----
    q_and_force(mesh, state, halo, visc_subset)?;
    match split {
        None => {
            timers.time(KernelId::Comms, || halo.pre_acceleration(state))?;
            timers.time(KernelId::GetAcc, || {
                getacc(mesh, state, range, dt, opts.acc_mode);
                halo.post_acceleration(mesh, state)
            })?;
        }
        Some(s) => {
            // Post the corner exchange, gather the interior nodes while
            // the ghost corners travel, complete, then the boundary
            // nodes. The piston runs after both sweeps, as always.
            timers.time(KernelId::Comms, || halo.pre_acceleration_post(state))?;
            timers.time(KernelId::GetAcc, || {
                getacc_subset(
                    mesh,
                    state,
                    range,
                    dt,
                    opts.acc_mode,
                    Subset::Mask {
                        mask: s.nd_boundary,
                        keep: false,
                    },
                );
            });
            timers.time(KernelId::Comms, || halo.pre_acceleration_complete(state))?;
            timers.time(KernelId::GetAcc, || {
                getacc_subset(
                    mesh,
                    state,
                    range,
                    dt,
                    opts.acc_mode,
                    Subset::Mask {
                        mask: s.nd_boundary,
                        keep: true,
                    },
                );
                halo.post_acceleration(mesh, state)
            })?;
        }
    }
    // Re-move nodes from the start-of-step positions by dt·ubar.
    mesh.nodes[..range.n_active_nd].copy_from_slice(&x0);
    move_nodes(mesh, state, range, dt);
    if opts.fuse_eos {
        // The fused corrector integrates the energy straight from the
        // saved start-of-step buffer (`ein_from`), absorbing the unfused
        // path's restore `copy_from_slice` into the sweep.
        timers.time(KernelId::EosFused, || {
            eos_fused(
                mesh,
                materials,
                state,
                range,
                FusedEos {
                    dt,
                    which: WorkVelocity::TimeCentred,
                    ein_from: Some(&ein0),
                    stages: EosStages::all(),
                },
                th,
            )
        })?;
    } else {
        timers.time(KernelId::GetGeom, || getgeom(mesh, state, range, th))?;
        timers.time(KernelId::GetRho, || getrho(state, range, th))?;
        state.ein[..range.n_owned_el].copy_from_slice(&ein0);
        timers.time(KernelId::GetEin, || {
            getein(mesh, state, range, dt, WorkVelocity::TimeCentred, th);
        });
        timers.time(KernelId::GetPc, || getpc(mesh, materials, state, range, th));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::EosSpec;
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::approx_eq;

    fn setup(n: usize) -> (Mesh, MaterialTable, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 2.5, |_| Vec2::ZERO).unwrap();
        (mesh, mat, st)
    }

    #[test]
    fn quiescent_uniform_state_is_steady() {
        // Uniform pressure, zero velocity: nothing may change.
        let (mut mesh, mat, mut st) = setup(4);
        let range = LocalRange::whole(&mesh);
        let rho0 = st.rho.clone();
        let ein0 = st.ein.clone();
        let x0 = mesh.nodes.clone();
        for _ in 0..5 {
            lagstep(
                &mut mesh,
                &mat,
                &mut st,
                range,
                1e-3,
                &LagOptions::default(),
                &mut NoComm,
            )
            .unwrap();
        }
        for e in 0..st.n_elements() {
            assert!(approx_eq(st.rho[e], rho0[e], 1e-12));
            assert!(approx_eq(st.ein[e], ein0[e], 1e-12));
        }
        for n in 0..mesh.n_nodes() {
            assert!(approx_eq(mesh.nodes[n].x, x0[n].x, 1e-12));
            assert!(st.u[n].norm() < 1e-14);
        }
    }

    #[test]
    fn total_energy_conserved_in_closed_box() {
        // A pressure blip in a reflecting box: total energy must be
        // conserved to round-off by the compatible discretisation.
        let (mut mesh, mat, _) = setup(8);
        let range = LocalRange::whole(&mesh);
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |_| 1.0,
            |e| if e == 27 { 10.0 } else { 1.0 }, // hot cell near the middle
            |_| Vec2::ZERO,
        )
        .unwrap();
        let e_start = st.total_energy(&mesh, range);
        let opts = LagOptions::default();
        for _ in 0..50 {
            lagstep(&mut mesh, &mat, &mut st, range, 2e-3, &opts, &mut NoComm).unwrap();
        }
        let e_end = st.total_energy(&mesh, range);
        assert!(
            approx_eq(e_start, e_end, 1e-9),
            "energy drifted: {e_start} -> {e_end} (rel {})",
            ((e_end - e_start) / e_start).abs()
        );
        // And something actually happened.
        let ke = st.kinetic_energy(&mesh, range);
        assert!(ke > 1e-6, "blast should produce motion, ke = {ke}");
    }

    #[test]
    fn mass_exactly_conserved() {
        let (mut mesh, mat, _) = setup(6);
        let range = LocalRange::whole(&mesh);
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |e| if e % 3 == 0 { 2.0 } else { 1.0 },
            |e| 1.0 + 0.1 * (e % 5) as f64,
            |_| Vec2::ZERO,
        )
        .unwrap();
        let m0 = st.total_mass(range);
        for _ in 0..20 {
            lagstep(
                &mut mesh,
                &mat,
                &mut st,
                range,
                1e-3,
                &LagOptions::default(),
                &mut NoComm,
            )
            .unwrap();
        }
        // Lagrangian masses never change at all.
        assert_eq!(st.total_mass(range), m0);
        // But density/volume did evolve consistently: rho * V == mass.
        for e in 0..st.n_elements() {
            assert!(approx_eq(st.rho[e] * st.volume[e], st.mass[e], 1e-12));
        }
    }

    #[test]
    fn symmetric_blast_stays_symmetric() {
        // Energy spike dead centre of an odd grid: the solution must keep
        // the x/y mirror symmetry of the problem.
        let n = 7;
        let mesh0 = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let centre = (n / 2) * n + n / 2;
        let mut st = HydroState::new(
            &mesh0,
            &mat,
            |_| 1.0,
            |e| if e == centre { 20.0 } else { 0.1 },
            |_| Vec2::ZERO,
        )
        .unwrap();
        let mut mesh = mesh0;
        let range = LocalRange::whole(&mesh);
        for _ in 0..20 {
            lagstep(
                &mut mesh,
                &mat,
                &mut st,
                range,
                1e-3,
                &LagOptions::default(),
                &mut NoComm,
            )
            .unwrap();
        }
        // Mirror pairs across the vertical centre line.
        for row in 0..n {
            for col in 0..n / 2 {
                let e = row * n + col;
                let em = row * n + (n - 1 - col);
                assert!(
                    approx_eq(st.rho[e], st.rho[em], 1e-10),
                    "x-mirror broken at ({row},{col}): {} vs {}",
                    st.rho[e],
                    st.rho[em]
                );
            }
        }
        // Mirror pairs across the horizontal centre line.
        for row in 0..n / 2 {
            for col in 0..n {
                let e = row * n + col;
                let em = (n - 1 - row) * n + col;
                assert!(approx_eq(st.rho[e], st.rho[em], 1e-10), "y-mirror broken");
            }
        }
    }

    #[test]
    fn post_acceleration_hook_drives_piston() {
        struct Piston;
        impl HaloOps for Piston {
            fn post_acceleration(&mut self, mesh: &Mesh, state: &mut HydroState) -> Result<()> {
                for n in 0..mesh.n_nodes() {
                    if mesh.nodes[n].x < 1e-12 {
                        state.u[n] = Vec2::new(1.0, 0.0);
                        state.ubar[n] = Vec2::new(1.0, 0.0);
                    }
                }
                Ok(())
            }
        }
        let (mut mesh, mat, mut st) = setup(4);
        let range = LocalRange::whole(&mesh);
        let m0 = st.total_mass(range);
        lagstep(
            &mut mesh,
            &mat,
            &mut st,
            range,
            1e-2,
            &LagOptions::default(),
            &mut Piston,
        )
        .unwrap();
        // Left wall moved right by dt * 1.
        let left_x = mesh.nodes[0].x;
        assert!(approx_eq(left_x, 1e-2, 1e-12), "piston wall at {left_x}");
        // Compression: total volume shrank, densities near piston rose.
        assert!(st.rho[0] > 1.0);
        assert_eq!(st.total_mass(range), m0);
    }

    #[test]
    fn fused_eos_step_matches_unfused_bitwise() {
        for threading in [Threading::Serial, Threading::Rayon] {
            let (mesh0, mat, _) = setup(6);
            let mk = |mesh: &Mesh| {
                HydroState::new(
                    mesh,
                    &mat,
                    |e| 1.0 + 0.05 * (e % 4) as f64,
                    |e| 1.0 + 0.2 * (e % 3) as f64,
                    |_| Vec2::ZERO,
                )
                .unwrap()
            };
            let range = LocalRange::whole(&mesh0);
            let mut mesh_a = mesh0.clone();
            let mut mesh_b = mesh0.clone();
            let mut a = mk(&mesh_a);
            let mut b = mk(&mesh_b);
            let fused = LagOptions {
                threading,
                ..LagOptions::default()
            };
            let unfused = LagOptions {
                fuse_eos: false,
                ..fused
            };
            for _ in 0..10 {
                lagstep(&mut mesh_a, &mat, &mut a, range, 1e-3, &fused, &mut NoComm).unwrap();
                lagstep(
                    &mut mesh_b,
                    &mat,
                    &mut b,
                    range,
                    1e-3,
                    &unfused,
                    &mut NoComm,
                )
                .unwrap();
            }
            assert_eq!(a.rho, b.rho, "{threading:?}");
            assert_eq!(a.ein, b.ein, "{threading:?}");
            assert_eq!(a.pressure, b.pressure, "{threading:?}");
            assert_eq!(a.cs2, b.cs2, "{threading:?}");
            assert_eq!(a.volume, b.volume, "{threading:?}");
            assert_eq!(mesh_a.nodes, mesh_b.nodes, "{threading:?}");
        }
    }

    #[test]
    fn threaded_step_matches_serial() {
        let (mut mesh_a, mat, _) = setup(6);
        let mut mesh_b = mesh_a.clone();
        let range = LocalRange::whole(&mesh_a);
        let mk = |mesh: &Mesh| {
            HydroState::new(
                mesh,
                &mat,
                |e| 1.0 + 0.05 * (e % 4) as f64,
                |e| 1.0 + 0.2 * (e % 3) as f64,
                |_| Vec2::ZERO,
            )
            .unwrap()
        };
        let mut a = mk(&mesh_a);
        let mut b = mk(&mesh_b);
        let serial = LagOptions::default();
        let threaded = LagOptions {
            threading: Threading::Rayon,
            acc_mode: AccMode::GatherParallel,
            ..LagOptions::default()
        };
        for _ in 0..5 {
            lagstep(&mut mesh_a, &mat, &mut a, range, 1e-3, &serial, &mut NoComm).unwrap();
            lagstep(
                &mut mesh_b,
                &mat,
                &mut b,
                range,
                1e-3,
                &threaded,
                &mut NoComm,
            )
            .unwrap();
        }
        for e in 0..a.n_elements() {
            assert!(approx_eq(a.rho[e], b.rho[e], 1e-12));
            assert!(approx_eq(a.ein[e], b.ein[e], 1e-12));
        }
    }
}
