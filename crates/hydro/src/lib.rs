//! # bookleaf-hydro
//!
//! The Lagrangian hydrodynamics kernels of BookLeaf-rs.
//!
//! BookLeaf solves Euler's equations of compressible flow on a staggered
//! unstructured quadrilateral mesh: thermodynamic variables (density ρ,
//! pressure P, specific internal energy ε) are piecewise constant per
//! cell; kinematic variables (velocity **u**, position **x**) live on
//! nodes with bilinear elements. A *compatible* discretisation
//! (Barlow 2008) drives both the momentum and energy equations from the
//! same corner forces, conserving total energy to round-off. Shocks are
//! handled by an edge-centred artificial viscosity (Caramana, Shashkov &
//! Whalen 1998) with a monotonic limiter; spurious hourglass modes are
//! suppressed by a Hancock-style filter and Caramana–Shashkov sub-zonal
//! pressures.
//!
//! Each kernel of the reference implementation's hydro loop
//! (Algorithm 1 of the paper) is one module here:
//!
//! | paper kernel | module | role |
//! |--------------|--------|------|
//! | `getdt`      | [`getdt`]    | CFL + divergence time-step control |
//! | `getq`       | [`getq`]     | artificial viscosity |
//! | `getforce`   | [`getforce`] | corner forces: pressure, viscosity, hourglass |
//! | `getacc`     | [`getacc`]   | nodal mass gather, acceleration, BCs, node motion |
//! | `getgeom`    | [`getgeom`]  | volumes, corner volumes, characteristic lengths |
//! | `getrho`     | [`getrho`]   | density from Lagrangian mass |
//! | `getein`     | [`getein`]   | compatible internal-energy update |
//! | `getpc`      | [`getpc`]    | EoS evaluation |
//!
//! [`lagstep()`] composes them into the predictor–corrector step, with
//! halo-exchange hooks at exactly the two points the paper identifies
//! (immediately before the viscosity calculation and immediately before
//! the acceleration).
//!
//! ## Threading
//!
//! Per the paper's §IV-B, most kernels are trivially parallelisable and
//! accept a [`Threading`] mode (serial or rayon). The acceleration kernel
//! carries a genuine scatter data dependency; [`getacc`] exposes the
//! reference *serial scatter* (what the paper shipped) and a
//! conflict-free *gather* rewrite (the fix the paper left as future
//! work), which the ablation benches compare.

// Index-based loops over element/corner arrays are the house style of
// these kernels (they mirror the reference Fortran and keep index math
// visible); the clippy style lint fires on every one.
#![allow(clippy::needless_range_loop)]

pub mod getacc;
pub mod getdt;
pub mod getein;
pub mod getforce;
pub mod getgeom;
pub mod getpc;
pub mod getq;
pub mod getrho;
pub mod lagstep;
pub mod state;
pub mod subset;

pub use getacc::AccMode;
pub use lagstep::{lagstep, lagstep_timed, HaloOps, KernelSplit, LagOptions, NoComm};
pub use state::{HydroState, LocalRange};
pub use subset::Subset;

/// Intra-rank threading mode for the trivially parallel kernels.
///
/// Maps onto the paper's evaluation axis: `Serial` inside many MPI ranks
/// is the *flat MPI* model; `Rayon` inside fewer ranks is the *hybrid
/// MPI+OpenMP* model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threading {
    /// Plain sequential loops.
    #[default]
    Serial,
    /// Rayon data-parallel loops (the OpenMP-host analogue).
    Rayon,
}
