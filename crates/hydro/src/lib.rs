//! # bookleaf-hydro
//!
//! The Lagrangian hydrodynamics kernels of BookLeaf-rs.
//!
//! BookLeaf solves Euler's equations of compressible flow on a staggered
//! unstructured quadrilateral mesh: thermodynamic variables (density ρ,
//! pressure P, specific internal energy ε) are piecewise constant per
//! cell; kinematic variables (velocity **u**, position **x**) live on
//! nodes with bilinear elements. A *compatible* discretisation
//! (Barlow 2008) drives both the momentum and energy equations from the
//! same corner forces, conserving total energy to round-off. Shocks are
//! handled by an edge-centred artificial viscosity (Caramana, Shashkov &
//! Whalen 1998) with a monotonic limiter; spurious hourglass modes are
//! suppressed by a Hancock-style filter and Caramana–Shashkov sub-zonal
//! pressures.
//!
//! Each kernel of the reference implementation's hydro loop
//! (Algorithm 1 of the paper) is one module here:
//!
//! | paper kernel | module | role |
//! |--------------|--------|------|
//! | `getdt`      | [`getdt`]    | CFL + divergence time-step control |
//! | `getq`       | [`getq`]     | artificial viscosity |
//! | `getforce`   | [`getforce`] | corner forces: pressure, viscosity, hourglass |
//! | `getacc`     | [`getacc`]   | nodal mass gather, acceleration, BCs, node motion |
//! | `getgeom`    | [`getgeom`]  | volumes, corner volumes, characteristic lengths |
//! | `getrho`     | [`getrho`]   | density from Lagrangian mass |
//! | `getein`     | [`getein`]   | compatible internal-energy update |
//! | `getpc`      | [`getpc`]    | EoS evaluation |
//!
//! [`lagstep()`] composes them into the predictor–corrector step, with
//! halo-exchange hooks at exactly the two points the paper identifies
//! (immediately before the viscosity calculation and immediately before
//! the acceleration).
//!
//! ## Corner-data layout
//!
//! Corner forces are stored as SoA component rows
//! (`cnforce_x`/`cnforce_y: Vec<[f64; 4]>`) so the force-assembly and
//! work-term inner loops stream dense stride-1 rows; see the layout
//! contract in [`state`]'s module docs. Checkpoint bytes and the halo
//! wire format are unaffected — corner forces are re-derived on restart
//! and packed per corner in the order the interleaved layout used.
//!
//! The viscosity kernel's neighbour gathers are likewise shaped for
//! streaming: [`getq`] walks a packed per-edge index table
//! (`Mesh::face_stencil`, built lazily once per mesh — element→element
//! topology is fixed at construction) instead of matching on the tagged
//! `elel` rows in the face loop, and gathers cell velocities from a
//! per-call dense scratch row. Indices only — the gathered *values* are
//! exactly the in-loop reads' values, so the output is bitwise
//! unchanged.
//!
//! ## Kernel fusion rules
//!
//! The four EOS-chain kernels (`getgeom → getrho → getein → getpc`) are
//! per-element independent with no floating-point reductions, so they
//! fuse into one element sweep — [`fn@eos_fused`] — that is *bitwise
//! identical* to running the chain unfused under any serial/rayon/subset
//! split. The unfused kernels remain the reference implementation; a
//! [`EosStages`] mask fuses any subset of the chain, with a disabled
//! stage reading current state exactly as the skipped kernel sequence
//! would. `getq` and `getforce` must **not** be fused into this sweep:
//! `getq` reads face-neighbour cell velocities (a halo-synchronised
//! stencil), and `getforce` consumes `getq`'s output — both break the
//! per-element-independence precondition. Pre-optimisation kernel shapes
//! are preserved in [`mod@reference`] for the roofline bench and the
//! equivalence suite.
//!
//! ## Threading
//!
//! Per the paper's §IV-B, most kernels are trivially parallelisable and
//! accept a [`Threading`] mode (serial or rayon). The acceleration kernel
//! carries a genuine scatter data dependency; [`getacc`] exposes the
//! reference *serial scatter* (what the paper shipped) and a
//! conflict-free *gather* rewrite (the fix the paper left as future
//! work), which the ablation benches compare.

// Index-based loops over element/corner arrays are the house style of
// these kernels (they mirror the reference Fortran and keep index math
// visible); the clippy style lint fires on every one.
#![allow(clippy::needless_range_loop)]

pub mod eos_fused;
pub mod getacc;
pub mod getdt;
pub mod getein;
pub mod getforce;
pub mod getgeom;
pub mod getpc;
pub mod getq;
pub mod getrho;
pub mod lagstep;
pub mod reference;
pub mod state;
pub mod subset;

pub use eos_fused::{eos_fused, EosStages, FusedEos};
pub use getacc::AccMode;
pub use lagstep::{lagstep, lagstep_timed, HaloOps, KernelSplit, LagOptions, NoComm};
pub use state::{HydroState, LocalRange};
pub use subset::Subset;

/// Intra-rank threading mode for the trivially parallel kernels.
///
/// Maps onto the paper's evaluation axis: `Serial` inside many MPI ranks
/// is the *flat MPI* model; `Rayon` inside fewer ranks is the *hybrid
/// MPI+OpenMP* model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threading {
    /// Plain sequential loops.
    #[default]
    Serial,
    /// Rayon data-parallel loops (the OpenMP-host analogue).
    Rayon,
}
