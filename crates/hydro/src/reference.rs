//! Reference (pre-optimisation) kernel implementations.
//!
//! The hot kernels were reshaped for stride-1 inner loops: `getq` drives
//! its neighbour gathers through the packed once-per-mesh index table
//! (`Mesh::face_stencil`), `getforce` writes SoA component rows, and the
//! EOS chain can run fused (see
//! [`fn@crate::eos_fused`]). This module keeps the *original* loop shapes —
//! in-loop neighbour gathers, interleaved `Vec2` corner forces — as the
//! measurement baseline for the kernel roofline bench and as the anchor
//! of the bitwise-equivalence suite. They are algorithmically identical
//! to the production kernels; only the memory-access structure differs.
//!
//! Nothing here runs in a production step. Do not "fix" these to match
//! future optimisations — their value is being the unoptimised shape.

use bookleaf_mesh::geometry::{area_gradient, quad_centroid};
use bookleaf_mesh::{Mesh, Neighbor};
use bookleaf_util::constants::ZERO_CUT;
use bookleaf_util::Vec2;
use rayon::prelude::*;

use crate::getforce::HourglassControl;
use crate::getq::{monotonic_limiter, QCoeffs};
use crate::state::{HydroState, LocalRange};
use crate::Threading;

/// Pre-hoist `getq`: the limiter reaches into `cell_u[elel[e][f]]`
/// *inside* the face loop (one indirect gather per compressive face),
/// exactly as the kernel was shaped before the stencil hoist. Writes
/// `state.q` / `state.edge_q` like the production kernel.
pub fn getq_reference(
    mesh: &Mesh,
    state: &mut HydroState,
    range: LocalRange,
    coeffs: QCoeffs,
    threading: Threading,
) {
    let n = range.n_owned_el;

    let entry = |e: usize| cell_velocity(mesh, &state.u, e);
    let cell_u: Vec<Vec2> = match threading {
        Threading::Serial => (0..mesh.n_elements()).map(entry).collect(),
        Threading::Rayon => (0..mesh.n_elements()).into_par_iter().map(entry).collect(),
    };

    let u = &state.u;
    let rho = &state.rho;
    let cs2 = &state.cs2;
    let body = |e: usize, edge_q: &mut [f64; 4], q: &mut f64| {
        let corners = mesh.corners(e);
        let centre = quad_centroid(&corners);
        let uc = cell_u[e];
        let cs = cs2[e].max(0.0).sqrt();
        let nd = mesh.elnd[e];
        let mut qmax = 0.0f64;
        for f in 0..4 {
            let a = nd[f] as usize;
            let b = nd[(f + 1) % 4] as usize;
            let du = u[b] - u[a];
            let dx = corners[(f + 1) % 4] - corners[f];
            if du.dot(dx) >= -ZERO_CUT {
                edge_q[f] = 0.0;
                continue;
            }
            let du_mag = du.norm();
            if du_mag <= ZERO_CUT {
                edge_q[f] = 0.0;
                continue;
            }

            let xf = corners[f].midpoint(corners[(f + 1) % 4]);
            let uf = u[a].midpoint(u[b]);
            let dir = (xf - centre).normalized();
            let du_face = (uf - uc).dot(dir);
            // The gather the production kernel hoists: an indirect read
            // through the element-to-element table mid-loop.
            let psi_face = match mesh.elel[e][f] {
                Neighbor::Element(en) if du_face.abs() > ZERO_CUT => {
                    let du_nbr = (cell_u[en as usize] - uf).dot(dir);
                    monotonic_limiter(du_nbr / du_face)
                }
                Neighbor::Element(_) => 1.0,
                Neighbor::Boundary => 0.0,
            };
            let du_opp = u[nd[(f + 3) % 4] as usize] - u[nd[(f + 2) % 4] as usize];
            let r2 = -du_opp.dot(du) / (du_mag * du_mag);
            let psi = psi_face.min(monotonic_limiter(r2));

            edge_q[f] = (1.0 - psi) * rho[e] * du_mag * (coeffs.cq2 * du_mag + coeffs.cq1 * cs);
            qmax = qmax.max(edge_q[f]);
        }
        *q = qmax;
    };

    match threading {
        Threading::Serial => {
            for e in 0..n {
                let (mut eq, mut qv) = ([0.0; 4], 0.0);
                body(e, &mut eq, &mut qv);
                state.edge_q[e] = eq;
                state.q[e] = qv;
            }
        }
        Threading::Rayon => {
            state.edge_q[..n]
                .par_iter_mut()
                .zip(state.q[..n].par_iter_mut())
                .enumerate()
                .for_each(|(e, (eq, qv))| body(e, eq, qv));
        }
    }
}

/// The hourglass mode sign pattern on a quad (mirror of `getforce`).
const GAMMA: [f64; 4] = [1.0, -1.0, 1.0, -1.0];

/// Pre-SoA `getforce`: assembles the same corner forces but stores them
/// as interleaved `[Vec2; 4]` rows in a caller-provided buffer — the
/// layout `HydroState` used before the component-row split. The buffer
/// is resized to the owned range.
pub fn getforce_reference(
    mesh: &Mesh,
    state: &HydroState,
    range: LocalRange,
    hg: HourglassControl,
    dt: f64,
    threading: Threading,
    out: &mut Vec<[Vec2; 4]>,
) {
    let n = range.n_owned_el;
    out.clear();
    out.resize(n, [Vec2::ZERO; 4]);

    let u = &state.u;
    let rho = &state.rho;
    let cs2 = &state.cs2;
    let pressure = &state.pressure;
    let edge_q = &state.edge_q;
    let nd_mass = &state.nd_mass;
    let cnmass = &state.cnmass;
    let cnvol = &state.cnvol;
    let volume = &state.volume;

    let body = |e: usize, force: &mut [Vec2; 4]| {
        let corners = mesh.corners(e);
        let grad = area_gradient(&corners);
        let p = pressure[e];

        for c in 0..4 {
            force[c] = grad[c] * p;
        }

        {
            let nd = mesh.elnd[e];
            for f in 0..4 {
                let qf = edge_q[e][f];
                if qf == 0.0 {
                    continue;
                }
                let a = nd[f] as usize;
                let b = nd[(f + 1) % 4] as usize;
                let du = u[b] - u[a];
                let dx = corners[(f + 1) % 4] - corners[f];
                if du.dot(dx) >= 0.0 {
                    continue;
                }
                let du_mag = du.norm();
                if du_mag == 0.0 {
                    continue;
                }
                let (ma, mb) = (nd_mass[a], nd_mass[b]);
                let mu = if ma + mb > 0.0 {
                    ma * mb / (ma + mb)
                } else {
                    0.0
                };
                let cap = if dt > 0.0 {
                    0.25 * mu * du_mag / dt
                } else {
                    f64::INFINITY
                };
                let mag = (qf * dx.norm()).min(cap);
                let pair = du * (mag / du_mag);
                force[f] += pair;
                force[(f + 1) % 4] -= pair;
            }
        }

        if hg.kappa_filter > 0.0 {
            let nd = mesh.elnd[e];
            let mut u_hg = Vec2::ZERO;
            for c in 0..4 {
                u_hg += u[nd[c] as usize] * GAMMA[c];
            }
            u_hg *= 0.25;
            let cs = cs2[e].max(0.0).sqrt();
            let scale = hg.kappa_filter * rho[e] * cs * volume[e].max(0.0).sqrt();
            for c in 0..4 {
                force[c] -= u_hg * (scale * GAMMA[c]);
            }
        }

        if hg.zeta_subzonal > 0.0 {
            let centre = quad_centroid(&corners);
            for c in 0..4 {
                let cv = cnvol[e][c];
                if cv <= 0.0 {
                    continue;
                }
                let rho_sub = cnmass[e][c] / cv;
                let dp = hg.zeta_subzonal * cs2[e] * (rho_sub - rho[e]);
                if dp == 0.0 {
                    continue;
                }
                let m_next = corners[c].midpoint(corners[(c + 1) % 4]);
                let m_prev = corners[(c + 3) % 4].midpoint(corners[c]);
                let v = [corners[c], m_next, centre, m_prev];
                let rot = |w: Vec2| Vec2::new(w.y, -w.x);
                let g = [
                    rot(v[1] - v[3]) * 0.5,
                    rot(v[2] - v[0]) * 0.5,
                    rot(v[3] - v[1]) * 0.5,
                    rot(v[0] - v[2]) * 0.5,
                ];
                let quarter_g2 = g[2] * 0.25;
                force[c] += (g[0] + (g[1] + g[3]) * 0.5 + quarter_g2) * dp;
                force[(c + 1) % 4] += (g[1] * 0.5 + quarter_g2) * dp;
                force[(c + 2) % 4] += quarter_g2 * dp;
                force[(c + 3) % 4] += (g[3] * 0.5 + quarter_g2) * dp;
            }
        }
    };

    match threading {
        Threading::Serial => {
            for (e, row) in out.iter_mut().enumerate() {
                body(e, row);
            }
        }
        Threading::Rayon => {
            out[..n]
                .par_iter_mut()
                .enumerate()
                .for_each(|(e, row)| body(e, row));
        }
    }
}

/// Cell-averaged velocity of element `e` (mirror of `getq`).
#[inline]
fn cell_velocity(mesh: &Mesh, u: &[Vec2], e: usize) -> Vec2 {
    let nd = mesh.elnd[e];
    (u[nd[0] as usize] + u[nd[1] as usize] + u[nd[2] as usize] + u[nd[3] as usize]) * 0.25
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::getforce::getforce;
    use crate::getq::getq;
    use bookleaf_eos::{EosSpec, MaterialTable};
    use bookleaf_mesh::{generate_rect, RectSpec};

    fn setup(n: usize) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let nodes = mesh.nodes.clone();
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |e| 1.0 + 0.02 * (e % 5) as f64,
            |_| 1.5,
            |i| {
                Vec2::new(
                    (7.0 * nodes[i].x).sin() * 0.3,
                    (5.0 * nodes[i].y).cos() * 0.2,
                )
            },
        )
        .unwrap();
        for e in 0..st.n_elements() {
            st.edge_q[e] = [0.1, 0.0, 0.3, 0.05];
        }
        (mesh, st)
    }

    #[test]
    fn hoisted_getq_matches_reference_bitwise() {
        for th in [Threading::Serial, Threading::Rayon] {
            let (mesh, st0) = setup(9);
            let range = LocalRange::whole(&mesh);
            let mut a = st0.clone();
            getq_reference(&mesh, &mut a, range, QCoeffs::default(), th);
            let mut b = st0.clone();
            getq(&mesh, &mut b, range, QCoeffs::default(), th);
            assert_eq!(a.q, b.q, "{th:?}");
            assert_eq!(a.edge_q, b.edge_q, "{th:?}");
        }
    }

    #[test]
    fn soa_getforce_matches_reference_bitwise() {
        for th in [Threading::Serial, Threading::Rayon] {
            let (mesh, st0) = setup(8);
            let range = LocalRange::whole(&mesh);
            let mut aos = Vec::new();
            getforce_reference(
                &mesh,
                &st0,
                range,
                HourglassControl::default(),
                1e-2,
                th,
                &mut aos,
            );
            let mut st = st0.clone();
            getforce(&mesh, &mut st, range, HourglassControl::default(), 1e-2, th);
            for e in 0..st.n_elements() {
                for c in 0..4 {
                    assert_eq!(st.cnforce(e, c), aos[e][c], "element {e} corner {c} {th:?}");
                }
            }
        }
    }
}
