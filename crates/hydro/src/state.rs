//! The hydrodynamic state: structure-of-arrays storage for every field
//! the kernels touch.
//!
//! Element-centred fields are indexed by local element id, node-centred
//! by local node id, corner fields by `[element][corner]`. In distributed
//! runs the arrays cover owned *and* ghost entities; [`LocalRange`] says
//! which prefix is owned (serial runs own everything).
//!
//! ## Corner-data layout contract
//!
//! Corner fields are stored as **`[f64; 4]`-chunked rows** — one
//! contiguous 4-wide row of doubles per element — so the per-element
//! inner loops of `getforce` and the fused EOS sweep run stride-1 and
//! autovectorize. Corner *vector* data (the corner forces) is split
//! into separate x and y row arrays ([`HydroState::cnforce_x`] /
//! [`HydroState::cnforce_y`]) rather than stored as `[Vec2; 4]`: a
//! component sweep then touches one dense `[f64; 4]` row per element
//! with no interleaving. The [`HydroState::cnforce`] /
//! [`HydroState::set_cnforce`] accessors give `Vec2`-typed access for
//! code (and tests) that are not on the hot path. The halo layer packs
//! the pair in the same `x, y` per-corner wire order as an interleaved
//! `[Vec2; 4]` field, so the split is invisible on the wire, and the
//! checkpoint body never contains corner forces (they are re-derived),
//! so the layout is invisible to the checkpoint format too.

use bookleaf_eos::MaterialTable;
use bookleaf_mesh::geometry::{char_length, corner_volumes, quad_area};
use bookleaf_mesh::Mesh;
use bookleaf_util::{BookLeafError, NeumaierSum, Result, Vec2};

/// Which prefix of the local arrays this rank owns and computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalRange {
    /// Elements `0..n_owned_el` are owned; the rest are ghosts.
    pub n_owned_el: usize,
    /// Nodes `0..n_active_nd` are computed here; the rest are halo.
    pub n_active_nd: usize,
}

impl LocalRange {
    /// A serial range covering the whole mesh.
    #[must_use]
    pub fn whole(mesh: &Mesh) -> Self {
        LocalRange {
            n_owned_el: mesh.n_elements(),
            n_active_nd: mesh.n_nodes(),
        }
    }
}

/// All per-entity field arrays of a hydro run.
#[derive(Debug, Clone, PartialEq)]
pub struct HydroState {
    // --- element-centred (length = n local elements) ---
    /// Lagrangian element mass (constant between remaps).
    pub mass: Vec<f64>,
    /// Density.
    pub rho: Vec<f64>,
    /// Specific internal energy.
    pub ein: Vec<f64>,
    /// Pressure.
    pub pressure: Vec<f64>,
    /// Adiabatic sound speed squared.
    pub cs2: Vec<f64>,
    /// Current element volume (area in 2-D).
    pub volume: Vec<f64>,
    /// Characteristic length for the CFL condition.
    pub length: Vec<f64>,
    /// Element-level artificial viscosity scalar (max of edge values).
    pub q: Vec<f64>,
    /// Velocity divergence (for the divergence dt limit).
    pub div_u: Vec<f64>,

    // --- corner fields (length = n local elements, 4 per element) ---
    /// Edge viscous pressures, one per element side.
    pub edge_q: Vec<[f64; 4]>,
    /// Corner (sub-zonal) masses, fixed in the Lagrangian frame.
    pub cnmass: Vec<[f64; 4]>,
    /// Current corner volumes.
    pub cnvol: Vec<[f64; 4]>,
    /// x component of the total corner force on each corner node from
    /// this element (SoA row; see the module-level layout contract).
    pub cnforce_x: Vec<[f64; 4]>,
    /// y component of the corner forces (SoA row, paired with
    /// [`HydroState::cnforce_x`]).
    pub cnforce_y: Vec<[f64; 4]>,

    // --- node-centred (length = n local nodes) ---
    /// Node velocity.
    pub u: Vec<Vec2>,
    /// Time-centred node velocity of the current step (set by `getacc`).
    pub ubar: Vec<Vec2>,
    /// Nodal masses (gathered corner masses; refreshed by `getacc`).
    /// Used by the viscous-force momentum limiter.
    pub nd_mass: Vec<f64>,
}

impl HydroState {
    /// Initialise from a mesh plus per-element density/energy and
    /// per-node velocity initialisers.
    ///
    /// Computes geometry, masses (element and corner) and the initial EoS
    /// evaluation, and validates positivity.
    pub fn new(
        mesh: &Mesh,
        materials: &MaterialTable,
        rho_of: impl Fn(usize) -> f64,
        ein_of: impl Fn(usize) -> f64,
        u_of: impl Fn(usize) -> Vec2,
    ) -> Result<HydroState> {
        materials.check_regions(&mesh.region)?;
        let ne = mesh.n_elements();
        let nn = mesh.n_nodes();

        let mut st = HydroState {
            mass: vec![0.0; ne],
            rho: vec![0.0; ne],
            ein: vec![0.0; ne],
            pressure: vec![0.0; ne],
            cs2: vec![0.0; ne],
            volume: vec![0.0; ne],
            length: vec![0.0; ne],
            q: vec![0.0; ne],
            div_u: vec![0.0; ne],
            edge_q: vec![[0.0; 4]; ne],
            cnmass: vec![[0.0; 4]; ne],
            cnvol: vec![[0.0; 4]; ne],
            cnforce_x: vec![[0.0; 4]; ne],
            cnforce_y: vec![[0.0; 4]; ne],
            u: (0..nn).map(&u_of).collect(),
            ubar: vec![Vec2::ZERO; nn],
            nd_mass: vec![0.0; nn],
        };

        for e in 0..ne {
            let c = mesh.corners(e);
            let vol = quad_area(&c);
            if vol <= 0.0 {
                return Err(BookLeafError::NegativeVolume {
                    element: e,
                    volume: vol,
                });
            }
            let rho = rho_of(e);
            let ein = ein_of(e);
            if rho < 0.0 || !rho.is_finite() {
                return Err(BookLeafError::InvalidState {
                    element: e,
                    what: format!("initial density {rho}"),
                });
            }
            if !ein.is_finite() {
                return Err(BookLeafError::InvalidState {
                    element: e,
                    what: format!("initial energy {ein}"),
                });
            }
            st.volume[e] = vol;
            st.length[e] = char_length(&c);
            st.rho[e] = rho;
            st.ein[e] = ein;
            st.mass[e] = rho * vol;
            let cv = corner_volumes(&c);
            st.cnvol[e] = cv;
            for c in 0..4 {
                st.cnmass[e][c] = rho * cv[c];
            }
            let (p, cs2) = materials.spec(mesh.region[e]).pressure_cs2(rho, ein);
            st.pressure[e] = p;
            st.cs2[e] = cs2;
        }
        for n in 0..nn {
            st.nd_mass[n] = mesh
                .elements_of_node(n)
                .iter()
                .map(|&(e, c)| st.cnmass[e as usize][c as usize])
                .sum();
        }
        Ok(st)
    }

    /// Number of local elements.
    #[must_use]
    pub fn n_elements(&self) -> usize {
        self.rho.len()
    }

    /// Corner force `c` of element `e` as a vector (convenience view
    /// over the SoA rows; not for hot loops).
    #[inline]
    #[must_use]
    pub fn cnforce(&self, e: usize, c: usize) -> Vec2 {
        Vec2::new(self.cnforce_x[e][c], self.cnforce_y[e][c])
    }

    /// Set corner force `c` of element `e` (convenience over the SoA
    /// rows; not for hot loops).
    #[inline]
    pub fn set_cnforce(&mut self, e: usize, c: usize, f: Vec2) {
        self.cnforce_x[e][c] = f.x;
        self.cnforce_y[e][c] = f.y;
    }

    /// Number of local nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.u.len()
    }

    /// Total internal energy over owned elements: `Σ m ε`.
    #[must_use]
    pub fn internal_energy(&self, range: LocalRange) -> f64 {
        let mut s = NeumaierSum::new();
        for e in 0..range.n_owned_el {
            s.add(self.mass[e] * self.ein[e]);
        }
        s.value()
    }

    /// Total kinetic energy over owned nodes: `Σ ½ m_n |u|²` with nodal
    /// mass gathered from adjacent corner masses.
    #[must_use]
    pub fn kinetic_energy(&self, mesh: &Mesh, range: LocalRange) -> f64 {
        self.kinetic_energy_where(mesh, range, |_| true)
    }

    /// Kinetic energy over the active nodes selected by `owns`. Serial
    /// drivers pass `|_| true`; distributed ranks pass their node
    /// ownership predicate so partition-boundary nodes (present on
    /// several ranks) are counted exactly once in a global sum.
    #[must_use]
    pub fn kinetic_energy_where(
        &self,
        mesh: &Mesh,
        range: LocalRange,
        owns: impl Fn(usize) -> bool,
    ) -> f64 {
        let mut s = NeumaierSum::new();
        for n in 0..range.n_active_nd {
            if !owns(n) {
                continue;
            }
            let mut m = 0.0;
            for &(e, c) in mesh.elements_of_node(n) {
                m += self.cnmass[e as usize][c as usize];
            }
            s.add(0.5 * m * self.u[n].norm2());
        }
        s.value()
    }

    /// Total energy (internal + kinetic) over the owned partition.
    #[must_use]
    pub fn total_energy(&self, mesh: &Mesh, range: LocalRange) -> f64 {
        self.internal_energy(range) + self.kinetic_energy(mesh, range)
    }

    /// Total mass over owned elements.
    #[must_use]
    pub fn total_mass(&self, range: LocalRange) -> f64 {
        let mut s = NeumaierSum::new();
        s.add_slice(&self.mass[..range.n_owned_el]);
        s.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_eos::EosSpec;
    use bookleaf_mesh::{generate_rect, RectSpec};
    use bookleaf_util::approx_eq;

    fn setup(n: usize) -> (Mesh, HydroState) {
        let mesh = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 2.5, |_| Vec2::ZERO).unwrap();
        (mesh, st)
    }

    #[test]
    fn initial_mass_and_volume() {
        let (mesh, st) = setup(4);
        let range = LocalRange::whole(&mesh);
        assert!(approx_eq(st.total_mass(range), 1.0, 1e-12));
        let v: f64 = st.volume.iter().sum();
        assert!(approx_eq(v, 1.0, 1e-12));
    }

    #[test]
    fn corner_masses_sum_to_element_mass() {
        let (_, st) = setup(3);
        for e in 0..st.n_elements() {
            let cm: f64 = st.cnmass[e].iter().sum();
            assert!(approx_eq(cm, st.mass[e], 1e-12));
        }
    }

    #[test]
    fn initial_pressure_from_eos() {
        let (_, st) = setup(2);
        // p = 0.4 * 1.0 * 2.5 = 1.0 everywhere.
        assert!(st.pressure.iter().all(|&p| approx_eq(p, 1.0, 1e-12)));
        assert!(st.cs2.iter().all(|&c| approx_eq(c, 1.4, 1e-12)));
    }

    #[test]
    fn energies() {
        let mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let st = HydroState::new(&mesh, &mat, |_| 2.0, |_| 1.5, |_| Vec2::new(3.0, 4.0)).unwrap();
        let range = LocalRange::whole(&mesh);
        // IE = m*ein = 2*1.5 = 3 ; KE = ½ * 2 * 25 = 25.
        assert!(approx_eq(st.internal_energy(range), 3.0, 1e-12));
        assert!(approx_eq(st.kinetic_energy(&mesh, range), 25.0, 1e-12));
        assert!(approx_eq(st.total_energy(&mesh, range), 28.0, 1e-12));
    }

    #[test]
    fn negative_density_rejected() {
        let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let err = HydroState::new(&mesh, &mat, |_| -1.0, |_| 1.0, |_| Vec2::ZERO).unwrap_err();
        assert!(matches!(err, BookLeafError::InvalidState { .. }));
    }

    #[test]
    fn missing_material_rejected() {
        let mesh = generate_rect(&RectSpec::unit_square(2), |c| u32::from(c.x > 0.5)).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4)); // only region 0
        assert!(HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).is_err());
    }

    #[test]
    fn per_region_initialisation() {
        // Sod-like split: left rho 1, right rho 0.125.
        let mesh = generate_rect(&RectSpec::unit_square(4), |c| u32::from(c.x > 0.5)).unwrap();
        let mat = MaterialTable::new(vec![EosSpec::ideal_gas(1.4); 2]);
        let st = HydroState::new(
            &mesh,
            &mat,
            |e| if mesh.region[e] == 0 { 1.0 } else { 0.125 },
            |_| 1.0,
            |_| Vec2::ZERO,
        )
        .unwrap();
        let range = LocalRange::whole(&mesh);
        assert!(approx_eq(
            st.total_mass(range),
            0.5 * 1.0 + 0.5 * 0.125,
            1e-12
        ));
    }
}
