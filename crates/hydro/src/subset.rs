//! Index sub-selection for split (interior/boundary) kernel sweeps.
//!
//! The overlapped halo exchange runs each hot kernel twice per phase:
//! once over the *interior* entities while the phase's messages are in
//! flight, once over the *boundary* entities after the exchange
//! completes. Both sweeps iterate the **full** index range with the
//! same parallel split tree as an unsplit sweep and merely skip the
//! entities outside their subset — so the work distribution, and with
//! it every reduction and write order, is a pure function of the range
//! length exactly as in PR 2, and split results are bitwise identical
//! to unsplit ones.

/// Which indices of a kernel's range to process.
#[derive(Debug, Clone, Copy)]
pub enum Subset<'a> {
    /// Every index (the unsplit sweep).
    All,
    /// Only indices `i` with `mask[i] == keep`. With a boundary mask,
    /// `keep == false` selects the interior sweep and `keep == true`
    /// the boundary sweep.
    Mask {
        /// Per-index classification (at least as long as the range).
        mask: &'a [bool],
        /// Which side of the classification to process.
        keep: bool,
    },
}

impl Subset<'_> {
    /// Does this subset include index `i`?
    #[inline]
    #[must_use]
    pub fn contains(self, i: usize) -> bool {
        match self {
            Subset::All => true,
            Subset::Mask { mask, keep } => mask[i] == keep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_everything() {
        assert!(Subset::All.contains(0));
        assert!(Subset::All.contains(1_000_000));
    }

    #[test]
    fn mask_sides_partition_the_range() {
        let mask = [true, false, true, false];
        let interior = Subset::Mask {
            mask: &mask,
            keep: false,
        };
        let boundary = Subset::Mask {
            mask: &mask,
            keep: true,
        };
        for i in 0..mask.len() {
            assert_ne!(interior.contains(i), boundary.contains(i));
        }
        assert!(boundary.contains(0));
        assert!(interior.contains(1));
    }
}
