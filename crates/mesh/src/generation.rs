//! Deck-driven mesh generation.
//!
//! BookLeaf's four standard test problems all run on logically rectangular
//! meshes that are *stored and processed as unstructured* (the code never
//! exploits the (i,j) structure). This module generates those meshes:
//! a rectangular region meshed `nx × ny`, reflective walls on all four
//! sides, an arbitrary region-id function for multi-material decks (Sod's
//! two gases), and the Saltzmann distortion for the piston problem.

use bookleaf_util::{BookLeafError, Result, Vec2};

use crate::topology::{Mesh, NodeBc};

/// Specification of a rectangular mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectSpec {
    /// Elements in x.
    pub nx: usize,
    /// Elements in y.
    pub ny: usize,
    /// Domain lower-left corner.
    pub origin: Vec2,
    /// Domain upper-right corner.
    pub extent: Vec2,
}

impl RectSpec {
    /// A unit-square mesh `n × n`.
    #[must_use]
    pub fn unit_square(n: usize) -> Self {
        RectSpec {
            nx: n,
            ny: n,
            origin: Vec2::ZERO,
            extent: Vec2::new(1.0, 1.0),
        }
    }

    /// Mesh spacing in x and y.
    #[must_use]
    pub fn spacing(&self) -> Vec2 {
        Vec2::new(
            (self.extent.x - self.origin.x) / self.nx as f64,
            (self.extent.y - self.origin.y) / self.ny as f64,
        )
    }
}

/// Generate a rectangular mesh.
///
/// Nodes are numbered row-major (`j * (nx+1) + i`), elements likewise
/// (`j * nx + i`) with counter-clockwise corner order (bottom-left,
/// bottom-right, top-right, top-left). All four walls are reflective:
/// nodes on `x = const` walls get `fix_x`, on `y = const` walls `fix_y`,
/// corners both. `region_of` assigns a region (material) id from each
/// element's centroid.
pub fn generate_rect(spec: &RectSpec, region_of: impl Fn(Vec2) -> u32) -> Result<Mesh> {
    if spec.nx == 0 || spec.ny == 0 {
        return Err(BookLeafError::InvalidDeck(
            "mesh must have nx, ny >= 1".into(),
        ));
    }
    if spec.extent.x <= spec.origin.x || spec.extent.y <= spec.origin.y {
        return Err(BookLeafError::InvalidDeck(
            "mesh extent must exceed origin".into(),
        ));
    }
    let (nx, ny) = (spec.nx, spec.ny);
    let d = spec.spacing();

    let mut nodes = Vec::with_capacity((nx + 1) * (ny + 1));
    let mut node_bc = Vec::with_capacity((nx + 1) * (ny + 1));
    for j in 0..=ny {
        for i in 0..=nx {
            nodes.push(Vec2::new(
                spec.origin.x + i as f64 * d.x,
                spec.origin.y + j as f64 * d.y,
            ));
            let mut bc = NodeBc::FREE;
            if i == 0 || i == nx {
                bc = bc.merge(NodeBc::WALL_X);
            }
            if j == 0 || j == ny {
                bc = bc.merge(NodeBc::WALL_Y);
            }
            node_bc.push(bc);
        }
    }

    let nid = |i: usize, j: usize| (j * (nx + 1) + i) as u32;
    let mut elnd = Vec::with_capacity(nx * ny);
    let mut region = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            elnd.push([nid(i, j), nid(i + 1, j), nid(i + 1, j + 1), nid(i, j + 1)]);
            let centroid = Vec2::new(
                spec.origin.x + (i as f64 + 0.5) * d.x,
                spec.origin.y + (j as f64 + 0.5) * d.y,
            );
            region.push(region_of(centroid));
        }
    }

    Mesh::from_raw(nodes, elnd, node_bc, region)
}

/// Apply the Saltzmann distortion in place.
///
/// The Saltzmann piston problem runs on a deliberately skewed mesh to
/// exacerbate hourglass modes (Dukowicz & Meltz 1992). The canonical
/// distortion on a domain `[x0,x1] × [y0,y1]` shifts each node in x by
/// `(y1 − y) · sin(π (x − x0)/(x1 − x0))`, i.e. the bottom wall is most
/// distorted and the top wall undisturbed. Node y coordinates and the
/// domain boundary extents are preserved, so boundary conditions remain
/// valid.
pub fn saltzmann_distort(mesh: &mut Mesh, origin: Vec2, extent: Vec2) {
    let lx = extent.x - origin.x;
    for p in &mut mesh.nodes {
        let s = (p.x - origin.x) / lx;
        // Keep the left/right walls fixed: sin(0) = sin(pi) = 0.
        p.x += (extent.y - p.y) * (std::f64::consts::PI * s).sin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{is_untangled, quad_area};
    use crate::topology::Neighbor;
    use bookleaf_util::approx_eq;

    #[test]
    fn counts_match_spec() {
        let m = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        assert_eq!(m.n_elements(), 16);
        assert_eq!(m.n_nodes(), 25);
        assert_eq!(m.n_boundary_faces(), 16);
        assert_eq!(m.n_interior_faces(), 24);
    }

    #[test]
    fn all_elements_unit_area_over_n2() {
        let m = generate_rect(&RectSpec::unit_square(5), |_| 0).unwrap();
        for e in 0..m.n_elements() {
            assert!(approx_eq(quad_area(&m.corners(e)), 1.0 / 25.0, 1e-14));
        }
    }

    #[test]
    fn interior_nodes_have_valence_four() {
        let m = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        // Node (1,1) = id 5 is interior.
        assert_eq!(m.elements_of_node(5).len(), 4);
    }

    #[test]
    fn boundary_conditions_tagged() {
        let m = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        // Corner node 0 fixed in both.
        assert_eq!(m.node_bc[0], NodeBc::CORNER);
        // Mid-bottom node 1 fixed in y only.
        assert_eq!(m.node_bc[1], NodeBc::WALL_Y);
        // Mid-left node 3 fixed in x only.
        assert_eq!(m.node_bc[3], NodeBc::WALL_X);
        // Interior node 4 free.
        assert_eq!(m.node_bc[4], NodeBc::FREE);
    }

    #[test]
    fn region_function_splits_materials() {
        // Sod-style: left half region 0, right half region 1.
        let m = generate_rect(&RectSpec::unit_square(4), |c| u32::from(c.x > 0.5)).unwrap();
        let left: u32 = m.region.iter().filter(|&&r| r == 0).count() as u32;
        let right: u32 = m.region.iter().filter(|&&r| r == 1).count() as u32;
        assert_eq!(left, 8);
        assert_eq!(right, 8);
    }

    #[test]
    fn neighbor_structure_of_grid() {
        let m = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        // Element 4 is the centre: all four faces interior.
        assert!(m.elel[4]
            .iter()
            .all(|nb| matches!(nb, Neighbor::Element(_))));
        // Element 0 is the corner: faces 0 (bottom) and 3 (left) boundary.
        assert_eq!(m.elel[0][0], Neighbor::Boundary);
        assert_eq!(m.elel[0][3], Neighbor::Boundary);
        assert_eq!(m.elel[0][1], Neighbor::Element(1));
        assert_eq!(m.elel[0][2], Neighbor::Element(3));
    }

    #[test]
    fn zero_size_rejected() {
        assert!(generate_rect(
            &RectSpec {
                nx: 0,
                ny: 2,
                origin: Vec2::ZERO,
                extent: Vec2::new(1.0, 1.0)
            },
            |_| 0
        )
        .is_err());
    }

    #[test]
    fn inverted_extent_rejected() {
        assert!(generate_rect(
            &RectSpec {
                nx: 2,
                ny: 2,
                origin: Vec2::new(1.0, 0.0),
                extent: Vec2::new(0.0, 1.0)
            },
            |_| 0
        )
        .is_err());
    }

    #[test]
    fn saltzmann_mesh_stays_untangled_and_valid() {
        let origin = Vec2::ZERO;
        let extent = Vec2::new(1.0, 0.1);
        let spec = RectSpec {
            nx: 100,
            ny: 10,
            origin,
            extent,
        };
        let mut m = generate_rect(&spec, |_| 0).unwrap();
        saltzmann_distort(&mut m, origin, extent);
        m.validate().unwrap();
        for e in 0..m.n_elements() {
            assert!(is_untangled(&m.corners(e)), "element {e} tangled");
            assert!(quad_area(&m.corners(e)) > 0.0);
        }
    }

    #[test]
    fn saltzmann_preserves_walls() {
        let origin = Vec2::ZERO;
        let extent = Vec2::new(1.0, 0.1);
        let spec = RectSpec {
            nx: 20,
            ny: 4,
            origin,
            extent,
        };
        let mut m = generate_rect(&spec, |_| 0).unwrap();
        let before = m.nodes.clone();
        saltzmann_distort(&mut m, origin, extent);
        for (n, (a, b)) in before.iter().zip(&m.nodes).enumerate() {
            // y never changes.
            assert_eq!(a.y, b.y, "node {n}");
            // Left and right walls keep their x.
            if a.x == 0.0 || (a.x - 1.0).abs() < 1e-14 {
                assert!(approx_eq(a.x, b.x, 1e-12), "wall node {n} moved");
            }
        }
        // Total area preserved (distortion is a shear within the domain)?
        // Not exactly, but every area must stay positive and the mesh valid.
        m.validate().unwrap();
    }

    #[test]
    fn saltzmann_distorts_interior() {
        let origin = Vec2::ZERO;
        let extent = Vec2::new(1.0, 0.1);
        let spec = RectSpec {
            nx: 10,
            ny: 2,
            origin,
            extent,
        };
        let mut m = generate_rect(&spec, |_| 0).unwrap();
        let before = m.nodes.clone();
        saltzmann_distort(&mut m, origin, extent);
        let moved = before.iter().zip(&m.nodes).filter(|(a, b)| a != b).count();
        assert!(moved > 0, "distortion must move interior nodes");
    }
}
