//! Quadrilateral geometry kernels.
//!
//! BookLeaf's spatial discretisation uses explicitly integrated bilinear
//! iso-parametric finite elements on straight-sided quads. Everything the
//! hydro kernels need reduces to a handful of closed forms on the four
//! corner positions:
//!
//! * the signed **area** (shoelace formula) — in 2-D planar geometry the
//!   element "volume";
//! * the **corner force weights** `∂A/∂xᵢ` — the gradient of the element
//!   area with respect to each corner position, which is exactly the
//!   compatible-discretisation corner force per unit pressure
//!   (Barlow 2008);
//! * **corner volumes** — the four sub-zonal areas obtained by joining
//!   each corner to the two adjacent edge midpoints and the centroid
//!   (Caramana–Shashkov sub-zonal pressures); they sum to the element
//!   area exactly;
//! * the **characteristic length** used by the CFL condition.

use bookleaf_util::Vec2;

use crate::NCORN;

/// Signed area of a quadrilateral from its CCW corner list (shoelace).
#[inline]
#[must_use]
pub fn quad_area(c: &[Vec2; NCORN]) -> f64 {
    0.5 * ((c[0].x * c[1].y - c[1].x * c[0].y)
        + (c[1].x * c[2].y - c[2].x * c[1].y)
        + (c[2].x * c[3].y - c[3].x * c[2].y)
        + (c[3].x * c[0].y - c[0].x * c[3].y))
}

/// Centroid (arithmetic mean of corners — the bilinear map centre).
#[inline]
#[must_use]
pub fn quad_centroid(c: &[Vec2; NCORN]) -> Vec2 {
    (c[0] + c[1] + c[2] + c[3]) * 0.25
}

/// Gradient of the quad area with respect to corner `i`:
/// `∂A/∂xᵢ = ½(y_{i+1} − y_{i−1})`, `∂A/∂yᵢ = ½(x_{i−1} − x_{i+1})`.
///
/// Multiplied by a cell pressure this is the corner force of the
/// compatible discretisation; dotted with a corner velocity it gives the
/// exact rate of volume change.
#[inline]
#[must_use]
pub fn area_gradient(c: &[Vec2; NCORN]) -> [Vec2; NCORN] {
    let mut g = [Vec2::ZERO; NCORN];
    for i in 0..NCORN {
        let ip = (i + 1) % NCORN;
        let im = (i + 3) % NCORN;
        g[i] = Vec2::new(0.5 * (c[ip].y - c[im].y), 0.5 * (c[im].x - c[ip].x));
    }
    g
}

/// The four sub-zonal ("corner") areas of a quad.
///
/// Corner `i`'s sub-zone is the quad (cornerᵢ, midpoint(i,i+1), centroid,
/// midpoint(i−1,i)). For straight-sided quads the four sub-zones tile the
/// element exactly.
#[must_use]
pub fn corner_volumes(c: &[Vec2; NCORN]) -> [f64; NCORN] {
    let ctr = quad_centroid(c);
    let mut out = [0.0; NCORN];
    for i in 0..NCORN {
        let ip = (i + 1) % NCORN;
        let im = (i + 3) % NCORN;
        let m_next = c[i].midpoint(c[ip]);
        let m_prev = c[im].midpoint(c[i]);
        out[i] = quad_area(&[c[i], m_next, ctr, m_prev]);
    }
    out
}

/// Edge lengths, edge `i` joining corner `i` to corner `i+1`.
#[inline]
#[must_use]
pub fn edge_lengths(c: &[Vec2; NCORN]) -> [f64; NCORN] {
    [
        c[0].distance(c[1]),
        c[1].distance(c[2]),
        c[2].distance(c[3]),
        c[3].distance(c[0]),
    ]
}

/// Outward-ish edge midpoint normals scaled by edge length: the vector
/// `(edge).perp()` for each edge, pointing out of a CCW quad after
/// negation. Used by the swept-volume remap.
#[inline]
#[must_use]
pub fn edge_vectors(c: &[Vec2; NCORN]) -> [Vec2; NCORN] {
    [c[1] - c[0], c[2] - c[1], c[3] - c[2], c[0] - c[3]]
}

/// Characteristic length for the CFL condition: element area divided by
/// the longest edge. For a square of side `h` this gives `h`; for
/// squashed or distorted elements it shrinks conservatively, which is the
/// behaviour the time-step control needs.
#[must_use]
pub fn char_length(c: &[Vec2; NCORN]) -> f64 {
    let area = quad_area(c).abs();
    let longest = edge_lengths(c).into_iter().fold(0.0f64, f64::max);
    if longest == 0.0 {
        0.0
    } else {
        area / longest
    }
}

/// Velocity divergence integrated over the element, divided by the area:
/// the discrete ∇·u used by the viscosity limiter and the divergence
/// time-step control. `u` holds the four corner velocities.
#[must_use]
pub fn velocity_divergence(c: &[Vec2; NCORN], u: &[Vec2; NCORN]) -> f64 {
    // dA/dt = Σᵢ ∂A/∂xᵢ · uᵢ ; ∇·u = (dA/dt)/A.
    let g = area_gradient(c);
    let area = quad_area(c);
    if area == 0.0 {
        return 0.0;
    }
    let mut da = 0.0;
    for i in 0..NCORN {
        da += g[i].dot(u[i]);
    }
    da / area
}

/// Jacobian determinant of the bilinear map at a parametric point
/// `(ξ, η) ∈ [−1,1]²`. Positive everywhere iff the quad is convex and
/// counter-clockwise (untangled).
#[must_use]
pub fn jacobian_at(c: &[Vec2; NCORN], xi: f64, eta: f64) -> f64 {
    // Bilinear shape function derivatives at (xi, eta):
    // N = ¼(1±ξ)(1±η) with corner signs (−,−), (+,−), (+,+), (−,+).
    let dn_dxi = [
        -0.25 * (1.0 - eta),
        0.25 * (1.0 - eta),
        0.25 * (1.0 + eta),
        -0.25 * (1.0 + eta),
    ];
    let dn_deta = [
        -0.25 * (1.0 - xi),
        -0.25 * (1.0 + xi),
        0.25 * (1.0 + xi),
        0.25 * (1.0 - xi),
    ];
    let mut dx_dxi = Vec2::ZERO;
    let mut dx_deta = Vec2::ZERO;
    for i in 0..NCORN {
        dx_dxi += c[i] * dn_dxi[i];
        dx_deta += c[i] * dn_deta[i];
    }
    dx_dxi.cross(dx_deta)
}

/// True when the element is untangled: the bilinear Jacobian is positive
/// at all four corners (sufficient for straight-sided quads).
#[must_use]
pub fn is_untangled(c: &[Vec2; NCORN]) -> bool {
    const PTS: [(f64, f64); 4] = [(-1.0, -1.0), (1.0, -1.0), (1.0, 1.0), (-1.0, 1.0)];
    PTS.iter().all(|&(xi, eta)| jacobian_at(c, xi, eta) > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_util::approx_eq;

    fn unit_square() -> [Vec2; 4] {
        [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ]
    }

    fn skewed_quad() -> [Vec2; 4] {
        [
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.3),
            Vec2::new(2.2, 1.4),
            Vec2::new(-0.3, 1.1),
        ]
    }

    #[test]
    fn unit_square_area_and_centroid() {
        let c = unit_square();
        assert_eq!(quad_area(&c), 1.0);
        assert_eq!(quad_centroid(&c), Vec2::new(0.5, 0.5));
    }

    #[test]
    fn clockwise_quad_has_negative_area() {
        let mut c = unit_square();
        c.swap(1, 3);
        assert_eq!(quad_area(&c), -1.0);
    }

    #[test]
    fn area_gradient_is_exact_derivative() {
        // Finite-difference check of ∂A/∂xᵢ on a skewed quad.
        let c = skewed_quad();
        let g = area_gradient(&c);
        let h = 1e-7;
        for i in 0..4 {
            let mut cp = c;
            cp[i].x += h;
            let d_dx = (quad_area(&cp) - quad_area(&c)) / h;
            let mut cp = c;
            cp[i].y += h;
            let d_dy = (quad_area(&cp) - quad_area(&c)) / h;
            assert!(
                approx_eq(g[i].x, d_dx, 1e-5),
                "corner {i} x: {} vs {}",
                g[i].x,
                d_dx
            );
            assert!(
                approx_eq(g[i].y, d_dy, 1e-5),
                "corner {i} y: {} vs {}",
                g[i].y,
                d_dy
            );
        }
    }

    #[test]
    fn area_gradient_sums_to_zero() {
        // Translating the quad does not change its area.
        let g = area_gradient(&skewed_quad());
        let s: Vec2 = g.into_iter().sum();
        assert!(s.norm() < 1e-15);
    }

    #[test]
    fn corner_volumes_tile_element() {
        for c in [unit_square(), skewed_quad()] {
            let cv = corner_volumes(&c);
            let total: f64 = cv.iter().sum();
            assert!(
                approx_eq(total, quad_area(&c), 1e-12),
                "{total} vs {}",
                quad_area(&c)
            );
            assert!(cv.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn unit_square_corner_volumes_equal() {
        let cv = corner_volumes(&unit_square());
        for v in cv {
            assert!(approx_eq(v, 0.25, 1e-14));
        }
    }

    #[test]
    fn char_length_of_square_is_side() {
        assert!(approx_eq(char_length(&unit_square()), 1.0, 1e-14));
        // A 2x1 rectangle: area 2, longest edge 2 -> length 1 (the short side).
        let rect = [
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(0.0, 1.0),
        ];
        assert!(approx_eq(char_length(&rect), 1.0, 1e-14));
    }

    #[test]
    fn divergence_of_uniform_expansion() {
        // u = x  =>  ∇·u = 2 in 2-D.
        let c = skewed_quad();
        let u = [c[0], c[1], c[2], c[3]];
        assert!(approx_eq(velocity_divergence(&c, &u), 2.0, 1e-12));
    }

    #[test]
    fn divergence_of_rigid_motion_is_zero() {
        let c = skewed_quad();
        // Translation.
        let u = [Vec2::new(3.0, -1.0); 4];
        assert!(velocity_divergence(&c, &u).abs() < 1e-14);
        // Rotation about origin: u = ω × x = ω(-y, x).
        let rot = [c[0].perp(), c[1].perp(), c[2].perp(), c[3].perp()];
        assert!(velocity_divergence(&c, &rot).abs() < 1e-13);
    }

    #[test]
    fn jacobian_positive_for_convex_ccw() {
        assert!(is_untangled(&unit_square()));
        assert!(is_untangled(&skewed_quad()));
    }

    #[test]
    fn jacobian_detects_tangled() {
        // Bow-tie: corners 2 and 3 swapped.
        let c = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0),
        ];
        assert!(!is_untangled(&c));
    }

    #[test]
    fn jacobian_integrates_to_area() {
        // ∫ J dξdη over [-1,1]² = area; 2x2 Gauss quadrature is exact for
        // bilinear J. Gauss points ±1/√3, weight 1.
        let c = skewed_quad();
        let gp = 1.0 / 3.0f64.sqrt();
        let mut integral = 0.0;
        for &xi in &[-gp, gp] {
            for &eta in &[-gp, gp] {
                integral += jacobian_at(&c, xi, eta);
            }
        }
        assert!(approx_eq(integral, quad_area(&c), 1e-12));
    }

    #[test]
    fn edge_vectors_close_loop() {
        let ev = edge_vectors(&skewed_quad());
        let s: Vec2 = ev.into_iter().sum();
        assert!(s.norm() < 1e-15);
    }
}
