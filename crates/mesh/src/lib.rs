//! # bookleaf-mesh
//!
//! The unstructured 2-D quadrilateral mesh substrate of BookLeaf-rs.
//!
//! BookLeaf solves Euler's equations on a mesh of quadrilateral cells.
//! Neighbouring cells connect via faces, faces intersect at nodes, and —
//! because the mesh is unstructured — the number of cells surrounding a
//! node is arbitrary. The discretisation is *staggered*: thermodynamic
//! variables live at cell centres, kinematic variables at nodes.
//!
//! This crate provides:
//!
//! * [`Mesh`] — node coordinates + full connectivity (element→node,
//!   element→element across faces, CSR node→element) + boundary
//!   conditions + per-element region ids;
//! * [`generation`] — deck-driven mesh generation (rectangular regions,
//!   the Saltzmann distorted mesh);
//! * [`geometry`] — quadrilateral geometry kernels (areas, corner
//!   volumes for sub-zonal pressures, iso-parametric gradients,
//!   characteristic lengths);
//! * [`submesh`] — extraction of per-rank local meshes with ghost
//!   layers, used by the Typhon runtime;
//! * [`quality`] — mesh-quality metrics used by tests and the ALE
//!   mesh-selection step.

// Index-based loops over element/corner arrays are the house style of
// these kernels (they mirror the reference Fortran and keep index math
// visible); the clippy style lint fires on every one.
#![allow(clippy::needless_range_loop)]

pub mod generation;
pub mod geometry;
pub mod quality;
pub mod submesh;
mod topology;

pub use generation::{generate_rect, saltzmann_distort, RectSpec};
pub use submesh::{neighbour_union, OverlapSets, SubMesh, SubMeshPlan};
pub use topology::{Mesh, Neighbor, NodeBc, STENCIL_BOUNDARY};

/// Number of corners / faces of a quadrilateral element.
pub const NCORN: usize = bookleaf_util::constants::NCORN;
