//! Mesh quality metrics.
//!
//! Used in three places: test assertions on generated meshes, the ALE
//! mesh-selection step (`alegetmesh` smooths where quality degrades), and
//! diagnostics printed by the driver when a run tangles.

use bookleaf_util::Vec2;

use crate::geometry::{edge_lengths, quad_area};
use crate::topology::Mesh;
use crate::NCORN;

/// Aspect ratio of a quad: longest edge over shortest edge (≥ 1).
#[must_use]
pub fn aspect_ratio(c: &[Vec2; NCORN]) -> f64 {
    let l = edge_lengths(c);
    let lo = l.into_iter().fold(f64::INFINITY, f64::min);
    let hi = l.into_iter().fold(0.0f64, f64::max);
    if lo == 0.0 {
        f64::INFINITY
    } else {
        hi / lo
    }
}

/// Skewness: 1 − (min corner sine). 0 for a rectangle, → 1 as any corner
/// angle collapses to 0 or π.
#[must_use]
pub fn skewness(c: &[Vec2; NCORN]) -> f64 {
    let mut min_sine = f64::INFINITY;
    for i in 0..NCORN {
        let ip = (i + 1) % NCORN;
        let im = (i + 3) % NCORN;
        let a = (c[ip] - c[i]).normalized();
        let b = (c[im] - c[i]).normalized();
        min_sine = min_sine.min(a.cross(b).abs());
    }
    1.0 - min_sine.clamp(0.0, 1.0)
}

/// Summary of quality over a whole mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Smallest signed element area (negative means tangled).
    pub min_area: f64,
    /// Largest element area.
    pub max_area: f64,
    /// Worst (largest) aspect ratio.
    pub max_aspect: f64,
    /// Worst (largest) skewness.
    pub max_skew: f64,
    /// Number of elements with non-positive area.
    pub n_tangled: usize,
}

/// Compute a [`QualityReport`] for every element of `mesh`.
#[must_use]
pub fn assess(mesh: &Mesh) -> QualityReport {
    let mut rep = QualityReport {
        min_area: f64::INFINITY,
        max_area: f64::NEG_INFINITY,
        max_aspect: 0.0,
        max_skew: 0.0,
        n_tangled: 0,
    };
    for e in 0..mesh.n_elements() {
        let c = mesh.corners(e);
        let a = quad_area(&c);
        rep.min_area = rep.min_area.min(a);
        rep.max_area = rep.max_area.max(a);
        rep.max_aspect = rep.max_aspect.max(aspect_ratio(&c));
        rep.max_skew = rep.max_skew.max(skewness(&c));
        if a <= 0.0 {
            rep.n_tangled += 1;
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::{generate_rect, saltzmann_distort, RectSpec};
    use bookleaf_util::approx_eq;

    #[test]
    fn square_is_perfect() {
        let c = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ];
        assert!(approx_eq(aspect_ratio(&c), 1.0, 1e-14));
        assert!(skewness(&c) < 1e-14);
    }

    #[test]
    fn rectangle_aspect() {
        let c = [
            Vec2::new(0.0, 0.0),
            Vec2::new(4.0, 0.0),
            Vec2::new(4.0, 1.0),
            Vec2::new(0.0, 1.0),
        ];
        assert!(approx_eq(aspect_ratio(&c), 4.0, 1e-14));
    }

    #[test]
    fn sheared_quad_is_skewed() {
        let c = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.9, 1.0),
            Vec2::new(0.9, 1.0),
        ];
        assert!(skewness(&c) > 0.2);
    }

    #[test]
    fn uniform_grid_report() {
        let m = generate_rect(&RectSpec::unit_square(8), |_| 0).unwrap();
        let rep = assess(&m);
        assert_eq!(rep.n_tangled, 0);
        assert!(approx_eq(rep.min_area, rep.max_area, 1e-12));
        assert!(approx_eq(rep.max_aspect, 1.0, 1e-12));
        assert!(rep.max_skew < 1e-12);
    }

    #[test]
    fn saltzmann_grid_is_worse_but_untangled() {
        let origin = Vec2::ZERO;
        let extent = Vec2::new(1.0, 0.1);
        let mut m = generate_rect(
            &RectSpec {
                nx: 100,
                ny: 10,
                origin,
                extent,
            },
            |_| 0,
        )
        .unwrap();
        let before = assess(&m);
        saltzmann_distort(&mut m, origin, extent);
        let after = assess(&m);
        assert_eq!(after.n_tangled, 0);
        assert!(after.max_skew > before.max_skew);
        assert!(after.min_area > 0.0);
    }
}
