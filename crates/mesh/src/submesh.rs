//! Per-rank local meshes with ghost layers.
//!
//! BookLeaf distributes the mesh across processes; data required from
//! neighbouring processes is stored in *ghost layers* and retrieved via
//! point-to-point communications. This module builds those local views.
//!
//! ## Layout of a [`SubMesh`]
//!
//! * Local elements are ordered **owned first, then ghost**, each group
//!   sorted by global id (so that reduction orders are identical on every
//!   rank that sees the same element).
//! * The ghost layer contains every non-owned element that shares *a node*
//!   with an owned element. This node-complete layer means each rank can
//!   evaluate the acceleration gather for every node of its owned elements
//!   without further communication, provided ghost corner data is current.
//! * Local nodes are ordered **active first** (nodes of owned elements,
//!   sorted by global id), **then outer** (remaining nodes of ghost
//!   elements).
//! * Node ownership: the smallest rank owning an adjacent element. Owned
//!   node values are computed locally; non-owned values arrive via the
//!   node exchange.
//!
//! The exchange *schedules* (who sends which locals to whom, in which
//! order) are precomputed here, centrally, from the global mesh — the
//! paper notes the reference partitioner is serial, and we mirror that.

use std::collections::HashMap;

use bookleaf_util::{BookLeafError, Result};

use crate::topology::{Mesh, Neighbor};
use crate::NCORN;

/// One direction of a per-neighbour exchange schedule: the local indices
/// to pack (send) or unpack (receive), in an order agreed with the peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeList {
    /// Peer rank.
    pub rank: usize,
    /// Local indices to send to `rank`, sorted by global id.
    pub send: Vec<u32>,
    /// Local indices to receive from `rank`, sorted by global id.
    pub recv: Vec<u32>,
}

/// A rank-local mesh plus everything needed to exchange halo data.
#[derive(Debug, Clone)]
pub struct SubMesh {
    /// This rank's id.
    pub rank: usize,
    /// The local mesh: owned elements first, then ghosts.
    pub mesh: Mesh,
    /// Number of owned elements (prefix of the local ordering).
    pub n_owned_el: usize,
    /// Number of active nodes (nodes of owned elements, prefix).
    pub n_active_nd: usize,
    /// Local element → global element id.
    pub el_l2g: Vec<u32>,
    /// Local node → global node id.
    pub nd_l2g: Vec<u32>,
    /// Owner rank of each local node.
    pub nd_owner: Vec<u32>,
    /// Element-field exchange schedule, one entry per neighbouring rank.
    pub el_exchange: Vec<ExchangeList>,
    /// Node-field exchange schedule, one entry per neighbouring rank.
    pub nd_exchange: Vec<ExchangeList>,
}

impl SubMesh {
    /// True when local element `e` is owned by this rank.
    #[inline]
    #[must_use]
    pub fn owns_element(&self, e: usize) -> bool {
        e < self.n_owned_el
    }

    /// True when local node `n` is owned by this rank.
    #[inline]
    #[must_use]
    pub fn owns_node(&self, n: usize) -> bool {
        self.nd_owner[n] as usize == self.rank
    }

    /// Total halo (ghost element) count.
    #[must_use]
    pub fn n_ghost_el(&self) -> usize {
        self.mesh.n_elements() - self.n_owned_el
    }

    /// The ranks this submesh exchanges halo data with: the union of the
    /// element- and node-schedule peers, sorted ascending. One entry per
    /// *neighbour link* — a phase-aggregated exchange sends exactly one
    /// message per entry per phase.
    #[must_use]
    pub fn neighbour_ranks(&self) -> Vec<usize> {
        neighbour_union(&self.el_exchange, &self.nd_exchange)
    }

    /// Classify this rank's entities into **interior** (no halo
    /// dependency) and **boundary** sets, derived once per run from the
    /// exchange schedules. The overlapped executor sweeps the interior
    /// sets while a phase's messages are in flight and only completes
    /// the exchange before the boundary sweep — see [`OverlapSets`] for
    /// the exact guarantees each mask provides.
    #[must_use]
    pub fn overlap_sets(&self) -> OverlapSets {
        let ne = self.mesh.n_elements();
        let nn = self.mesh.n_nodes();

        // Membership of the recv/send schedules, as O(1) lookups.
        let mut el_recv = vec![false; ne];
        let mut el_send = vec![false; ne];
        for ex in &self.el_exchange {
            for &e in &ex.recv {
                el_recv[e as usize] = true;
            }
            for &e in &ex.send {
                el_send[e as usize] = true;
            }
        }
        let mut nd_recv = vec![false; nn];
        for ex in &self.nd_exchange {
            for &n in &ex.recv {
                nd_recv[n as usize] = true;
            }
        }

        // Viscosity-phase element split: the getq limiter reaches from
        // an owned element into its own nodes, its face neighbours, and
        // those neighbours' nodes (cell-averaged velocities). If any of
        // them is refreshed by the exchange, the element is boundary.
        let nodes_hit = |e: usize| self.mesh.elnd[e].iter().any(|&n| nd_recv[n as usize]);
        let mut el_boundary = vec![false; self.n_owned_el];
        for (e, flag) in el_boundary.iter_mut().enumerate() {
            *flag = nodes_hit(e)
                || self.mesh.elel[e].iter().any(|nb| match nb {
                    Neighbor::Element(en) => el_recv[*en as usize] || nodes_hit(*en as usize),
                    Neighbor::Boundary => false,
                });
        }

        // Acceleration-phase node split: the nodal gather reads corner
        // masses/forces of every adjacent element; ghost contributions
        // arrive in the exchange.
        let mut nd_boundary = vec![false; self.n_active_nd];
        for (n, flag) in nd_boundary.iter_mut().enumerate() {
            *flag = self
                .mesh
                .elements_of_node(n)
                .iter()
                .any(|&(e, _)| el_recv[e as usize]);
        }

        // Post-remap pre-post sets: everything that must be remapped
        // *before* the exchange can pack — the send-list elements, the
        // send-list nodes, and (because a node's velocity update gathers
        // over its whole adjacency) every element adjacent to a
        // send-list node, ghosts included.
        let mut remap_pre_el = el_send;
        let mut remap_pre_nd = vec![false; self.n_active_nd];
        for ex in &self.nd_exchange {
            for &n in &ex.send {
                let n = n as usize;
                // Send nodes are owned, and owned nodes are active.
                remap_pre_nd[n] = true;
                for &(e, _) in self.mesh.elements_of_node(n) {
                    remap_pre_el[e as usize] = true;
                }
            }
        }

        OverlapSets {
            el_boundary,
            nd_boundary,
            remap_pre_el,
            remap_pre_nd,
        }
    }
}

/// Interior/boundary masks for communication/computation overlap,
/// derived from a [`SubMesh`]'s exchange schedules by
/// [`SubMesh::overlap_sets`].
///
/// The guarantees, which make split (interior-first) kernel sweeps
/// bitwise identical to full sweeps after a completed exchange:
///
/// * An owned element with `el_boundary == false` reads **no** entity
///   any recv list touches through the viscosity/force stencil (its own
///   nodes, its face neighbours, and their nodes) — `getq`/`getforce`
///   may process it before the `pre_viscosity` exchange completes.
/// * An active node with `nd_boundary == false` is adjacent to owned
///   elements only — `getacc` may gather it before the
///   `pre_acceleration` exchange completes.
/// * `remap_pre_el` / `remap_pre_nd` are the entities (elements owned
///   *and* ghost; active nodes) whose remap update feeds the
///   `post_remap` send buffers: every send-list element, every
///   send-list node, and every element adjacent to a send-list node.
///   Updating exactly these first makes it safe to post the exchange,
///   remap the rest during flight, and complete at the end. By
///   construction no element *outside* `remap_pre_el` is adjacent to a
///   node in `remap_pre_nd`, so the deferred element sweep never reads
///   a velocity the early node sweep rewrote.
#[derive(Debug, Clone)]
pub struct OverlapSets {
    /// Per owned element (`len == n_owned_el`): `true` ⇒ the
    /// viscosity-phase stencil reaches a halo-received entity.
    pub el_boundary: Vec<bool>,
    /// Per active node (`len == n_active_nd`): `true` ⇒ adjacent to at
    /// least one ghost element.
    pub nd_boundary: Vec<bool>,
    /// Per local element (`len == n_elements`, ghosts included):
    /// `true` ⇒ must be remapped before posting `post_remap`.
    pub remap_pre_el: Vec<bool>,
    /// Per active node: `true` ⇒ packed by the `post_remap` exchange.
    pub remap_pre_nd: Vec<bool>,
}

impl OverlapSets {
    /// Number of interior (overlappable) owned elements.
    #[must_use]
    pub fn n_interior_el(&self) -> usize {
        self.el_boundary.iter().filter(|&&b| !b).count()
    }

    /// Number of interior (overlappable) active nodes.
    #[must_use]
    pub fn n_interior_nd(&self) -> usize {
        self.nd_boundary.iter().filter(|&&b| !b).count()
    }
}

/// Sorted, deduplicated union of the peer ranks of two exchange
/// schedules: the submesh's *neighbour links*. The single source of
/// truth for the link set — the typhon exchange plan derives its wire
/// format from this same function, so the message-count invariant
/// (`messages == phases × links`) cannot drift between layers.
#[must_use]
pub fn neighbour_union(el: &[ExchangeList], nd: &[ExchangeList]) -> Vec<usize> {
    let mut ranks: Vec<usize> = el.iter().chain(nd).map(|x| x.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    ranks
}

/// Builder for the set of [`SubMesh`]es of a run.
#[derive(Debug)]
pub struct SubMeshPlan;

impl SubMeshPlan {
    /// Decompose `global` according to `owner` (element → rank) into
    /// `n_ranks` local meshes with ghost layers and exchange schedules.
    pub fn build(global: &Mesh, owner: &[usize], n_ranks: usize) -> Result<Vec<SubMesh>> {
        if owner.len() != global.n_elements() {
            return Err(BookLeafError::Partition(format!(
                "owner array length {} != element count {}",
                owner.len(),
                global.n_elements()
            )));
        }
        if let Some(&bad) = owner.iter().find(|&&r| r >= n_ranks) {
            return Err(BookLeafError::Partition(format!(
                "element owner {bad} out of range for {n_ranks} ranks"
            )));
        }
        for r in 0..n_ranks {
            if !owner.contains(&r) {
                return Err(BookLeafError::Partition(format!(
                    "rank {r} owns no elements"
                )));
            }
        }

        // Node owner = min rank among adjacent elements.
        let mut nd_owner_g = vec![usize::MAX; global.n_nodes()];
        for n in 0..global.n_nodes() {
            for &(e, _) in global.elements_of_node(n) {
                nd_owner_g[n] = nd_owner_g[n].min(owner[e as usize]);
            }
        }

        // Per rank: owned elements (sorted), then ghost layer (sorted).
        let mut subs = Vec::with_capacity(n_ranks);
        // For schedule construction: for each global element, which ranks
        // hold it as a ghost.
        let mut ghost_holders: Vec<Vec<usize>> = vec![Vec::new(); global.n_elements()];
        // Which ranks need each global node (hold it locally, not owning it).
        let mut node_needers: Vec<Vec<usize>> = vec![Vec::new(); global.n_nodes()];

        struct Draft {
            owned: Vec<u32>,
            ghost: Vec<u32>,
            local_nodes: Vec<u32>, // active then outer, each sorted
            n_active: usize,
            el_g2l: HashMap<u32, u32>,
            nd_g2l: HashMap<u32, u32>,
        }
        let mut drafts = Vec::with_capacity(n_ranks);

        for r in 0..n_ranks {
            let owned: Vec<u32> = (0..global.n_elements() as u32)
                .filter(|&e| owner[e as usize] == r)
                .collect();

            // Active nodes = nodes of owned elements.
            let mut active: Vec<u32> = owned
                .iter()
                .flat_map(|&e| global.elnd[e as usize])
                .collect();
            active.sort_unstable();
            active.dedup();

            // Ghost layer: elements adjacent to an active node, not owned.
            let mut ghost: Vec<u32> = active
                .iter()
                .flat_map(|&n| global.elements_of_node(n as usize).iter().map(|&(e, _)| e))
                .filter(|&e| owner[e as usize] != r)
                .collect();
            ghost.sort_unstable();
            ghost.dedup();

            // Outer nodes = nodes of ghosts not already active.
            let active_set: std::collections::HashSet<u32> = active.iter().copied().collect();
            let mut outer: Vec<u32> = ghost
                .iter()
                .flat_map(|&e| global.elnd[e as usize])
                .filter(|n| !active_set.contains(n))
                .collect();
            outer.sort_unstable();
            outer.dedup();

            for &e in &ghost {
                ghost_holders[e as usize].push(r);
            }

            let mut local_nodes = active.clone();
            local_nodes.extend_from_slice(&outer);
            for &n in &local_nodes {
                if nd_owner_g[n as usize] != r {
                    node_needers[n as usize].push(r);
                }
            }

            let el_g2l: HashMap<u32, u32> = owned
                .iter()
                .chain(ghost.iter())
                .enumerate()
                .map(|(l, &g)| (g, l as u32))
                .collect();
            let nd_g2l: HashMap<u32, u32> = local_nodes
                .iter()
                .enumerate()
                .map(|(l, &g)| (g, l as u32))
                .collect();

            drafts.push(Draft {
                owned,
                ghost,
                n_active: active.len(),
                local_nodes,
                el_g2l,
                nd_g2l,
            });
        }

        // Build exchange schedules. Element: owner sends to every ghost
        // holder. Node: owner sends to every needer. Both sides keep
        // global-id order so packed buffers line up.
        for (r, d) in drafts.iter().enumerate() {
            // el sends: my owned elements that appear in others' ghost lists.
            let mut el_sched: HashMap<usize, (Vec<u32>, Vec<u32>)> = HashMap::new();
            for &g in &d.owned {
                for &holder in &ghost_holders[g as usize] {
                    el_sched.entry(holder).or_default().0.push(d.el_g2l[&g]);
                }
            }
            for &g in &d.ghost {
                let owner_rank = owner[g as usize];
                el_sched.entry(owner_rank).or_default().1.push(d.el_g2l[&g]);
            }

            let mut nd_sched: HashMap<usize, (Vec<u32>, Vec<u32>)> = HashMap::new();
            for &n in &d.local_nodes {
                let o = nd_owner_g[n as usize];
                if o == r {
                    for &needer in &node_needers[n as usize] {
                        nd_sched.entry(needer).or_default().0.push(d.nd_g2l[&n]);
                    }
                } else {
                    nd_sched.entry(o).or_default().1.push(d.nd_g2l[&n]);
                }
            }

            // Sort every pack/unpack list by *global* id so both ends of
            // each channel agree on buffer order regardless of how local
            // orderings interleave active and outer entries.
            let mut el_exchange: Vec<ExchangeList> = el_sched
                .into_iter()
                .map(|(rank, (mut send, mut recv))| {
                    let gid = |l: u32| {
                        let l = l as usize;
                        if l < d.owned.len() {
                            d.owned[l]
                        } else {
                            d.ghost[l - d.owned.len()]
                        }
                    };
                    send.sort_by_key(|&l| gid(l));
                    recv.sort_by_key(|&l| gid(l));
                    ExchangeList { rank, send, recv }
                })
                .collect();
            el_exchange.sort_by_key(|x| x.rank);
            let mut nd_exchange: Vec<ExchangeList> = nd_sched
                .into_iter()
                .map(|(rank, (mut send, mut recv))| {
                    send.sort_by_key(|&l| d.local_nodes[l as usize]);
                    recv.sort_by_key(|&l| d.local_nodes[l as usize]);
                    ExchangeList { rank, send, recv }
                })
                .collect();
            nd_exchange.sort_by_key(|x| x.rank);

            // Local mesh arrays.
            let all_els: Vec<u32> = d.owned.iter().chain(d.ghost.iter()).copied().collect();
            let elnd: Vec<[u32; NCORN]> = all_els
                .iter()
                .map(|&g| {
                    let quad = global.elnd[g as usize];
                    [
                        d.nd_g2l[&quad[0]],
                        d.nd_g2l[&quad[1]],
                        d.nd_g2l[&quad[2]],
                        d.nd_g2l[&quad[3]],
                    ]
                })
                .collect();
            let nodes = d
                .local_nodes
                .iter()
                .map(|&n| global.nodes[n as usize])
                .collect();
            let node_bc = d
                .local_nodes
                .iter()
                .map(|&n| global.node_bc[n as usize])
                .collect();
            let region = all_els.iter().map(|&g| global.region[g as usize]).collect();
            let mut mesh = Mesh::from_raw(nodes, elnd, node_bc, region)?;
            // Reorder every node's element adjacency by *global* element
            // id. Nodal gathers (acceleration, remap momentum) then sum
            // in exactly the order the serial code uses, making
            // distributed Lagrangian runs bitwise-identical to serial.
            for n in 0..mesh.n_nodes() {
                let (lo, hi) = (mesh.ndel_off[n] as usize, mesh.ndel_off[n + 1] as usize);
                mesh.ndel[lo..hi].sort_by_key(|&(e, _)| all_els[e as usize]);
            }

            subs.push(SubMesh {
                rank: r,
                mesh,
                n_owned_el: d.owned.len(),
                n_active_nd: d.n_active,
                el_l2g: all_els,
                nd_l2g: d.local_nodes.clone(),
                nd_owner: d
                    .local_nodes
                    .iter()
                    .map(|&n| nd_owner_g[n as usize] as u32)
                    .collect(),
                el_exchange,
                nd_exchange,
            });
        }

        // Cross-check: send and recv list lengths agree pairwise.
        for r in 0..n_ranks {
            for ex in &subs[r].el_exchange {
                let peer = &subs[ex.rank];
                let back = peer
                    .el_exchange
                    .iter()
                    .find(|x| x.rank == r)
                    .ok_or_else(|| {
                        BookLeafError::Comm(format!(
                            "rank {} missing peer schedule for {r}",
                            ex.rank
                        ))
                    })?;
                if ex.send.len() != back.recv.len() || ex.recv.len() != back.send.len() {
                    return Err(BookLeafError::Comm(format!(
                        "element schedule mismatch between ranks {r} and {}",
                        ex.rank
                    )));
                }
            }
        }
        Ok(subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::{generate_rect, RectSpec};

    fn grid(n: usize) -> Mesh {
        generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap()
    }

    /// Stripe owner: left half rank 0, right half rank 1.
    fn stripe_owner(m: &Mesh, n: usize) -> Vec<usize> {
        (0..m.n_elements())
            .map(|e| usize::from(e % n >= n / 2))
            .collect()
    }

    #[test]
    fn owned_elements_partition_globally() {
        let m = grid(4);
        let owner = stripe_owner(&m, 4);
        let subs = SubMeshPlan::build(&m, &owner, 2).unwrap();
        let total: usize = subs.iter().map(|s| s.n_owned_el).sum();
        assert_eq!(total, m.n_elements());
        // Each owned element appears exactly once across ranks.
        let mut seen = vec![false; m.n_elements()];
        for s in &subs {
            for &g in &s.el_l2g[..s.n_owned_el] {
                assert!(!seen[g as usize], "element {g} owned twice");
                seen[g as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn ghost_layer_is_node_complete() {
        // Every element adjacent to an active node must be local.
        let m = grid(6);
        let owner = stripe_owner(&m, 6);
        let subs = SubMeshPlan::build(&m, &owner, 2).unwrap();
        for s in &subs {
            let local_els: std::collections::HashSet<u32> = s.el_l2g.iter().copied().collect();
            for ln in 0..s.n_active_nd {
                let g = s.nd_l2g[ln] as usize;
                for &(e, _) in m.elements_of_node(g) {
                    assert!(
                        local_els.contains(&e),
                        "rank {}: element {e} adjacent to active node {g} missing",
                        s.rank
                    );
                }
            }
        }
    }

    #[test]
    fn local_meshes_validate() {
        let m = grid(5);
        let owner = stripe_owner(&m, 5);
        for s in SubMeshPlan::build(&m, &owner, 2).unwrap() {
            s.mesh.validate().unwrap();
        }
    }

    #[test]
    fn schedules_pair_up() {
        let m = grid(6);
        // 4-way checkerboard-ish: quadrant decomposition.
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| {
                let i = e % 6;
                let j = e / 6;
                usize::from(i >= 3) + 2 * usize::from(j >= 3)
            })
            .collect();
        let subs = SubMeshPlan::build(&m, &owner, 4).unwrap();
        for s in &subs {
            for ex in &s.el_exchange {
                let back = subs[ex.rank]
                    .el_exchange
                    .iter()
                    .find(|x| x.rank == s.rank)
                    .unwrap();
                assert_eq!(ex.send.len(), back.recv.len());
                // Global ids of sent elements match global ids of received.
                let sent: Vec<u32> = ex.send.iter().map(|&l| s.el_l2g[l as usize]).collect();
                let recvd: Vec<u32> = back
                    .recv
                    .iter()
                    .map(|&l| subs[ex.rank].el_l2g[l as usize])
                    .collect();
                assert_eq!(sent, recvd, "element exchange order mismatch");
            }
            for ex in &s.nd_exchange {
                let back = subs[ex.rank]
                    .nd_exchange
                    .iter()
                    .find(|x| x.rank == s.rank)
                    .unwrap();
                let sent: Vec<u32> = ex.send.iter().map(|&l| s.nd_l2g[l as usize]).collect();
                let recvd: Vec<u32> = back
                    .recv
                    .iter()
                    .map(|&l| subs[ex.rank].nd_l2g[l as usize])
                    .collect();
                assert_eq!(sent, recvd, "node exchange order mismatch");
            }
        }
    }

    #[test]
    fn node_owner_is_min_adjacent_rank() {
        let m = grid(4);
        let owner = stripe_owner(&m, 4);
        let subs = SubMeshPlan::build(&m, &owner, 2).unwrap();
        // Nodes on the partition seam (x = 0.5 column) must be owned by rank 0.
        let s1 = &subs[1];
        for (ln, &g) in s1.nd_l2g.iter().enumerate() {
            let x = m.nodes[g as usize].x;
            if (x - 0.5).abs() < 1e-12 {
                assert_eq!(s1.nd_owner[ln], 0, "seam node {g} should belong to rank 0");
            }
        }
    }

    #[test]
    fn neighbour_ranks_is_sorted_union_of_schedules() {
        let m = grid(6);
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| {
                let i = e % 6;
                let j = e / 6;
                usize::from(i >= 3) + 2 * usize::from(j >= 3)
            })
            .collect();
        let subs = SubMeshPlan::build(&m, &owner, 4).unwrap();
        for s in &subs {
            let links = s.neighbour_ranks();
            assert!(links.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            assert!(!links.contains(&s.rank), "never a self-link");
            for ex in s.el_exchange.iter().chain(&s.nd_exchange) {
                assert!(links.contains(&ex.rank));
            }
        }
        // Quadrants: every rank neighbours the other three (corner
        // contact counts — node-complete ghost layers see it).
        assert_eq!(subs[0].neighbour_ranks(), vec![1, 2, 3]);
    }

    /// The overlap masks' defining properties, checked exhaustively on a
    /// 4-rank quadrant decomposition: interior entities are untouched by
    /// any recv list through their kernel stencils, and the remap
    /// pre-post sets cover everything the post-remap pack reads.
    #[test]
    fn overlap_sets_isolate_halo_dependencies() {
        let m = grid(6);
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| {
                let i = e % 6;
                let j = e / 6;
                usize::from(i >= 3) + 2 * usize::from(j >= 3)
            })
            .collect();
        let subs = SubMeshPlan::build(&m, &owner, 4).unwrap();
        for s in &subs {
            let o = s.overlap_sets();
            assert_eq!(o.el_boundary.len(), s.n_owned_el);
            assert_eq!(o.nd_boundary.len(), s.n_active_nd);
            assert_eq!(o.remap_pre_el.len(), s.mesh.n_elements());
            assert_eq!(o.remap_pre_nd.len(), s.n_active_nd);
            // A distributed rank must have real boundary *and* real
            // interior on this mesh size.
            assert!(o.n_interior_el() > 0, "rank {} all boundary", s.rank);
            assert!(o.el_boundary.iter().any(|&b| b));
            assert!(o.nd_boundary.iter().any(|&b| b));

            let mut nd_recv = vec![false; s.mesh.n_nodes()];
            for ex in &s.nd_exchange {
                for &n in &ex.recv {
                    nd_recv[n as usize] = true;
                }
            }
            let mut el_recv = vec![false; s.mesh.n_elements()];
            for ex in &s.el_exchange {
                for &e in &ex.recv {
                    el_recv[e as usize] = true;
                }
            }
            // Interior elements: stencil free of recv'd entities.
            for e in 0..s.n_owned_el {
                if o.el_boundary[e] {
                    continue;
                }
                assert!(s.mesh.elnd[e].iter().all(|&n| !nd_recv[n as usize]));
                for nb in &s.mesh.elel[e] {
                    if let Neighbor::Element(en) = nb {
                        let en = *en as usize;
                        assert!(!el_recv[en], "interior el {e} beside ghost {en}");
                        assert!(s.mesh.elnd[en].iter().all(|&n| !nd_recv[n as usize]));
                    }
                }
            }
            // Interior nodes: adjacency entirely owned.
            for n in 0..s.n_active_nd {
                if !o.nd_boundary[n] {
                    for &(e, _) in s.mesh.elements_of_node(n) {
                        assert!(s.owns_element(e as usize));
                    }
                }
            }
            // Remap pre-post sets cover the pack's reads: send elements,
            // send nodes, and the full adjacency of every send node.
            for ex in &s.el_exchange {
                for &e in &ex.send {
                    assert!(o.remap_pre_el[e as usize]);
                }
            }
            for ex in &s.nd_exchange {
                for &n in &ex.send {
                    assert!(o.remap_pre_nd[n as usize]);
                    for &(e, _) in s.mesh.elements_of_node(n as usize) {
                        assert!(o.remap_pre_el[e as usize]);
                    }
                }
            }
            // And the complement invariant the deferred element sweep
            // relies on: no element outside remap_pre_el touches a node
            // in remap_pre_nd.
            for e in 0..s.mesh.n_elements() {
                if !o.remap_pre_el[e] {
                    for &n in &s.mesh.elnd[e] {
                        let n = n as usize;
                        assert!(
                            n >= s.n_active_nd || !o.remap_pre_nd[n],
                            "deferred element {e} adjacent to early node {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_rank_overlap_sets_are_all_interior() {
        let m = grid(4);
        let subs = SubMeshPlan::build(&m, &vec![0; m.n_elements()], 1).unwrap();
        let o = subs[0].overlap_sets();
        assert_eq!(o.n_interior_el(), m.n_elements());
        assert_eq!(o.n_interior_nd(), m.n_nodes());
        assert!(o.remap_pre_el.iter().all(|&b| !b));
        assert!(o.remap_pre_nd.iter().all(|&b| !b));
    }

    #[test]
    fn empty_rank_rejected() {
        let m = grid(3);
        let owner = vec![0; m.n_elements()];
        assert!(SubMeshPlan::build(&m, &owner, 2).is_err());
    }

    #[test]
    fn wrong_owner_length_rejected() {
        let m = grid(3);
        assert!(SubMeshPlan::build(&m, &[0, 1], 2).is_err());
    }

    #[test]
    fn out_of_range_owner_rejected() {
        let m = grid(3);
        let owner = vec![5; m.n_elements()];
        assert!(SubMeshPlan::build(&m, &owner, 2).is_err());
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let m = grid(4);
        let owner = vec![0; m.n_elements()];
        let subs = SubMeshPlan::build(&m, &owner, 1).unwrap();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].n_ghost_el(), 0);
        assert!(subs[0].el_exchange.is_empty());
        assert!(subs[0].nd_exchange.is_empty());
        assert_eq!(subs[0].mesh.n_elements(), m.n_elements());
    }
}
