//! Mesh storage and connectivity invariants.
//!
//! Storage conventions (mirroring the BookLeaf reference arrays):
//!
//! * `elnd[e] = [n0, n1, n2, n3]` — the four nodes of element `e`, listed
//!   counter-clockwise (positive shoelace area).
//! * Face `f` of element `e` joins corner `f` and corner `(f+1) % 4`.
//! * `elel[e][f]` — what lies across face `f`: another element or a
//!   boundary.
//! * Node→element adjacency is CSR: for node `n`, the elements touching it
//!   (with the corner index `n` occupies in each) are
//!   `ndel[ndel_off[n]..ndel_off[n+1]]`. Valence is arbitrary — this is
//!   what makes the mesh *unstructured*.

use bookleaf_util::{BookLeafError, Result, Vec2};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

use crate::NCORN;

/// Sentinel in [`Mesh::face_stencil`] rows marking a boundary face.
pub const STENCIL_BOUNDARY: u32 = u32::MAX;

/// Lazily built packed face stencil (see [`Mesh::face_stencil`]).
///
/// Pure derived data: excluded from equality (two meshes with the same
/// topology are equal whether or not either has built its cache) and
/// from serialization (a restored mesh rebuilds on first use).
#[derive(Default, Clone)]
struct StencilCache(OnceLock<Vec<[u32; NCORN]>>);

impl PartialEq for StencilCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for StencilCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.0.get() {
            Some(_) => "StencilCache(built)",
            None => "StencilCache(empty)",
        })
    }
}

/// What lies across a face of an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Neighbor {
    /// Interior face shared with another element (global element id).
    Element(u32),
    /// Face on the physical boundary.
    Boundary,
}

impl Neighbor {
    /// The neighbouring element id, if any.
    #[must_use]
    pub fn element(self) -> Option<u32> {
        match self {
            Neighbor::Element(e) => Some(e),
            Neighbor::Boundary => None,
        }
    }
}

/// Kinematic boundary condition applied to a node.
///
/// BookLeaf's walls are reflective: the velocity component normal to the
/// wall is pinned to zero (or to a prescribed wall velocity for the
/// Saltzmann piston, handled by the driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeBc {
    /// Zero the x velocity component (node on an x = const wall).
    pub fix_x: bool,
    /// Zero the y velocity component (node on a y = const wall).
    pub fix_y: bool,
}

impl NodeBc {
    /// Free interior node.
    pub const FREE: NodeBc = NodeBc {
        fix_x: false,
        fix_y: false,
    };
    /// Node on a vertical wall.
    pub const WALL_X: NodeBc = NodeBc {
        fix_x: true,
        fix_y: false,
    };
    /// Node on a horizontal wall.
    pub const WALL_Y: NodeBc = NodeBc {
        fix_x: false,
        fix_y: true,
    };
    /// Corner node fixed in both directions.
    pub const CORNER: NodeBc = NodeBc {
        fix_x: true,
        fix_y: true,
    };

    /// Combine two conditions (a node on two walls is fixed in both).
    #[must_use]
    pub fn merge(self, other: NodeBc) -> NodeBc {
        NodeBc {
            fix_x: self.fix_x || other.fix_x,
            fix_y: self.fix_y || other.fix_y,
        }
    }

    /// Apply to a velocity, zeroing fixed components.
    #[must_use]
    pub fn apply(self, v: Vec2) -> Vec2 {
        Vec2::new(
            if self.fix_x { 0.0 } else { v.x },
            if self.fix_y { 0.0 } else { v.y },
        )
    }
}

/// An unstructured 2-D quadrilateral mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    /// Node positions (Lagrangian: these move during the run).
    pub nodes: Vec<Vec2>,
    /// Element → node connectivity, counter-clockwise.
    pub elnd: Vec<[u32; NCORN]>,
    /// Element → neighbour across each face.
    pub elel: Vec<[Neighbor; NCORN]>,
    /// CSR offsets for node→element adjacency (length `nnodes + 1`).
    pub ndel_off: Vec<u32>,
    /// CSR items: (element id, corner index this node occupies).
    pub ndel: Vec<(u32, u8)>,
    /// Kinematic boundary condition per node.
    pub node_bc: Vec<NodeBc>,
    /// Region (material) id per element.
    pub region: Vec<u32>,
    /// Packed face-neighbour table, built on first [`Mesh::face_stencil`]
    /// call. `elel` is fixed at construction (no kernel mutates
    /// topology), so the cache can never go stale.
    #[serde(skip)]
    stencil: StencilCache,
}

impl Mesh {
    /// Number of elements.
    #[inline]
    #[must_use]
    pub fn n_elements(&self) -> usize {
        self.elnd.len()
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The four corner positions of element `e`, in CCW order.
    #[inline]
    #[must_use]
    pub fn corners(&self, e: usize) -> [Vec2; NCORN] {
        let nd = self.elnd[e];
        [
            self.nodes[nd[0] as usize],
            self.nodes[nd[1] as usize],
            self.nodes[nd[2] as usize],
            self.nodes[nd[3] as usize],
        ]
    }

    /// Elements adjacent to node `n`: `(element, corner)` pairs.
    #[inline]
    #[must_use]
    pub fn elements_of_node(&self, n: usize) -> &[(u32, u8)] {
        &self.ndel[self.ndel_off[n] as usize..self.ndel_off[n + 1] as usize]
    }

    /// The face-neighbour table packed for stride-1 sweeps: row `e`
    /// holds the element across each face of `e`, with
    /// [`STENCIL_BOUNDARY`] marking boundary faces. Semantically
    /// identical to `elel`, but half the bytes (a bare `u32` per face
    /// instead of a tagged `Neighbor`), so stencil-hungry inner loops
    /// (the artificial viscosity limiter) stream it instead of matching
    /// on the enum. Built lazily, once per mesh — topology never
    /// changes after construction.
    #[must_use]
    pub fn face_stencil(&self) -> &[[u32; NCORN]] {
        self.stencil.0.get_or_init(|| {
            self.elel
                .iter()
                .map(|row| {
                    let mut packed = [STENCIL_BOUNDARY; NCORN];
                    for (slot, nb) in packed.iter_mut().zip(row.iter()) {
                        if let Neighbor::Element(en) = *nb {
                            *slot = en;
                        }
                    }
                    packed
                })
                .collect()
        })
    }

    /// The face of `e` that joins it to neighbour `nb`, if the two
    /// elements share a face. The single source of the
    /// "find-the-matching-face" adjacency scan the ALE kernels need in
    /// several places.
    #[inline]
    #[must_use]
    pub fn face_towards(&self, e: usize, nb: usize) -> Option<usize> {
        (0..NCORN).find(|&f| matches!(self.elel[e][f], Neighbor::Element(x) if x as usize == nb))
    }

    /// Build the CSR node→element adjacency from `elnd`. Called by
    /// constructors after element connectivity is known.
    pub(crate) fn build_ndel(n_nodes: usize, elnd: &[[u32; NCORN]]) -> (Vec<u32>, Vec<(u32, u8)>) {
        let mut counts = vec![0u32; n_nodes + 1];
        for quad in elnd {
            for &n in quad {
                counts[n as usize + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut items = vec![(0u32, 0u8); *offsets.last().unwrap_or(&0) as usize];
        let mut cursor = offsets.clone();
        for (e, quad) in elnd.iter().enumerate() {
            for (c, &n) in quad.iter().enumerate() {
                let slot = cursor[n as usize] as usize;
                items[slot] = (e as u32, c as u8);
                cursor[n as usize] += 1;
            }
        }
        (offsets, items)
    }

    /// Derive `elel` (face adjacency) from `elnd` by matching node pairs.
    ///
    /// Face `f` of element `e` joins nodes `elnd[e][f]` and
    /// `elnd[e][(f+1)%4]`; two elements are neighbours across a face when
    /// they reference the same unordered node pair.
    pub(crate) fn build_elel(
        n_nodes: usize,
        elnd: &[[u32; NCORN]],
    ) -> Result<Vec<[Neighbor; NCORN]>> {
        use std::collections::HashMap;
        let mut face_map: HashMap<(u32, u32), (u32, u8)> = HashMap::with_capacity(elnd.len() * 2);
        let mut elel = vec![[Neighbor::Boundary; NCORN]; elnd.len()];
        for (e, quad) in elnd.iter().enumerate() {
            for f in 0..NCORN {
                let a = quad[f];
                let b = quad[(f + 1) % NCORN];
                if a as usize >= n_nodes || b as usize >= n_nodes {
                    return Err(BookLeafError::MeshTopology(format!(
                        "element {e} references node out of range"
                    )));
                }
                if a == b {
                    return Err(BookLeafError::MeshTopology(format!(
                        "element {e} has a degenerate face {f} (repeated node {a})"
                    )));
                }
                let key = (a.min(b), a.max(b));
                match face_map.remove(&key) {
                    None => {
                        face_map.insert(key, (e as u32, f as u8));
                    }
                    Some((e2, f2)) => {
                        elel[e][f] = Neighbor::Element(e2);
                        elel[e2 as usize][f2 as usize] = Neighbor::Element(e as u32);
                    }
                }
            }
        }
        Ok(elel)
    }

    /// Construct a mesh from raw node + element arrays, deriving face and
    /// node adjacency and validating all invariants.
    pub fn from_raw(
        nodes: Vec<Vec2>,
        elnd: Vec<[u32; NCORN]>,
        node_bc: Vec<NodeBc>,
        region: Vec<u32>,
    ) -> Result<Mesh> {
        if node_bc.len() != nodes.len() {
            return Err(BookLeafError::MeshTopology(format!(
                "node_bc length {} != node count {}",
                node_bc.len(),
                nodes.len()
            )));
        }
        if region.len() != elnd.len() {
            return Err(BookLeafError::MeshTopology(format!(
                "region length {} != element count {}",
                region.len(),
                elnd.len()
            )));
        }
        let elel = Mesh::build_elel(nodes.len(), &elnd)?;
        let (ndel_off, ndel) = Mesh::build_ndel(nodes.len(), &elnd);
        let mesh = Mesh {
            nodes,
            elnd,
            elel,
            ndel_off,
            ndel,
            node_bc,
            region,
            stencil: StencilCache::default(),
        };
        mesh.validate()?;
        Ok(mesh)
    }

    /// Check every connectivity invariant. Cheap enough to run in tests
    /// and after partitioning; not called per time step.
    pub fn validate(&self) -> Result<()> {
        // Element node references in range, faces non-degenerate.
        for (e, quad) in self.elnd.iter().enumerate() {
            for &n in quad {
                if n as usize >= self.nodes.len() {
                    return Err(BookLeafError::MeshTopology(format!(
                        "element {e} references node {n} >= {}",
                        self.nodes.len()
                    )));
                }
            }
        }
        // Face adjacency is symmetric and consistent.
        for (e, faces) in self.elel.iter().enumerate() {
            for (f, nb) in faces.iter().enumerate() {
                if let Neighbor::Element(e2) = *nb {
                    if e2 as usize >= self.n_elements() {
                        return Err(BookLeafError::MeshTopology(format!(
                            "element {e} face {f} references element {e2} out of range"
                        )));
                    }
                    let back = self.elel[e2 as usize].contains(&Neighbor::Element(e as u32));
                    if !back {
                        return Err(BookLeafError::MeshTopology(format!(
                            "face adjacency not symmetric between {e} and {e2}"
                        )));
                    }
                    // The two elements must share the face's node pair.
                    let a = self.elnd[e][f];
                    let b = self.elnd[e][(f + 1) % NCORN];
                    let shares = |n: u32| self.elnd[e2 as usize].contains(&n);
                    if !(shares(a) && shares(b)) {
                        return Err(BookLeafError::MeshTopology(format!(
                            "elements {e} and {e2} marked adjacent but do not share face nodes"
                        )));
                    }
                }
            }
        }
        // CSR consistency.
        if self.ndel_off.len() != self.n_nodes() + 1 {
            return Err(BookLeafError::MeshTopology(
                "ndel_off length mismatch".into(),
            ));
        }
        if *self.ndel_off.last().unwrap() as usize != self.ndel.len() {
            return Err(BookLeafError::MeshTopology("ndel CSR tail mismatch".into()));
        }
        for n in 0..self.n_nodes() {
            for &(e, c) in self.elements_of_node(n) {
                if self.elnd[e as usize][c as usize] != n as u32 {
                    return Err(BookLeafError::MeshTopology(format!(
                        "ndel entry ({e},{c}) does not point back to node {n}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total number of interior faces (each counted once).
    #[must_use]
    pub fn n_interior_faces(&self) -> usize {
        self.elel
            .iter()
            .flat_map(|faces| faces.iter())
            .filter(|nb| matches!(nb, Neighbor::Element(_)))
            .count()
            / 2
    }

    /// Total number of boundary faces.
    #[must_use]
    pub fn n_boundary_faces(&self) -> usize {
        self.elel
            .iter()
            .flat_map(|faces| faces.iter())
            .filter(|nb| matches!(nb, Neighbor::Boundary))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two unit quads side by side: nodes 0..5, elements 0 and 1.
    ///
    /// ```text
    /// 3---4---5
    /// | 0 | 1 |
    /// 0---1---2
    /// ```
    fn two_quads() -> Mesh {
        let nodes = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(2.0, 1.0),
        ];
        let elnd = vec![[0, 1, 4, 3], [1, 2, 5, 4]];
        let bc = vec![NodeBc::FREE; 6];
        Mesh::from_raw(nodes, elnd, bc, vec![0, 0]).unwrap()
    }

    #[test]
    fn adjacency_across_shared_face() {
        let m = two_quads();
        // Element 0's right face (corner 1 -> corner 2: nodes 1,4) borders element 1.
        assert_eq!(m.elel[0][1], Neighbor::Element(1));
        assert_eq!(m.elel[1][3], Neighbor::Element(0));
        assert_eq!(m.n_interior_faces(), 1);
        assert_eq!(m.n_boundary_faces(), 6);
    }

    #[test]
    fn node_element_csr() {
        let m = two_quads();
        // Node 1 belongs to both elements.
        let adj = m.elements_of_node(1);
        assert_eq!(adj.len(), 2);
        // Node 4 too, at corners 2 (el 0) and 3 (el 1).
        let adj4: Vec<_> = m.elements_of_node(4).to_vec();
        assert!(adj4.contains(&(0, 2)));
        assert!(adj4.contains(&(1, 3)));
        // Corner nodes belong to exactly one element.
        assert_eq!(m.elements_of_node(0).len(), 1);
        assert_eq!(m.elements_of_node(2).len(), 1);
    }

    #[test]
    fn validate_accepts_good_mesh() {
        assert!(two_quads().validate().is_ok());
    }

    #[test]
    fn face_stencil_packs_elel() {
        let m = two_quads();
        let st = m.face_stencil();
        assert_eq!(st.len(), m.n_elements());
        for e in 0..m.n_elements() {
            for f in 0..NCORN {
                match m.elel[e][f] {
                    Neighbor::Element(en) => assert_eq!(st[e][f], en),
                    Neighbor::Boundary => assert_eq!(st[e][f], STENCIL_BOUNDARY),
                }
            }
        }
        // Cache survives clone and equality ignores it.
        let fresh = two_quads();
        assert_eq!(m, fresh);
        assert_eq!(m.clone().face_stencil(), st);
    }

    #[test]
    fn degenerate_face_rejected() {
        let nodes = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
        ];
        let elnd = vec![[0, 0, 1, 2]];
        let err = Mesh::from_raw(nodes, elnd, vec![NodeBc::FREE; 3], vec![0]).unwrap_err();
        assert!(matches!(err, BookLeafError::MeshTopology(_)));
    }

    #[test]
    fn out_of_range_node_rejected() {
        let nodes = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
        ];
        let elnd = vec![[0, 1, 2, 9]];
        assert!(Mesh::from_raw(nodes, elnd, vec![NodeBc::FREE; 3], vec![0]).is_err());
    }

    #[test]
    fn bc_merge_and_apply() {
        let bc = NodeBc::WALL_X.merge(NodeBc::WALL_Y);
        assert_eq!(bc, NodeBc::CORNER);
        let v = bc.apply(Vec2::new(3.0, 4.0));
        assert_eq!(v, Vec2::ZERO);
        let v = NodeBc::WALL_Y.apply(Vec2::new(3.0, 4.0));
        assert_eq!(v, Vec2::new(3.0, 0.0));
    }

    #[test]
    fn corners_returns_ccw_positions() {
        let m = two_quads();
        let c = m.corners(1);
        assert_eq!(c[0], Vec2::new(1.0, 0.0));
        assert_eq!(c[2], Vec2::new(2.0, 1.0));
    }

    #[test]
    fn mismatched_bc_length_rejected() {
        let nodes = vec![Vec2::new(0.0, 0.0); 4];
        let err =
            Mesh::from_raw(nodes, vec![[0, 1, 2, 3]], vec![NodeBc::FREE; 2], vec![0]).unwrap_err();
        assert!(matches!(err, BookLeafError::MeshTopology(_)));
    }
}
