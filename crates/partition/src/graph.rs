//! Dual-graph partitioning — the METIS substitute.
//!
//! The paper offers "a hypergraph strategy via METIS" as the alternative
//! to RCB. METIS itself is a C library we cannot (and should not) link;
//! instead we implement the same *interface and quality goals* with a
//! two-phase algorithm on the element dual graph (vertices = elements,
//! edges = shared faces):
//!
//! 1. **Greedy graph growing** — grow each part by breadth-first search
//!    from the peripheral-most unassigned element until it reaches its
//!    proportional size budget (Karypis & Kumar's GGGP seed phase,
//!    simplified to a single level).
//! 2. **Boundary Kernighan–Lin / Fiduccia–Mattheyses refinement** —
//!    repeatedly move boundary elements to the neighbouring part with the
//!    largest edge-cut gain, subject to a balance constraint, until no
//!    positive-gain move remains (bounded passes).
//!
//! The result is deterministic and, on the standard decks, produces edge
//! cuts within a small factor of RCB while handling irregular region
//! shapes better.

use bookleaf_mesh::{Mesh, Neighbor};
use bookleaf_util::{BookLeafError, Result};

/// Partition `mesh`'s dual graph into `n_parts`. Returns element → part.
pub fn partition_graph(mesh: &Mesh, n_parts: usize) -> Result<Vec<usize>> {
    if n_parts == 0 {
        return Err(BookLeafError::Partition(
            "cannot partition into 0 parts".into(),
        ));
    }
    let n = mesh.n_elements();
    if n_parts > n {
        return Err(BookLeafError::Partition(format!(
            "more parts ({n_parts}) than elements ({n})"
        )));
    }

    let mut owner = vec![usize::MAX; n];
    let budget = part_budgets(n, n_parts);

    // Phase 1: greedy growing. Seed each part at the unassigned element
    // with the fewest unassigned neighbours (periphery first), then BFS.
    let mut assigned = 0usize;
    for (p, &b) in budget.iter().enumerate() {
        let seed = pick_seed(mesh, &owner);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(seed);
        let mut grown = 0usize;
        while grown < b {
            let e = match queue.pop_front() {
                Some(e) => e,
                None => {
                    // Disconnected remainder: jump to any unassigned element.
                    match owner.iter().position(|&o| o == usize::MAX) {
                        Some(e) => e,
                        None => break,
                    }
                }
            };
            if owner[e] != usize::MAX {
                continue;
            }
            owner[e] = p;
            grown += 1;
            assigned += 1;
            for nb in mesh.elel[e] {
                if let Neighbor::Element(e2) = nb {
                    if owner[e2 as usize] == usize::MAX {
                        queue.push_back(e2 as usize);
                    }
                }
            }
        }
    }
    // Any stragglers (possible when budgets round): give to the adjacent
    // part with most contact, else the smallest part.
    let mut sizes = vec![0usize; n_parts];
    for &o in owner.iter().filter(|&&o| o != usize::MAX) {
        sizes[o] += 1;
    }
    if assigned < n {
        for e in 0..n {
            if owner[e] != usize::MAX {
                continue;
            }
            let mut best = None;
            for nb in mesh.elel[e] {
                if let Neighbor::Element(e2) = nb {
                    let o2 = owner[e2 as usize];
                    if o2 != usize::MAX {
                        best = Some(best.map_or(o2, |b: usize| b.min(o2)));
                    }
                }
            }
            let p = best.unwrap_or_else(|| {
                sizes
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &s)| s)
                    .map(|(i, _)| i)
                    .expect("n_parts > 0")
            });
            owner[e] = p;
            sizes[p] += 1;
        }
    }

    // Phase 2: KL/FM boundary refinement.
    refine(mesh, &mut owner, &mut sizes, &budget);

    // Ensure no part emptied (refinement respects a floor, but be safe).
    if let Some(p) = sizes.iter().position(|&s| s == 0) {
        return Err(BookLeafError::Partition(format!(
            "graph partition left part {p} empty"
        )));
    }
    Ok(owner)
}

/// Proportional size budgets summing to `n`.
fn part_budgets(n: usize, n_parts: usize) -> Vec<usize> {
    let mut budget = vec![n / n_parts; n_parts];
    for b in budget.iter_mut().take(n % n_parts) {
        *b += 1;
    }
    budget
}

/// The unassigned element with the fewest unassigned face neighbours,
/// lowest id as tie break (a cheap periphery heuristic).
fn pick_seed(mesh: &Mesh, owner: &[usize]) -> usize {
    let mut best = (usize::MAX, usize::MAX); // (score, element)
    for e in 0..mesh.n_elements() {
        if owner[e] != usize::MAX {
            continue;
        }
        let free_nbrs = mesh.elel[e]
            .iter()
            .filter(|nb| match nb {
                Neighbor::Element(e2) => owner[*e2 as usize] == usize::MAX,
                Neighbor::Boundary => false,
            })
            .count();
        if (free_nbrs, e) < best {
            best = (free_nbrs, e);
        }
    }
    best.1
}

/// Bounded KL/FM passes: move boundary elements to the best-gain adjacent
/// part while no part shrinks below 80% of its budget or grows beyond
/// 120%.
fn refine(mesh: &Mesh, owner: &mut [usize], sizes: &mut [usize], budget: &[usize]) {
    const MAX_PASSES: usize = 8;
    let lo: Vec<usize> = budget.iter().map(|&b| (b * 4) / 5).collect();
    let hi: Vec<usize> = budget.iter().map(|&b| b + b.div_ceil(5)).collect();

    for _ in 0..MAX_PASSES {
        let mut moved = 0usize;
        for e in 0..mesh.n_elements() {
            let from = owner[e];
            if sizes[from] <= lo[from].max(1) {
                continue;
            }
            // Count contacts per adjacent part.
            let mut contact: Vec<(usize, usize)> = Vec::with_capacity(4); // (part, count)
            let mut same = 0usize;
            for nb in mesh.elel[e] {
                if let Neighbor::Element(e2) = nb {
                    let o2 = owner[e2 as usize];
                    if o2 == from {
                        same += 1;
                    } else if let Some(c) = contact.iter_mut().find(|(p, _)| *p == o2) {
                        c.1 += 1;
                    } else {
                        contact.push((o2, 1));
                    }
                }
            }
            // Best strictly-positive-gain move (gain = contacts gained -
            // contacts lost); deterministic tie break on part id.
            contact.sort_unstable();
            if let Some(&(to, cnt)) = contact
                .iter()
                .filter(|&&(to, cnt)| cnt > same && sizes[to] < hi[to])
                .max_by_key(|&&(to, cnt)| (cnt, std::cmp::Reverse(to)))
            {
                debug_assert!(cnt > same);
                owner[e] = to;
                sizes[from] -= 1;
                sizes[to] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assess_partition;
    use bookleaf_mesh::{generate_rect, RectSpec};

    fn grid(n: usize) -> Mesh {
        generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap()
    }

    #[test]
    fn covers_all_parts_with_balance() {
        let m = grid(10);
        for n_parts in [2, 3, 4, 7] {
            let owner = partition_graph(&m, n_parts).unwrap();
            let rep = assess_partition(&m, &owner, n_parts).unwrap();
            assert!(
                rep.imbalance <= 1.25,
                "{n_parts} parts: imbalance {}",
                rep.imbalance
            );
            assert!(rep.sizes.iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn edge_cut_reasonable_vs_rcb() {
        // On a 12x12 grid in 4 parts, ideal cut is ~24 (two straight
        // seams). Accept within 3x of RCB.
        let m = grid(12);
        let g = partition_graph(&m, 4).unwrap();
        let r = crate::rcb::partition_rcb(&m, 4).unwrap();
        let gc = assess_partition(&m, &g, 4).unwrap().edge_cut;
        let rc = assess_partition(&m, &r, 4).unwrap().edge_cut;
        assert!(gc <= rc * 3, "graph cut {gc} vs rcb cut {rc}");
    }

    #[test]
    fn deterministic() {
        let m = grid(9);
        assert_eq!(
            partition_graph(&m, 5).unwrap(),
            partition_graph(&m, 5).unwrap()
        );
    }

    #[test]
    fn parts_are_mostly_connected() {
        // Greedy growing should give each part a dominant connected
        // component (>= 70% of its elements).
        let m = grid(8);
        let owner = partition_graph(&m, 4).unwrap();
        for p in 0..4 {
            let members: Vec<usize> = (0..m.n_elements()).filter(|&e| owner[e] == p).collect();
            // BFS within the part from its first member.
            let mut seen = std::collections::HashSet::new();
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(members[0]);
            seen.insert(members[0]);
            while let Some(e) = queue.pop_front() {
                for nb in m.elel[e] {
                    if let Neighbor::Element(e2) = nb {
                        let e2 = e2 as usize;
                        if owner[e2] == p && seen.insert(e2) {
                            queue.push_back(e2);
                        }
                    }
                }
            }
            assert!(
                seen.len() * 10 >= members.len() * 7,
                "part {p}: {} of {} connected",
                seen.len(),
                members.len()
            );
        }
    }

    #[test]
    fn degenerate_cases() {
        let m = grid(3);
        let owner = partition_graph(&m, 1).unwrap();
        assert!(owner.iter().all(|&o| o == 0));
        assert!(partition_graph(&m, 0).is_err());
        assert!(partition_graph(&m, 10).is_err());
    }

    #[test]
    fn one_part_per_element() {
        let m = grid(2);
        let owner = partition_graph(&m, 4).unwrap();
        let mut sorted = owner.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
