//! # bookleaf-partition
//!
//! Mesh decomposition for BookLeaf-rs.
//!
//! The paper: *"The mesh can be spatially decomposed and distributed
//! across processes within BookLeaf using a simple RCB strategy or a
//! hypergraph strategy via METIS."* We implement both strategies from
//! scratch:
//!
//! * [`rcb`] — Recursive Coordinate Bisection on element centroids, the
//!   reference default;
//! * [`graph`] — a METIS-style dual-graph partitioner (greedy graph
//!   growing seeded by BFS, followed by Kernighan–Lin/FM boundary
//!   refinement) standing in for the METIS dependency;
//! * [`metrics`] — partition quality measures (imbalance, edge cut,
//!   boundary elements) used by tests and the bench harness.
//!
//! Like the reference implementation, partitioning is **serial**: the
//! paper's scaling study §V-C calls out that the serial partitioner
//! starts to dominate at high process counts, and our scaling model
//! reproduces that term.

pub mod graph;
pub mod metrics;
pub mod rcb;

use bookleaf_mesh::Mesh;
use bookleaf_util::Result;

/// Which decomposition strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Recursive Coordinate Bisection (the BookLeaf default).
    #[default]
    Rcb,
    /// Dual-graph partitioning (METIS substitute).
    Graph,
}

/// Decompose `mesh` into `n_parts` parts, returning element → part.
///
/// Both strategies guarantee every part is non-empty for
/// `n_parts <= n_elements` and are deterministic for a given input.
pub fn partition(mesh: &Mesh, n_parts: usize, strategy: Strategy) -> Result<Vec<usize>> {
    match strategy {
        Strategy::Rcb => rcb::partition_rcb(mesh, n_parts),
        Strategy::Graph => graph::partition_graph(mesh, n_parts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_mesh::{generate_rect, RectSpec};

    #[test]
    fn both_strategies_cover_all_elements() {
        let m = generate_rect(&RectSpec::unit_square(8), |_| 0).unwrap();
        for s in [Strategy::Rcb, Strategy::Graph] {
            let parts = partition(&m, 4, s).unwrap();
            assert_eq!(parts.len(), m.n_elements());
            for p in 0..4 {
                assert!(parts.contains(&p), "{s:?}: part {p} empty");
            }
        }
    }
}
