//! Partition quality metrics.
//!
//! Used by tests (to bound imbalance and edge cut of both strategies) and
//! by the bench harness (halo size feeds the communication cost model of
//! the strong-scaling figures).

use bookleaf_mesh::{Mesh, Neighbor};
use bookleaf_util::{BookLeafError, Result};

/// Quality summary of an element → part assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Elements per part.
    pub sizes: Vec<usize>,
    /// max(size) / ideal(size); 1.0 is perfect balance.
    pub imbalance: f64,
    /// Number of interior faces whose two elements live in different parts.
    pub edge_cut: usize,
    /// Per part: number of owned elements with at least one face neighbour
    /// in another part (the halo surface).
    pub boundary_elements: Vec<usize>,
}

/// Assess `owner` (element → part) against `mesh`.
pub fn assess_partition(mesh: &Mesh, owner: &[usize], n_parts: usize) -> Result<PartitionReport> {
    if owner.len() != mesh.n_elements() {
        return Err(BookLeafError::Partition(format!(
            "owner length {} != element count {}",
            owner.len(),
            mesh.n_elements()
        )));
    }
    let mut sizes = vec![0usize; n_parts];
    for &o in owner {
        if o >= n_parts {
            return Err(BookLeafError::Partition(format!(
                "part id {o} out of range"
            )));
        }
        sizes[o] += 1;
    }
    let ideal = mesh.n_elements() as f64 / n_parts as f64;
    let imbalance = sizes.iter().copied().max().unwrap_or(0) as f64 / ideal;

    let mut edge_cut = 0usize;
    let mut boundary_elements = vec![0usize; n_parts];
    for e in 0..mesh.n_elements() {
        let mut on_boundary = false;
        for nb in mesh.elel[e] {
            if let Neighbor::Element(e2) = nb {
                if owner[e2 as usize] != owner[e] {
                    edge_cut += 1;
                    on_boundary = true;
                }
            }
        }
        if on_boundary {
            boundary_elements[owner[e]] += 1;
        }
    }
    edge_cut /= 2; // each cut face counted from both sides

    Ok(PartitionReport {
        sizes,
        imbalance,
        edge_cut,
        boundary_elements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_mesh::{generate_rect, RectSpec};

    #[test]
    fn stripe_partition_metrics() {
        // 4x4 grid, left/right halves: cut = 4 faces.
        let m = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
        let owner: Vec<usize> = (0..16).map(|e| usize::from(e % 4 >= 2)).collect();
        let rep = assess_partition(&m, &owner, 2).unwrap();
        assert_eq!(rep.sizes, vec![8, 8]);
        assert_eq!(rep.imbalance, 1.0);
        assert_eq!(rep.edge_cut, 4);
        assert_eq!(rep.boundary_elements, vec![4, 4]);
    }

    #[test]
    fn imbalance_detected() {
        let m = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        let owner = vec![0, 0, 0, 1];
        let rep = assess_partition(&m, &owner, 2).unwrap();
        assert_eq!(rep.imbalance, 1.5);
    }

    #[test]
    fn bad_inputs_rejected() {
        let m = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
        assert!(assess_partition(&m, &[0, 1], 2).is_err());
        assert!(assess_partition(&m, &[0, 0, 0, 9], 2).is_err());
    }

    #[test]
    fn single_part_has_zero_cut() {
        let m = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        let owner = vec![0; 9];
        let rep = assess_partition(&m, &owner, 1).unwrap();
        assert_eq!(rep.edge_cut, 0);
        assert_eq!(rep.boundary_elements, vec![0]);
    }
}
