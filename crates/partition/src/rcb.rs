//! Recursive Coordinate Bisection.
//!
//! Classic geometric decomposition: recursively split the element set at
//! the weighted median of the longer axis of its bounding box, dividing
//! the target part count proportionally. Deterministic, O(n log² n), and
//! produces compact, convex-ish parts on the rectangular meshes of the
//! standard decks.

use bookleaf_mesh::geometry::quad_centroid;
use bookleaf_mesh::Mesh;
use bookleaf_util::{BookLeafError, Result, Vec2};

/// Partition by RCB into `n_parts`. Returns element → part id.
pub fn partition_rcb(mesh: &Mesh, n_parts: usize) -> Result<Vec<usize>> {
    if n_parts == 0 {
        return Err(BookLeafError::Partition(
            "cannot partition into 0 parts".into(),
        ));
    }
    if n_parts > mesh.n_elements() {
        return Err(BookLeafError::Partition(format!(
            "more parts ({n_parts}) than elements ({})",
            mesh.n_elements()
        )));
    }
    let centroids: Vec<Vec2> = (0..mesh.n_elements())
        .map(|e| quad_centroid(&mesh.corners(e)))
        .collect();
    let mut owner = vec![0usize; mesh.n_elements()];
    let mut ids: Vec<u32> = (0..mesh.n_elements() as u32).collect();
    bisect(&centroids, &mut ids, 0, n_parts, &mut owner);
    Ok(owner)
}

/// Recursively assign `ids` to parts `[first_part, first_part + n_parts)`.
fn bisect(
    centroids: &[Vec2],
    ids: &mut [u32],
    first_part: usize,
    n_parts: usize,
    owner: &mut [usize],
) {
    if n_parts == 1 {
        for &e in ids.iter() {
            owner[e as usize] = first_part;
        }
        return;
    }
    // Proportional split of the part budget.
    let left_parts = n_parts / 2;
    let right_parts = n_parts - left_parts;
    let cut = ids.len() * left_parts / n_parts;

    // Choose the axis with the larger centroid spread.
    let (mut lo, mut hi) = (
        Vec2::new(f64::INFINITY, f64::INFINITY),
        Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    );
    for &e in ids.iter() {
        let c = centroids[e as usize];
        lo = Vec2::new(lo.x.min(c.x), lo.y.min(c.y));
        hi = Vec2::new(hi.x.max(c.x), hi.y.max(c.y));
    }
    let x_axis = (hi.x - lo.x) >= (hi.y - lo.y);

    // Partial sort: place the `cut` smallest (by axis coordinate, with
    // element id as deterministic tie break) on the left.
    let key = |e: u32| {
        let c = centroids[e as usize];
        if x_axis {
            (c.x, e)
        } else {
            (c.y, e)
        }
    };
    // Invariant: len >= n_parts implies cut >= left_parts >= 1 and
    // len - cut >= right_parts >= 1, so both halves stay feasible.
    ids.select_nth_unstable_by(cut - 1, |&a, &b| {
        key(a)
            .partial_cmp(&key(b))
            .expect("finite centroid coordinates")
    });

    let (left, right) = ids.split_at_mut(cut);
    bisect(centroids, left, first_part, left_parts, owner);
    bisect(
        centroids,
        right,
        first_part + left_parts,
        right_parts,
        owner,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assess_partition;
    use bookleaf_mesh::{generate_rect, RectSpec};

    fn grid(n: usize) -> Mesh {
        generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap()
    }

    #[test]
    fn two_way_split_is_balanced_halves() {
        let m = grid(8);
        let owner = partition_rcb(&m, 2).unwrap();
        let n0 = owner.iter().filter(|&&o| o == 0).count();
        assert_eq!(n0, 32);
        // RCB on a square splits along one axis: parts are contiguous
        // stripes. Check spatial coherence: all of part 0 lies on one side.
        let c0: Vec<f64> = (0..m.n_elements())
            .filter(|&e| owner[e] == 0)
            .map(|e| quad_centroid(&m.corners(e)).x)
            .collect();
        let c1: Vec<f64> = (0..m.n_elements())
            .filter(|&e| owner[e] == 1)
            .map(|e| quad_centroid(&m.corners(e)).x)
            .collect();
        let max0 = c0.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min1 = c1.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max0 <= min1 + 1e-12);
    }

    #[test]
    fn four_way_split_balance() {
        let m = grid(10);
        let owner = partition_rcb(&m, 4).unwrap();
        let rep = assess_partition(&m, &owner, 4).unwrap();
        assert!(rep.imbalance < 1.05, "imbalance {}", rep.imbalance);
    }

    #[test]
    fn non_power_of_two_parts() {
        let m = grid(9);
        for n in [3, 5, 6, 7] {
            let owner = partition_rcb(&m, n).unwrap();
            for p in 0..n {
                assert!(owner.contains(&p), "{n} parts: part {p} empty");
            }
            let rep = assess_partition(&m, &owner, n).unwrap();
            assert!(
                rep.imbalance < 1.30,
                "{n} parts imbalance {}",
                rep.imbalance
            );
        }
    }

    #[test]
    fn deterministic() {
        let m = grid(7);
        let a = partition_rcb(&m, 5).unwrap();
        let b = partition_rcb(&m, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_part_trivial() {
        let m = grid(3);
        let owner = partition_rcb(&m, 1).unwrap();
        assert!(owner.iter().all(|&o| o == 0));
    }

    #[test]
    fn too_many_parts_rejected() {
        let m = grid(2);
        assert!(partition_rcb(&m, 5).is_err());
        assert!(partition_rcb(&m, 0).is_err());
    }

    #[test]
    fn anisotropic_mesh_splits_long_axis() {
        // A 16x2 tube should be cut in x first.
        let m = generate_rect(
            &RectSpec {
                nx: 16,
                ny: 2,
                origin: Vec2::ZERO,
                extent: Vec2::new(8.0, 1.0),
            },
            |_| 0,
        )
        .unwrap();
        let owner = partition_rcb(&m, 2).unwrap();
        // Elements 0..16 are the bottom row; left half should be one part.
        assert_eq!(owner[0], owner[16]); // (0,0) and (0,1) same x-side
        assert_ne!(owner[0], owner[15]); // far ends differ
    }
}
