//! Deck-hash-keyed caching of parsed/built decks.
//!
//! Building a [`Deck`] means generating a mesh and evaluating initial
//! state — far more work than parsing the text that describes it. Two
//! requests that mean the same problem should share that work, so the
//! cache key is the FNV-1a 64 hash of the **canonical** deck text (the
//! exact-round-trip [`InputDeck`] `Display` form): whitespace, comments
//! and key order wash out, while any semantic difference — a different
//! `n`, a toggled `[ale]` — lands on a different key. The proptest
//! suite pins both directions.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

use bookleaf_core::{Deck, InputDeck};
use bookleaf_util::DeckError;

/// FNV-1a 64 over `bytes` — tiny, dependency-free, stable.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key of a parsed deck: FNV-1a 64 of its canonical text.
#[must_use]
pub fn deck_cache_key(input: &InputDeck) -> u64 {
    fnv1a64(input.to_string().as_bytes())
}

/// A bounded build-once deck cache with FIFO eviction.
///
/// Values are built [`Deck`]s (mesh + initial state); lookups clone the
/// cached deck out so concurrent requests never share mutable state.
#[derive(Debug)]
pub struct DeckCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Deck>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl DeckCache {
    /// A cache holding at most `capacity` built decks (clamped ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DeckCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The deck for `input`, built on first sight, cloned from cache
    /// after. The flag is `true` on a cache hit.
    ///
    /// # Errors
    ///
    /// [`DeckError`] when the input fails validation at build time.
    pub fn get_or_build(&self, input: &InputDeck) -> Result<(Deck, bool), DeckError> {
        let key = deck_cache_key(input);
        {
            let mut inner = self.inner.lock().expect("deck cache poisoned");
            if let Some(deck) = inner.map.get(&key) {
                let deck = deck.clone();
                inner.hits += 1;
                return Ok((deck, true));
            }
            inner.misses += 1;
        }
        // Build outside the lock: mesh generation is the expensive part
        // and must not serialize unrelated tenants.
        let deck = input.build_deck()?;
        let mut inner = self.inner.lock().expect("deck cache poisoned");
        if !inner.map.contains_key(&key) {
            while inner.order.len() >= self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
            inner.order.push_back(key);
            inner.map.insert(key, deck.clone());
        }
        Ok((deck, false))
    }

    /// `(hits, misses)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("deck cache poisoned");
        (inner.hits, inner.misses)
    }

    /// Number of decks currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deck cache poisoned").map.len()
    }

    /// Is the cache empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmetic_differences_share_a_key() {
        let a: InputDeck = "problem = noh\nn = 8\n".parse().unwrap();
        let b: InputDeck = "# comment\n  problem = noh\n\nn = 8   # same\n"
            .parse()
            .unwrap();
        assert_eq!(deck_cache_key(&a), deck_cache_key(&b));
    }

    #[test]
    fn semantic_differences_split_keys() {
        let a: InputDeck = "problem = noh\nn = 8\n".parse().unwrap();
        let b: InputDeck = "problem = noh\nn = 9\n".parse().unwrap();
        let c: InputDeck = "problem = sedov\nn = 8\n".parse().unwrap();
        assert_ne!(deck_cache_key(&a), deck_cache_key(&b));
        assert_ne!(deck_cache_key(&a), deck_cache_key(&c));
    }

    #[test]
    fn cache_hits_after_first_build_and_evicts_fifo() {
        let cache = DeckCache::new(2);
        let noh: InputDeck = "problem = noh\nn = 4\n".parse().unwrap();
        let sedov: InputDeck = "problem = sedov\nn = 4\n".parse().unwrap();
        let sod: InputDeck = "problem = sod\nnx = 4\nny = 2\n".parse().unwrap();

        assert!(!cache.get_or_build(&noh).unwrap().1);
        assert!(cache.get_or_build(&noh).unwrap().1, "second sight must hit");
        assert!(!cache.get_or_build(&sedov).unwrap().1);
        // Capacity 2: inserting a third evicts the oldest (noh).
        assert!(!cache.get_or_build(&sod).unwrap().1);
        assert_eq!(cache.len(), 2);
        assert!(!cache.get_or_build(&noh).unwrap().1, "noh was evicted");
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 4));
    }
}
