//! A minimal blocking client for the serve protocol.
//!
//! Std-TCP only, like the server. This is the client the chaos suite,
//! the load bench and the quickstart example all drive the server
//! through, so its decoding (fixed `Content-Length` and chunked
//! transfer) is exercised against the real wire format on every CI run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::ProtocolError;

/// A decoded response: status code, headers (names lowercased), body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body (chunked transfer already decoded).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first header named `name` (case-insensitive), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, ProtocolError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| crate::protocol::io_error(&e))?;
    if n == 0 {
        return Err(ProtocolError::ConnectionClosed);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Send one request and decode the response. `timeout` bounds both the
/// connect and every read, so a wedged server surfaces as
/// [`ProtocolError::Timeout`], never a hang.
///
/// # Errors
///
/// [`ProtocolError`] for connect/read failures and malformed responses.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<HttpResponse, ProtocolError> {
    let stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| crate::protocol::io_error(&e))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| crate::protocol::io_error(&e))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| crate::protocol::io_error(&e))?;
    let mut w = &stream;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: bookleaf\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    // Write errors are tolerated: a shedding/draining server responds
    // and closes without reading the request, so the interesting bytes
    // are the early response, not our half-sent body.
    let _ = w
        .write_all(head.as_bytes())
        .and_then(|()| w.write_all(body))
        .and_then(|()| w.flush());

    let mut reader = BufReader::new(&stream);
    let status_line = read_line(&mut reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let (Some(_version), Some(code), _) = (parts.next(), parts.next(), parts.next()) else {
        return Err(ProtocolError::MalformedRequestLine);
    };
    let status: u16 = code
        .parse()
        .map_err(|_| ProtocolError::MalformedRequestLine)?;

    let mut headers_out = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ProtocolError::MalformedHeader);
        };
        headers_out.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let chunked = headers_out
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body_out = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| ProtocolError::MalformedHeader)?;
            if size == 0 {
                // Trailing CRLF after the last-chunk marker (if the
                // peer closed already, the body is complete anyway).
                let _ = read_line(&mut reader);
                break;
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| crate::protocol::io_error(&e))?;
            body_out.extend_from_slice(&chunk);
            // CRLF chunk terminator.
            let _ = read_line(&mut reader)?;
        }
    } else {
        let length: usize = headers_out
            .iter()
            .find(|(n, _)| n == "content-length")
            .ok_or(ProtocolError::MissingContentLength)?
            .1
            .parse()
            .map_err(|_| ProtocolError::BadContentLength("unparsable".into()))?;
        body_out.resize(length, 0);
        reader
            .read_exact(&mut body_out)
            .map_err(|e| crate::protocol::io_error(&e))?;
    }
    Ok(HttpResponse {
        status,
        headers: headers_out,
        body: body_out,
    })
}

/// POST a deck to `/run` with extra headers (tenant, supervision, …).
///
/// # Errors
///
/// [`ProtocolError`] for transport failures; server-side rejections
/// come back as the response's status/body, not as `Err`.
pub fn post_run(
    addr: SocketAddr,
    deck: &str,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> Result<HttpResponse, ProtocolError> {
    request(addr, "POST", "/run", headers, deck.as_bytes(), timeout)
}

/// GET `/health`.
///
/// # Errors
///
/// [`ProtocolError`] for transport failures.
pub fn get_health(addr: SocketAddr, timeout: Duration) -> Result<HttpResponse, ProtocolError> {
    request(addr, "GET", "/health", &[], &[], timeout)
}
