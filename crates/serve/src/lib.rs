//! `bookleaf serve` — a hardened multi-tenant simulation service.
//!
//! A long-lived server (std TCP only, no external dependencies) that
//! accepts BookLeaf text decks over a minimal line-framed HTTP/1.1
//! protocol, runs them concurrently on one shared work-stealing pool,
//! and returns typed results. Every layer is designed so that a
//! misbehaving tenant — oversized decks, poisoned physics, injected
//! comm faults, blown deadlines — degrades into a *typed error
//! response*, never a hang, a panic escape, or interference with the
//! bitwise-reproducible results of healthy tenants.
//!
//! # Wire protocol
//!
//! Line-framed HTTP/1.1, the subset the grammar below describes.
//! Anything outside it is a typed [`protocol::ProtocolError`] and a
//! `4xx` answer — the parser never panics and never reads unbounded
//! input (header block and body are byte-budgeted).
//!
//! ```text
//! request      = request-line *( header CRLF ) CRLF [ body ]
//! request-line = method SP path SP "HTTP/1.1" CRLF
//! method       = "GET" | "POST"
//! header       = name ":" value          ; name is ASCII, case-folded
//! body         = *OCTET                  ; exactly Content-Length bytes
//! ```
//!
//! Routes:
//!
//! | Route          | Meaning                                          |
//! |----------------|--------------------------------------------------|
//! | `GET /health`  | liveness + drain state                           |
//! | `POST /run`    | run the deck in the body, reply when it finishes |
//!
//! `POST /run` request headers (all optional):
//!
//! | Header              | Meaning                                         |
//! |---------------------|-------------------------------------------------|
//! | `X-Tenant`          | tenant identity for quotas/quarantine (`anon`)  |
//! | `X-Deadline-Ms`     | wall-clock budget; can only shorten the default |
//! | `X-Comm-Timeout-Ms` | comm wait bound; can only shorten the default   |
//! | `X-Fault-Inject`    | `<kind>:<step>:<rank>` chaos fault (if allowed) |
//! | `X-Stream`          | `1`: stream one line per step (serial decks)    |
//! | `X-Resume`          | resume a drain checkpoint handle, empty body    |
//!
//! Responses are JSON: `{"status":"ok",...}` with the run report
//! digest (steps, bit-exact `time_bits`/`energy_end_bits`, a
//! `state_crc` over the full solution state), `202
//! {"status":"checkpointed","handle":...}` when the server drained the
//! run out, or `{"status":"error","kind":...,"error":...}` with a
//! matching HTTP status:
//!
//! | Status | `kind`                       | Class                        |
//! |--------|------------------------------|------------------------------|
//! | 400    | `protocol`, `deck`           | request/deck mistakes        |
//! | 403    | `fault_injection_disabled`   | chaos headers not allowed    |
//! | 404    | (protocol) / `checkpoint`    | unknown path / handle        |
//! | 408/413/431 | `protocol`              | timeout / body / header size |
//! | 422    | `unhealthy`                  | sentinel-diagnosed physics   |
//! | 429    | `quarantined`, `too_many_in_flight` | tenant throttling     |
//! | 500    | `comm_fault`, `rank_panic`   | contained infrastructure     |
//! | 503    | `overloaded`, `draining`     | load shedding / drain        |
//! | 504    | `deadline`                   | wall-clock budget exceeded   |
//!
//! # Admission control
//!
//! [`limits::ResourceLimits`] caps mesh cells, step budget, deck bytes
//! and per-tenant in-flight requests. Limit violations are rejected at
//! *validate* time with line-anchored errors pointing at the offending
//! assignment in the submitted text ([`limits::admit_deck`]). The
//! connection queue is bounded: when it is full the accept loop
//! answers `503 overloaded` immediately instead of buffering.
//!
//! # Supervision and quarantine
//!
//! Each admitted run gets a wall-clock deadline (enforced
//! symmetrically inside the step loop — every rank agrees on the
//! abort), the per-step health sentinel, bounded comm timeouts, and a
//! panic boundary. Failures are classified: deck typos are harmless,
//! but *health* failures (sentinel aborts, comm faults, panics, blown
//! deadlines) count against the tenant, and
//! [`quarantine::QuarantinePolicy::threshold`] consecutive ones
//! quarantine the tenant for an exponentially growing window
//! ([`quarantine::TenantLedger`]). One healthy completion heals the
//! streak and the backoff level.
//!
//! # Graceful drain
//!
//! [`server::Server::drain`] stops admissions (`503 draining`) and
//! flips a flag every in-flight run observes at its next segment
//! boundary (at most `drain_check_steps` steps away): the run
//! checkpoints through a byte-budgeted
//! [`bookleaf_core::CheckpointStore`] and its tenant receives `202`
//! with a resumable handle. Submitting the handle back via `X-Resume`
//! — to this or any other server sharing the drain directory —
//! continues the run bitwise-identically to one that was never
//! interrupted (segmenting stops only at step boundaries).
//!
//! # Caching
//!
//! Built decks (mesh + initial state) are cached keyed by the hash of
//! the *canonical* deck text, so formatting differences share work
//! while any semantic change misses ([`cache::DeckCache`]). Cached
//! decks are cloned out per request; results are bitwise independent
//! of cache hits.

pub mod cache;
pub mod client;
pub mod limits;
pub mod protocol;
pub mod quarantine;
pub mod server;

pub use cache::{deck_cache_key, DeckCache};
pub use client::{get_health, post_run, request, HttpResponse};
pub use limits::{admit_deck, ResourceLimits};
pub use protocol::ProtocolError;
pub use quarantine::{AdmitError, QuarantinePolicy, RunOutcome, TenantLedger};
pub use server::{state_crc, ServeConfig, Server};
