//! Admission control: typed resource limits enforced at deck-validate
//! time, with line-anchored rejections.
//!
//! A deck is admitted only if it parses, validates, *and* fits the
//! server's [`ResourceLimits`]. Limit violations point at the offending
//! line of the submitted text — the same [`DeckError::Text`] shape the
//! parser itself uses — so a tenant's tooling can jump straight to the
//! `nx = 4096` that was over budget.

use bookleaf_core::{InputDeck, ProblemSpec};
use bookleaf_util::DeckError;

/// Per-request resource ceilings the server enforces at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Largest mesh, in elements, a deck may request.
    pub max_mesh_cells: usize,
    /// Largest step budget a deck may request.
    pub max_steps: usize,
    /// Largest deck text, in bytes, accepted on the wire.
    pub max_deck_bytes: usize,
    /// Most simultaneously running requests per tenant.
    pub max_inflight_per_tenant: usize,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            max_mesh_cells: 262_144,
            max_steps: 100_000,
            max_deck_bytes: 65_536,
            max_inflight_per_tenant: 4,
        }
    }
}

/// The 1-based line where `key` is assigned in `text`, if any — the
/// anchor for limit rejections.
fn anchor_line(text: &str, key: &str) -> Option<usize> {
    text.lines()
        .position(|line| {
            let line = line.trim_start();
            line.strip_prefix(key)
                .is_some_and(|rest| rest.trim_start().starts_with('='))
        })
        .map(|i| i + 1)
}

/// Parse and validate deck `text` against `limits`.
///
/// # Errors
///
/// * [`DeckError::Config`] when the raw text itself exceeds
///   `max_deck_bytes` (there is no line to anchor to);
/// * the parser's own line-anchored [`DeckError::Text`] for syntax and
///   semantic deck errors;
/// * [`DeckError::Text`] anchored at the offending assignment when the
///   mesh or step budget exceeds the limits.
pub fn admit_deck(text: &str, limits: &ResourceLimits) -> Result<InputDeck, DeckError> {
    if text.len() > limits.max_deck_bytes {
        return Err(DeckError::Config {
            message: format!(
                "deck text of {} bytes exceeds the {}-byte admission limit",
                text.len(),
                limits.max_deck_bytes
            ),
        });
    }
    let input: InputDeck = text.parse()?;
    let cells = input.problem.cells();
    if cells > limits.max_mesh_cells {
        // Generic decks size the mesh with [mesh] nx/ny; anchor_line
        // finds the first `nx = ...` assignment either way.
        let key = match input.problem {
            ProblemSpec::Noh { .. }
            | ProblemSpec::Sedov { .. }
            | ProblemSpec::Underwater { .. } => "n",
            _ => "nx",
        };
        return Err(DeckError::Text {
            line: anchor_line(text, key).unwrap_or(1),
            message: format!(
                "mesh of {cells} elements exceeds the {}-element admission limit",
                limits.max_mesh_cells
            ),
        });
    }
    if input.max_steps > limits.max_steps {
        return Err(DeckError::Text {
            line: anchor_line(text, "max_steps").unwrap_or(1),
            message: format!(
                "max_steps = {} exceeds the {}-step admission limit",
                input.max_steps, limits.max_steps
            ),
        });
    }
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_standard_decks_are_admitted() {
        let input = admit_deck("problem = noh\nn = 8\n", &ResourceLimits::default()).unwrap();
        assert_eq!(input.problem, ProblemSpec::Noh { n: 8 });
    }

    #[test]
    fn oversized_mesh_is_rejected_at_its_line() {
        let limits = ResourceLimits {
            max_mesh_cells: 100,
            ..ResourceLimits::default()
        };
        let err = admit_deck("problem = noh\n# padding\nn = 64\n", &limits).unwrap_err();
        let DeckError::Text { line, message } = err else {
            panic!("want line-anchored rejection, got {err:?}");
        };
        assert_eq!(line, 3, "must anchor at the `n = 64` assignment");
        assert!(message.contains("4096 elements"), "{message}");
    }

    #[test]
    fn generic_deck_mesh_budget_is_rejected_at_its_line() {
        let limits = ResourceLimits {
            max_mesh_cells: 100,
            ..ResourceLimits::default()
        };
        let text = "\
[mesh]
nx = 64
ny = 64

[material.gas]
eos = ideal_gas
gamma = 1.4

[region.all]
shape = rect
x0 = 0
y0 = 0
x1 = 1
y1 = 1
material = gas
rho = 1
ein = 1

[control]
final_time = 0.1
";
        let err = admit_deck(text, &limits).unwrap_err();
        let DeckError::Text { line, message } = err else {
            panic!("want line-anchored rejection, got {err:?}");
        };
        assert_eq!(line, 2, "must anchor at the [mesh] `nx = 64` assignment");
        assert!(message.contains("4096 elements"), "{message}");
        // A fitting generic deck is admitted.
        let ok = admit_deck(text, &ResourceLimits::default()).unwrap();
        assert_eq!(ok.problem.cells(), 4096);
    }

    #[test]
    fn oversized_step_budget_is_rejected_at_its_line() {
        let limits = ResourceLimits {
            max_steps: 10,
            ..ResourceLimits::default()
        };
        let text = "problem = sod\nnx = 4\nny = 2\n[control]\nmax_steps = 50\n";
        let err = admit_deck(text, &limits).unwrap_err();
        let DeckError::Text { line, .. } = err else {
            panic!("want line-anchored rejection, got {err:?}");
        };
        assert_eq!(line, 5);
    }

    #[test]
    fn oversized_deck_text_is_rejected_before_parsing() {
        let limits = ResourceLimits {
            max_deck_bytes: 16,
            ..ResourceLimits::default()
        };
        let err = admit_deck("problem = noh\nn = 8\n# padding padding\n", &limits).unwrap_err();
        assert!(matches!(err, DeckError::Config { .. }), "{err:?}");
    }

    #[test]
    fn parser_errors_pass_through_line_anchored() {
        let err =
            admit_deck("problem = noh\nbogus_key = 1\n", &ResourceLimits::default()).unwrap_err();
        assert!(matches!(err, DeckError::Text { line: 2, .. }), "{err:?}");
    }
}
